#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace mrd {
namespace {

TEST(Harness, PlanWorkloadCarriesMetadata) {
  const WorkloadSpec* spec = find_workload("tc");
  ASSERT_NE(spec, nullptr);
  const WorkloadRun run = plan_workload(*spec);
  EXPECT_EQ(run.key, "tc");
  EXPECT_EQ(run.name, spec->name);
  EXPECT_EQ(run.plan.app().name(), spec->name);
}

TEST(Harness, CacheSizingScalesWithFraction) {
  const WorkloadRun run = plan_workload(*find_workload("pr"));
  const ClusterConfig cluster = main_cluster();
  const auto half = cache_bytes_per_node_for(run, cluster, 0.5);
  const auto full = cache_bytes_per_node_for(run, cluster, 1.0);
  EXPECT_LT(half, full);
  EXPECT_NEAR(static_cast<double>(full) / half, 2.0, 0.2);
}

TEST(Harness, CacheSizingHasBlockFloor) {
  const WorkloadRun run = plan_workload(*find_workload("pr"));
  const ClusterConfig cluster = main_cluster();
  // A microscopic fraction still yields room for two largest blocks.
  const auto tiny = cache_bytes_per_node_for(run, cluster, 1e-9);
  std::uint64_t largest = 0;
  for (const RddInfo& r : run.app->rdds()) {
    if (r.persisted) largest = std::max(largest, r.bytes_per_partition);
  }
  EXPECT_EQ(tiny, largest * 2);
}

TEST(Harness, SweepProducesOnePointPerFraction) {
  WorkloadParams params;
  params.scale = 0.25;
  const WorkloadRun run = plan_workload(*find_workload("tc"), params);
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;
  PolicyConfig pc;
  pc.name = "lru";
  const auto points = sweep_cache(run, cluster, {0.5, 1.0}, pc);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(points[1].fraction, 1.0);
  EXPECT_GE(points[1].metrics.hit_ratio(), points[0].metrics.hit_ratio());
}

TEST(Harness, BestImprovementPicksMinimalRatio) {
  WorkloadParams params;
  params.scale = 0.25;
  const WorkloadRun run = plan_workload(*find_workload("pr"), params);
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;
  PolicyConfig lru, mrd;
  lru.name = "lru";
  mrd.name = "mrd";
  const BestComparison best =
      best_improvement(run, cluster, {0.4, 0.6, 0.8}, lru, mrd);
  EXPECT_GT(best.fraction, 0.0);
  EXPECT_LE(best.jct_ratio(), 1.05);
  // The chosen ratio really is the minimum over the sweep.
  for (double f : {0.4, 0.6, 0.8}) {
    const auto base = run_with_policy(run, cluster, f, lru);
    const auto cand = run_with_policy(run, cluster, f, mrd);
    EXPECT_GE(cand.jct_ms / base.jct_ms + 1e-9, best.jct_ratio());
  }
}

TEST(Harness, DefaultFractionsAreAscending) {
  const auto& fractions = default_cache_fractions();
  ASSERT_GE(fractions.size(), 2u);
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
}

TEST(Harness, ClusterPresetsMatchTable4) {
  EXPECT_EQ(main_cluster().num_nodes, 25u);
  EXPECT_EQ(main_cluster().cpu_slots_per_node, 4u);
  EXPECT_EQ(lrc_cluster().num_nodes, 20u);
  EXPECT_EQ(lrc_cluster().cpu_slots_per_node, 2u);
  EXPECT_EQ(memtune_cluster().num_nodes, 6u);
  EXPECT_EQ(memtune_cluster().cpu_slots_per_node, 8u);
  // Network ordering: MemTune (1 Gbps) > Main (500) > LRC (450).
  EXPECT_GT(memtune_cluster().network_mb_per_s, main_cluster().network_mb_per_s);
  EXPECT_GT(main_cluster().network_mb_per_s, lrc_cluster().network_mb_per_s);
}

}  // namespace
}  // namespace mrd
