#include <gtest/gtest.h>

#include "api/spark_context.h"
#include "dag/dag_builder.h"
#include "util/check.h"

namespace mrd {
namespace {

TEST(DagBuilder, SourceHasExpectedShape) {
  DagBuilder b("app");
  const RddId src = b.source("in", 4, 1 << 20);
  const RddInfo& info = b.rdd(src);
  EXPECT_EQ(info.kind, TransformKind::kSource);
  EXPECT_EQ(info.num_partitions, 4u);
  EXPECT_EQ(info.bytes_per_partition, 1u << 20);
  EXPECT_TRUE(info.parents.empty());
  EXPECT_FALSE(info.persisted);
}

TEST(DagBuilder, NarrowChildInheritsPartitionsAndSize) {
  DagBuilder b("app");
  const RddId src = b.source("in", 8, 2 << 20);
  const RddId child = b.map(src, "m");
  EXPECT_EQ(b.rdd(child).num_partitions, 8u);
  EXPECT_EQ(b.rdd(child).bytes_per_partition, 2u << 20);
}

TEST(DagBuilder, SizeFactorScalesChild) {
  DagBuilder b("app");
  const RddId src = b.source("in", 4, 1000);
  TransformOpts opts;
  opts.size_factor = 0.5;
  const RddId child = b.map(src, "m", opts);
  EXPECT_EQ(b.rdd(child).bytes_per_partition, 500u);
}

TEST(DagBuilder, ExplicitOverridesWin) {
  DagBuilder b("app");
  const RddId src = b.source("in", 4, 1000);
  TransformOpts opts;
  opts.partitions = 16;
  opts.bytes_per_partition = 77;
  opts.compute_ms = 3.5;
  const RddId child = b.reduce_by_key(src, "r", opts);
  EXPECT_EQ(b.rdd(child).num_partitions, 16u);
  EXPECT_EQ(b.rdd(child).bytes_per_partition, 77u);
  EXPECT_DOUBLE_EQ(b.rdd(child).compute_ms_per_partition, 3.5);
}

TEST(DagBuilder, UnionSumsPartitions) {
  DagBuilder b("app");
  const RddId a = b.source("a", 3, 100);
  const RddId c = b.source("c", 5, 100);
  const RddId u = b.union_of({a, c}, "u");
  EXPECT_EQ(b.rdd(u).num_partitions, 8u);
}

TEST(DagBuilder, JoinTakesMaxPartitions) {
  DagBuilder b("app");
  const RddId a = b.source("a", 3, 100);
  const RddId c = b.source("c", 5, 100);
  const RddId j = b.join(a, c, "j");
  EXPECT_EQ(b.rdd(j).num_partitions, 5u);
  EXPECT_EQ(b.rdd(j).parents.size(), 2u);
}

TEST(DagBuilder, ComputeCostScalesWithBytesAndFactor) {
  DagBuilder b("app");
  b.set_compute_ms_per_mb(4.0);
  const RddId src = b.source("in", 1, 1 << 20);  // 1 MB
  TransformOpts opts;
  opts.cost_factor = 2.0;
  const RddId child = b.map(src, "m", opts);
  EXPECT_DOUBLE_EQ(b.rdd(child).compute_ms_per_partition, 8.0);
}

TEST(DagBuilder, PersistAndUnpersist) {
  DagBuilder b("app");
  const RddId src = b.source("in", 1, 1);
  EXPECT_FALSE(b.is_persisted(src));
  b.persist(src);
  EXPECT_TRUE(b.is_persisted(src));
  b.unpersist(src);
  EXPECT_FALSE(b.is_persisted(src));
}

TEST(DagBuilder, UnknownParentThrows) {
  DagBuilder b("app");
  EXPECT_THROW(b.apply(TransformKind::kMap, "m", {99}), CheckFailure);
}

TEST(DagBuilder, TransformWithoutParentsThrows) {
  DagBuilder b("app");
  EXPECT_THROW(b.apply(TransformKind::kMap, "m", {}), CheckFailure);
}

TEST(DagBuilder, BuildProducesValidApplication) {
  DagBuilder b("app");
  const RddId src = b.source("in", 2, 100);
  b.persist(src);
  b.action(src, "count");
  const Application app = std::move(b).build();
  EXPECT_EQ(app.name(), "app");
  EXPECT_EQ(app.num_rdds(), 1u);
  EXPECT_EQ(app.num_actions(), 1u);
  EXPECT_EQ(app.num_persisted(), 1u);
  EXPECT_EQ(app.input_bytes(), 200u);
}

TEST(DagBuilder, BuildWithoutActionsThrows) {
  DagBuilder b("app");
  b.source("in", 1, 1);
  EXPECT_THROW(std::move(b).build(), CheckFailure);
}

TEST(DagBuilder, EmptyApplicationThrows) {
  DagBuilder b("app");
  EXPECT_THROW(std::move(b).build(), CheckFailure);
}

TEST(Application, RddAccessorChecksRange) {
  DagBuilder b("app");
  const RddId src = b.source("in", 1, 1);
  b.action(src, "count");
  const Application app = std::move(b).build();
  EXPECT_NO_THROW(app.rdd(0));
  EXPECT_THROW(app.rdd(5), CheckFailure);
}

// ---- Dataset / SparkContext fluent API ----

TEST(DatasetApi, ChainsRecordIntoBuilder) {
  SparkContext sc("api-app");
  auto data = sc.text_file("in", 4, 1000).map("parsed").cache();
  auto out = data.flat_map().reduce_by_key("agg");
  out.count();
  const Application app = std::move(sc).build();
  EXPECT_EQ(app.num_rdds(), 4u);
  EXPECT_EQ(app.num_actions(), 1u);
  EXPECT_EQ(app.num_persisted(), 1u);
}

TEST(DatasetApi, AutoNamesAreUnique) {
  SparkContext sc("app");
  auto a = sc.text_file("in", 1, 1);
  auto m1 = a.map();
  auto m2 = a.map();
  const Application app = [&] {
    m2.count();
    return std::move(sc).build();
  }();
  EXPECT_NE(app.rdd(m1.id()).name, app.rdd(m2.id()).name);
}

TEST(DatasetApi, CrossContextCombinationThrows) {
  SparkContext sc1("a"), sc2("b");
  auto d1 = sc1.text_file("x", 1, 1);
  auto d2 = sc2.text_file("y", 1, 1);
  EXPECT_THROW(d1.join(d2), CheckFailure);
}

TEST(DatasetApi, InvalidDatasetThrows) {
  Dataset empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.map(), CheckFailure);
}

TEST(DatasetApi, SampleShrinksBytes) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 1000);
  auto s = data.sample(0.1);
  s.count();
  const Application app = std::move(sc).build();
  EXPECT_EQ(app.rdd(s.id()).bytes_per_partition, 100u);
}

TEST(DatasetApi, RepartitionSetsPartitionCount) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 1000);
  auto r = data.repartition(32);
  r.count();
  const Application app = std::move(sc).build();
  EXPECT_EQ(app.rdd(r.id()).num_partitions, 32u);
  EXPECT_TRUE(is_wide(app.rdd(r.id()).kind));
}

// ---- transform classification ----

TEST(Transform, WideAndNarrowClassification) {
  EXPECT_TRUE(is_wide(TransformKind::kReduceByKey));
  EXPECT_TRUE(is_wide(TransformKind::kJoin));
  EXPECT_TRUE(is_wide(TransformKind::kSortByKey));
  EXPECT_FALSE(is_wide(TransformKind::kMap));
  EXPECT_FALSE(is_wide(TransformKind::kUnion));
  EXPECT_FALSE(is_wide(TransformKind::kZipPartitions));
}

TEST(Transform, SourceClassification) {
  EXPECT_TRUE(is_source(TransformKind::kSource));
  EXPECT_TRUE(is_source(TransformKind::kParallelize));
  EXPECT_FALSE(is_source(TransformKind::kMap));
}

TEST(Transform, MapSideCombineOnlyForAggregations) {
  EXPECT_TRUE(map_side_combine(TransformKind::kReduceByKey));
  EXPECT_TRUE(map_side_combine(TransformKind::kAggregateByKey));
  EXPECT_TRUE(map_side_combine(TransformKind::kDistinct));
  EXPECT_FALSE(map_side_combine(TransformKind::kJoin));
  EXPECT_FALSE(map_side_combine(TransformKind::kGroupByKey));
}

TEST(Transform, NamesAreNonEmpty) {
  EXPECT_EQ(transform_name(TransformKind::kMap), "map");
  EXPECT_EQ(transform_name(TransformKind::kReduceByKey), "reduceByKey");
  EXPECT_EQ(transform_name(TransformKind::kSource), "source");
}

}  // namespace
}  // namespace mrd
