#include <gtest/gtest.h>

#include <limits>

#include "api/spark_context.h"
#include "cache/belady.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

/// `soon` referenced in job 1, `late` in job 3.
ExecutionPlan oracle_plan(RddId* soon_out, RddId* late_out) {
  SparkContext sc("app");
  auto soon = sc.text_file("a", 2, 100).map("soon").cache();
  auto late = sc.text_file("b", 2, 100).map("late").cache();
  soon.zip_partitions(late, "z").count("job0");
  soon.map("m1").count("job1");
  soon.map("m2").count("job2");
  late.map("m3").count("job3");
  *soon_out = soon.id();
  *late_out = late.id();
  return DagScheduler::plan(std::move(sc).build_shared());
}

TEST(Belady, EvictsFurthestNextReference) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  min.on_application_start(plan);
  min.on_stage_start(plan, 0, plan.job(0).result_stage);

  min.on_block_cached(block(soon, 0), 10);
  min.on_block_cached(block(late, 0), 10);
  EXPECT_EQ(min.choose_victim(), block(late, 0));
}

TEST(Belady, NextReferenceAdvancesWithCursor) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  min.on_application_start(plan);

  const std::size_t at_start = min.next_reference(soon);
  min.on_stage_start(plan, 1, plan.job(1).result_stage);
  min.on_stage_end(plan, 1, plan.job(1).result_stage);
  const std::size_t after_job1 = min.next_reference(soon);
  EXPECT_GT(after_job1, at_start);
}

TEST(Belady, ExhaustedRddIsInfinitelyFar) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  min.on_application_start(plan);
  // Consume everything.
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      min.on_stage_start(plan, rec.job, rec.stage);
      min.on_stage_end(plan, rec.job, rec.stage);
    }
  }
  EXPECT_EQ(min.next_reference(soon), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(min.next_reference(late), std::numeric_limits<std::size_t>::max());
}

TEST(Belady, TimelineBuiltLazilyFromJobStart) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  // No on_application_start — ad-hoc runner still gives the oracle its view.
  min.on_job_start(plan, 0);
  EXPECT_NE(min.next_reference(soon), std::numeric_limits<std::size_t>::max());
}

TEST(Belady, ProbeConsumptionAdvancesPerRdd) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  min.on_application_start(plan);

  // Position at job1's result stage (which probes `soon`).
  const StageId s1 = plan.job(1).result_stage;
  min.on_stage_start(plan, 1, s1);
  const std::size_t before = min.next_reference(soon);
  min.on_rdd_probed(plan, soon, s1);
  const std::size_t after = min.next_reference(soon);
  EXPECT_GT(after, before);
  // `late` is untouched.
  EXPECT_NE(min.next_reference(late), std::numeric_limits<std::size_t>::max());
}

TEST(Belady, PromotionDeclinedForFartherBlock) {
  RddId soon, late;
  const ExecutionPlan plan = oracle_plan(&soon, &late);
  BeladyPolicy min;
  min.on_application_start(plan);
  min.on_stage_start(plan, 0, plan.job(0).result_stage);
  min.on_block_cached(block(soon, 0), 10);
  // Promoting `late` would evict `soon`, whose next use is earlier.
  EXPECT_FALSE(min.should_promote(block(late, 0), /*free_bytes=*/0));
  EXPECT_TRUE(min.should_promote(block(soon, 1), /*free_bytes=*/0));
}

TEST(Belady, PromotionAcceptedWhenEmpty) {
  BeladyPolicy min;
  EXPECT_TRUE(min.should_promote(block(1, 0), 0));
}

}  // namespace
}  // namespace mrd
