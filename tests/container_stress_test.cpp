// Adversarial tests for the dense containers under the block volumes the
// scale tier drives (10^5–10^6 live blocks): FlatMap64's sentinel-key
// lookup guards, backward-shift deletion across wrap-around probe chains,
// pointer staleness validation on erase_found, value survival across
// rehash-heavy churn, and BlockBitmap growth to sparse high RDD ids and
// million-partition rows. The churn tests double as differentials against
// std::unordered_map with fixed seeds, so any probe-chain corruption shows
// up as a divergence, not a crash somewhere later.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/block_bitmap.h"
#include "util/check.h"
#include "util/flat_hash.h"
#include "util/random.h"

namespace mrd {
namespace {

using Map = FlatMap64<std::uint64_t>;

/// FlatMap64's hash, replicated so tests can construct colliding keys.
std::uint64_t mix64(std::uint64_t key) {
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}

/// Keys whose ideal slot in a table of `capacity` slots is exactly `slot`.
std::vector<std::uint64_t> keys_hashing_to(std::size_t slot,
                                           std::size_t capacity,
                                           std::size_t count) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; keys.size() < count; ++k) {
    if (k == Map::kEmptyKey) continue;
    if ((mix64(k) & (capacity - 1)) == slot) keys.push_back(k);
  }
  return keys;
}

std::vector<std::uint64_t> sorted_keys(const Map& map) {
  std::vector<std::uint64_t> keys;
  map.for_each([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- Sentinel key: never stored, must never match. Release builds return
// not-found; debug builds fail the MRD_DCHECK loudly.

TEST(ContainerStressTest, SentinelKeyLookupsReturnNotFound) {
  Map map;
  for (std::uint64_t k = 0; k < 40; ++k) map.insert(k * 977, k);
#ifdef NDEBUG
  // The fixed regression: these used to match the first empty slot, handing
  // back a live pointer into unoccupied storage (find), reporting a phantom
  // resident (contains), or backward-shifting over live entries and
  // underflowing size() (erase).
  EXPECT_EQ(map.find(Map::kEmptyKey), nullptr);
  EXPECT_FALSE(map.contains(Map::kEmptyKey));
  EXPECT_FALSE(map.erase(Map::kEmptyKey));
  EXPECT_EQ(map.size(), 40u);
#else
  EXPECT_THROW(map.find(Map::kEmptyKey), CheckFailure);
  EXPECT_THROW(map.erase(Map::kEmptyKey), CheckFailure);
#endif
}

TEST(ContainerStressTest, SentinelKeyOnEmptyMap) {
#ifdef NDEBUG
  Map map;
  EXPECT_EQ(map.find(Map::kEmptyKey), nullptr);
  EXPECT_FALSE(map.contains(Map::kEmptyKey));
  EXPECT_FALSE(map.erase(Map::kEmptyKey));
  EXPECT_EQ(map.size(), 0u);
#else
  GTEST_SKIP() << "debug builds reject the sentinel via MRD_DCHECK";
#endif
}

// --- Backward-shift deletion across a probe chain that wraps around the
// end of the slot array: (j - ideal) and (j - i) are cyclic distances, and
// an unsigned-wrap mistake in either leaves unreachable entries behind.

TEST(ContainerStressTest, BackwardShiftAcrossWrapAround) {
  // A fresh map allocates 16 slots and grows past 10 entries, so 8 keys all
  // hashing to slot 14 occupy 14, 15, 0, 1, ... — every probe walk and
  // every backward shift in this test crosses the wrap boundary.
  const std::vector<std::uint64_t> keys = keys_hashing_to(14, 16, 8);
  for (std::size_t victim = 0; victim < keys.size(); ++victim) {
    Map map;
    for (std::uint64_t k : keys) ASSERT_TRUE(map.insert(k, mix64(k)));
    ASSERT_TRUE(map.erase(keys[victim]));
    EXPECT_EQ(map.size(), keys.size() - 1);
    EXPECT_FALSE(map.contains(keys[victim]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i == victim) continue;
      const std::uint64_t* value = map.find(keys[i]);
      ASSERT_NE(value, nullptr) << "key " << i << " lost after erasing "
                                << victim << " across the wrap boundary";
      EXPECT_EQ(*value, mix64(keys[i]));
    }
  }
}

TEST(ContainerStressTest, DrainWrappedChainInEveryOrder) {
  const std::vector<std::uint64_t> keys = keys_hashing_to(15, 16, 8);
  // Front-to-back, back-to-front, and inside-out drains all must leave a
  // consistent table at every step.
  for (int order = 0; order < 3; ++order) {
    Map map;
    for (std::uint64_t k : keys) ASSERT_TRUE(map.insert(k, k + 1));
    std::vector<std::uint64_t> drain = keys;
    if (order == 1) std::reverse(drain.begin(), drain.end());
    if (order == 2) {
      std::swap(drain[0], drain[4]);
      std::swap(drain[1], drain[6]);
    }
    for (std::size_t i = 0; i < drain.size(); ++i) {
      ASSERT_TRUE(map.erase(drain[i]));
      for (std::size_t j = i + 1; j < drain.size(); ++j) {
        ASSERT_TRUE(map.contains(drain[j]))
            << "drain order " << order << " lost a later key at step " << i;
      }
    }
    EXPECT_TRUE(map.empty());
  }
}

// --- Rehash during admission-style churn: values written through
// find_or_insert must survive arbitrarily many growth rehashes interleaved
// with backward-shift erases. Differential against std::unordered_map with
// a fixed seed.

TEST(ContainerStressTest, ChurnDifferentialAcrossRehashes) {
  Map map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(0x5ca1ab1eull);
  // Key space small enough to force constant insert/erase collisions, large
  // enough to cross several growth rehashes (16 -> 2048 slots).
  constexpr std::uint64_t kKeySpace = 1200;
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t key = rng.next_below(kKeySpace);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // admission: find-or-insert, then overwrite the value
        auto [value, inserted] = map.find_or_insert(key);
        const bool oracle_inserted = oracle.find(key) == oracle.end();
        EXPECT_EQ(inserted, oracle_inserted);
        *value = step;
        oracle[key] = step;
        break;
      }
      case 2: {  // eviction
        EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const std::uint64_t* value = map.find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(value, nullptr);
        } else {
          ASSERT_NE(value, nullptr);
          EXPECT_EQ(*value, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  std::vector<std::uint64_t> expected;
  for (const auto& [k, v] : oracle) expected.push_back(k);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted_keys(map), expected);
}

TEST(ContainerStressTest, ValuesSurviveGrowthToScaleTierVolume) {
  // One node's store at the 10^6-block tier: monotone fill far past many
  // rehashes, spot-checked exhaustively at the end.
  Map map;
  constexpr std::uint64_t kBlocks = 200000;
  for (std::uint64_t k = 0; k < kBlocks; ++k) {
    auto [value, inserted] = map.find_or_insert(k * 2654435761ull);
    ASSERT_TRUE(inserted);
    *value = k;
  }
  ASSERT_EQ(map.size(), kBlocks);
  for (std::uint64_t k = 0; k < kBlocks; ++k) {
    const std::uint64_t* value = map.find(k * 2654435761ull);
    ASSERT_NE(value, nullptr);
    ASSERT_EQ(*value, k);
  }
}

// --- erase_found pointer staleness: any mutation between the lookup and
// the erase invalidates the pointer. Debug builds must fail loudly; the
// validation compiles out in NDEBUG, so these only run in debug builds.

#ifndef NDEBUG
TEST(ContainerStressTest, EraseFoundStaleAfterRehashFailsLoudly) {
  Map map;
  for (std::uint64_t k = 0; k < 10; ++k) map.insert(k * 31 + 1, k);
  std::uint64_t* found = map.find(1);
  ASSERT_NE(found, nullptr);
  // The 11th insert crosses the 5/8 load factor and rehashes 16 -> 32.
  map.insert(10 * 31 + 1, 10);
  EXPECT_THROW(map.erase_found(found), CheckFailure);
}

TEST(ContainerStressTest, EraseFoundStaleAfterEraseFailsLoudly) {
  const std::vector<std::uint64_t> keys = keys_hashing_to(3, 16, 4);
  Map map;
  for (std::uint64_t k : keys) map.insert(k, k);
  std::uint64_t* found = map.find(keys[2]);
  ASSERT_NE(found, nullptr);
  // Erasing an earlier link backward-shifts keys[2] into another slot.
  map.erase(keys[0]);
  EXPECT_THROW(map.erase_found(found), CheckFailure);
}

TEST(ContainerStressTest, EraseFoundFreshPointerStillWorks) {
  Map map;
  map.insert(7, 70);
  map.insert(8, 80);
  std::uint64_t* found = map.find(7);
  ASSERT_NE(found, nullptr);
  map.erase_found(found);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.contains(7));
  EXPECT_TRUE(map.contains(8));
}
#endif  // !NDEBUG

// --- BlockBitmap at scale-tier shapes.

TEST(ContainerStressTest, BlockBitmapSparseHighRddIds) {
  BlockBitmap bitmap;
  EXPECT_TRUE(bitmap.insert(BlockId{5, 3}));
  // A high RDD id forces row-vector growth across five orders of magnitude;
  // everything between stays absent and zero-count.
  EXPECT_TRUE(bitmap.insert(BlockId{100000, 7}));
  EXPECT_FALSE(bitmap.insert(BlockId{100000, 7}));
  EXPECT_TRUE(bitmap.contains(BlockId{5, 3}));
  EXPECT_TRUE(bitmap.contains(BlockId{100000, 7}));
  EXPECT_EQ(bitmap.rdd_count(5), 1u);
  EXPECT_EQ(bitmap.rdd_count(100000), 1u);
  for (RddId r : {RddId{0}, RddId{4}, RddId{6}, RddId{99999}}) {
    EXPECT_EQ(bitmap.rdd_count(r), 0u);
    EXPECT_FALSE(bitmap.contains(BlockId{r, 0}));
  }
  // Queries past every row ever touched.
  EXPECT_FALSE(bitmap.contains(BlockId{100001, 0}));
  EXPECT_EQ(bitmap.rdd_count(100001), 0u);
}

TEST(ContainerStressTest, BlockBitmapMillionPartitionRow) {
  BlockBitmap bitmap;
  constexpr PartitionIndex kParts = 1u << 20;  // 2^20 > 10^6-partition RDD
  // Word-boundary partitions plus a stride over the whole row.
  const std::vector<PartitionIndex> set = {0,       1,         63,
                                           64,      65,        kParts / 2,
                                           kParts - 64, kParts - 1};
  for (PartitionIndex j : set) EXPECT_TRUE(bitmap.insert(BlockId{3, j}));
  for (PartitionIndex j : set) {
    EXPECT_TRUE(bitmap.contains(BlockId{3, j})) << "partition " << j;
    EXPECT_FALSE(bitmap.insert(BlockId{3, j}));
  }
  EXPECT_EQ(bitmap.rdd_count(3), set.size());
  // Neighbours of every set bit stay clear (bit-index arithmetic check).
  for (PartitionIndex j : {PartitionIndex{2}, PartitionIndex{62},
                           PartitionIndex{66}, kParts - 63, kParts - 2}) {
    EXPECT_FALSE(bitmap.contains(BlockId{3, j}));
  }
  EXPECT_FALSE(bitmap.contains(BlockId{3, kParts}));

  // Dense fill of one word-aligned span at the far end of the row: counts
  // stay exact at scale.
  for (PartitionIndex j = kParts / 2; j < kParts / 2 + 4096; ++j) {
    bitmap.insert(BlockId{9, j});
  }
  EXPECT_EQ(bitmap.rdd_count(9), 4096u);
  EXPECT_FALSE(bitmap.contains(BlockId{9, kParts / 2 - 1}));
  EXPECT_FALSE(bitmap.contains(BlockId{9, kParts / 2 + 4096}));
}

TEST(ContainerStressTest, FlatSetMirrorsMapSemantics) {
  FlatSet64 set;
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.erase(42));
  EXPECT_FALSE(set.erase(42));
  EXPECT_TRUE(set.empty());
#ifdef NDEBUG
  EXPECT_FALSE(set.contains(FlatMap64<int>::kEmptyKey));
#endif
}

}  // namespace
}  // namespace mrd
