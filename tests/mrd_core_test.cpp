// AppProfiler + MrdManager + ProfileStore behaviour (paper §4.1/§4.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "api/spark_context.h"
#include "core/app_profiler.h"
#include "core/mrd_manager.h"
#include "core/profile_store.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

/// data cached in job0, referenced in jobs 1 and 2.
ExecutionPlan simple_plan(RddId* cached_out) {
  SparkContext sc("recurring-app");
  auto data = sc.text_file("in", 4, 100).map("data").cache();
  data.count("job0");
  data.map("m1").count("job1");
  data.map("m2").count("job2");
  *cached_out = data.id();
  return DagScheduler::plan(std::move(sc).build_shared());
}

std::shared_ptr<MrdManager> make_manager(
    DistanceMetric metric = DistanceMetric::kStage,
    ProfileStore* store = nullptr) {
  return std::make_shared<MrdManager>(std::make_shared<AppProfiler>(store),
                                      metric, /*num_nodes=*/4);
}

// ---- AppProfiler ----

TEST(AppProfiler, JobFragmentsAccumulate) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  AppProfiler profiler;
  const auto frag0 = profiler.parse_job(plan, 0);
  EXPECT_TRUE(frag0.at(cached).references.empty());
  profiler.parse_job(plan, 1);
  profiler.parse_job(plan, 2);
  // Recording at end persists the accumulated (complete) profile.
  ProfileStore store;
  AppProfiler recording(&store);
  for (JobId j = 0; j < 3; ++j) recording.parse_job(plan, j);
  recording.on_application_end(plan);
  ASSERT_TRUE(store.has_profile("recurring-app"));
  EXPECT_EQ(
      store.lookup("recurring-app")->references.at(cached).references.size(),
      2u);
}

TEST(AppProfiler, RecurringDetection) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  ProfileStore store;
  AppProfiler first_run(&store);
  EXPECT_FALSE(first_run.is_recurring(plan));
  first_run.on_application_end(plan);

  AppProfiler second_run(&store);
  EXPECT_TRUE(second_run.is_recurring(plan));
  // Recurring profile equals a full parse (deterministic plans).
  const auto stored = second_run.application_profile(plan);
  EXPECT_EQ(stored.at(cached).references.size(), 2u);
}

TEST(AppProfiler, WorksWithoutStore) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  AppProfiler profiler(nullptr);
  EXPECT_FALSE(profiler.is_recurring(plan));
  EXPECT_EQ(profiler.application_profile(plan).at(cached).references.size(),
            2u);
  profiler.on_application_end(plan);  // no-op, no crash
}

// ---- ProfileStore ----

TEST(ProfileStore, RecordsRunsAndDiscrepancies) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  const auto profile = build_reference_profile(plan);

  ProfileStore store;
  store.record("app", profile);
  store.record("app", profile);
  EXPECT_EQ(store.lookup("app")->runs, 2u);
  EXPECT_EQ(store.lookup("app")->discrepancies, 0u);

  // A run with a different profile is a discrepancy; the profile refreshes.
  ReferenceProfileMap changed = profile;
  changed.at(cached).references.pop_back();
  store.record("app", changed);
  EXPECT_EQ(store.lookup("app")->discrepancies, 1u);
  EXPECT_EQ(store.lookup("app")->references.at(cached).references.size(), 1u);
}

TEST(ProfileStore, SeparateApplications) {
  ProfileStore store;
  store.record("a", {});
  EXPECT_TRUE(store.has_profile("a"));
  EXPECT_FALSE(store.has_profile("b"));
  EXPECT_FALSE(store.lookup("b").has_value());
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

// ---- MrdManager ----

TEST(MrdManager, RecurringModeSeesAllReferencesUpFront) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  mgr->on_application_start(plan);
  EXPECT_FALSE(std::isinf(mgr->distance(cached)));
  EXPECT_EQ(mgr->table().num_entries(), 2u);
}

TEST(MrdManager, AdHocModeSeesReferencesPerJob) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  mgr->on_job_start(plan, 0);
  // job0 only creates the RDD; its references live in later jobs.
  EXPECT_TRUE(std::isinf(mgr->distance(cached)));
  mgr->on_job_start(plan, 1);
  EXPECT_FALSE(std::isinf(mgr->distance(cached)));
}

TEST(MrdManager, DistanceDecreasesAsStagesAdvance) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  mgr->on_application_start(plan);
  mgr->on_stage_start(plan, 0, 0);
  const double d0 = mgr->distance(cached);
  mgr->on_stage_end(plan, 0, 0);
  mgr->on_stage_start(plan, 1, 1);
  const double d1 = mgr->distance(cached);
  EXPECT_LT(d1, d0);
}

TEST(MrdManager, ConsumingAllReferencesTriggersPurgeList) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  mgr->on_application_start(plan);
  EXPECT_TRUE(mgr->purge_rdds().empty());

  // Walk every executed stage to completion.
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      mgr->on_stage_start(plan, rec.job, rec.stage);
      mgr->on_stage_end(plan, rec.job, rec.stage);
    }
  }
  const auto purge = mgr->purge_rdds();
  ASSERT_EQ(purge.size(), 1u);
  EXPECT_EQ(purge[0], cached);
  EXPECT_TRUE(std::isinf(mgr->distance(cached)));
}

TEST(MrdManager, EventsAreIdempotent) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  // Simulate four CacheMonitors all forwarding the same events.
  for (int i = 0; i < 4; ++i) mgr->on_application_start(plan);
  for (int i = 0; i < 4; ++i) mgr->on_job_start(plan, 0);
  EXPECT_EQ(mgr->table().num_entries(), 2u);
  for (int i = 0; i < 4; ++i) mgr->on_stage_start(plan, 0, 0);
  EXPECT_EQ(mgr->current_stage(), 0u);
}

TEST(MrdManager, JobMetricUsesJobIds) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto stage_mgr = make_manager(DistanceMetric::kStage);
  auto job_mgr = make_manager(DistanceMetric::kJob);
  stage_mgr->on_application_start(plan);
  job_mgr->on_application_start(plan);
  stage_mgr->on_stage_start(plan, 0, 0);
  job_mgr->on_stage_start(plan, 0, 0);
  // Reference in job 1 at stage 1: stage distance 1, job distance 1 — equal
  // here; advance one more job so they diverge.
  EXPECT_EQ(stage_mgr->metric(), DistanceMetric::kStage);
  EXPECT_EQ(job_mgr->metric(), DistanceMetric::kJob);
  EXPECT_GE(stage_mgr->distance(cached), job_mgr->distance(cached));
}

TEST(MrdManager, PrefetchOrderIsAscendingDistance) {
  SparkContext sc("app");
  auto near = sc.text_file("a", 2, 100).map("near").cache();
  auto far = sc.text_file("b", 2, 100).map("far").cache();
  near.zip_partitions(far, "z").count("job0");
  near.map("m").count("job1");
  far.map("m2").count("job2");
  const ExecutionPlan plan = DagScheduler::plan(std::move(sc).build_shared());

  auto mgr = make_manager();
  mgr->on_application_start(plan);
  mgr->on_stage_start(plan, 0, 0);
  const auto order = mgr->prefetch_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], near.id());
  EXPECT_EQ(order[1], far.id());
}

// Regression: a reference left behind by a skipped stage (whose end event
// never fired to consume it) used to read as distance 0.0, making a dead
// block look maximally hot. Stage starts now drop stale front references,
// so the block reads infinite and lands on the purge list.
TEST(MrdManager, SkippedStageReferencesGoStaleNotHot) {
  SparkContext sc("stale-app");
  auto data = sc.text_file("in", 2, 100).map("base").cache();
  data.map("m1").count("job0");
  data.map("m2").count("job1");
  sc.text_file("other", 2, 100).map("m3").count("job2");
  const ExecutionPlan plan = DagScheduler::plan(std::move(sc).build_shared());

  auto mgr = make_manager();
  mgr->on_application_start(plan);

  // Drive every executed stage start WITHOUT its end event: the stage-end
  // consume never runs, as when the scheduler skips stages.
  StageId last_stage = 0;
  JobId last_job = 0;
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      mgr->on_stage_start(plan, rec.job, rec.stage);
      last_stage = rec.stage;
      last_job = rec.job;
    }
  }
  // The final stage belongs to job2, which never references `data`; both of
  // data's references are now behind us.
  ASSERT_GT(last_job, 1u);
  ASSERT_EQ(mgr->current_stage(), last_stage);
  EXPECT_TRUE(std::isinf(mgr->distance(data.id())));
  const auto purge = mgr->purge_rdds();
  EXPECT_NE(std::find(purge.begin(), purge.end(), data.id()), purge.end());
}

TEST(MrdManager, StatsCountBroadcasts) {
  RddId cached;
  const ExecutionPlan plan = simple_plan(&cached);
  auto mgr = make_manager();
  mgr->on_application_start(plan);
  // One sendReferenceDistance per node.
  EXPECT_EQ(mgr->stats().table_update_messages, 4u);
  EXPECT_EQ(mgr->stats().max_table_entries, 2u);
}

}  // namespace
}  // namespace mrd
