// Determinism and accounting of the parallel sweep harness: running the same
// jobs on any thread count must produce byte-identical metrics to the serial
// sweep (the guarantee the bench drivers and README promise).
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.h"

namespace mrd {
namespace {

/// Exact equality across every RunMetrics field — doubles included, since
/// parallel runs re-execute the identical deterministic simulation.
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses_from_disk, b.misses_from_disk);
  EXPECT_EQ(a.misses_recompute, b.misses_recompute);
  EXPECT_EQ(a.blocks_cached, b.blocks_cached);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.purged_blocks, b.purged_blocks);
  EXPECT_EQ(a.uncacheable_blocks, b.uncacheable_blocks);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_completed, b.prefetches_completed);
  EXPECT_EQ(a.prefetches_useful, b.prefetches_useful);
  EXPECT_EQ(a.prefetches_wasted, b.prefetches_wasted);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.disk_bytes_written, b.disk_bytes_written);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.recompute_cpu_ms, b.recompute_cpu_ms);
  EXPECT_EQ(a.per_rdd_probes, b.per_rdd_probes);
  EXPECT_EQ(a.mrd_table_peak_entries, b.mrd_table_peak_entries);
  EXPECT_EQ(a.mrd_update_messages, b.mrd_update_messages);
  ASSERT_EQ(a.stage_timings.size(), b.stage_timings.size());
  for (std::size_t i = 0; i < a.stage_timings.size(); ++i) {
    EXPECT_EQ(a.stage_timings[i].stage, b.stage_timings[i].stage);
    EXPECT_EQ(a.stage_timings[i].job, b.stage_timings[i].job);
    EXPECT_EQ(a.stage_timings[i].duration_ms, b.stage_timings[i].duration_ms);
    EXPECT_EQ(a.stage_timings[i].compute_ms, b.stage_timings[i].compute_ms);
    EXPECT_EQ(a.stage_timings[i].io_ms, b.stage_timings[i].io_ms);
  }
}

std::vector<SweepJob> small_sweep() {
  WorkloadParams params;
  params.scale = 0.25;
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;

  std::vector<SweepJob> jobs;
  for (const char* key : {"tc", "pr"}) {
    const auto run = plan_workload_shared(*find_workload(key), params);
    for (const char* policy : {"lru", "mrd"}) {
      for (double fraction : {0.5, 1.0}) {
        PolicyConfig pc;
        pc.name = policy;
        jobs.push_back(SweepJob{run, cluster, fraction, pc});
      }
    }
  }
  return jobs;
}

TEST(ParallelHarness, ParallelSweepIsByteIdenticalToSerial) {
  const std::vector<SweepJob> jobs = small_sweep();
  const std::vector<RunMetrics> serial = run_sweep_parallel(jobs, 1);
  const std::vector<RunMetrics> parallel = run_sweep_parallel(jobs, 4);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelHarness, ResultsComeBackInInputOrder) {
  const std::vector<SweepJob> jobs = small_sweep();
  const std::vector<RunMetrics> results = run_sweep_parallel(jobs, 4);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].workload, jobs[i].run->name);
    EXPECT_EQ(results[i].policy, jobs[i].policy.name);
  }
}

TEST(ParallelHarness, SweepStatsAccountForEveryRun) {
  const std::vector<SweepJob> jobs = small_sweep();
  SweepStats stats;
  run_sweep_parallel(jobs, 2, &stats);
  EXPECT_EQ(stats.runs, jobs.size());
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.aggregate_ms, 0.0);
  EXPECT_GT(stats.speedup(), 0.0);
}

TEST(ParallelHarness, SubmitBestMatchesSerialBestImprovement) {
  WorkloadParams params;
  params.scale = 0.25;
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;
  const auto run = plan_workload_shared(*find_workload("pr"), params);
  const std::vector<double> fractions = {0.4, 0.6, 0.8};
  PolicyConfig lru, mrd;
  lru.name = "lru";
  mrd.name = "mrd";

  const BestComparison serial =
      best_improvement(*run, cluster, fractions, lru, mrd);

  SweepRunner runner(4);
  BestComparison parallel =
      runner.submit_best(run, cluster, fractions, lru, mrd).get();

  EXPECT_EQ(parallel.fraction, serial.fraction);
  expect_identical(serial.baseline, parallel.baseline);
  expect_identical(serial.candidate, parallel.candidate);
}

TEST(ParallelHarness, SerialWrappersAcceptASharedRunner) {
  WorkloadParams params;
  params.scale = 0.25;
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;
  const WorkloadRun run = plan_workload(*find_workload("tc"), params);
  PolicyConfig pc;
  pc.name = "lru";

  const auto plain = sweep_cache(run, cluster, {0.5, 1.0}, pc);
  SweepRunner runner(2);
  const auto pooled = sweep_cache(run, cluster, {0.5, 1.0}, pc,
                                  DagVisibility::kRecurring, &runner);
  ASSERT_EQ(pooled.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(pooled[i].fraction, plain[i].fraction);
    expect_identical(plain[i].metrics, pooled[i].metrics);
  }
  EXPECT_EQ(runner.stats().runs, 2u);
}

}  // namespace
}  // namespace mrd
