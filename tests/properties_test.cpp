// Property-style invariants swept over (workload × policy) combinations with
// parameterized gtest: every simulated run, whatever the policy, must keep
// its books consistent.
#include <gtest/gtest.h>

#include <tuple>

#include "dag/dag_analysis.h"
#include "harness/experiment.h"

namespace mrd {
namespace {

// Keep the sweep quick: a representative sample of workloads (small/medium)
// crossed with every policy.
const char* kWorkloads[] = {"pr", "cc", "km", "tc", "sp", "mf"};
const char* kPolicies[] = {"lru",    "fifo", "lrc",       "memtune",
                           "belady", "mrd",  "mrd-evict", "mrd-prefetch",
                           "mrd-job"};

class PolicyWorkloadProperty
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
 protected:
  RunMetrics run(double fraction = 0.5) {
    const auto [workload, policy] = GetParam();
    const WorkloadSpec* spec = find_workload(workload);
    EXPECT_NE(spec, nullptr);
    WorkloadParams params;
    params.scale = 0.25;  // keep the property sweep fast
    const WorkloadRun wr = plan_workload(*spec, params);
    ClusterConfig cluster = main_cluster();
    cluster.num_nodes = 5;
    PolicyConfig pc;
    pc.name = policy;
    return run_with_policy(wr, cluster, fraction, pc);
  }
};

TEST_P(PolicyWorkloadProperty, AccountingInvariantsHold) {
  const RunMetrics m = run();
  // Probe outcomes partition the probe count.
  EXPECT_EQ(m.hits + m.misses_from_disk + m.misses_recompute, m.probes);
  EXPECT_LE(m.hits, m.probes);
  EXPECT_GE(m.jct_ms, 0.0);
  // Every eviction evicted something that was cached.
  EXPECT_LE(m.evictions + m.purged_blocks, m.blocks_cached);
  // Spills never exceed evictions.
  EXPECT_LE(m.spills, m.evictions);
  // Prefetch pipeline is monotone.
  EXPECT_LE(m.prefetches_completed, m.prefetches_issued);
  EXPECT_LE(m.prefetches_useful + m.prefetches_wasted,
            m.prefetches_completed);
  // Non-prefetching policies never prefetch.
  const auto [workload, policy] = GetParam();
  (void)workload;
  const std::string p = policy;
  if (p == "lru" || p == "fifo" || p == "lrc" || p == "belady" ||
      p == "mrd-evict") {
    EXPECT_EQ(m.prefetches_completed, 0u);
  }
}

TEST_P(PolicyWorkloadProperty, DeterministicReplay) {
  const RunMetrics a = run();
  const RunMetrics b = run();
  EXPECT_DOUBLE_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses_from_disk, b.misses_from_disk);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
}

TEST_P(PolicyWorkloadProperty, MoreCacheNeverIncreasesColdWork) {
  const RunMetrics tight = run(0.4);
  const RunMetrics ample = run(2.0);
  // With cache far beyond the working set, misses (beyond compulsory cold
  // ones) vanish for every policy.
  EXPECT_GE(ample.hit_ratio() + 1e-9, tight.hit_ratio());
  EXPECT_LE(ample.misses_recompute, tight.misses_recompute);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
        info) {
  std::string s = std::string(std::get<0>(info.param)) + "_" +
                  std::get<1>(info.param);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyWorkloadProperty,
                         ::testing::Combine(::testing::ValuesIn(kWorkloads),
                                            ::testing::ValuesIn(kPolicies)),
                         param_name);

// ---- Cross-policy dominance properties on one workload ----

class DominanceProperty : public ::testing::TestWithParam<const char*> {
 protected:
  RunMetrics run(const char* policy, double fraction) {
    const WorkloadSpec* spec = find_workload(GetParam());
    WorkloadParams params;
    params.scale = 0.25;
    const WorkloadRun wr = plan_workload(*spec, params);
    ClusterConfig cluster = main_cluster();
    cluster.num_nodes = 5;
    PolicyConfig pc;
    pc.name = policy;
    return run_with_policy(wr, cluster, fraction, pc);
  }
};

TEST_P(DominanceProperty, MrdJctNeverFarWorseThanLru) {
  // MRD may lose marginally on adversarial fractions but must never blow up.
  for (double fraction : {0.4, 0.7, 1.0}) {
    const double lru = run("lru", fraction).jct_ms;
    const double mrd = run("mrd", fraction).jct_ms;
    EXPECT_LE(mrd, lru * 1.10) << "fraction " << fraction;
  }
}

TEST_P(DominanceProperty, FullMrdAtLeastMatchesEvictionOnly) {
  for (double fraction : {0.5, 0.75}) {
    const double evict_only = run("mrd-evict", fraction).jct_ms;
    const double full = run("mrd", fraction).jct_ms;
    EXPECT_LE(full, evict_only * 1.05) << "fraction " << fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DominanceProperty,
                         ::testing::Values("pr", "cc", "km"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace mrd
