// Event-scheduler unit surface: instruction-graph shape, dependency
// accounting, determinism across worker counts, and cross-stage overlap
// legality — the structural claims DESIGN.md's "Event-driven execution"
// section makes, checked against real workload plans.
//
// Byte-identity of the *metrics* across engines is fuzzed separately in
// fuzz_identity_test.cpp; here we pin down the graph itself.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/node_partition.h"
#include "harness/experiment.h"
#include "workloads/workloads.h"

namespace mrd {
namespace {

struct Scenario {
  const char* workload;
  const char* policy;
};

WorkloadRun planned(const char* key, double scale = 0.5) {
  const WorkloadSpec* spec = find_workload(key);
  EXPECT_NE(spec, nullptr) << key;
  WorkloadParams params;
  params.scale = scale;
  return plan_workload(*spec, params);
}

RunMetrics run_mode(const WorkloadRun& run, const char* policy,
                    std::size_t node_jobs, ExecMode mode,
                    NodeParallelStats* stats = nullptr) {
  PolicyConfig config;
  config.name = policy;
  return run_with_policy(run, main_cluster(), 0.5, config,
                         DagVisibility::kRecurring, node_jobs, stats, mode);
}

void expect_same_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses_from_disk, b.misses_from_disk);
  EXPECT_EQ(a.misses_recompute, b.misses_recompute);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.disk_bytes_written, b.disk_bytes_written);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.recompute_cpu_ms, b.recompute_cpu_ms);
  EXPECT_EQ(a.per_rdd_probes, b.per_rdd_probes);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_useful, b.prefetches_useful);
  EXPECT_EQ(a.mrd_update_messages, b.mrd_update_messages);
}

// ---------------------------------------------------------------------------
// Dependency counting
// ---------------------------------------------------------------------------

// Every instruction's dependency count must reach exactly zero once — a
// leaked count deadlocks the engine (the run would MRD_CHECK-abort on a
// nonzero remaining count), an overcount would fire an instruction early
// and diverge from the serial oracle. Running to completion with identical
// metrics across four policies exercises both failure modes, including the
// broadcast gating edges that only MRD emits.
TEST(NodeScheduler, DependencyCountsDrainToZeroForEveryPolicy) {
  const WorkloadRun run = planned("lp");
  for (const char* policy : {"lru", "fifo", "lrc", "mrd"}) {
    SCOPED_TRACE(policy);
    const RunMetrics oracle = run_mode(run, policy, 1, ExecMode::kAuto);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      expect_same_metrics(oracle,
                          run_mode(run, policy, workers, ExecMode::kEvent));
    }
  }
}

// A single-node cluster degenerates the graph to a pure chain; the engine
// must still drain it (and kAuto must not even pick the event engine there).
TEST(NodeScheduler, SingleNodeClusterRunsToCompletion) {
  const WorkloadRun run = planned("km", 0.25);
  PolicyConfig policy;
  policy.name = "mrd";
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 1;
  const RunMetrics oracle =
      run_with_policy(run, cluster, 0.5, policy, DagVisibility::kRecurring,
                      1, nullptr, ExecMode::kAuto);
  const RunMetrics event =
      run_with_policy(run, cluster, 0.5, policy, DagVisibility::kRecurring,
                      4, nullptr, ExecMode::kEvent);
  EXPECT_EQ(oracle.jct_ms, event.jct_ms);
  EXPECT_EQ(oracle.probes, event.probes);
  EXPECT_EQ(oracle.hits, event.hits);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

// The instruction graph is compiled from the plan alone, so its shape —
// size, critical path, deepest per-node queue, probe accounting — must be
// bit-identical across repeated runs and across worker counts. (Worker
// count changes which thread executes an instruction, never which
// instructions exist or in what dependency order.)
TEST(NodeScheduler, GraphShapeIsDeterministicAcrossRunsAndWorkerCounts) {
  const WorkloadRun run = planned("scc");
  for (const char* policy : {"lru", "mrd"}) {
    SCOPED_TRACE(policy);
    NodeParallelStats first;
    run_mode(run, policy, 4, ExecMode::kEvent, &first);
    EXPECT_GT(first.instructions, 0u);
    EXPECT_GE(first.critical_path, 1u);
    EXPECT_LE(first.critical_path, first.instructions);
    EXPECT_GE(first.max_queue_depth, 1u);
    EXPECT_LE(first.probes_parallel, first.probes_total);
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      NodeParallelStats again;
      run_mode(run, policy, workers, ExecMode::kEvent, &again);
      EXPECT_EQ(first.instructions, again.instructions);
      EXPECT_EQ(first.critical_path, again.critical_path);
      EXPECT_EQ(first.max_queue_depth, again.max_queue_depth);
      EXPECT_EQ(first.probes_total, again.probes_total);
      EXPECT_EQ(first.probe_regions, again.probe_regions);
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-stage overlap legality
// ---------------------------------------------------------------------------

// The point of retiring the barriers: for ungated policies the critical
// path must be far shorter than the instruction count (structural overlap),
// and gating (MRD's broadcast points) may only *lengthen* the critical
// path, never shorten it — gates add edges and instructions, nothing else.
TEST(NodeScheduler, UngatedPoliciesOverlapAndGatingOnlyRestricts) {
  for (const char* key : {"scc", "lp"}) {
    SCOPED_TRACE(key);
    const WorkloadRun run = planned(key);
    NodeParallelStats lru, mrd;
    const RunMetrics lru_metrics = run_mode(run, "lru", 4, ExecMode::kEvent, &lru);
    run_mode(run, "mrd", 4, ExecMode::kEvent, &mrd);
    // Ungated: with ~20 nodes of per-node work per stage, overlap should be
    // at least an order of magnitude.
    EXPECT_GE(lru.overlap(), 4.0);
    // Gated runs add broadcast instructions and gate edges; both totals can
    // only grow.
    EXPECT_GT(mrd.instructions, lru.instructions);
    EXPECT_GT(mrd.critical_path, lru.critical_path);
    // But gating must not serialize everything: MRD still overlaps within
    // epochs.
    EXPECT_GE(mrd.overlap(), 2.0);
    // The overlap is real, not an accounting artifact: the overlapped run
    // still reproduced the serial metrics.
    expect_same_metrics(run_mode(run, "lru", 1, ExecMode::kAuto),
                        lru_metrics);
  }
}

// Probe-weighted parallelism accounting (the "parallel probes %" in the
// [sweep] line): weights are partition counts, so the parallel share can
// never exceed 1 and regions with more partitions move it more.
TEST(NodeScheduler, ProbeAccountingIsWeightedByProbes) {
  const WorkloadRun run = planned("scc");
  NodeParallelStats stats;
  run_mode(run, "lru", 4, ExecMode::kEvent, &stats);
  EXPECT_GT(stats.probes_total, 0u);
  EXPECT_GT(stats.probes_parallel, 0u);
  const double share = stats.parallel_probe_share();
  EXPECT_GT(share, 0.0);
  EXPECT_LE(share, 1.0);
  // Weighted by probes, not regions: the share must differ from the naive
  // region fraction whenever region sizes are skewed — at minimum it must
  // be a valid weighting (parallel probes ≤ total).
  EXPECT_LE(stats.probes_parallel, stats.probes_total);
}

}  // namespace
}  // namespace mrd
