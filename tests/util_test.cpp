#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

namespace mrd {
namespace {

// ---- check.h ----

TEST(Check, PassingCheckDoesNothing) { MRD_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(MRD_CHECK(false), CheckFailure);
}

TEST(Check, MessageIsIncluded) {
  try {
    MRD_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ---- format.h ----

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KB");
  EXPECT_EQ(human_bytes(5ull << 20), "5.0 MB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.0 GB");
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(format_double(5.346, 2), "5.35");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(format_percent(0.534), "53.4%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");  // no truncation
}

// ---- math.h ----

TEST(Math, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({2, 2, 2}), 0.0);
  EXPECT_NEAR(stddev({1, 3}), 1.0, 1e-12);
}

TEST(Math, MinMax) {
  EXPECT_DOUBLE_EQ(max_value({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(min_value({3, 1, 2}), 1.0);
  EXPECT_THROW(max_value({}), CheckFailure);
}

TEST(Math, PerfectLinearFit) {
  const LinearFit fit = linear_regression({1, 2, 3}, {2, 4, 6});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Math, NoisyFitHasPartialR2) {
  const LinearFit fit = linear_regression({1, 2, 3, 4}, {1, 3, 2, 4});
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_GT(fit.r_squared, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(Math, DegenerateFits) {
  EXPECT_EQ(linear_regression({}, {}).n, 0u);
  EXPECT_EQ(linear_regression({1}, {5}).slope, 0.0);
  // All x equal: slope undefined, returned as 0.
  EXPECT_EQ(linear_regression({2, 2, 2}, {1, 2, 3}).slope, 0.0);
}

TEST(Math, MismatchedSizesThrow) {
  EXPECT_THROW(linear_regression({1, 2}, {1}), CheckFailure);
}

// ---- random.h ----

TEST(Random, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Random, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, UniformCoversRange) {
  Rng rng(9);
  bool low = false, high = false;
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(0.0, 10.0);
    if (d < 2.0) low = true;
    if (d > 8.0) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

// ---- csv.h ----

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/mrd_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

TEST(Csv, UnopenableFileThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"), CheckFailure);
}

// ---- table.h ----

TEST(Table, RendersAlignedColumns) {
  AsciiTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "23"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |    23 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckFailure);
}

TEST(Table, SeparatorRendersRule) {
  AsciiTable table({"h"});
  table.add_row({"x"});
  table.add_separator();
  table.add_row({"y"});
  std::ostringstream os;
  table.print(os);
  // 5 rules: top, under header, separator, bottom... count '+---' lines.
  std::size_t rules = 0;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace mrd
