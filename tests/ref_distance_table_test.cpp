#include <gtest/gtest.h>

#include <cmath>

#include "core/ref_distance_table.h"

namespace mrd {
namespace {

constexpr auto kStage = DistanceMetric::kStage;
constexpr auto kJob = DistanceMetric::kJob;

TEST(RefDistanceTable, UnknownRddIsInfiniteAndInactive) {
  RefDistanceTable table;
  EXPECT_TRUE(std::isinf(table.distance(7, 0, 0, kStage)));
  // Never tracked reads the same as fully consumed: distance() already calls
  // it infinite, so is_inactive must agree (it used to answer false).
  EXPECT_TRUE(table.is_inactive(7));
  // The enumerated purge set still only names *announced* RDDs.
  EXPECT_TRUE(table.inactive_rdds().empty());
}

TEST(RefDistanceTable, DistanceIsGapToNearestReference) {
  RefDistanceTable table;
  table.add_reference(1, /*stage=*/10, /*job=*/3);
  table.add_reference(1, /*stage=*/4, /*job=*/1);
  EXPECT_DOUBLE_EQ(table.distance(1, 2, 0, kStage), 2.0);  // nearest = 4
  EXPECT_DOUBLE_EQ(table.distance(1, 2, 0, kJob), 1.0);
  EXPECT_EQ(table.next_reference_stage(1), 4u);
  EXPECT_EQ(table.next_reference_job(1), 1u);
}

TEST(RefDistanceTable, ReferencesKeptSortedRegardlessOfInsertOrder) {
  RefDistanceTable table;
  table.add_reference(1, 9, 2);
  table.add_reference(1, 3, 1);
  table.add_reference(1, 6, 1);
  EXPECT_EQ(table.next_reference_stage(1), 3u);
  table.consume_up_to(3);
  EXPECT_EQ(table.next_reference_stage(1), 6u);
  table.consume_up_to(6);
  EXPECT_EQ(table.next_reference_stage(1), 9u);
}

TEST(RefDistanceTable, DuplicateReferencesCollapse) {
  RefDistanceTable table;
  table.add_reference(1, 5, 1);
  table.add_reference(1, 5, 1);
  EXPECT_EQ(table.num_entries(), 1u);
}

TEST(RefDistanceTable, ConsumeMakesInactive) {
  RefDistanceTable table;
  table.add_reference(1, 2, 0);
  EXPECT_FALSE(table.is_inactive(1));
  table.consume_up_to(2);
  EXPECT_TRUE(table.is_inactive(1));
  EXPECT_TRUE(std::isinf(table.distance(1, 3, 0, kStage)));
  EXPECT_EQ(table.inactive_rdds(), std::vector<RddId>{1});
}

TEST(RefDistanceTable, ConsumeRddUpToTouchesOnlyThatRdd) {
  RefDistanceTable table;
  table.add_reference(1, 2, 0);
  table.add_reference(2, 2, 0);
  table.consume_rdd_up_to(1, 2);
  EXPECT_TRUE(table.is_inactive(1));
  EXPECT_FALSE(table.is_inactive(2));
}

TEST(RefDistanceTable, StaleReferenceIsSkippedNotClampedToZero) {
  RefDistanceTable table;
  table.add_reference(1, 2, 1);
  // Current position already past the reference and no future references: the
  // stale entry must not make the block look maximally hot. The block is dead
  // under the stage metric — its distance is infinite.
  EXPECT_TRUE(std::isinf(table.distance(1, 5, 2, kStage)));
  // With a later reference present, distance is measured to that one.
  table.add_reference(1, 8, 3);
  EXPECT_DOUBLE_EQ(table.distance(1, 5, 2, kStage), 3.0);
  // A reference at exactly the current stage is "now", distance 0.
  table.add_reference(1, 5, 2);
  EXPECT_DOUBLE_EQ(table.distance(1, 5, 2, kStage), 0.0);
}

TEST(RefDistanceTable, JobMetricClampsSameJobPastStageToZero) {
  RefDistanceTable table;
  // Reference in an earlier stage of the *current or later* job: under the
  // job metric the job gap clamps at zero (still "this job").
  table.add_reference(1, 7, 2);
  EXPECT_DOUBLE_EQ(table.distance(1, 7, 2, kJob), 0.0);
  // But a reference from an earlier *stage* than the current one is stale
  // under both metrics.
  RefDistanceTable stale;
  stale.add_reference(1, 3, 2);
  EXPECT_TRUE(std::isinf(stale.distance(1, 7, 2, kJob)));
}

TEST(RefDistanceTable, ConsumeStaleBeforeDropsPastStageRefs) {
  RefDistanceTable table;
  table.add_reference(1, 2, 0);
  table.add_reference(1, 6, 1);
  table.add_reference(2, 3, 0);
  table.consume_stale_before(/*stage=*/4);
  // rdd 1 keeps its future reference; rdd 2's only reference was stale, so
  // it is retired to the inactive set.
  EXPECT_EQ(table.next_reference_stage(1), 6u);
  EXPECT_TRUE(table.is_inactive(2));
  EXPECT_EQ(table.num_entries(), 1u);
}

TEST(RefDistanceTable, AscendingDistanceExcludesStaleOnlyRdds) {
  RefDistanceTable table;
  table.add_reference(1, 1, 0);  // stale at stage 4, never consumed
  table.add_reference(2, 5, 0);
  const auto order = table.by_ascending_distance(4, 0, kStage);
  // rdd 1's stale reference must not rank it as distance-0 hottest.
  EXPECT_EQ(order, std::vector<RddId>{2});
}

TEST(RefDistanceTable, AscendingDistanceOrder) {
  RefDistanceTable table;
  table.add_reference(1, 10, 0);
  table.add_reference(2, 3, 0);
  table.add_reference(3, 6, 0);
  const auto order = table.by_ascending_distance(0, 0, kStage);
  EXPECT_EQ(order, (std::vector<RddId>{2, 3, 1}));
}

TEST(RefDistanceTable, AscendingDistanceExcludesInactive) {
  RefDistanceTable table;
  table.add_reference(1, 1, 0);
  table.add_reference(2, 5, 0);
  table.consume_up_to(1);  // rdd 1 inactive
  const auto order = table.by_ascending_distance(2, 0, kStage);
  EXPECT_EQ(order, std::vector<RddId>{2});
}

TEST(RefDistanceTable, JobMetricIgnoresStageGranularity) {
  RefDistanceTable table;
  // Two RDDs in the same job but different stages: indistinguishable under
  // the job metric (the Fig 8 motivation).
  table.add_reference(1, 5, 2);
  table.add_reference(2, 9, 2);
  EXPECT_NE(table.distance(1, 0, 0, kStage), table.distance(2, 0, 0, kStage));
  EXPECT_EQ(table.distance(1, 0, 0, kJob), table.distance(2, 0, 0, kJob));
}

TEST(RefDistanceTable, EntryCountingAndClear) {
  RefDistanceTable table;
  table.add_reference(1, 1, 0);
  table.add_reference(1, 2, 0);
  table.add_reference(2, 3, 0);
  EXPECT_EQ(table.num_entries(), 3u);
  EXPECT_EQ(table.num_rdds(), 2u);
  table.clear();
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.num_rdds(), 0u);
}

}  // namespace
}  // namespace mrd
