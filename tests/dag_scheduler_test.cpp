#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "api/spark_context.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

ExecutionPlan plan_of(SparkContext&& sc) {
  return DagScheduler::plan(std::move(sc).build_shared());
}

/// One job: source -> map -> count. Single stage, no shuffles.
TEST(DagScheduler, NarrowPipelineIsOneStage) {
  SparkContext sc("app");
  sc.text_file("in", 4, 100).map("m").count();
  const ExecutionPlan plan = plan_of(std::move(sc));

  ASSERT_EQ(plan.jobs().size(), 1u);
  EXPECT_EQ(plan.total_stages(), 1u);
  const JobInfo& job = plan.job(0);
  ASSERT_EQ(job.stages.size(), 1u);
  EXPECT_TRUE(job.stages[0].executed);
  EXPECT_EQ(job.stages[0].computes.size(), 2u);  // source + map
  EXPECT_TRUE(job.stages[0].probes.empty());
  EXPECT_EQ(plan.stage(job.result_stage).num_tasks, 4u);
}

/// Wide transformation splits into map stage + result stage.
TEST(DagScheduler, WideDependencySplitsStages) {
  SparkContext sc("app");
  sc.text_file("in", 4, 100).map("m").reduce_by_key("r").count();
  const ExecutionPlan plan = plan_of(std::move(sc));

  EXPECT_EQ(plan.total_stages(), 2u);
  EXPECT_EQ(plan.shuffles().size(), 1u);
  const StageInfo& map_stage = plan.stage(0);
  const StageInfo& result = plan.stage(1);
  EXPECT_FALSE(map_stage.is_result);
  EXPECT_TRUE(map_stage.shuffle_write.has_value());
  EXPECT_TRUE(result.is_result);
  EXPECT_EQ(result.parents, std::vector<StageId>{0});
  EXPECT_EQ(result.shuffle_reads.size(), 1u);
}

/// Stage IDs are globally sequential with parents before children.
TEST(DagScheduler, ParentStagesHaveLowerIds) {
  SparkContext sc("app");
  auto a = sc.text_file("a", 4, 100).reduce_by_key("ra");
  auto b = sc.text_file("b", 4, 100).reduce_by_key("rb");
  a.join(b, "j").count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  for (const StageInfo& stage : plan.stages()) {
    for (StageId p : stage.parents) EXPECT_LT(p, stage.id);
  }
}

/// A join has two shuffles and two parent map stages.
TEST(DagScheduler, JoinHasTwoShuffles) {
  SparkContext sc("app");
  auto a = sc.text_file("a", 4, 100);
  auto b = sc.text_file("b", 4, 100);
  a.join(b, "j").count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(plan.shuffles().size(), 2u);
  const StageInfo& result = plan.stage(plan.job(0).result_stage);
  EXPECT_EQ(result.parents.size(), 2u);
}

/// Shuffle-map stages are reused across jobs; the second job lists the map
/// stage but skips it (its shuffle output already exists).
TEST(DagScheduler, ShuffleStageSkippedInSecondJob) {
  SparkContext sc("app");
  auto agg = sc.text_file("in", 4, 100).reduce_by_key("agg");
  agg.count("job0");
  agg.map("m").count("job1");
  const ExecutionPlan plan = plan_of(std::move(sc));

  ASSERT_EQ(plan.jobs().size(), 2u);
  // Unique map stage created once.
  std::size_t map_stages = 0;
  for (const StageInfo& s : plan.stages()) {
    if (s.shuffle_write) ++map_stages;
  }
  EXPECT_EQ(map_stages, 1u);

  const JobInfo& job1 = plan.job(1);
  bool found_skipped = false;
  for (const StageExecution& rec : job1.stages) {
    if (!rec.executed) found_skipped = true;
  }
  EXPECT_TRUE(found_skipped);
  EXPECT_GT(plan.stage_appearances(), plan.total_stages() - 1);
}

/// A cached RDD cuts the second job's pipeline: the later job probes it
/// instead of recomputing, and ancestor stages are skipped.
TEST(DagScheduler, CachedRddCutsLineage) {
  SparkContext sc("app");
  auto cached = sc.text_file("in", 4, 100).reduce_by_key("agg").cache();
  cached.count("job0");
  cached.map("m").count("job1");
  const ExecutionPlan plan = plan_of(std::move(sc));

  const JobInfo& job1 = plan.job(1);
  const StageExecution* result = nullptr;
  for (const StageExecution& rec : job1.stages) {
    if (rec.executed && rec.stage == job1.result_stage) result = &rec;
  }
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->probes.size(), 1u);
  EXPECT_EQ(result->probes[0], cached.id());
  // The map RDD is computed, the cached parent is not.
  EXPECT_EQ(std::count(result->computes.begin(), result->computes.end(),
                       cached.id()),
            0);
}

/// Re-running an action on a cached RDD executes only the (cheap) result
/// stage; parents are listed but skipped.
TEST(DagScheduler, ResultStageOnCachedRddProbesTerminal) {
  SparkContext sc("app");
  auto cached = sc.text_file("in", 4, 100).map("m").cache();
  cached.count("job0");
  cached.count("job1");
  const ExecutionPlan plan = plan_of(std::move(sc));

  const JobInfo& job1 = plan.job(1);
  const StageExecution* result = nullptr;
  for (const StageExecution& rec : job1.stages) {
    if (rec.stage == job1.result_stage) result = &rec;
  }
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->executed);
  EXPECT_TRUE(result->computes.empty());
  EXPECT_EQ(result->probes, std::vector<RddId>{cached.id()});
}

/// Diamond narrow dependencies are deduplicated within a pipeline.
TEST(DagScheduler, DiamondPipelineDeduplicates) {
  SparkContext sc("app");
  auto base = sc.text_file("in", 4, 100);
  auto l = base.map("l");
  auto r = base.filter("r");
  l.zip_partitions(r, "z").count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(plan.total_stages(), 1u);
  const StageExecution& rec = plan.job(0).stages[0];
  // base appears exactly once in computes.
  EXPECT_EQ(std::count(rec.computes.begin(), rec.computes.end(), base.id()),
            1);
}

/// Sibling stages sharing a cached RDD: the map stage computes (and caches)
/// it first, the result stage then probes it.
TEST(DagScheduler, SiblingStagesShareCachedRdd) {
  SparkContext sc("app");
  auto shared = sc.text_file("in", 4, 100).map("shared").cache();
  auto agg = shared.reduce_by_key("agg");
  agg.zip_partitions(shared, "z").count();
  const ExecutionPlan plan = plan_of(std::move(sc));

  const JobInfo& job = plan.job(0);
  ASSERT_EQ(job.stages.size(), 2u);
  const StageExecution& map_rec = job.stages[0];
  const StageExecution& result_rec = job.stages[1];
  EXPECT_TRUE(std::count(map_rec.computes.begin(), map_rec.computes.end(),
                         shared.id()) == 1);
  EXPECT_EQ(result_rec.probes, std::vector<RddId>{shared.id()});
}

/// Shuffle volume: combining shuffles are output-sized, repartitioning
/// shuffles parent-sized.
TEST(DagScheduler, ShuffleBytesDependOnCombining) {
  SparkContext sc("app");
  auto big = sc.text_file("in", 4, 1000);
  TransformOpts small;
  small.bytes_per_partition = 10;
  auto agg = big.reduce_by_key("agg", small);
  agg.count();
  auto grouped = big.group_by_key("g");
  grouped.count();
  const ExecutionPlan plan = plan_of(std::move(sc));

  ASSERT_EQ(plan.shuffles().size(), 2u);
  const ShuffleInfo& combine = plan.shuffle(0);
  const ShuffleInfo& repartition = plan.shuffle(1);
  EXPECT_EQ(combine.bytes, 40u);         // child-sized (4 partitions × 10)
  EXPECT_EQ(repartition.bytes, 4000u);   // parent-sized
}

/// Source reads are recorded for every stage that computes a source.
TEST(DagScheduler, SourceReadsRecorded) {
  SparkContext sc("app");
  sc.text_file("in", 4, 100).map("m").count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(plan.job(0).stages[0].source_reads.size(), 1u);
}

/// Skipped appearances carry no computes/probes.
TEST(DagScheduler, SkippedAppearancesAreEmpty) {
  SparkContext sc("app");
  auto agg = sc.text_file("in", 4, 100).reduce_by_key("agg");
  agg.count("job0");
  agg.count("job1");
  const ExecutionPlan plan = plan_of(std::move(sc));
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) {
        EXPECT_TRUE(rec.computes.empty());
        EXPECT_TRUE(rec.probes.empty());
      }
    }
  }
}

/// active_stages counts unique executed stages; stage_appearances counts
/// per-job listings.
TEST(DagScheduler, StageCountingSemantics) {
  SparkContext sc("app");
  auto agg = sc.text_file("in", 4, 100).reduce_by_key("agg").cache();
  agg.count("job0");
  agg.count("job1");
  agg.count("job2");
  const ExecutionPlan plan = plan_of(std::move(sc));
  // Unique: 1 map stage + 3 result stages = 4.
  EXPECT_EQ(plan.total_stages(), 4u);
  EXPECT_EQ(plan.active_stages(), 4u);
  // Appearances: job0 lists 2; jobs 1-2 list result + skipped map = 2 each.
  EXPECT_EQ(plan.stage_appearances(), 6u);
}

/// Iterative program with caching: lineage (and appearances) grow per job,
/// executed stages stay bounded.
TEST(DagScheduler, IterativeLineageGrowth) {
  SparkContext sc("app");
  auto links = sc.text_file("in", 4, 100).map("links").cache();
  Dataset ranks = links.map_values("init");
  for (int i = 0; i < 5; ++i) {
    ranks = links.join(ranks, "c" + std::to_string(i))
                .reduce_by_key("r" + std::to_string(i))
                .cache();
    ranks.count("iter" + std::to_string(i));
  }
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(plan.jobs().size(), 5u);
  // Later jobs list more stages than early ones (growing lineage).
  EXPECT_GT(plan.job(4).stages.size(), plan.job(0).stages.size());
  // But executed stages per job stay bounded thanks to caching.
  std::size_t executed_last = 0;
  for (const StageExecution& rec : plan.job(4).stages) {
    if (rec.executed) ++executed_last;
  }
  EXPECT_LE(executed_last, 4u);
}

/// Every executed appearance's computes are topologically ordered with the
/// terminal last.
TEST(DagScheduler, ComputesAreTopoOrderedTerminalLast) {
  SparkContext sc("app");
  auto d = sc.text_file("in", 4, 100).map("a").filter("b").map("c");
  d.count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  const StageExecution& rec = plan.job(0).stages[0];
  ASSERT_FALSE(rec.computes.empty());
  EXPECT_EQ(rec.computes.back(), d.id());
  EXPECT_TRUE(std::is_sorted(rec.computes.begin(), rec.computes.end()));
}

TEST(DagScheduler, NullApplicationThrows) {
  EXPECT_ANY_THROW(DagScheduler::plan(nullptr));
}

}  // namespace
}  // namespace mrd
