#include <gtest/gtest.h>

#include "api/spark_context.h"
#include "cache/lrc.h"
#include "cache/memtune.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

/// Drains a policy's budgeted candidate stream, answering kIssued to every
/// offer (the candidates-only view the old vector-returning API gave).
std::vector<BlockId> collect_prefetch(CachePolicy& policy,
                                      std::size_t slots = 64) {
  PrefetchBudget budget;
  budget.free_bytes = 100;
  budget.capacity = 1000;
  budget.queue_slots = slots;
  std::vector<BlockId> out;
  policy.prefetch_candidates(budget, [&](const BlockId& b) {
    out.push_back(b);
    return PrefetchOffer::kIssued;
  });
  return out;
}

/// cached `data` referenced by jobs 1..3; cached `once` referenced by job 1
/// only. Returns ids via out-params.
ExecutionPlan counting_plan(RddId* data_out, RddId* once_out) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 100).map("data").cache();
  auto once = data.map("once").cache();
  once.zip_partitions(data, "z0").count("job0");  // creates both
  data.map("m1").count("job1");
  data.map("m2").count("job2");
  data.map("m3").count("job3");
  *data_out = data.id();
  *once_out = once.id();
  return DagScheduler::plan(std::move(sc).build_shared());
}

TEST(Lrc, CountsAccumulatePerJob) {
  RddId data, once;
  const ExecutionPlan plan = counting_plan(&data, &once);
  LrcPolicy lrc;
  lrc.on_job_start(plan, 0);
  // job0 computes both RDDs in one pipeline: no cache reads yet.
  EXPECT_EQ(lrc.remaining_references(data), 0u);
  EXPECT_EQ(lrc.remaining_references(once), 0u);

  for (JobId j = 1; j <= 3; ++j) lrc.on_job_start(plan, j);
  EXPECT_EQ(lrc.remaining_references(data), 3u);
  EXPECT_EQ(lrc.remaining_references(once), 0u);
}

TEST(Lrc, StageEndConsumesReferences) {
  RddId data, once;
  const ExecutionPlan plan = counting_plan(&data, &once);
  LrcPolicy lrc;
  for (JobId j = 0; j < plan.jobs().size(); ++j) lrc.on_job_start(plan, j);
  const auto total = lrc.remaining_references(data);

  // Finish job1's result stage (which probes data).
  const JobInfo& job1 = plan.job(1);
  lrc.on_stage_end(plan, 1, job1.result_stage);
  EXPECT_EQ(lrc.remaining_references(data), total - 1);
}

TEST(Lrc, EvictsLowestCount) {
  RddId data, once;
  const ExecutionPlan plan = counting_plan(&data, &once);
  LrcPolicy lrc;
  for (JobId j = 0; j < plan.jobs().size(); ++j) lrc.on_job_start(plan, j);

  lrc.on_block_cached(block(data, 0), 10);
  lrc.on_block_cached(block(once, 0), 10);
  // `once` has zero remaining references -> evicted first.
  EXPECT_EQ(lrc.choose_victim(), block(once, 0));
}

TEST(Lrc, TieBreaksTowardLru) {
  RddId data, once;
  const ExecutionPlan plan = counting_plan(&data, &once);
  LrcPolicy lrc;
  lrc.on_job_start(plan, 1);  // both partitions of `data` share one count
  lrc.on_block_cached(block(data, 0), 10);
  lrc.on_block_cached(block(data, 1), 10);
  lrc.on_block_accessed(block(data, 0));
  EXPECT_EQ(lrc.choose_victim(), block(data, 1));
}

TEST(Lrc, UnknownRddHasZeroCount) {
  LrcPolicy lrc;
  EXPECT_EQ(lrc.remaining_references(42), 0u);
}

TEST(Lrc, EmptyResidentSetHasNoVictim) {
  LrcPolicy lrc;
  EXPECT_EQ(lrc.choose_victim(), std::nullopt);
}

// ---- MemTune ----

/// Plan where a stage probes `hot` while `cold` is only needed much later.
ExecutionPlan window_plan(RddId* hot_out, RddId* cold_out) {
  SparkContext sc("app");
  auto hot = sc.text_file("a", 4, 100).map("hot").cache();
  auto cold = sc.text_file("b", 4, 100).map("cold").cache();
  hot.zip_partitions(cold, "warm").count("job0");  // creates both
  hot.map("m1").count("job1");
  hot.map("m2").count("job2");
  cold.map("m3").count("job3");
  *hot_out = hot.id();
  *cold_out = cold.id();
  return DagScheduler::plan(std::move(sc).build_shared());
}

TEST(MemTune, NeededSetTracksCurrentStage) {
  RddId hot, cold;
  const ExecutionPlan plan = window_plan(&hot, &cold);
  MemTunePolicy mt(/*node=*/0, /*num_nodes=*/1);
  mt.on_job_start(plan, 1);
  mt.on_stage_start(plan, 1, plan.job(1).result_stage);
  EXPECT_TRUE(mt.is_needed(hot));
  EXPECT_FALSE(mt.is_needed(cold));
}

TEST(MemTune, EvictsOutsideNeededListFirst) {
  RddId hot, cold;
  const ExecutionPlan plan = window_plan(&hot, &cold);
  MemTunePolicy mt(0, 1);
  mt.on_job_start(plan, 1);
  mt.on_stage_start(plan, 1, plan.job(1).result_stage);

  mt.on_block_cached(block(cold, 0), 10);
  mt.on_block_cached(block(hot, 0), 10);
  EXPECT_EQ(mt.choose_victim(), block(cold, 0));
}

TEST(MemTune, FallsBackToLruWhenAllNeeded) {
  RddId hot, cold;
  const ExecutionPlan plan = window_plan(&hot, &cold);
  MemTunePolicy mt(0, 1);
  mt.on_job_start(plan, 1);
  mt.on_stage_start(plan, 1, plan.job(1).result_stage);
  mt.on_block_cached(block(hot, 0), 10);
  mt.on_block_cached(block(hot, 1), 10);
  mt.on_block_accessed(block(hot, 0));
  EXPECT_EQ(mt.choose_victim(), block(hot, 1));
}

TEST(MemTune, PrefetchProposesNeededNonResidentLocalBlocks) {
  RddId hot, cold;
  const ExecutionPlan plan = window_plan(&hot, &cold);
  MemTunePolicy mt(/*node=*/0, /*num_nodes=*/2);
  mt.on_job_start(plan, 1);
  mt.on_stage_start(plan, 1, plan.job(1).result_stage);
  mt.on_block_cached(block(hot, 0), 10);  // partition 0 lives on node 0

  const auto candidates = collect_prefetch(mt);
  // hot has 4 partitions; node 0 owns 0 and 2; 0 is resident -> only 2.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], block(hot, 2));
}

TEST(MemTune, PrefetchHonorsQueueSlotBudget) {
  RddId hot, cold;
  const ExecutionPlan plan = window_plan(&hot, &cold);
  MemTunePolicy mt(/*node=*/0, /*num_nodes=*/1);
  mt.on_job_start(plan, 1);
  mt.on_stage_start(plan, 1, plan.job(1).result_stage);
  // Nothing resident: generation must stop after the budgeted issues.
  EXPECT_EQ(collect_prefetch(mt, /*slots=*/2).size(), 2u);
}

TEST(MemTune, NoPrefetchBeforeAnyJob) {
  MemTunePolicy mt(0, 1);
  EXPECT_TRUE(collect_prefetch(mt).empty());
}

TEST(MemTune, WindowMustBePositive) {
  EXPECT_ANY_THROW(MemTunePolicy(0, 1, 0));
}

}  // namespace
}  // namespace mrd
