// Arena (util/arena.h): the RunContext-scoped bump allocator. These tests
// pin the properties the pooled-context design leans on: alignment of every
// handout, reset-in-place that retains slabs, allocation-free refills after
// the first lap (slab reuse), and honest byte accounting — including the
// note_arena_bytes feed the benches report.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/alloc_stats.h"

namespace mrd {
namespace {

TEST(Arena, HandsOutAlignedValueInitializedStorage) {
  Arena arena(256);
  auto* bytes = arena.make_array<std::uint8_t>(3);
  auto* words = arena.make_array<std::uint64_t>(5);
  auto* more = static_cast<std::uint8_t*>(arena.allocate(1, 1));
  auto* wide = arena.allocate(16, alignof(std::max_align_t));
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(words, nullptr);
  ASSERT_NE(more, nullptr);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(wide) %
                alignof(std::max_align_t),
            0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(words[i], 0u);
  // Distinct allocations never overlap: write patterns, re-read them.
  std::memset(bytes, 0xAB, 3);
  for (int i = 0; i < 5; ++i) words[i] = 0x1122334455667788ull;
  *more = 0xCD;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(bytes[i], 0xAB);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(words[i], 0x1122334455667788ull);
  EXPECT_EQ(*more, 0xCD);
}

TEST(Arena, ZeroCountAndZeroByteRequests) {
  Arena arena;
  EXPECT_EQ(arena.make_array<int>(0), nullptr);
  // A zero-byte raw request still yields a unique, usable pointer.
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(Arena, ResetRewindsInPlaceRetainingSlabs) {
  Arena arena(128);  // small slabs: force several per lap
  constexpr std::size_t kArrays = 64;
  for (std::size_t i = 0; i < kArrays; ++i) {
    arena.make_array<std::uint64_t>(8);
  }
  const std::size_t slabs = arena.slab_count();
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(slabs, 1u);
  EXPECT_EQ(arena.bytes_allocated(), kArrays * 8 * sizeof(std::uint64_t));
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.slab_count(), slabs);       // retained...
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // ...capacity and all
  // The refill reuses the same storage: same first pointer as lap one.
  arena.reset();
  void* first = arena.allocate(16);
  arena.reset();
  EXPECT_EQ(arena.allocate(16), first);
}

TEST(Arena, RefillAfterResetPerformsNoHeapAllocations) {
  if (!alloc_stats::available()) GTEST_SKIP() << "counting allocator absent";
  Arena arena(128);
  constexpr std::size_t kArrays = 64;
  const auto fill = [&arena] {
    for (std::size_t i = 0; i < kArrays; ++i) {
      arena.make_array<std::uint32_t>(16);
    }
  };
  fill();  // lap one grows the slab list
  for (int lap = 0; lap < 3; ++lap) {
    arena.reset();
    alloc_stats::ThreadScope scope;
    fill();
    EXPECT_EQ(scope.allocs(), 0u) << "lap " << lap;
  }
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena arena(64);
  auto* big = arena.make_array<std::uint8_t>(1024);  // far above slab_bytes
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 1024);
  EXPECT_EQ(big[1023], 0x5A);
  // The oversized slab is retained and reused across resets like any other.
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  auto* again = arena.make_array<std::uint8_t>(1024);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ReleaseDropsEverySlab) {
  Arena arena(128);
  arena.make_array<std::uint64_t>(100);
  EXPECT_GT(arena.slab_count(), 0u);
  arena.release();
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Still usable after release: the slab list regrows on demand.
  auto* p = arena.make_array<int>(4);
  ASSERT_NE(p, nullptr);
  p[3] = 7;
  EXPECT_EQ(p[3], 7);
}

TEST(Arena, BumpAccountingFeedsAllocStats) {
  const std::uint64_t before = alloc_stats::thread_arena_bytes();
  Arena arena;
  arena.allocate(100);
  arena.allocate(28);
  // note_arena_bytes totals the *requested* bytes, independent of padding,
  // and is monotonic across resets (a delta counter like thread_allocs).
  EXPECT_EQ(alloc_stats::thread_arena_bytes() - before, 128u);
  arena.reset();
  arena.allocate(8);
  EXPECT_EQ(alloc_stats::thread_arena_bytes() - before, 136u);
}

}  // namespace
}  // namespace mrd
