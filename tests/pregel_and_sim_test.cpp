// Pregel operator structure, the stage timing model, cluster presets'
// bandwidth math, and lineage resolution.
#include <gtest/gtest.h>

#include "api/pregel.h"
#include "api/spark_context.h"
#include "cache/lru.h"
#include "cluster/block_manager_master.h"
#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "exec/lineage_resolver.h"
#include "sim/node_accounting.h"

namespace mrd {
namespace {

// ---- Pregel operator ----

std::shared_ptr<const Application> pregel_app(PregelConfig config) {
  SparkContext sc("pregel-app");
  auto edges = sc.text_file("in", 8, 1 << 20).map("edges");
  auto vertices = edges.map("vertices");
  vertices.count("setup");
  pregel(sc, vertices, edges, config);
  return std::move(sc).build_shared();
}

TEST(Pregel, OneJobPerSuperstepPlusSetupAndFinal) {
  PregelConfig config;
  config.supersteps = 5;
  const auto plan = DagScheduler::plan(pregel_app(config));
  // setup + 5 convergence checks + final count.
  EXPECT_EQ(plan.jobs().size(), 7u);
}

TEST(Pregel, CachesVertexGenerationsAndMessages) {
  PregelConfig config;
  config.supersteps = 3;
  const auto app = pregel_app(config);
  std::size_t cached_messages = 0, cached_vprogs = 0;
  for (const RddInfo& r : app->rdds()) {
    if (!r.persisted) continue;
    if (r.name.rfind("messages", 0) == 0) ++cached_messages;
    if (r.name.rfind("vprog", 0) == 0) ++cached_vprogs;
  }
  EXPECT_EQ(cached_messages, 3u);
  EXPECT_EQ(cached_vprogs, 3u);
}

TEST(Pregel, MessageCachingCanBeDisabled) {
  PregelConfig config;
  config.supersteps = 3;
  config.cache_messages = false;
  const auto app = pregel_app(config);
  for (const RddInfo& r : app->rdds()) {
    if (r.name.rfind("messages", 0) == 0) EXPECT_FALSE(r.persisted);
  }
}

TEST(Pregel, UniformBlockSizesAcrossGenerations) {
  PregelConfig config;
  config.supersteps = 4;
  config.block_bytes = 1 << 20;
  const auto app = pregel_app(config);
  for (const RddInfo& r : app->rdds()) {
    if (r.name.rfind("vprog", 0) == 0 || r.name.rfind("messages", 0) == 0) {
      EXPECT_EQ(r.bytes_per_partition, config.block_bytes) << r.name;
    }
  }
}

TEST(Pregel, LongRangeJoinExtendsMaxDistance) {
  PregelConfig plain;
  plain.supersteps = 9;
  plain.final_graph_join = false;
  PregelConfig ranged = plain;
  ranged.long_range_join_every = 3;
  const auto d_plain =
      reference_distance_stats(DagScheduler::plan(pregel_app(plain)));
  const auto d_ranged =
      reference_distance_stats(DagScheduler::plan(pregel_app(ranged)));
  EXPECT_GT(d_ranged.max_stage_distance, d_plain.max_stage_distance);
}

TEST(Pregel, FinalGraphJoinCreatesWholeRunGap) {
  PregelConfig with;
  with.supersteps = 8;
  with.final_graph_join = true;
  PregelConfig without = with;
  without.final_graph_join = false;
  const auto d_with =
      reference_distance_stats(DagScheduler::plan(pregel_app(with)));
  const auto d_without =
      reference_distance_stats(DagScheduler::plan(pregel_app(without)));
  EXPECT_GT(d_with.max_job_distance, d_without.max_job_distance);
  EXPECT_GE(d_with.max_job_distance, with.supersteps - 2);
}

TEST(Pregel, RequiresAtLeastOneSuperstep) {
  PregelConfig config;
  config.supersteps = 0;
  EXPECT_ANY_THROW(pregel_app(config));
}

// ---- NodeAccounting / stage timing model ----

ClusterConfig unit_cluster() {
  ClusterConfig c;
  c.num_nodes = 2;
  c.cpu_slots_per_node = 4;
  c.disk_mb_per_s = 1024.0 / 1.024;  // ≈ 1 byte per microsecond
  c.network_mb_per_s = 100.0;
  c.stage_overhead_ms = 10.0;
  return c;
}

TEST(NodeAccounting, CpuWallRespectsSlotsAndLongestTask) {
  const ClusterConfig c = unit_cluster();
  NodeAccounting acct;
  for (int i = 0; i < 8; ++i) acct.add_task(10.0);  // 80ms over 4 slots
  EXPECT_DOUBLE_EQ(acct.cpu_wall_ms(c), 20.0);
  NodeAccounting one_giant;
  one_giant.add_task(100.0);
  one_giant.add_task(1.0);
  EXPECT_DOUBLE_EQ(one_giant.cpu_wall_ms(c), 100.0);  // floor = longest task
}

TEST(NodeAccounting, IoSplitsDiskAndNetwork) {
  const ClusterConfig c = unit_cluster();
  NodeAccounting acct;
  acct.disk_read_bytes = 1000;
  acct.disk_write_bytes = 500;
  acct.network_bytes = 0;
  EXPECT_NEAR(acct.disk_ms(c), 1500.0 * c.disk_ms_per_byte(), 1e-9);
  EXPECT_DOUBLE_EQ(acct.io_ms(c), acct.disk_ms(c));
  acct.network_bytes = 2000;
  EXPECT_GT(acct.io_ms(c), acct.disk_ms(c));
}

TEST(NodeAccounting, WallIsMaxOfCpuAndIo) {
  const ClusterConfig c = unit_cluster();
  NodeAccounting acct;
  acct.add_task(50.0);
  acct.disk_read_bytes = 1;  // negligible I/O
  EXPECT_NEAR(acct.wall_ms(c), 50.0, 1.0);
}

TEST(NodeAccounting, StageWallIsBarrierPlusOverhead) {
  const ClusterConfig c = unit_cluster();
  std::vector<NodeAccounting> nodes(2);
  nodes[0].add_task(30.0);
  nodes[1].add_task(70.0);
  // Node 1's single 70 ms task floors its wall at 70; +10 ms stage overhead.
  EXPECT_DOUBLE_EQ(stage_wall_ms(nodes, c), 80.0);
  EXPECT_DOUBLE_EQ(max_cpu_ms(nodes, c), 70.0);
  EXPECT_DOUBLE_EQ(max_io_ms(nodes, c), 0.0);
}

TEST(ClusterConfig, BandwidthConversionsRoundTrip) {
  ClusterConfig c;
  c.disk_mb_per_s = 100.0;
  // Reading 100 MB should take ~1000 ms.
  EXPECT_NEAR(100.0 * 1024 * 1024 * c.disk_ms_per_byte(), 1000.0, 1e-6);
  c.num_nodes = 4;
  c.cache_bytes_per_node = 10;
  EXPECT_EQ(c.total_cache_bytes(), 40u);
}

// ---- LineageResolver ----

struct LineageFixture {
  std::shared_ptr<const Application> app;
  ExecutionPlan plan;
  RddId leaf;
  RddId parent;

  LineageFixture()
      : app(make_app()), plan(DagScheduler::plan(app)) {}

  std::shared_ptr<const Application> make_app() {
    SparkContext sc("lineage-app");
    auto base = sc.text_file("in", 4, 1 << 20).map("parentCached").cache();
    auto child = base.map("leafCached").cache();
    child.count("job0");
    child.count("job1");
    parent = base.id();
    leaf = child.id();
    return std::move(sc).build_shared();
  }
};

TEST(LineageResolver, ColdMissRecomputesAndRecaches) {
  LineageFixture f;
  ClusterConfig cluster = unit_cluster();
  cluster.spill_on_evict = false;
  PolicyFactory factory = [](NodeId, NodeId) {
    return std::make_unique<LruPolicy>();
  };
  BlockManagerMaster master(cluster, factory);
  LineageResolver resolver(f.plan, &master);
  std::vector<NodeAccounting> acct(cluster.num_nodes);

  const BlockId block{f.leaf, 0};
  EXPECT_EQ(resolver.demand_block(block, &acct), ProbeOutcome::kCold);
  EXPECT_TRUE(master.node(master.owner(block)).in_memory(block));
  EXPECT_GT(resolver.recompute_cpu_ms(), 0.0);
  // Recomputing the leaf walked to the source: HDFS read charged somewhere.
  std::uint64_t disk = 0;
  for (const auto& a : acct) disk += a.disk_read_bytes;
  EXPECT_GT(disk, 0u);

  // Second demand is a hit, with no further recompute cost.
  const double cpu_before = resolver.recompute_cpu_ms();
  EXPECT_EQ(resolver.demand_block(block, &acct), ProbeOutcome::kHit);
  EXPECT_DOUBLE_EQ(resolver.recompute_cpu_ms(), cpu_before);
}

TEST(LineageResolver, RecursiveProbeHitsCachedAncestor) {
  LineageFixture f;
  ClusterConfig cluster = unit_cluster();
  cluster.spill_on_evict = false;
  PolicyFactory factory = [](NodeId, NodeId) {
    return std::make_unique<LruPolicy>();
  };
  BlockManagerMaster master(cluster, factory);
  LineageResolver resolver(f.plan, &master);
  std::vector<NodeAccounting> acct(cluster.num_nodes);

  // Pre-cache the parent block; the leaf's recompute should hit it instead
  // of walking to the source.
  const BlockId parent_block{f.parent, 0};
  IoCharge charge;
  master.node(master.owner(parent_block))
      .cache_block(parent_block, f.app->rdd(f.parent).bytes_per_partition,
                   &charge);

  const double cpu_before = resolver.recompute_cpu_ms();
  resolver.demand_block(BlockId{f.leaf, 0}, &acct);
  const NodeCacheStats stats = master.aggregate_stats();
  EXPECT_GE(stats.hits, 1u);  // the ancestor probe
  // Only the leaf's own compute was charged, not the full chain to source.
  const double leaf_cost = f.app->rdd(f.leaf).compute_ms_per_partition;
  EXPECT_NEAR(resolver.recompute_cpu_ms() - cpu_before, leaf_cost, 1e-9);
}

TEST(LineageResolver, NonPersistedDemandIsABug) {
  SparkContext sc("bad");
  auto data = sc.text_file("in", 2, 100).map("m");  // not cached
  data.count();
  const auto app = std::move(sc).build_shared();
  const ExecutionPlan plan = DagScheduler::plan(app);
  ClusterConfig cluster = unit_cluster();
  PolicyFactory factory = [](NodeId, NodeId) {
    return std::make_unique<LruPolicy>();
  };
  BlockManagerMaster master(cluster, factory);
  LineageResolver resolver(plan, &master);
  std::vector<NodeAccounting> acct(cluster.num_nodes);
  EXPECT_ANY_THROW(resolver.demand_block(BlockId{1, 0}, &acct));
}

// ---- BlockManagerMaster event fan-out ----

TEST(BlockManagerMaster, BroadcastsReachEveryNode) {
  LineageFixture f;
  ClusterConfig cluster = unit_cluster();
  cluster.num_nodes = 3;

  struct CountingPolicy : LruPolicy {
    int job_events = 0;
    void on_job_start(const ExecutionPlan&, JobId) override { ++job_events; }
  };
  std::vector<CountingPolicy*> instances;
  PolicyFactory factory = [&instances](NodeId, NodeId) {
    auto p = std::make_unique<CountingPolicy>();
    instances.push_back(p.get());
    return p;
  };
  BlockManagerMaster master(cluster, factory);
  ASSERT_EQ(instances.size(), 3u);
  master.broadcast_job_start(f.plan, 0);
  // Broadcasts are journaled: node 0 observes the event eagerly, the rest
  // on their next dereference. sync_all_nodes() forces that replay.
  EXPECT_EQ(instances[0]->job_events, 1);
  master.sync_all_nodes();
  for (CountingPolicy* p : instances) EXPECT_EQ(p->job_events, 1);
  // Replay is idempotent per node: a second sync delivers nothing new.
  master.sync_all_nodes();
  for (CountingPolicy* p : instances) EXPECT_EQ(p->job_events, 1);
}

TEST(BlockManagerMaster, OwnerMappingMixesRddWhenConfigured) {
  LineageFixture f;
  ClusterConfig cluster = unit_cluster();
  cluster.num_nodes = 4;
  cluster.placement = BlockPlacement::kRddMixed;
  PolicyFactory factory = [](NodeId, NodeId) {
    return std::make_unique<LruPolicy>();
  };
  BlockManagerMaster master(cluster, factory);
  // Consecutive partitions of one RDD still round-robin (stride-1 in the
  // node ring)...
  const NodeId base = master.owner(BlockId{9, 0});
  EXPECT_EQ(master.owner(BlockId{9, 1}), (base + 1) % 4);
  EXPECT_EQ(master.owner(BlockId{9, 5}), (base + 5) % 4);
  // ...and the mapping matches the placement helper everywhere.
  for (RddId rdd : {0u, 1u, 9u, 57u}) {
    for (PartitionIndex p = 0; p < 8; ++p) {
      EXPECT_EQ(master.owner(BlockId{rdd, p}),
                placement_owner(BlockId{rdd, p}, 4, BlockPlacement::kRddMixed));
    }
  }
  // Partition 0 of different RDDs must not all pile onto node 0.
  bool spread = false;
  for (RddId rdd = 0; rdd < 8 && !spread; ++rdd) {
    spread = master.owner(BlockId{rdd, 0}) != 0;
  }
  EXPECT_TRUE(spread);
}

TEST(BlockManagerMaster, OwnerMappingIsRoundRobin) {
  LineageFixture f;
  ClusterConfig cluster = unit_cluster();
  cluster.num_nodes = 4;
  PolicyFactory factory = [](NodeId, NodeId) {
    return std::make_unique<LruPolicy>();
  };
  BlockManagerMaster master(cluster, factory);
  EXPECT_EQ(master.owner(BlockId{9, 0}), 0u);
  EXPECT_EQ(master.owner(BlockId{9, 5}), 1u);
  EXPECT_EQ(master.owner(BlockId{9, 7}), 3u);
}

}  // namespace
}  // namespace mrd
