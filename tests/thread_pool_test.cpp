#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace mrd {
namespace {

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroOrOneThreadRunsInline) {
  for (std::size_t n : {0u, 1u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), 0u);  // no worker threads spawned
    const auto caller = std::this_thread::get_id();
    auto future = pool.submit([] { return std::this_thread::get_id(); });
    // Inline mode executes during submit, on the calling thread.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get(), caller);
  }
}

TEST(ThreadPool, WorkersRunOffTheCallingThread) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  auto future = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_NE(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, ManyTasksAllComplete) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, TasksCanBeSubmittedFromTasks) {
  // A task that submits (but does not wait on) further work must not
  // deadlock; the follow-up also runs.
  ThreadPool pool(2);
  std::atomic<bool> nested_ran{false};
  std::future<void> nested;
  pool.submit([&] {
        nested = pool.submit([&nested_ran] { nested_ran = true; });
      })
      .get();
  nested.get();
  EXPECT_TRUE(nested_ran.load());
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace mrd
