// Intra-run node parallelism: for any --node-jobs value the runner must
// produce results byte-identical to the serial run — both through RunMetrics
// (field for field, doubles included) and through the CSV bytes the bench
// drivers emit. Also covers the closure-aware node partitioner
// (ClosurePartitioner) that decides the probe-phase fan-out, the
// node-closedness predicate built on top of it, and the SweepRunner
// composition of sweep-level and intra-run parallelism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dag/dag_builder.h"
#include "dag/dag_scheduler.h"
#include "exec/node_partition.h"
#include "harness/experiment.h"
#include "util/csv.h"
#include "util/format.h"

namespace mrd {
namespace {

/// Exact equality across every RunMetrics field — doubles included, since a
/// fanned-out run must replay the identical deterministic simulation.
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses_from_disk, b.misses_from_disk);
  EXPECT_EQ(a.misses_recompute, b.misses_recompute);
  EXPECT_EQ(a.blocks_cached, b.blocks_cached);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.purged_blocks, b.purged_blocks);
  EXPECT_EQ(a.uncacheable_blocks, b.uncacheable_blocks);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_completed, b.prefetches_completed);
  EXPECT_EQ(a.prefetches_useful, b.prefetches_useful);
  EXPECT_EQ(a.prefetches_wasted, b.prefetches_wasted);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.disk_bytes_written, b.disk_bytes_written);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.recompute_cpu_ms, b.recompute_cpu_ms);
  EXPECT_EQ(a.per_rdd_probes, b.per_rdd_probes);
  EXPECT_EQ(a.mrd_table_peak_entries, b.mrd_table_peak_entries);
  EXPECT_EQ(a.mrd_update_messages, b.mrd_update_messages);
  ASSERT_EQ(a.stage_timings.size(), b.stage_timings.size());
  for (std::size_t i = 0; i < a.stage_timings.size(); ++i) {
    EXPECT_EQ(a.stage_timings[i].stage, b.stage_timings[i].stage);
    EXPECT_EQ(a.stage_timings[i].job, b.stage_timings[i].job);
    EXPECT_EQ(a.stage_timings[i].duration_ms, b.stage_timings[i].duration_ms);
    EXPECT_EQ(a.stage_timings[i].compute_ms, b.stage_timings[i].compute_ms);
    EXPECT_EQ(a.stage_timings[i].io_ms, b.stage_timings[i].io_ms);
  }
}

// ---------------------------------------------------------------------------
// plan_supports_node_parallel
// ---------------------------------------------------------------------------

ExecutionPlan plan_of(DagBuilder&& builder) {
  return DagScheduler::plan(
      std::make_shared<const Application>(std::move(builder).build()));
}

TEST(NodeParallel, PredicateAcceptsIndexPreservingLineage) {
  // Every narrow edge keeps the parent's partition count: an index probed at
  // a child is valid (and owner-preserving) at the parent.
  DagBuilder b("closed");
  const RddId src = b.source("in", 16, 1 << 20);
  const RddId a = b.map(src, "a");
  b.persist(a);
  const RddId c = b.filter(a, "c");
  b.persist(c);
  b.action(c, "count");
  EXPECT_TRUE(plan_supports_node_parallel(plan_of(std::move(b)), 4));
}

TEST(NodeParallel, PredicateRejectsOwnerBreakingNarrowEdge) {
  // The persisted child has more partitions than its persisted parent and
  // the parent's count does not preserve residues mod num_nodes: probing
  // child partition 5 re-maps to parent partition 5 % 5 = 0 on node 0 while
  // the child block lives on node 1 — a cross-node recompute.
  DagBuilder b("open");
  const RddId src = b.source("in", 5, 1 << 20);
  const RddId parent = b.map(src, "parent");
  b.persist(parent);
  TransformOpts wider;
  wider.partitions = 7;
  const RddId child = b.map(parent, "child", wider);
  b.persist(child);
  b.action(child, "count");
  const ExecutionPlan plan = plan_of(std::move(b));
  EXPECT_FALSE(plan_supports_node_parallel(plan, 4));
  // A single node is trivially closed.
  EXPECT_TRUE(plan_supports_node_parallel(plan, 1));
}

TEST(NodeParallel, PredicateAcceptsResiduePreservingRepartition) {
  // Parent count 8 is smaller than the child's 12 but divisible by the node
  // count: j % 8 keeps j's residue mod 4, so the re-map stays on-node.
  DagBuilder b("residue");
  const RddId src = b.source("in", 8, 1 << 20);
  const RddId parent = b.map(src, "parent");
  b.persist(parent);
  TransformOpts wider;
  wider.partitions = 12;
  const RddId child = b.map(parent, "child", wider);
  b.persist(child);
  b.action(child, "count");
  EXPECT_TRUE(plan_supports_node_parallel(plan_of(std::move(b)), 4));
}

TEST(NodeParallel, PredicateChecksEdgesThroughNonPersistedParents) {
  // The owner-breaking edge sits one hop *below* a non-persisted
  // intermediate; the closure walk must descend through it.
  DagBuilder b("deep-open");
  const RddId src = b.source("in", 5, 1 << 20);
  const RddId grand = b.map(src, "grand");
  b.persist(grand);
  TransformOpts wider;
  wider.partitions = 7;
  const RddId middle = b.map(grand, "middle", wider);  // not persisted
  const RddId child = b.map(middle, "child");
  b.persist(child);
  b.action(child, "count");
  EXPECT_FALSE(plan_supports_node_parallel(plan_of(std::move(b)), 4));
}

// ---------------------------------------------------------------------------
// ClosurePartitioner: touches-graph construction and node groups
// ---------------------------------------------------------------------------

/// Asserts the deterministic layout every NodeGroups must have: members
/// sorted ascending, groups ordered by their smallest member, every node in
/// exactly one group.
void expect_canonical(const NodeGroups& groups, NodeId num_nodes) {
  std::vector<char> seen(num_nodes, 0);
  NodeId last_lead = 0;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    ASSERT_FALSE(groups.groups[g].empty());
    if (g > 0) EXPECT_LT(last_lead, groups.groups[g].front());
    last_lead = groups.groups[g].front();
    NodeId prev = 0;
    for (std::size_t i = 0; i < groups.groups[g].size(); ++i) {
      const NodeId node = groups.groups[g][i];
      ASSERT_LT(node, num_nodes);
      EXPECT_EQ(seen[node], 0);
      seen[node] = 1;
      if (i > 0) EXPECT_LT(prev, node);
      prev = node;
    }
  }
  for (NodeId n = 0; n < num_nodes; ++n) EXPECT_EQ(seen[n], 1) << "node " << n;
}

TEST(NodeParallel, PartitionerEmptyClosureYieldsSingletons) {
  // Persisted RDDs whose closures stop immediately (source parent / wide
  // rebuild) touch nobody: every probe region keeps full per-node fan-out.
  DagBuilder b("empty-closure");
  const RddId src = b.source("in", 16, 1 << 20);
  const RddId a = b.map(src, "a");
  b.persist(a);
  const RddId wide = b.reduce_by_key(a, "wide");
  b.persist(wide);
  b.action(wide, "count");
  const ExecutionPlan plan = plan_of(std::move(b));
  const ClosurePartitioner part(plan, 4);
  EXPECT_EQ(part.plan_groups().num_groups(), 4u);
  EXPECT_EQ(part.probe_groups(a).num_groups(), 4u);
  EXPECT_EQ(part.probe_groups(wide).num_groups(), 4u);
  EXPECT_EQ(part.probe_groups(a).largest_group(), 1u);
  expect_canonical(part.probe_groups(a), 4);
}

TEST(NodeParallel, PartitionerSelfTouchesCarryNoEdge) {
  // parent 8 parts, child 12 parts, 4 nodes: pj = j % 8 preserves residues
  // mod 4, so every touch lands on the probing node — no edges, singletons.
  DagBuilder b("self-loop");
  const RddId src = b.source("in", 8, 1 << 20);
  const RddId parent = b.map(src, "parent");
  b.persist(parent);
  TransformOpts wider;
  wider.partitions = 12;
  const RddId child = b.map(parent, "child", wider);
  b.persist(child);
  b.action(child, "count");
  const ExecutionPlan plan = plan_of(std::move(b));
  const ClosurePartitioner part(plan, 4);
  EXPECT_EQ(part.probe_groups(child).num_groups(), 4u);
  EXPECT_EQ(part.plan_groups().num_groups(), 4u);
}

TEST(NodeParallel, PartitionerChainThroughNonPersistedParent) {
  // persisted parent (3 parts) <- non-persisted middle (5) <- persisted
  // child (5), 4 nodes. Child j demands parent j % 3 through the middle:
  // j=3 gives owner 3 -> owner 0 and j=4 gives owner 0 -> owner 1, so nodes
  // {0, 1, 3} chain into one group and node 2 stays alone.
  DagBuilder b("chain");
  const RddId src = b.source("in", 3, 1 << 20);
  const RddId parent = b.map(src, "parent");
  b.persist(parent);
  TransformOpts five;
  five.partitions = 5;
  const RddId middle = b.map(parent, "middle", five);  // not persisted
  const RddId child = b.map(middle, "child");
  b.persist(child);
  b.action(child, "count");
  const ExecutionPlan plan = plan_of(std::move(b));
  const ClosurePartitioner part(plan, 4);

  const NodeGroups& child_groups = part.probe_groups(child);
  ASSERT_EQ(child_groups.num_groups(), 2u);
  EXPECT_EQ(child_groups.groups[0], (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(child_groups.groups[1], (std::vector<NodeId>{2}));
  expect_canonical(child_groups, 4);

  // The parent's own closure stops at the source: probing it alone keeps
  // full fan-out even though the child couples nodes.
  EXPECT_EQ(part.probe_groups(parent).num_groups(), 4u);
  EXPECT_EQ(part.plan_groups().num_groups(), 2u);
  EXPECT_FALSE(plan_supports_node_parallel(plan, 4));
}

TEST(NodeParallel, PartitionerStarCollapsesAroundHub) {
  // A single-partition persisted hub demanded by every partition of three
  // persisted leaves: all of the hub's touches point at node 0, linking the
  // whole 4-node cluster into one star-shaped group.
  DagBuilder b("star");
  const RddId src = b.source("in", 1, 1 << 20);
  const RddId hub = b.map(src, "hub");
  b.persist(hub);
  TransformOpts four;
  four.partitions = 4;
  for (const char* name : {"leaf-a", "leaf-b", "leaf-c"}) {
    const RddId leaf = b.map(hub, name, four);
    b.persist(leaf);
    b.action(leaf, std::string(name) + "-count");
  }
  const ExecutionPlan plan = plan_of(std::move(b));
  const ClosurePartitioner part(plan, 4);
  EXPECT_EQ(part.plan_groups().num_groups(), 1u);
  EXPECT_EQ(part.plan_groups().largest_group(), 4u);
  // Probing the hub itself is closure-free; probing any leaf serializes the
  // whole cluster.
  EXPECT_EQ(part.probe_groups(hub).num_groups(), 4u);
}

TEST(NodeParallel, PartitionerPregelVjoinShape) {
  // The exact vjoin step from src/api/pregel.cpp: persisted vertices (12
  // parts) and persisted wide messages (9 parts) feed a non-persisted
  // zip_partitions at 21 parts, whose persisted vprog output is back at 12.
  // Probing vprog partition j demands vertices j (self) and messages j % 9.
  DagBuilder b("vjoin");
  const RddId src = b.source("edgelist", 12, 1 << 20);
  const RddId vertices = b.map(src, "vertices");
  b.persist(vertices);
  TransformOpts msg_opts;
  msg_opts.partitions = 9;
  const RddId messages = b.reduce_by_key(vertices, "messages", msg_opts);
  b.persist(messages);
  TransformOpts join_opts;
  join_opts.partitions = 21;  // parts_for(vertex_total + message_total)
  const RddId joined =
      b.zip_partitions(vertices, messages, "vjoin", join_opts);
  TransformOpts vprog_opts;
  vprog_opts.partitions = 12;
  const RddId vprog = b.map(joined, "vprog", vprog_opts);
  b.persist(vprog);
  b.action(vprog, "count");
  const ExecutionPlan plan = plan_of(std::move(b));

  // 8 nodes: j = 9..11 wrap the message index, chaining (0,1), (1,2), (2,3).
  const ClosurePartitioner p8(plan, 8);
  const NodeGroups& g8 = p8.probe_groups(vprog);
  ASSERT_EQ(g8.num_groups(), 5u);
  EXPECT_EQ(g8.groups[0], (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(g8.largest_group(), 4u);
  expect_canonical(g8, 8);
  // Probing the node-closed inputs keeps full fan-out.
  EXPECT_EQ(p8.probe_groups(vertices).num_groups(), 8u);
  EXPECT_EQ(p8.probe_groups(messages).num_groups(), 8u);

  // 6 nodes: the wrap pairs nodes at distance 3 — {0,3} {1,4} {2,5}.
  const ClosurePartitioner p6(plan, 6);
  const NodeGroups& g6 = p6.probe_groups(vprog);
  ASSERT_EQ(g6.num_groups(), 3u);
  EXPECT_EQ(g6.groups[0], (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(g6.groups[1], (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(g6.groups[2], (std::vector<NodeId>{2, 5}));
  expect_canonical(g6, 6);
}

TEST(NodeParallel, PartitionerReachesThroughColdPersistedAncestors) {
  // A cold probe of a persisted ancestor recurses into the ancestor's own
  // closure, so the probed RDD's groups must fold in edges from every
  // transitively reachable persisted RDD — here the ancestor couples nodes
  // even though the probed RDD's direct closure is self-only.
  DagBuilder b("reach");
  const RddId src = b.source("in", 3, 1 << 20);
  const RddId deep = b.map(src, "deep");
  b.persist(deep);
  TransformOpts five;
  five.partitions = 5;
  const RddId mid = b.map(deep, "mid", five);  // owner-breaking remap
  b.persist(mid);
  const RddId top = b.map(mid, "top");  // same 5 parts: self touches only
  b.persist(top);
  b.action(top, "count");
  const ExecutionPlan plan = plan_of(std::move(b));
  const ClosurePartitioner part(plan, 4);
  // mid couples {0,1,3} directly (j%3 wrap); top inherits that through its
  // cold-probe reach of mid.
  EXPECT_EQ(part.probe_groups(mid).num_groups(), 2u);
  EXPECT_EQ(part.probe_groups(top).num_groups(), 2u);
  EXPECT_EQ(part.probe_groups(deep).num_groups(), 4u);
}

// ---------------------------------------------------------------------------
// End-to-end identity across node-job counts (fig4-style points)
// ---------------------------------------------------------------------------

struct Point {
  const char* workload;
  const char* policy;
  double fraction;
};

std::vector<Point> sample_points() {
  // tc and km are node-closed (all-singleton groups, full per-node fan-out);
  // pr's vjoin re-maps couple nodes, so it exercises the group-parallel path
  // with multi-node groups under node_jobs > 1.
  return {{"tc", "lru", 0.5},  {"tc", "mrd", 0.5}, {"km", "mrd", 0.5},
          {"km", "lru", 1.0},  {"pr", "mrd", 0.5}, {"pr", "lru", 1.0},
          {"tc", "mrd-evict", 1.0}};
}

RunMetrics run_point(const WorkloadRun& run, const Point& point,
                     std::size_t node_jobs) {
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 8;
  PolicyConfig policy;
  policy.name = point.policy;
  return run_with_policy(run, cluster, point.fraction, policy,
                         DagVisibility::kRecurring, node_jobs);
}

TEST(NodeParallel, RunMetricsIdenticalForAnyNodeJobCount) {
  WorkloadParams params;
  params.scale = 0.25;
  for (const Point& point : sample_points()) {
    SCOPED_TRACE(std::string(point.workload) + "/" + point.policy);
    const WorkloadRun run =
        plan_workload(*find_workload(point.workload), params);
    const RunMetrics serial = run_point(run, point, 1);
    for (std::size_t node_jobs : {2u, 8u}) {
      SCOPED_TRACE(node_jobs);
      expect_identical(serial, run_point(run, point, node_jobs));
    }
  }
}

/// Renders metrics through the same formatting helpers the bench drivers
/// use, so the comparison covers the full metrics→CSV path.
std::string csv_bytes_for(const std::vector<RunMetrics>& results,
                          const std::string& path) {
  CsvWriter csv(path);
  csv.write_row({"workload", "policy", "jct_ms", "hit", "disk_read",
                 "disk_write", "network", "recompute_cpu_ms"});
  for (const RunMetrics& m : results) {
    csv.write_row({m.workload, m.policy, format_double(m.jct_ms, 4),
                   format_double(m.hit_ratio(), 4),
                   std::to_string(m.disk_bytes_read),
                   std::to_string(m.disk_bytes_written),
                   std::to_string(m.network_bytes),
                   format_double(m.recompute_cpu_ms, 4)});
  }
  csv.close();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(NodeParallel, CsvBytesIdenticalForAnyNodeJobCount) {
  WorkloadParams params;
  params.scale = 0.25;
  std::vector<RunMetrics> serial, two, eight;
  for (const Point& point : sample_points()) {
    const WorkloadRun run =
        plan_workload(*find_workload(point.workload), params);
    serial.push_back(run_point(run, point, 1));
    two.push_back(run_point(run, point, 2));
    eight.push_back(run_point(run, point, 8));
  }
  const std::string base = testing::TempDir() + "node_parallel_csv_";
  const std::string bytes1 = csv_bytes_for(serial, base + "1.csv");
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, csv_bytes_for(two, base + "2.csv"));
  EXPECT_EQ(bytes1, csv_bytes_for(eight, base + "8.csv"));
}

// ---------------------------------------------------------------------------
// SweepRunner nesting
// ---------------------------------------------------------------------------

TEST(NodeParallel, SweepRunnerNodeJobsMatchSerialResults) {
  WorkloadParams params;
  params.scale = 0.25;
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 8;
  const auto run = plan_workload_shared(*find_workload("tc"), params);
  PolicyConfig mrd;
  mrd.name = "mrd";
  const SweepJob job{run, cluster, 0.5, mrd};

  SweepRunner serial(1);
  const RunMetrics baseline = serial.submit(job).get();

  // Serial sweep + intra-run fan-out (the combination --jobs 1 --node-jobs 8
  // plumbs through the drivers).
  SweepRunner nested(1, 8);
  expect_identical(baseline, nested.submit(job).get());
  EXPECT_EQ(nested.node_jobs(), 8u);

  // Parallel sweep + intra-run fan-out: both levels queue on the shared
  // executor and compose; results unchanged.
  SweepRunner outer(4, 8);
  expect_identical(baseline, outer.submit(job).get());

  // Per-job override beats the runner default.
  SweepJob override_job = job;
  override_job.node_jobs = 2;
  expect_identical(baseline, serial.submit(override_job).get());
}

TEST(NodeParallel, SweepStatsReportQueueLatencyAndRunSpread) {
  WorkloadParams params;
  params.scale = 0.25;
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 4;
  const auto run = plan_workload_shared(*find_workload("pr"), params);
  SweepRunner runner(2);
  for (double fraction : {0.4, 0.6, 0.8, 1.0}) {
    PolicyConfig lru;
    lru.name = "lru";
    runner.submit(SweepJob{run, cluster, fraction, lru}).wait();
  }
  const SweepStats stats = runner.stats();
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_GE(stats.queue_ms, 0.0);
  EXPECT_GE(stats.mean_queue_ms(), 0.0);
  EXPECT_GE(stats.run_stddev_ms(), 0.0);
  // Sanity: the spread can never exceed the largest run, which is bounded
  // by the aggregate.
  EXPECT_LE(stats.run_stddev_ms(), stats.aggregate_ms);
}

}  // namespace
}  // namespace mrd
