#include <gtest/gtest.h>

#include "cache/fifo.h"
#include "cache/lru.h"
#include "cache/resident_set.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

// ---- LRU ----

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_block_cached(block(1, 0), 10);
  lru.on_block_cached(block(1, 1), 10);
  lru.on_block_cached(block(1, 2), 10);
  EXPECT_EQ(lru.choose_victim(), block(1, 0));
}

TEST(Lru, AccessRefreshesRecency) {
  LruPolicy lru;
  lru.on_block_cached(block(1, 0), 10);
  lru.on_block_cached(block(1, 1), 10);
  lru.on_block_accessed(block(1, 0));
  EXPECT_EQ(lru.choose_victim(), block(1, 1));
}

TEST(Lru, EvictionRemovesFromOrder) {
  LruPolicy lru;
  lru.on_block_cached(block(1, 0), 10);
  lru.on_block_cached(block(1, 1), 10);
  lru.on_block_evicted(block(1, 0));
  EXPECT_EQ(lru.choose_victim(), block(1, 1));
  EXPECT_EQ(lru.resident_count(), 1u);
}

TEST(Lru, EmptyHasNoVictim) {
  LruPolicy lru;
  EXPECT_EQ(lru.choose_victim(), std::nullopt);
}

TEST(Lru, ReCachingActsAsTouch) {
  LruPolicy lru;
  lru.on_block_cached(block(1, 0), 10);
  lru.on_block_cached(block(1, 1), 10);
  lru.on_block_cached(block(1, 0), 10);  // refresh
  EXPECT_EQ(lru.choose_victim(), block(1, 1));
  EXPECT_EQ(lru.resident_count(), 2u);
}

TEST(Lru, EvictingUnknownBlockIsHarmless) {
  LruPolicy lru;
  lru.on_block_cached(block(1, 0), 10);
  lru.on_block_evicted(block(9, 9));
  EXPECT_EQ(lru.choose_victim(), block(1, 0));
}

// ---- FIFO ----

TEST(Fifo, EvictsOldestInsert) {
  FifoPolicy fifo;
  fifo.on_block_cached(block(1, 0), 10);
  fifo.on_block_cached(block(1, 1), 10);
  fifo.on_block_accessed(block(1, 0));  // access does NOT refresh FIFO
  EXPECT_EQ(fifo.choose_victim(), block(1, 0));
}

TEST(Fifo, ReinsertKeepsOriginalPosition) {
  FifoPolicy fifo;
  fifo.on_block_cached(block(1, 0), 10);
  fifo.on_block_cached(block(1, 1), 10);
  fifo.on_block_cached(block(1, 0), 10);
  EXPECT_EQ(fifo.choose_victim(), block(1, 0));
}

TEST(Fifo, EmptyHasNoVictim) {
  FifoPolicy fifo;
  EXPECT_EQ(fifo.choose_victim(), std::nullopt);
}

// ---- block placement ----

TEST(Placement, RoundRobinByPartition) {
  EXPECT_TRUE(block_on_node(block(1, 0), 0, 4));
  EXPECT_TRUE(block_on_node(block(1, 5), 1, 4));
  EXPECT_FALSE(block_on_node(block(1, 5), 0, 4));
  EXPECT_FALSE(block_on_node(block(1, 0), 0, 0));  // zero nodes: nowhere
}

// ---- ResidentSet ----

TEST(ResidentSet, WorstPicksMaxScore) {
  ResidentSet set;
  set.insert(block(1, 0));
  set.insert(block(2, 0));
  set.insert(block(3, 0));
  const auto victim = set.worst([](const BlockId& b) {
    return static_cast<double>(b.rdd);
  });
  EXPECT_EQ(victim, block(3, 0));
}

TEST(ResidentSet, TiesGoToLeastRecentlyUsed) {
  ResidentSet set;
  set.insert(block(1, 0));
  set.insert(block(2, 0));
  set.touch(block(1, 0));  // 2,0 is now LRU
  const auto victim = set.worst([](const BlockId&) { return 0.0; });
  EXPECT_EQ(victim, block(2, 0));
}

TEST(ResidentSet, EraseAndContains) {
  ResidentSet set;
  set.insert(block(1, 0));
  EXPECT_TRUE(set.contains(block(1, 0)));
  set.erase(block(1, 0));
  EXPECT_FALSE(set.contains(block(1, 0)));
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.worst([](const BlockId&) { return 1.0; }), std::nullopt);
}

TEST(ResidentSet, IterationIsLruFirst) {
  ResidentSet set;
  set.insert(block(1, 0));
  set.insert(block(2, 0));
  set.insert(block(3, 0));
  set.touch(block(1, 0));
  std::vector<BlockId> order;
  set.for_each_lru_first([&](const BlockId& b) { order.push_back(b); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], block(2, 0));
  EXPECT_EQ(order[2], block(1, 0));
}

// ---- BlockId basics ----

TEST(BlockId, OrderingAndHashing) {
  EXPECT_LT(block(1, 0), block(1, 1));
  EXPECT_LT(block(1, 5), block(2, 0));
  EXPECT_EQ(block(3, 4), block(3, 4));
  std::hash<BlockId> h;
  EXPECT_NE(h(block(1, 0)), h(block(0, 1)));
  EXPECT_EQ(to_string(block(3, 4)), "rdd_3_4");
}

}  // namespace
}  // namespace mrd
