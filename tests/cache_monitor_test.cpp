// CacheMonitor: the per-node MRD policy (eviction, purge, prefetch,
// ablations).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>

#include "api/spark_context.h"
#include "core/cache_monitor.h"
#include "core/policy_registry.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

/// Drains a policy's budgeted candidate stream, answering kIssued to every
/// offer (the candidates-only view the old vector-returning API gave).
std::vector<BlockId> collect_prefetch(CachePolicy& policy,
                                      std::size_t slots = 64) {
  PrefetchBudget budget;
  budget.free_bytes = 1000;
  budget.capacity = 10000;
  budget.queue_slots = slots;
  std::vector<BlockId> out;
  policy.prefetch_candidates(budget, [&](const BlockId& b) {
    out.push_back(b);
    return PrefetchOffer::kIssued;
  });
  return out;
}

struct Fixture {
  ExecutionPlan plan;
  RddId near_rdd;
  RddId far_rdd;
  std::shared_ptr<MrdManager> manager;
  std::unique_ptr<CacheMonitor> monitor;

  explicit Fixture(const MrdPolicyOptions& options = {}) : plan(make_plan()) {
    manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                           DistanceMetric::kStage, 1);
    monitor = std::make_unique<CacheMonitor>(manager, /*node=*/0,
                                             /*num_nodes=*/1, options);
    monitor->on_application_start(plan);
    monitor->on_stage_start(plan, 0, 0);
  }

  ExecutionPlan make_plan() {
    SparkContext sc("app");
    auto near = sc.text_file("a", 2, 100).map("near").cache();
    auto far = sc.text_file("b", 2, 100).map("far").cache();
    near.zip_partitions(far, "z").count("job0");
    near.map("m1").count("job1");
    far.map("m2").count("job2");
    near_rdd = near.id();
    far_rdd = far.id();
    return DagScheduler::plan(std::move(sc).build_shared());
  }
};

TEST(CacheMonitor, EvictsLargestDistance) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.far_rdd, 0));
}

TEST(CacheMonitor, InactiveEvictedBeforeActive) {
  Fixture f;
  // Consume all of far's references -> infinite distance.
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  // Re-announce one future reference for near only.
  // (Simplest: new fixture state — far stays inactive, near consumed too;
  // so cache both and expect the stable-order victim among infinites.)
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  const auto victim = f.monitor->choose_victim();
  ASSERT_TRUE(victim.has_value());
  // Both infinite: stable tie-break picks the greatest BlockId.
  EXPECT_EQ(*victim, block(f.far_rdd, 0));
}

TEST(CacheMonitor, StableTieBreakKeepsFixedSubset) {
  Fixture f;
  // All blocks of one RDD share a distance; victim choice must be stable
  // (greatest partition), not recency-cyclic.
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 1), 10);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 1));
  f.monitor->on_block_accessed(block(f.near_rdd, 1));  // recency must not flip
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 1));
}

TEST(CacheMonitor, PurgeListsInactiveResidentBlocks) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  std::vector<BlockId> early;
  f.monitor->purge_candidates(&early);
  EXPECT_TRUE(early.empty());
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  std::vector<BlockId> purge;
  f.monitor->purge_candidates(&purge);
  ASSERT_EQ(purge.size(), 1u);
  EXPECT_EQ(purge[0], block(f.far_rdd, 0));
}

TEST(CacheMonitor, PrefetchCandidatesAreNearestFirstNonResident) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  const auto candidates = collect_prefetch(*f.monitor);
  ASSERT_GE(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], block(f.near_rdd, 1));  // partition 0 resident
  EXPECT_EQ(candidates[1], block(f.far_rdd, 0));
}

TEST(CacheMonitor, PrefetchStopsAtFilledBudget) {
  Fixture f;
  EXPECT_EQ(collect_prefetch(*f.monitor, /*slots=*/1).size(), 1u);
  EXPECT_EQ(collect_prefetch(*f.monitor, /*slots=*/3).size(), 3u);
}

TEST(CacheMonitor, FrontierCursorDoesNotReofferStableSkips) {
  Fixture f;
  // First pass: answer kSkipped (stable: "no disk copy") to everything.
  PrefetchBudget budget;
  budget.queue_slots = 64;
  std::size_t offers = 0;
  f.monitor->prefetch_candidates(budget, [&](const BlockId&) {
    ++offers;
    return PrefetchOffer::kSkipped;
  });
  EXPECT_GT(offers, 0u);
  // Same epoch, same residents: the whole stream was proven skippable, so a
  // second pass offers nothing.
  offers = 0;
  f.monitor->prefetch_candidates(budget, [&](const BlockId&) {
    ++offers;
    return PrefetchOffer::kSkipped;
  });
  EXPECT_EQ(offers, 0u);
  // An eviction invalidates the resident-set stamp: offers come back.
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_evicted(block(f.near_rdd, 0));
  offers = 0;
  f.monitor->prefetch_candidates(budget, [&](const BlockId&) {
    ++offers;
    return PrefetchOffer::kSkipped;
  });
  EXPECT_GT(offers, 0u);
}

TEST(CacheMonitor, FrontierCursorReoffersVolatileSkipsAndIssues) {
  Fixture f;
  const auto first = collect_prefetch(*f.monitor);  // all kIssued
  ASSERT_FALSE(first.empty());
  // kIssued froze the frontier at the first offer: an identical pass
  // re-offers the identical stream.
  EXPECT_EQ(collect_prefetch(*f.monitor), first);
  // Same for a transient (queued-collision) skip on the first candidate.
  PrefetchBudget budget;
  budget.queue_slots = 64;
  std::vector<BlockId> offered;
  f.monitor->prefetch_candidates(budget, [&](const BlockId& b) {
    offered.push_back(b);
    return PrefetchOffer::kSkippedVolatile;
  });
  EXPECT_EQ(offered, first);
}

TEST(CacheMonitor, ThresholdGatesForcedPrefetch) {
  MrdPolicyOptions options;
  options.prefetch_threshold = 0.25;
  Fixture f(options);
  EXPECT_TRUE(f.monitor->prefetch_may_evict(/*free=*/300, /*capacity=*/1000));
  EXPECT_FALSE(f.monitor->prefetch_may_evict(/*free=*/100, /*capacity=*/1000));
}

TEST(CacheMonitor, InactiveResidentsCountAsReclaimable) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 400);
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  // free=0 but 400 bytes of inactive resident data > 25% of 1000.
  EXPECT_TRUE(f.monitor->prefetch_may_evict(0, 1000));
}

TEST(CacheMonitor, SwapImprovesComparesAgainstFurthestResident) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  EXPECT_TRUE(f.monitor->prefetch_swap_improves(block(f.near_rdd, 0)));
  // Fill with near blocks only: a far candidate does not improve.
  f.monitor->on_block_evicted(block(f.far_rdd, 0));
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  EXPECT_FALSE(f.monitor->prefetch_swap_improves(block(f.far_rdd, 0)));
}

TEST(CacheMonitor, PromotionDeclinedForFartherBlock) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 100);
  EXPECT_FALSE(f.monitor->should_promote(block(f.far_rdd, 0), /*free=*/0));
  EXPECT_TRUE(f.monitor->should_promote(block(f.near_rdd, 1), /*free=*/0));
  // Anything fits when free space suffices.
  EXPECT_TRUE(f.monitor->should_promote(block(f.far_rdd, 0), /*free=*/1000));
}

// ---- Ablation switches ----

TEST(CacheMonitor, EvictionOffFallsBackToLru) {
  MrdPolicyOptions options;
  options.mrd_eviction = false;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  // LRU: far was cached first -> least recently used -> victim, regardless
  // of distance... and here LRU and MRD agree; flip recency to tell apart.
  f.monitor->on_block_accessed(block(f.far_rdd, 0));
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 0));
}

TEST(CacheMonitor, PrefetchInsertUsesDistanceEvenInPrefetchOnlyMode) {
  MrdPolicyOptions options;
  options.mrd_eviction = false;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_accessed(block(f.far_rdd, 0));
  f.monitor->on_prefetch_insert(true);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.far_rdd, 0));
  f.monitor->on_prefetch_insert(false);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 0));
}

TEST(CacheMonitor, PrefetchOffProposesNothing) {
  MrdPolicyOptions options;
  options.mrd_prefetch = false;
  Fixture f(options);
  EXPECT_TRUE(collect_prefetch(*f.monitor).empty());
  EXPECT_FALSE(f.monitor->prefetch_may_evict(1000, 1000));
  EXPECT_FALSE(f.monitor->prefetch_swap_improves(block(f.near_rdd, 0)));
}

TEST(CacheMonitor, GuardedPrefetchDropsUselessForcedInsert) {
  MrdPolicyOptions options;
  options.guarded_prefetch = true;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  EXPECT_FALSE(f.monitor->admit_prefetch(block(f.far_rdd, 0)));
  EXPECT_TRUE(f.monitor->admit_prefetch(block(f.near_rdd, 1)));
  // Unguarded (paper default) admits everything.
  Fixture aggressive;
  aggressive.monitor->on_block_cached(block(aggressive.near_rdd, 0), 10);
  EXPECT_TRUE(aggressive.monitor->admit_prefetch(block(aggressive.far_rdd, 0)));
}

TEST(CacheMonitor, NamesReflectConfiguration) {
  Fixture full;
  EXPECT_EQ(full.monitor->name(), "MRD");
  MrdPolicyOptions evict_only;
  evict_only.mrd_prefetch = false;
  Fixture e(evict_only);
  EXPECT_EQ(e.monitor->name(), "MRD-evict");
  MrdPolicyOptions prefetch_only;
  prefetch_only.mrd_eviction = false;
  Fixture p(prefetch_only);
  EXPECT_EQ(p.monitor->name(), "MRD-prefetch");
}

// ---- Property: incremental bookkeeping == from-scratch recomputation ----
//
// The monitor maintains several incrementally-updated aggregates (the
// reclaimable-bytes counter behind prefetch_may_evict, the
// furthest-resident memo, the per-RDD tallies behind choose_victim /
// purge_candidates, and the prefetch frontier cursor). This drives random
// insert / evict / probe / purge / prefetch / stage-advance sequences over
// random DAGs and checks every aggregate against a from-scratch
// recomputation over a shadow resident set after each event.

struct PropertyHarness {
  std::vector<RddId> rdds;  // filled by make_plan: must precede `plan`
  ExecutionPlan plan;
  std::shared_ptr<MrdManager> manager;
  std::unique_ptr<CacheMonitor> monitor;
  std::map<BlockId, std::uint64_t> resident;  // shadow copy

  PropertyHarness(std::mt19937& rng) : plan(make_plan(rng)) {
    manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                           DistanceMetric::kStage, 2);
    monitor = std::make_unique<CacheMonitor>(manager, /*node=*/0,
                                             /*num_nodes=*/2,
                                             MrdPolicyOptions{});
    monitor->on_application_start(plan);
  }

  ExecutionPlan make_plan(std::mt19937& rng) {
    SparkContext sc("prop");
    const std::size_t num_rdds = 3 + rng() % 3;
    const std::uint32_t parts = 4 + rng() % 5;
    std::vector<Dataset> cached;
    for (std::size_t i = 0; i < num_rdds; ++i) {
      Dataset d = sc.text_file("src" + std::to_string(i), parts,
                               50 + rng() % 150)
                      .map("c" + std::to_string(i))
                      .cache();
      rdds.push_back(d.id());
      cached.push_back(d);
    }
    const std::size_t num_jobs = 3 + rng() % 3;
    for (std::size_t j = 0; j < num_jobs; ++j) {
      Dataset chain =
          cached[rng() % cached.size()].map("j" + std::to_string(j));
      const std::size_t extra = rng() % 3;
      for (std::size_t k = 0; k < extra; ++k) {
        chain = chain.zip_partitions(
            cached[rng() % cached.size()],
            "z" + std::to_string(j) + "_" + std::to_string(k));
      }
      chain.count("job" + std::to_string(j));
    }
    return DagScheduler::plan(std::move(sc).build_shared());
  }

  // Deterministic stand-in for "has a disk copy" — a stable property, so
  // answering kSkipped for it honors the sink contract. RDDs with
  // rdd % 4 == 1 are entirely off-disk, exercising the whole-RDD
  // budget.rdd_on_disk pre-filter.
  static bool on_disk(const BlockId& b) {
    if (b.rdd % 4 == 1) return false;
    return (static_cast<std::uint64_t>(b.rdd) * 31 + b.partition) % 3 != 0;
  }

  std::uint64_t oracle_reclaimable() const {
    std::uint64_t sum = 0;
    for (const auto& [b, bytes] : resident) {
      if (std::isinf(manager->distance(b.rdd))) sum += bytes;
    }
    return sum;
  }

  double oracle_furthest() const {
    double furthest = -1.0;
    for (const auto& [b, bytes] : resident) {
      furthest = std::max(furthest, manager->distance(b.rdd));
    }
    return furthest;
  }

  std::optional<BlockId> oracle_victim() const {
    std::optional<BlockId> best;
    double best_distance = 0.0;
    for (const auto& [b, bytes] : resident) {
      const double d = manager->distance(b.rdd);
      if (!best || d > best_distance ||
          (d == best_distance && b > *best)) {
        best = b;
        best_distance = d;
      }
    }
    return best;
  }

  /// The pre-cursor enumeration: full prefetch order, local non-resident
  /// blocks, on-disk filter, first `slots` issues.
  std::vector<BlockId> oracle_issues(std::size_t slots) const {
    std::vector<BlockId> out;
    for (RddId rdd : manager->prefetch_order()) {
      const RddInfo& info = plan.app().rdd(rdd);
      for (PartitionIndex p = 0; p < info.num_partitions; p += 2) {
        const BlockId b{rdd, p};
        if (resident.count(b) != 0) continue;
        if (!on_disk(b)) continue;
        out.push_back(b);
        if (out.size() == slots) return out;
      }
    }
    return out;
  }

  std::vector<BlockId> run_prefetch(std::size_t slots) {
    PrefetchBudget budget;
    budget.queue_slots = slots;
    // Named local: PrefetchBudget::rdd_on_disk is a non-owning FunctionRef.
    const auto rdd_on_disk = [](RddId rdd) { return rdd % 4 != 1; };
    budget.rdd_on_disk = rdd_on_disk;
    std::vector<BlockId> issued;
    monitor->prefetch_candidates(budget, [&](const BlockId& b) {
      if (!on_disk(b)) return PrefetchOffer::kSkipped;
      issued.push_back(b);
      return PrefetchOffer::kIssued;
    });
    return issued;
  }

  void check_aggregates() {
    ASSERT_EQ(monitor->reclaimable_resident_bytes(), oracle_reclaimable());
    ASSERT_EQ(monitor->furthest_resident_distance(), oracle_furthest());
    ASSERT_EQ(monitor->choose_victim(), oracle_victim());
  }
};

TEST(CacheMonitorProperty, IncrementalStateMatchesFromScratchRecomputation) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed * 7919);
    PropertyHarness h(rng);
    for (const JobInfo& job : h.plan.jobs()) {
      for (const StageExecution& rec : job.stages) {
        if (!rec.executed) continue;
        h.monitor->on_stage_start(h.plan, rec.job, rec.stage);
        h.check_aggregates();
        const std::size_t num_events = 4 + rng() % 5;
        for (std::size_t e = 0; e < num_events; ++e) {
          switch (rng() % 5) {
            case 0: {  // cache a random local block (may re-cache)
              const RddId r = h.rdds[rng() % h.rdds.size()];
              const RddInfo& info = h.plan.app().rdd(r);
              const PartitionIndex p = static_cast<PartitionIndex>(
                  (rng() % ((info.num_partitions + 1) / 2)) * 2);
              h.monitor->on_block_cached(block(r, p),
                                         info.bytes_per_partition);
              h.resident[block(r, p)] = info.bytes_per_partition;
              break;
            }
            case 1: {  // evict a random resident
              if (h.resident.empty()) break;
              auto it = h.resident.begin();
              std::advance(it, rng() % h.resident.size());
              h.monitor->on_block_evicted(it->first);
              h.resident.erase(it);
              break;
            }
            case 2: {  // consume one of this stage's references early
              if (rec.probes.empty()) break;
              h.monitor->on_rdd_probed(
                  h.plan, rec.probes[rng() % rec.probes.size()], rec.stage);
              break;
            }
            case 3: {  // purge pass, then apply it like the master would
              std::vector<BlockId> purge;
              h.monitor->purge_candidates(&purge);
              std::vector<BlockId> expected;
              for (RddId rdd : h.manager->purge_rdds()) {
                for (const auto& [b, bytes] : h.resident) {
                  if (b.rdd == rdd) expected.push_back(b);
                }
              }
              std::sort(purge.begin(), purge.end());
              std::sort(expected.begin(), expected.end());
              ASSERT_EQ(purge, expected);
              for (const BlockId& b : purge) {
                h.monitor->on_block_evicted(b);
                h.resident.erase(b);
              }
              break;
            }
            case 4: {  // budgeted prefetch pass vs full-enumeration oracle
              const std::size_t slots = 1 + rng() % 6;
              ASSERT_EQ(h.run_prefetch(slots), h.oracle_issues(slots));
              break;
            }
          }
          h.check_aggregates();
        }
        h.monitor->on_stage_end(h.plan, rec.job, rec.stage);
        h.check_aggregates();
      }
    }
  }
}

// ---- Policy registry ----

TEST(PolicyRegistry, KnownNamesConstruct) {
  for (const std::string& name : known_policies()) {
    PolicyConfig config;
    config.name = name;
    const PolicySetup setup = make_policy(config, 4);
    ASSERT_TRUE(setup.factory != nullptr) << name;
    auto policy = setup.factory(0, 4);
    ASSERT_NE(policy, nullptr) << name;
  }
}

TEST(PolicyRegistry, UnknownNameThrows) {
  PolicyConfig config;
  config.name = "nonsense";
  EXPECT_ANY_THROW(make_policy(config, 4));
}

TEST(PolicyRegistry, MrdVariantsShareOneManager) {
  PolicyConfig config;
  config.name = "mrd";
  const PolicySetup setup = make_policy(config, 4);
  ASSERT_NE(setup.manager, nullptr);
  auto a = setup.factory(0, 4);
  auto b = setup.factory(1, 4);
  auto* ma = &dynamic_cast<CacheMonitor&>(*a).manager();
  auto* mb = &dynamic_cast<CacheMonitor&>(*b).manager();
  EXPECT_EQ(ma, mb);
  EXPECT_EQ(ma, setup.manager.get());
}

TEST(PolicyRegistry, NonMrdPoliciesHaveNoManager) {
  PolicyConfig config;
  config.name = "lru";
  EXPECT_EQ(make_policy(config, 4).manager, nullptr);
}

TEST(PolicyRegistry, MrdJobUsesJobMetric) {
  PolicyConfig config;
  config.name = "mrd-job";
  const PolicySetup setup = make_policy(config, 4);
  ASSERT_NE(setup.manager, nullptr);
  EXPECT_EQ(setup.manager->metric(), DistanceMetric::kJob);
}

}  // namespace
}  // namespace mrd
