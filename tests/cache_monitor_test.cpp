// CacheMonitor: the per-node MRD policy (eviction, purge, prefetch,
// ablations).
#include <gtest/gtest.h>

#include "api/spark_context.h"
#include "core/cache_monitor.h"
#include "core/policy_registry.h"
#include "dag/dag_scheduler.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

struct Fixture {
  ExecutionPlan plan;
  RddId near_rdd;
  RddId far_rdd;
  std::shared_ptr<MrdManager> manager;
  std::unique_ptr<CacheMonitor> monitor;

  explicit Fixture(const MrdPolicyOptions& options = {}) : plan(make_plan()) {
    manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                           DistanceMetric::kStage, 1);
    monitor = std::make_unique<CacheMonitor>(manager, /*node=*/0,
                                             /*num_nodes=*/1, options);
    monitor->on_application_start(plan);
    monitor->on_stage_start(plan, 0, 0);
  }

  ExecutionPlan make_plan() {
    SparkContext sc("app");
    auto near = sc.text_file("a", 2, 100).map("near").cache();
    auto far = sc.text_file("b", 2, 100).map("far").cache();
    near.zip_partitions(far, "z").count("job0");
    near.map("m1").count("job1");
    far.map("m2").count("job2");
    near_rdd = near.id();
    far_rdd = far.id();
    return DagScheduler::plan(std::move(sc).build_shared());
  }
};

TEST(CacheMonitor, EvictsLargestDistance) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.far_rdd, 0));
}

TEST(CacheMonitor, InactiveEvictedBeforeActive) {
  Fixture f;
  // Consume all of far's references -> infinite distance.
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  // Re-announce one future reference for near only.
  // (Simplest: new fixture state — far stays inactive, near consumed too;
  // so cache both and expect the stable-order victim among infinites.)
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  const auto victim = f.monitor->choose_victim();
  ASSERT_TRUE(victim.has_value());
  // Both infinite: stable tie-break picks the greatest BlockId.
  EXPECT_EQ(*victim, block(f.far_rdd, 0));
}

TEST(CacheMonitor, StableTieBreakKeepsFixedSubset) {
  Fixture f;
  // All blocks of one RDD share a distance; victim choice must be stable
  // (greatest partition), not recency-cyclic.
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 1), 10);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 1));
  f.monitor->on_block_accessed(block(f.near_rdd, 1));  // recency must not flip
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 1));
}

TEST(CacheMonitor, PurgeListsInactiveResidentBlocks) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  EXPECT_TRUE(f.monitor->purge_candidates().empty());
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  const auto purge = f.monitor->purge_candidates();
  ASSERT_EQ(purge.size(), 1u);
  EXPECT_EQ(purge[0], block(f.far_rdd, 0));
}

TEST(CacheMonitor, PrefetchCandidatesAreNearestFirstNonResident) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  const auto candidates = f.monitor->prefetch_candidates(1000, 10000);
  ASSERT_GE(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], block(f.near_rdd, 1));  // partition 0 resident
  EXPECT_EQ(candidates[1], block(f.far_rdd, 0));
}

TEST(CacheMonitor, ThresholdGatesForcedPrefetch) {
  MrdPolicyOptions options;
  options.prefetch_threshold = 0.25;
  Fixture f(options);
  EXPECT_TRUE(f.monitor->prefetch_may_evict(/*free=*/300, /*capacity=*/1000));
  EXPECT_FALSE(f.monitor->prefetch_may_evict(/*free=*/100, /*capacity=*/1000));
}

TEST(CacheMonitor, InactiveResidentsCountAsReclaimable) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 400);
  for (const JobInfo& job : f.plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      f.manager->on_stage_start(f.plan, rec.job, rec.stage);
      f.manager->on_stage_end(f.plan, rec.job, rec.stage);
    }
  }
  // free=0 but 400 bytes of inactive resident data > 25% of 1000.
  EXPECT_TRUE(f.monitor->prefetch_may_evict(0, 1000));
}

TEST(CacheMonitor, SwapImprovesComparesAgainstFurthestResident) {
  Fixture f;
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  EXPECT_TRUE(f.monitor->prefetch_swap_improves(block(f.near_rdd, 0)));
  // Fill with near blocks only: a far candidate does not improve.
  f.monitor->on_block_evicted(block(f.far_rdd, 0));
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  EXPECT_FALSE(f.monitor->prefetch_swap_improves(block(f.far_rdd, 0)));
}

TEST(CacheMonitor, PromotionDeclinedForFartherBlock) {
  Fixture f;
  f.monitor->on_block_cached(block(f.near_rdd, 0), 100);
  EXPECT_FALSE(f.monitor->should_promote(block(f.far_rdd, 0), /*free=*/0));
  EXPECT_TRUE(f.monitor->should_promote(block(f.near_rdd, 1), /*free=*/0));
  // Anything fits when free space suffices.
  EXPECT_TRUE(f.monitor->should_promote(block(f.far_rdd, 0), /*free=*/1000));
}

// ---- Ablation switches ----

TEST(CacheMonitor, EvictionOffFallsBackToLru) {
  MrdPolicyOptions options;
  options.mrd_eviction = false;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  // LRU: far was cached first -> least recently used -> victim, regardless
  // of distance... and here LRU and MRD agree; flip recency to tell apart.
  f.monitor->on_block_accessed(block(f.far_rdd, 0));
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 0));
}

TEST(CacheMonitor, PrefetchInsertUsesDistanceEvenInPrefetchOnlyMode) {
  MrdPolicyOptions options;
  options.mrd_eviction = false;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.far_rdd, 0), 10);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  f.monitor->on_block_accessed(block(f.far_rdd, 0));
  f.monitor->on_prefetch_insert(true);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.far_rdd, 0));
  f.monitor->on_prefetch_insert(false);
  EXPECT_EQ(f.monitor->choose_victim(), block(f.near_rdd, 0));
}

TEST(CacheMonitor, PrefetchOffProposesNothing) {
  MrdPolicyOptions options;
  options.mrd_prefetch = false;
  Fixture f(options);
  EXPECT_TRUE(f.monitor->prefetch_candidates(1000, 10000).empty());
  EXPECT_FALSE(f.monitor->prefetch_may_evict(1000, 1000));
  EXPECT_FALSE(f.monitor->prefetch_swap_improves(block(f.near_rdd, 0)));
}

TEST(CacheMonitor, GuardedPrefetchDropsUselessForcedInsert) {
  MrdPolicyOptions options;
  options.guarded_prefetch = true;
  Fixture f(options);
  f.monitor->on_block_cached(block(f.near_rdd, 0), 10);
  EXPECT_FALSE(f.monitor->admit_prefetch(block(f.far_rdd, 0)));
  EXPECT_TRUE(f.monitor->admit_prefetch(block(f.near_rdd, 1)));
  // Unguarded (paper default) admits everything.
  Fixture aggressive;
  aggressive.monitor->on_block_cached(block(aggressive.near_rdd, 0), 10);
  EXPECT_TRUE(aggressive.monitor->admit_prefetch(block(aggressive.far_rdd, 0)));
}

TEST(CacheMonitor, NamesReflectConfiguration) {
  Fixture full;
  EXPECT_EQ(full.monitor->name(), "MRD");
  MrdPolicyOptions evict_only;
  evict_only.mrd_prefetch = false;
  Fixture e(evict_only);
  EXPECT_EQ(e.monitor->name(), "MRD-evict");
  MrdPolicyOptions prefetch_only;
  prefetch_only.mrd_eviction = false;
  Fixture p(prefetch_only);
  EXPECT_EQ(p.monitor->name(), "MRD-prefetch");
}

// ---- Policy registry ----

TEST(PolicyRegistry, KnownNamesConstruct) {
  for (const std::string& name : known_policies()) {
    PolicyConfig config;
    config.name = name;
    const PolicySetup setup = make_policy(config, 4);
    ASSERT_TRUE(setup.factory != nullptr) << name;
    auto policy = setup.factory(0, 4);
    ASSERT_NE(policy, nullptr) << name;
  }
}

TEST(PolicyRegistry, UnknownNameThrows) {
  PolicyConfig config;
  config.name = "nonsense";
  EXPECT_ANY_THROW(make_policy(config, 4));
}

TEST(PolicyRegistry, MrdVariantsShareOneManager) {
  PolicyConfig config;
  config.name = "mrd";
  const PolicySetup setup = make_policy(config, 4);
  ASSERT_NE(setup.manager, nullptr);
  auto a = setup.factory(0, 4);
  auto b = setup.factory(1, 4);
  auto* ma = &dynamic_cast<CacheMonitor&>(*a).manager();
  auto* mb = &dynamic_cast<CacheMonitor&>(*b).manager();
  EXPECT_EQ(ma, mb);
  EXPECT_EQ(ma, setup.manager.get());
}

TEST(PolicyRegistry, NonMrdPoliciesHaveNoManager) {
  PolicyConfig config;
  config.name = "lru";
  EXPECT_EQ(make_policy(config, 4).manager, nullptr);
}

TEST(PolicyRegistry, MrdJobUsesJobMetric) {
  PolicyConfig config;
  config.name = "mrd-job";
  const PolicySetup setup = make_policy(config, 4);
  ASSERT_NE(setup.manager, nullptr);
  EXPECT_EQ(setup.manager->metric(), DistanceMetric::kJob);
}

}  // namespace
}  // namespace mrd
