// Randomized differential suite for the batch-grained admission pipeline:
// MemoryStore::insert_batch + CachePolicy::choose_victims must reproduce the
// serial per-block decision stream byte for byte, for every policy.
//
// Two independent policy instances of the same configuration observe the
// same DAG events. One drives a test-local serial oracle that replicates the
// pre-batch MemoryStore::insert loop (probe -> per-eviction choose_victim
// with FIFO fallback -> insert); the other sits behind the real MemoryStore
// batch path. After every batch the suite compares the flattened policy
// event logs (cached/accessed/evicted, in order), the eviction streams with
// sizes, the stored/refreshed/rejected counts, the used-byte totals and the
// resident sets. A full drain through a store-filling insert at the end
// compares the bulk-eviction victim order (including the FIFO fallback
// rules) against the serial argmax loop.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/memory_store.h"
#include "core/policy_registry.h"
#include "dag/dag_scheduler.h"
#include "util/flat_hash.h"
#include "util/random.h"
#include "workloads/workloads.h"

namespace mrd {
namespace {

constexpr const char* kPolicies[] = {"lru",     "fifo",   "lrc",
                                     "memtune", "belady", "mrd"};

struct PolicyEvent {
  char kind;  // 'C'ached, 'A'ccessed, 'E'victed
  BlockId block;
  std::uint64_t bytes;  // 0 for accesses/evictions

  bool operator==(const PolicyEvent& o) const {
    return kind == o.kind && block == o.block && bytes == o.bytes;
  }
};

std::ostream& operator<<(std::ostream& os, const PolicyEvent& e) {
  return os << e.kind << " " << to_string(e.block) << " (" << e.bytes << ")";
}

/// Forwards everything to an inner policy while logging the per-block
/// lifecycle events. on_blocks_cached logs each block, then hands the inner
/// policy the *batched* call — so the inner policy runs exactly its
/// production path while the log stays flattened and comparable against a
/// per-block caller.
class RecordingPolicy : public CachePolicy {
 public:
  explicit RecordingPolicy(std::unique_ptr<CachePolicy> inner)
      : inner_(std::move(inner)) {}

  const std::vector<PolicyEvent>& log() const { return log_; }

  std::string_view name() const override { return inner_->name(); }
  void on_application_start(const ExecutionPlan& plan) override {
    inner_->on_application_start(plan);
  }
  void on_job_start(const ExecutionPlan& plan, JobId job) override {
    inner_->on_job_start(plan, job);
  }
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override {
    inner_->on_stage_start(plan, job, stage);
  }
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override {
    inner_->on_stage_end(plan, job, stage);
  }
  void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                     StageId stage) override {
    inner_->on_rdd_probed(plan, rdd, stage);
  }
  void on_block_cached(const BlockId& block, std::uint64_t bytes) override {
    log_.push_back({'C', block, bytes});
    inner_->on_block_cached(block, bytes);
  }
  void on_blocks_cached(const BlockId* blocks, std::size_t count,
                        std::uint64_t bytes_each) override {
    for (std::size_t i = 0; i < count; ++i) {
      log_.push_back({'C', blocks[i], bytes_each});
    }
    inner_->on_blocks_cached(blocks, count, bytes_each);
  }
  void on_block_accessed(const BlockId& block) override {
    log_.push_back({'A', block, 0});
    inner_->on_block_accessed(block);
  }
  void on_block_evicted(const BlockId& block) override {
    log_.push_back({'E', block, 0});
    inner_->on_block_evicted(block);
  }
  std::optional<BlockId> choose_victim() override {
    return inner_->choose_victim();
  }
  void choose_victims(std::uint64_t bytes_needed,
                      const EvictionSink& sink) override {
    inner_->choose_victims(bytes_needed, sink);
  }
  void purge_candidates(std::vector<BlockId>* out) override {
    inner_->purge_candidates(out);
  }

 private:
  std::unique_ptr<CachePolicy> inner_;
  std::vector<PolicyEvent> log_;
};

/// The pre-batch serial store semantics, from scratch: per-block insert,
/// each pressure eviction asking choose_victim() once, with the store's
/// FIFO-fallback rules (policy gave up, or nominated a non-resident).
class SerialStoreOracle {
 public:
  SerialStoreOracle(std::uint64_t capacity, CachePolicy* policy)
      : capacity_(capacity), policy_(policy) {}

  void insert(const BlockId& block, std::uint64_t bytes) {
    if (bytes > capacity_) {  // can never fit
      ++rejected_;
      return;
    }
    const std::uint64_t key = pack_block_id(block);
    if (blocks_.count(key) != 0) {
      policy_->on_block_accessed(block);
      ++refreshed_;
      return;
    }
    while (used_ + bytes > capacity_) evict_one();
    blocks_.emplace(key, Entry{bytes, order_.insert(order_.end(), key)});
    used_ += bytes;
    ++stored_;
    policy_->on_block_cached(block, bytes);
  }

  std::size_t stored() const { return stored_; }
  std::size_t refreshed() const { return refreshed_; }
  std::size_t rejected() const { return rejected_; }
  std::uint64_t used() const { return used_; }
  const std::vector<std::pair<BlockId, std::uint64_t>>& evicted() const {
    return evicted_;
  }

  std::vector<BlockId> resident_blocks() const {
    std::vector<BlockId> out;  // std::map iterates key-sorted, which is
    out.reserve(blocks_.size());  // BlockId order for packed keys
    for (const auto& [key, entry] : blocks_) {
      out.push_back(unpack_block_id(key));
    }
    return out;
  }

 private:
  struct Entry {
    std::uint64_t bytes;
    std::list<std::uint64_t>::iterator order;
  };

  void evict_one() {
    const std::optional<BlockId> choice = policy_->choose_victim();
    std::uint64_t key;
    if (choice && blocks_.count(pack_block_id(*choice)) != 0) {
      key = pack_block_id(*choice);
    } else {
      // Policy gave up or nominated a non-resident: the store evicts its
      // own oldest insertion so progress is never blocked.
      key = order_.front();
    }
    const auto it = blocks_.find(key);
    const BlockId victim = unpack_block_id(key);
    used_ -= it->second.bytes;
    evicted_.emplace_back(victim, it->second.bytes);
    order_.erase(it->second.order);
    blocks_.erase(it);
    policy_->on_block_evicted(victim);
  }

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  CachePolicy* policy_;
  std::map<std::uint64_t, Entry> blocks_;
  std::list<std::uint64_t> order_;
  std::size_t stored_ = 0;
  std::size_t refreshed_ = 0;
  std::size_t rejected_ = 0;
  std::vector<std::pair<BlockId, std::uint64_t>> evicted_;
};

/// Deterministic per-block size. RDDs divisible by 3 hold two size classes
/// (partition % 8 >= 6 doubles), exercising the policies' mixed-size
/// residency tracking; a block's size never varies between inserts, as the
/// store requires.
std::uint64_t bytes_for(RddId rdd, PartitionIndex partition) {
  std::uint64_t base = 16 * (1 + rdd % 4);
  if (rdd % 3 == 0 && partition % 8 >= 6) base *= 2;
  return base;
}

/// A same-size batch over one RDD: a random window of one size class, in a
/// randomly shuffled order, occasionally with a duplicate (the second
/// occurrence must refresh).
std::vector<BlockId> random_batch(Rng& rng, const RddInfo& info,
                                  std::uint64_t* bytes_each) {
  const bool high_class =
      info.id % 3 == 0 && rng.bernoulli(0.4);
  std::vector<BlockId> batch;
  const PartitionIndex start =
      static_cast<PartitionIndex>(rng.next_below(info.num_partitions));
  const std::size_t want = 1 + rng.next_below(24);
  for (PartitionIndex p = start; p < info.num_partitions && batch.size() < want;
       ++p) {
    if (info.id % 3 == 0 && (p % 8 >= 6) != high_class) continue;
    batch.push_back(BlockId{info.id, p});
  }
  if (batch.empty()) batch.push_back(BlockId{info.id, start});
  for (std::size_t i = batch.size(); i > 1; --i) {
    if (rng.bernoulli(0.3)) {
      std::swap(batch[i - 1], batch[rng.next_below(i)]);
    }
  }
  if (batch.size() > 1 && rng.bernoulli(0.25)) {
    batch.push_back(batch[rng.next_below(batch.size())]);
  }
  *bytes_each = bytes_for(batch.front().rdd, batch.front().partition);
  return batch;
}

struct Differential {
  std::unique_ptr<RecordingPolicy> serial_policy;
  std::unique_ptr<RecordingPolicy> batch_policy;
  std::unique_ptr<SerialStoreOracle> oracle;
  std::unique_ptr<MemoryStore> store;
  BatchInsertResult batch_result;
  std::size_t serial_evictions_seen = 0;

  Differential(const std::string& policy_name, std::uint64_t capacity) {
    PolicyConfig config;
    config.name = policy_name;
    // Two independent instances (for MRD: two independent managers), fed
    // identical event sequences.
    serial_policy = std::make_unique<RecordingPolicy>(
        make_policy(config, 1).factory(0, 1));
    batch_policy = std::make_unique<RecordingPolicy>(
        make_policy(config, 1).factory(0, 1));
    oracle = std::make_unique<SerialStoreOracle>(capacity, serial_policy.get());
    store = std::make_unique<MemoryStore>(capacity, batch_policy.get());
  }

  void broadcast_application_start(const ExecutionPlan& plan) {
    serial_policy->on_application_start(plan);
    batch_policy->on_application_start(plan);
  }
  void broadcast_job_start(const ExecutionPlan& plan, JobId job) {
    serial_policy->on_job_start(plan, job);
    batch_policy->on_job_start(plan, job);
  }
  void broadcast_stage_start(const ExecutionPlan& plan, JobId job,
                             StageId stage) {
    serial_policy->on_stage_start(plan, job, stage);
    batch_policy->on_stage_start(plan, job, stage);
  }
  void broadcast_stage_end(const ExecutionPlan& plan, JobId job,
                           StageId stage) {
    serial_policy->on_stage_end(plan, job, stage);
    batch_policy->on_stage_end(plan, job, stage);
  }
  void broadcast_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                            StageId stage) {
    serial_policy->on_rdd_probed(plan, rdd, stage);
    batch_policy->on_rdd_probed(plan, rdd, stage);
  }

  /// Feeds one batch through both sides and compares every observable.
  void insert_and_compare(const std::vector<BlockId>& batch,
                          std::uint64_t bytes_each) {
    const std::size_t serial_stored = oracle->stored();
    const std::size_t serial_refreshed = oracle->refreshed();
    const std::size_t serial_rejected = oracle->rejected();
    for (const BlockId& block : batch) oracle->insert(block, bytes_each);

    batch_result.stored = batch_result.refreshed = batch_result.rejected = 0;
    batch_result.evicted.clear();
    store->insert_batch(batch.data(), batch.size(), bytes_each, &batch_result);

    ASSERT_EQ(batch_result.stored, oracle->stored() - serial_stored);
    ASSERT_EQ(batch_result.refreshed, oracle->refreshed() - serial_refreshed);
    ASSERT_EQ(batch_result.rejected, oracle->rejected() - serial_rejected);
    const auto& all_evicted = oracle->evicted();
    const std::vector<std::pair<BlockId, std::uint64_t>> serial_new(
        all_evicted.begin() +
            static_cast<std::ptrdiff_t>(serial_evictions_seen),
        all_evicted.end());
    ASSERT_EQ(batch_result.evicted, serial_new);
    serial_evictions_seen = all_evicted.size();
    ASSERT_EQ(store->used(), oracle->used());
    compare_logs();
  }

  void compare_logs() {
    ASSERT_EQ(serial_policy->log().size(), batch_policy->log().size());
    ASSERT_EQ(serial_policy->log(), batch_policy->log());
  }

  void compare_residents() {
    ASSERT_EQ(store->resident_blocks(), oracle->resident_blocks());
  }
};

/// Runs the random insert storm for one policy over one plan and seed.
void run_differential(const std::string& policy_name, std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  const char* kWorkloads[] = {"pr", "lp", "km"};
  WorkloadParams params;
  params.partitions = 12 + static_cast<std::uint32_t>(seed % 7);
  const ExecutionPlan plan = DagScheduler::plan(
      find_workload(kWorkloads[seed % 3])->make(params));

  std::vector<RddId> persisted;
  for (const RddInfo& rdd : plan.app().rdds()) {
    if (rdd.persisted) persisted.push_back(rdd.id);
  }
  ASSERT_FALSE(persisted.empty());

  const std::uint64_t capacity = 64 * (8 + rng.next_below(40));
  Differential diff(policy_name, capacity);
  diff.broadcast_application_start(plan);

  for (const JobInfo& job : plan.jobs()) {
    diff.broadcast_job_start(plan, job.id);
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      diff.broadcast_stage_start(plan, job.id, rec.stage);
      const std::size_t batches = 1 + rng.next_below(3);
      for (std::size_t b = 0; b < batches; ++b) {
        const RddId rdd = persisted[rng.next_below(persisted.size())];
        std::uint64_t bytes_each = 0;
        const std::vector<BlockId> batch =
            random_batch(rng, plan.app().rdd(rdd), &bytes_each);
        if (rng.bernoulli(0.06)) bytes_each = capacity + 1;  // reject path
        ASSERT_NO_FATAL_FAILURE(diff.insert_and_compare(batch, bytes_each));
      }
      for (RddId probed : rec.probes) {
        diff.broadcast_rdd_probed(plan, probed, rec.stage);
      }
      diff.broadcast_stage_end(plan, job.id, rec.stage);
      ASSERT_NO_FATAL_FAILURE(diff.compare_residents());
    }
  }

  // Full-drain: a store-filling insert forces every resident out through
  // the real pressure machinery (streaming bulk eviction + fallbacks),
  // comparing the complete victim order against the serial argmax loop.
  const std::vector<BlockId> drain{BlockId{0, 1u << 20}};
  ASSERT_NO_FATAL_FAILURE(diff.insert_and_compare(drain, capacity));
  ASSERT_NO_FATAL_FAILURE(diff.compare_residents());
}

TEST(BatchEvictionProperty, BatchPipelineMatchesSerialOracle) {
  for (const char* policy : kPolicies) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      SCOPED_TRACE(std::string(policy) + " seed " + std::to_string(seed));
      ASSERT_NO_FATAL_FAILURE(run_differential(policy, seed));
    }
  }
}

// The end-to-end regression shape: a store exactly one working set large,
// alternately fed two RDDs so every admission evicts through the policy's
// streaming bulk path (the cache_writes hot loop). Deterministic, so a
// divergence pinpoints the batch pipeline rather than the generator.
TEST(BatchEvictionProperty, ThrashingBatchesMatchSerialOracle) {
  const ExecutionPlan plan =
      DagScheduler::plan(find_workload("pr")->make({}));
  constexpr PartitionIndex kBlocks = 96;
  for (const char* policy : kPolicies) {
    SCOPED_TRACE(policy);
    Differential diff(policy, std::uint64_t{16} * kBlocks);
    diff.broadcast_application_start(plan);
    diff.broadcast_job_start(plan, 0);
    diff.broadcast_stage_start(plan, 0, 0);
    std::vector<BlockId> batch_a, batch_b;
    for (PartitionIndex p = 0; p < kBlocks; ++p) {
      batch_a.push_back(BlockId{1, p});
      batch_b.push_back(BlockId{2, p});
    }
    for (int round = 0; round < 4; ++round) {
      ASSERT_NO_FATAL_FAILURE(diff.insert_and_compare(batch_a, 16));
      ASSERT_NO_FATAL_FAILURE(diff.insert_and_compare(batch_b, 16));
      ASSERT_NO_FATAL_FAILURE(diff.compare_residents());
    }
    // The alternation must exercise real pressure. DAG-aware policies evict
    // fewer blocks than LRU/FIFO here (they sacrifice the incoming RDD and
    // keep the other resident, so re-inserts refresh), but every policy must
    // displace at least a full working set over the run.
    EXPECT_GE(diff.oracle->evicted().size(), std::size_t{kBlocks});
  }
}

}  // namespace
}  // namespace mrd
