#include <gtest/gtest.h>

#include <memory>

#include "cache/lru.h"
#include "cluster/block_manager.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

ClusterConfig small_cluster(std::uint64_t cache_bytes, bool spill = true) {
  ClusterConfig c;
  c.num_nodes = 1;
  c.cache_bytes_per_node = cache_bytes;
  c.spill_on_evict = spill;
  c.disk_mb_per_s = 1.0;  // 1 MB/s: easy arithmetic on load times
  return c;
}

std::unique_ptr<BlockManager> make_bm(const ClusterConfig& config) {
  return std::make_unique<BlockManager>(0, config, std::make_unique<LruPolicy>());
}

TEST(BlockManager, ColdProbeThenCacheThenHit) {
  const auto config = small_cluster(100);
  auto bm = make_bm(config);
  IoCharge charge;
  EXPECT_EQ(bm->probe(block(1, 0), 40, &charge), ProbeOutcome::kCold);
  bm->cache_block(block(1, 0), 40, &charge);
  EXPECT_EQ(bm->probe(block(1, 0), 40, &charge), ProbeOutcome::kHit);
  EXPECT_EQ(bm->stats().probes, 2u);
  EXPECT_EQ(bm->stats().hits, 1u);
  EXPECT_EQ(bm->stats().cold_misses, 1u);
}

TEST(BlockManager, EvictionSpillsOnceAndDiskHitReads) {
  const auto config = small_cluster(100);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 60, &charge);
  bm->cache_block(block(1, 1), 60, &charge);  // evicts 1,0 -> spill write
  EXPECT_EQ(charge.disk_write_bytes, 60u);
  EXPECT_EQ(bm->stats().spills, 1u);
  EXPECT_TRUE(bm->has_disk_copy(block(1, 0)));

  IoCharge read_charge;
  EXPECT_EQ(bm->probe(block(1, 0), 60, &read_charge), ProbeOutcome::kDiskHit);
  EXPECT_EQ(read_charge.disk_read_bytes, 60u);
}

TEST(BlockManager, MemoryOnlyModeDropsOnEviction) {
  const auto config = small_cluster(100, /*spill=*/false);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 60, &charge);
  bm->cache_block(block(1, 1), 60, &charge);
  EXPECT_EQ(charge.disk_write_bytes, 0u);
  EXPECT_FALSE(bm->has_disk_copy(block(1, 0)));
  IoCharge probe_charge;
  EXPECT_EQ(bm->probe(block(1, 0), 60, &probe_charge), ProbeOutcome::kCold);
}

TEST(BlockManager, DiskHitPromotesWhenPolicyAgrees) {
  const auto config = small_cluster(200);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 60, &charge);
  bm->purge_block(block(1, 0));  // drop memory copy... no disk copy yet
  EXPECT_FALSE(bm->in_memory(block(1, 0)));

  // Evict to create a disk copy, then probe: LRU always promotes.
  bm->cache_block(block(1, 0), 60, &charge);
  bm->cache_block(block(1, 1), 80, &charge);
  bm->cache_block(block(1, 2), 80, &charge);  // evicts 1,0 -> disk
  ASSERT_TRUE(bm->has_disk_copy(block(1, 0)));
  IoCharge probe_charge;
  EXPECT_EQ(bm->probe(block(1, 0), 60, &probe_charge), ProbeOutcome::kDiskHit);
  EXPECT_TRUE(bm->in_memory(block(1, 0)));
}

TEST(BlockManager, PurgeKeepsDiskCopy) {
  const auto config = small_cluster(100);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 60, &charge);
  bm->cache_block(block(1, 1), 60, &charge);  // spill 1,0
  IoCharge c2;
  bm->probe(block(1, 0), 60, &c2);  // promote back (evicts 1,1)
  bm->purge_block(block(1, 0));
  EXPECT_FALSE(bm->in_memory(block(1, 0)));
  EXPECT_TRUE(bm->has_disk_copy(block(1, 0)));
  EXPECT_EQ(bm->stats().purged, 1u);
}

// ---- Prefetch queue mechanics ----

TEST(BlockManager, PrefetchRequiresDiskCopy) {
  const auto config = small_cluster(100);
  auto bm = make_bm(config);
  EXPECT_FALSE(bm->issue_prefetch(block(1, 0), 40, false));
  EXPECT_EQ(bm->stats().prefetches_issued, 0u);
}

TEST(BlockManager, PrefetchPartialServiceResumes) {
  ClusterConfig config = small_cluster(2 << 20);  // 2 MB cache, 1 MB/s disk
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 1 << 20, &charge);
  bm->cache_block(block(1, 1), 1 << 20, &charge);
  bm->cache_block(block(1, 2), 1 << 20, &charge);  // evicts 1,0 -> disk

  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, /*forced=*/true));
  EXPECT_TRUE(bm->prefetch_pending(block(1, 0)));
  EXPECT_EQ(bm->queued_prefetch_bytes(), 1u << 20);

  // 1 MB at 1 MB/s = 1000 ms load time. Serve 400 ms: not done yet.
  IoCharge serve_charge;
  const double used = bm->serve_prefetch(400.0, &serve_charge);
  EXPECT_DOUBLE_EQ(used, 400.0);
  EXPECT_FALSE(bm->in_memory(block(1, 0)));
  // Serve the remainder: completes and (forced) inserts, evicting LRU.
  bm->serve_prefetch(700.0, &serve_charge);
  EXPECT_TRUE(bm->in_memory(block(1, 0)));
  EXPECT_EQ(bm->stats().prefetches_completed, 1u);
  EXPECT_EQ(serve_charge.disk_read_bytes, 1u << 20);
}

TEST(BlockManager, DemandProbeCancelsQueuedPrefetch) {
  ClusterConfig config = small_cluster(2 << 20);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 1 << 20, &charge);
  bm->cache_block(block(1, 1), 1 << 20, &charge);
  bm->cache_block(block(1, 2), 1 << 20, &charge);  // 1,0 to disk
  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, true));

  IoCharge probe_charge;
  EXPECT_EQ(bm->probe(block(1, 0), 1 << 20, &probe_charge),
            ProbeOutcome::kDiskHit);
  EXPECT_FALSE(bm->prefetch_pending(block(1, 0)));
  EXPECT_EQ(bm->queued_prefetch_bytes(), 0u);
}

TEST(BlockManager, DuplicateAndResidentPrefetchesRejected) {
  ClusterConfig config = small_cluster(2 << 20);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 1 << 20, &charge);
  bm->cache_block(block(1, 1), 1 << 20, &charge);
  bm->cache_block(block(1, 2), 1 << 20, &charge);
  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, true));
  EXPECT_FALSE(bm->issue_prefetch(block(1, 0), 1 << 20, true));  // duplicate
  EXPECT_FALSE(bm->issue_prefetch(block(1, 1), 1 << 20, true));  // resident
}

TEST(BlockManager, UnforcedPrefetchDroppedWhenNoRoom) {
  ClusterConfig config = small_cluster(2 << 20);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 1 << 20, &charge);
  bm->cache_block(block(1, 1), 1 << 20, &charge);
  bm->cache_block(block(1, 2), 1 << 20, &charge);  // full; 1,0 on disk
  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, /*forced=*/false));
  IoCharge serve_charge;
  bm->serve_prefetch(5000.0, &serve_charge);
  EXPECT_FALSE(bm->in_memory(block(1, 0)));
  EXPECT_EQ(bm->stats().prefetches_dropped, 1u);
}

TEST(BlockManager, FlushDropsUnstartedKeepsPartial) {
  ClusterConfig config = small_cluster(4 << 20);
  auto bm = make_bm(config);
  IoCharge charge;
  for (PartitionIndex p = 0; p < 4; ++p) {
    bm->cache_block(block(1, p), 1 << 20, &charge);
  }
  bm->cache_block(block(2, 0), 1 << 20, &charge);
  bm->cache_block(block(2, 1), 1 << 20, &charge);  // spills 1,0 and 1,1
  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, true));
  ASSERT_TRUE(bm->issue_prefetch(block(1, 1), 1 << 20, true));

  IoCharge serve_charge;
  bm->serve_prefetch(300.0, &serve_charge);  // head partially loaded
  bm->flush_unstarted_prefetches();
  EXPECT_TRUE(bm->prefetch_pending(block(1, 0)));   // partial head kept
  EXPECT_FALSE(bm->prefetch_pending(block(1, 1)));  // unstarted dropped
}

TEST(BlockManager, UsefulAndWastedPrefetchClassification) {
  ClusterConfig config = small_cluster(2 << 20);
  auto bm = make_bm(config);
  IoCharge charge;
  bm->cache_block(block(1, 0), 1 << 20, &charge);
  bm->cache_block(block(1, 1), 1 << 20, &charge);
  bm->cache_block(block(1, 2), 1 << 20, &charge);  // 1,0 on disk
  ASSERT_TRUE(bm->issue_prefetch(block(1, 0), 1 << 20, true));
  IoCharge serve_charge;
  bm->serve_prefetch(2000.0, &serve_charge);
  ASSERT_TRUE(bm->in_memory(block(1, 0)));

  IoCharge probe_charge;
  EXPECT_EQ(bm->probe(block(1, 0), 1 << 20, &probe_charge),
            ProbeOutcome::kHit);
  EXPECT_EQ(bm->stats().prefetches_useful, 1u);
  EXPECT_EQ(bm->stats().prefetches_wasted, 0u);
}

}  // namespace
}  // namespace mrd
