// End-to-end simulator behaviour on small hand-built applications.
#include <gtest/gtest.h>

#include "api/spark_context.h"
#include "dag/dag_scheduler.h"
#include "exec/application_runner.h"

namespace mrd {
namespace {

/// PageRank-like iterative app; cached links probed each iteration.
std::shared_ptr<const Application> iterative_app(int iterations = 5) {
  SparkContext sc("runner-test-app");
  auto links = sc.text_file("edges", 40, 1 << 20).map("links").cache();
  Dataset ranks = links.map_values("init");
  for (int i = 0; i < iterations; ++i) {
    const std::string tag = "#" + std::to_string(i);
    ranks = links.join(ranks, "c" + tag).reduce_by_key("r" + tag).cache();
    ranks.count("iter" + tag);
  }
  return std::move(sc).build_shared();
}

RunConfig config_with(const char* policy, std::uint64_t cache_per_node,
                      std::uint32_t nodes = 4) {
  RunConfig config;
  config.cluster = main_cluster();
  config.cluster.num_nodes = nodes;
  config.cluster.cache_bytes_per_node = cache_per_node;
  config.policy.name = policy;
  return config;
}

TEST(Runner, AmplecacheGivesFullHitRatio) {
  const auto metrics =
      run_application(iterative_app(), config_with("lru", 1ull << 30));
  EXPECT_GT(metrics.probes, 0u);
  EXPECT_EQ(metrics.hits, metrics.probes);
  EXPECT_DOUBLE_EQ(metrics.hit_ratio(), 1.0);
  EXPECT_EQ(metrics.evictions, 0u);
  EXPECT_EQ(metrics.misses_recompute, 0u);
}

TEST(Runner, TightCacheForcesMisses) {
  const auto metrics =
      run_application(iterative_app(), config_with("lru", 4 << 20));
  EXPECT_LT(metrics.hits, metrics.probes);
  EXPECT_GT(metrics.evictions, 0u);
  // With spill enabled, misses are served from disk, not recomputed.
  EXPECT_GT(metrics.misses_from_disk, 0u);
}

TEST(Runner, MemoryOnlyModeRecomputes) {
  auto config = config_with("lru", 4 << 20);
  config.cluster.spill_on_evict = false;
  const auto metrics = run_application(iterative_app(), config);
  EXPECT_GT(metrics.misses_recompute, 0u);
  EXPECT_EQ(metrics.misses_from_disk, 0u);
  EXPECT_GT(metrics.recompute_cpu_ms, 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  const auto app = iterative_app();
  const auto a = run_application(app, config_with("mrd", 8 << 20));
  const auto b = run_application(app, config_with("mrd", 8 << 20));
  EXPECT_DOUBLE_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
}

TEST(Runner, MrdBeatsLruUnderPressure) {
  const auto app = iterative_app(6);
  const auto lru = run_application(app, config_with("lru", 10 << 20));
  const auto mrd = run_application(app, config_with("mrd", 10 << 20));
  EXPECT_GE(lru.jct_ms, mrd.jct_ms);
  EXPECT_GE(mrd.hit_ratio(), lru.hit_ratio());
}

TEST(Runner, BiggerCacheNeverHurtsLru) {
  const auto app = iterative_app();
  const auto small = run_application(app, config_with("lru", 4 << 20));
  const auto large = run_application(app, config_with("lru", 64 << 20));
  EXPECT_LE(large.jct_ms, small.jct_ms * 1.001);
  EXPECT_GE(large.hit_ratio(), small.hit_ratio());
}

TEST(Runner, StageTimingsRecordedWhenRequested) {
  auto config = config_with("lru", 16 << 20);
  config.record_stage_timings = true;
  const auto app = iterative_app();
  const auto plan = DagScheduler::plan(app);
  const auto metrics = run_plan(plan, config);
  EXPECT_EQ(metrics.stage_timings.size(), plan.active_stages());
  double total = 0.0;
  for (const StageTiming& st : metrics.stage_timings) {
    EXPECT_GT(st.duration_ms, 0.0);
    total += st.duration_ms;
  }
  // JCT = stage walls + per-job overheads.
  EXPECT_NEAR(metrics.jct_ms,
              total + plan.jobs().size() * config.cluster.job_overhead_ms,
              1e-6);
}

TEST(Runner, AdHocVisibilityHurtsOrMatchesMrd) {
  const auto app = iterative_app(6);
  auto config = config_with("mrd", 10 << 20);
  config.visibility = DagVisibility::kRecurring;
  const auto recurring = run_application(app, config);
  config.visibility = DagVisibility::kAdHoc;
  const auto adhoc = run_application(app, config);
  EXPECT_LE(recurring.jct_ms, adhoc.jct_ms * 1.001);
}

TEST(Runner, VisibilityIrrelevantForLru) {
  const auto app = iterative_app();
  auto config = config_with("lru", 10 << 20);
  config.visibility = DagVisibility::kRecurring;
  const auto recurring = run_application(app, config);
  config.visibility = DagVisibility::kAdHoc;
  const auto adhoc = run_application(app, config);
  EXPECT_DOUBLE_EQ(recurring.jct_ms, adhoc.jct_ms);
}

TEST(Runner, MrdStatsPopulatedOnlyForMrd) {
  const auto app = iterative_app();
  const auto mrd = run_application(app, config_with("mrd", 16 << 20));
  EXPECT_GT(mrd.mrd_table_peak_entries, 0u);
  EXPECT_GT(mrd.mrd_update_messages, 0u);
  const auto lru = run_application(app, config_with("lru", 16 << 20));
  EXPECT_EQ(lru.mrd_table_peak_entries, 0u);
}

TEST(Runner, PerRddProbesSumToTotals) {
  const auto metrics =
      run_application(iterative_app(), config_with("mrd", 8 << 20));
  std::uint64_t probes = 0, hits = 0;
  for (const auto& [rdd, counts] : metrics.per_rdd_probes) {
    (void)rdd;
    probes += counts.first;
    hits += counts.second;
    EXPECT_LE(counts.second, counts.first);
  }
  EXPECT_EQ(probes, metrics.probes);
  EXPECT_EQ(hits, metrics.hits);
}

TEST(Runner, UncacheableBlocksDoNotStallTheRun) {
  SparkContext sc("big-block-app");
  // One partition bigger than the whole per-node cache.
  auto data = sc.text_file("in", 2, 8 << 20).map("big").cache();
  data.count("job0");
  data.count("job1");
  auto app = std::move(sc).build_shared();

  auto config = config_with("lru", 4 << 20, /*nodes=*/2);
  const auto metrics = run_application(app, config);
  EXPECT_GT(metrics.uncacheable_blocks, 0u);
  EXPECT_GT(metrics.jct_ms, 0.0);
  EXPECT_EQ(metrics.hits, 0u);  // nothing ever fits
}

TEST(Runner, ProfileStoreMakesSecondRunRecurring) {
  const auto app = iterative_app();
  ProfileStore store;
  auto config = config_with("mrd", 10 << 20);
  config.visibility = DagVisibility::kAdHoc;
  config.policy.profile_store = &store;
  run_application(app, config);
  EXPECT_TRUE(store.has_profile(app->name()));

  // Second run can use the stored profile from the start.
  auto recurring = config;
  recurring.visibility = DagVisibility::kRecurring;
  const auto second = run_application(app, recurring);
  EXPECT_GT(second.hits, 0u);
  const auto stored = store.lookup(app->name());
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->runs, 2u);
  EXPECT_EQ(stored->discrepancies, 0u);
}

TEST(Runner, AllPoliciesCompleteOnTheSameApp) {
  const auto app = iterative_app();
  for (const char* policy :
       {"lru", "fifo", "lrc", "memtune", "belady", "mrd", "mrd-evict",
        "mrd-prefetch", "mrd-job"}) {
    const auto metrics = run_application(app, config_with(policy, 8 << 20));
    EXPECT_GT(metrics.jct_ms, 0.0) << policy;
    EXPECT_GT(metrics.probes, 0u) << policy;
    EXPECT_EQ(metrics.policy, policy);
  }
}

}  // namespace
}  // namespace mrd
