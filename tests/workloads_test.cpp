// Workload generators: registry integrity plus parameterized structural
// checks over all 20 benchmark applications.
#include <gtest/gtest.h>

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "workloads/workloads.h"

namespace mrd {
namespace {

TEST(WorkloadRegistry, SuitesHaveExpectedSizes) {
  EXPECT_EQ(sparkbench_workloads().size(), 14u);
  EXPECT_EQ(hibench_workloads().size(), 6u);
}

TEST(WorkloadRegistry, LookupFindsEveryKey) {
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    EXPECT_EQ(find_workload(spec.key), &spec);
  }
  for (const WorkloadSpec& spec : hibench_workloads()) {
    EXPECT_EQ(find_workload(spec.key), &spec);
  }
  EXPECT_EQ(find_workload("no-such-workload"), nullptr);
}

TEST(WorkloadRegistry, KeysAreUnique) {
  std::set<std::string> keys;
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    EXPECT_TRUE(keys.insert(spec.key).second) << spec.key;
  }
  for (const WorkloadSpec& spec : hibench_workloads()) {
    EXPECT_TRUE(keys.insert(spec.key).second) << spec.key;
  }
}

// ---- Parameterized structural checks over every workload ----

class AllWorkloads : public ::testing::TestWithParam<const WorkloadSpec*> {};

TEST_P(AllWorkloads, BuildsAndPlans) {
  const WorkloadSpec& spec = *GetParam();
  const auto app = spec.make({});
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->name(), spec.name);
  const ExecutionPlan plan = DagScheduler::plan(app);
  EXPECT_GE(plan.jobs().size(), 1u);
  EXPECT_GE(plan.active_stages(), 1u);
}

TEST_P(AllWorkloads, PlanInvariantsHold) {
  const WorkloadSpec& spec = *GetParam();
  const ExecutionPlan plan = DagScheduler::plan(spec.make({}));

  // Stage parents precede children; executed appearances are well-formed.
  for (const StageInfo& stage : plan.stages()) {
    for (StageId p : stage.parents) EXPECT_LT(p, stage.id);
    EXPECT_GT(stage.num_tasks, 0u);
  }
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) {
        EXPECT_TRUE(rec.computes.empty());
        EXPECT_TRUE(rec.probes.empty());
        continue;
      }
      for (RddId r : rec.probes) {
        EXPECT_TRUE(plan.app().rdd(r).persisted) << spec.key;
      }
      // computes and probes are disjoint.
      for (RddId r : rec.computes) {
        EXPECT_EQ(std::count(rec.probes.begin(), rec.probes.end(), r), 0);
      }
    }
  }
  EXPECT_LE(plan.active_stages(), plan.stage_appearances());
}

TEST_P(AllWorkloads, DeterministicConstruction) {
  const WorkloadSpec& spec = *GetParam();
  const ExecutionPlan a = DagScheduler::plan(spec.make({}));
  const ExecutionPlan b = DagScheduler::plan(spec.make({}));
  EXPECT_EQ(a.total_stages(), b.total_stages());
  EXPECT_EQ(a.shuffles().size(), b.shuffles().size());
  EXPECT_EQ(a.app().num_rdds(), b.app().num_rdds());
  EXPECT_EQ(reference_distance_stats(a).avg_stage_distance,
            reference_distance_stats(b).avg_stage_distance);
}

TEST_P(AllWorkloads, ScaleParameterScalesBytes) {
  const WorkloadSpec& spec = *GetParam();
  WorkloadParams half;
  half.scale = 0.5;
  const auto full_app = spec.make({});
  const auto half_app = spec.make(half);
  EXPECT_LT(half_app->input_bytes(), full_app->input_bytes());
}

std::string workload_name(
    const ::testing::TestParamInfo<const WorkloadSpec*>& info) {
  std::string name = info.param->key;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::vector<const WorkloadSpec*> all_specs() {
  std::vector<const WorkloadSpec*> out;
  for (const WorkloadSpec& s : sparkbench_workloads()) out.push_back(&s);
  for (const WorkloadSpec& s : hibench_workloads()) out.push_back(&s);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::ValuesIn(all_specs()), workload_name);

// ---- Iterable workloads scale their job counts (Fig 10 precondition) ----

class IterableWorkloads : public ::testing::TestWithParam<const WorkloadSpec*> {
};

TEST_P(IterableWorkloads, TripledIterationsGrowJobsAndStages) {
  const WorkloadSpec& spec = *GetParam();
  const ExecutionPlan base = DagScheduler::plan(spec.make({}));
  WorkloadParams tripled;
  tripled.iterations = spec.default_iterations * 3;
  const ExecutionPlan more = DagScheduler::plan(spec.make(tripled));
  EXPECT_GT(more.jobs().size(), base.jobs().size()) << spec.key;
  EXPECT_GT(more.active_stages(), base.active_stages()) << spec.key;
}

std::vector<const WorkloadSpec*> iterable_specs() {
  std::vector<const WorkloadSpec*> out;
  for (const WorkloadSpec& s : sparkbench_workloads()) {
    if (s.default_iterations > 0) out.push_back(&s);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Suite, IterableWorkloads,
                         ::testing::ValuesIn(iterable_specs()), workload_name);

// ---- Paper-shape assertions (Table 1 / Table 3 qualitative claims) ----

ReferenceDistanceStats stats_for(const char* key) {
  return reference_distance_stats(DagScheduler::plan(find_workload(key)->make({})));
}

TEST(PaperShape, HiBenchDistancesAreNearZero) {
  EXPECT_EQ(stats_for("hb-sort").num_gaps, 0u);
  EXPECT_EQ(stats_for("hb-wordcount").num_gaps, 0u);
  EXPECT_LE(stats_for("hb-terasort").max_job_distance, 1u);
  EXPECT_EQ(stats_for("hb-pagerank").avg_job_distance, 0.0);
}

TEST(PaperShape, LpAndSccHaveTheLargestStageDistances) {
  const double lp = stats_for("lp").avg_stage_distance;
  const double scc = stats_for("scc").avg_stage_distance;
  for (const char* small : {"tc", "sp", "linr", "logr", "svm"}) {
    EXPECT_GT(lp, stats_for(small).avg_stage_distance) << small;
    EXPECT_GT(scc, stats_for(small).avg_stage_distance) << small;
  }
}

TEST(PaperShape, StageDistanceIsFinerThanJobDistance) {
  for (const char* key : {"km", "pr", "lp", "scc", "cc", "po"}) {
    const auto s = stats_for(key);
    EXPECT_GE(s.avg_stage_distance, s.avg_job_distance) << key;
    EXPECT_GE(s.max_stage_distance, s.max_job_distance) << key;
  }
}

TEST(PaperShape, IterativeWorkloadsSkipStages) {
  // Lineage growth: appearances far exceed executed stages for Pregel apps.
  for (const char* key : {"lp", "scc", "po"}) {
    const ExecutionPlan plan =
        DagScheduler::plan(find_workload(key)->make({}));
    EXPECT_GT(plan.stage_appearances(), 3 * plan.active_stages()) << key;
  }
}

TEST(PaperShape, DecisionTreeIgnoresIterationParameter) {
  const auto base = DagScheduler::plan(find_workload("dt")->make({}));
  WorkloadParams tripled;
  tripled.iterations = 24;
  const auto more = DagScheduler::plan(find_workload("dt")->make(tripled));
  EXPECT_EQ(base.jobs().size(), more.jobs().size());
  EXPECT_EQ(base.active_stages(), more.active_stages());
}

TEST(PaperShape, PersistedBytesHelperMatchesManualSum) {
  const auto app = find_workload("pr")->make({});
  std::uint64_t manual = 0;
  for (const RddInfo& r : app->rdds()) {
    if (r.persisted) manual += r.total_bytes();
  }
  EXPECT_EQ(persisted_bytes(*app), manual);
  EXPECT_GT(manual, 0u);
}

}  // namespace
}  // namespace mrd
