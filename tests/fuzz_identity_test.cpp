// Randomized differential-identity harness for intra-run node parallelism.
//
// Generates ~50 seeded random workload/cluster configurations — deliberately
// mixing node-closed DAGs, sparsely coupled ones (narrow re-maps à la
// Pregel's vjoin) and fully coupled ones (single-partition hubs) — and
// asserts that the closure-aware group-parallel runner reproduces the serial
// oracle exactly: RunMetrics field for field, bench CSV byte for byte,
// across node_jobs in {1, 2, 8}, across SweepRunner thread counts, under
// forced-steal schedules, and with the persistent executor disabled. Also
// checks the ClosurePartitioner's structural invariants on every generated
// plan (each node in exactly one group, deterministic ordering) and that the
// fan-out accounting stays consistent.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "dag/dag_builder.h"
#include "dag/dag_scheduler.h"
#include "exec/application_runner.h"
#include "exec/executor.h"
#include "exec/node_partition.h"
#include "exec/node_scheduler.h"
#include "exec/run_context.h"
#include "harness/experiment.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/random.h"

namespace mrd {
namespace {

constexpr std::uint64_t kSeeds = 50;

/// Cluster sizes chosen to hit interesting modular-arithmetic regimes of the
/// owner re-map (primes, powers of two, more nodes than some partition
/// counts).
constexpr NodeId kNodeChoices[] = {2, 3, 5, 8, 16};
constexpr const char* kPolicies[] = {"lru", "fifo", "mrd", "lrc"};

/// One random application. The generator favors shapes that stress the
/// partitioner: persisted chains through non-persisted intermediates,
/// partition-count changes on narrow edges (cross-node closures), wide
/// shuffles (closure stoppers), and occasional single-partition hubs (fully
/// coupled stages).
std::shared_ptr<const Application> random_app(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97f4A7C15ULL + 1);
  DagBuilder b("fuzz-" + std::to_string(seed));

  const auto random_parts = [&rng]() -> std::uint32_t {
    // Mix tiny counts (force wraps and hubs) with medium ones.
    switch (rng.next_below(4)) {
      case 0:
        return static_cast<std::uint32_t>(rng.uniform_int(1, 4));
      case 1:
        return static_cast<std::uint32_t>(rng.uniform_int(5, 9));
      default:
        return static_cast<std::uint32_t>(rng.uniform_int(10, 32));
    }
  };
  const auto random_bytes = [&rng]() -> std::uint64_t {
    return static_cast<std::uint64_t>(rng.uniform_int(1, 6)) << 14;
  };

  std::vector<RddId> pool;
  const std::size_t num_sources = 1 + rng.next_below(2);
  for (std::size_t s = 0; s < num_sources; ++s) {
    pool.push_back(b.source("src" + std::to_string(s), random_parts(),
                            random_bytes()));
  }

  const std::size_t num_transforms = 4 + rng.next_below(8);
  std::size_t actions = 0;
  for (std::size_t t = 0; t < num_transforms; ++t) {
    const RddId parent = pool[rng.next_below(pool.size())];
    const std::string name = "t" + std::to_string(t);
    TransformOpts opts;
    opts.bytes_per_partition = random_bytes();
    RddId next;
    switch (rng.next_below(6)) {
      case 0:  // narrow, partition count changed: the coupling generator
        opts.partitions = random_parts();
        next = b.map(parent, name, opts);
        break;
      case 1:  // narrow, count kept: node-closed link
        next = b.filter(parent, name, opts);
        break;
      case 2: {  // two-parent narrow zip: vjoin-style sparse coupling
        const RddId other = pool[rng.next_below(pool.size())];
        opts.partitions = random_parts();
        next = b.zip_partitions(parent, other, name, opts);
        break;
      }
      case 3:  // wide shuffle: closure stopper
        opts.partitions = random_parts();
        next = b.reduce_by_key(parent, name, opts);
        break;
      case 4:  // single-partition hub: fully coupled once demanded
        opts.partitions = 1;
        next = b.map(parent, name, opts);
        break;
      default:
        next = b.map(parent, name, opts);
        break;
    }
    if (rng.bernoulli(0.55)) b.persist(next);
    pool.push_back(next);
    if (rng.bernoulli(0.4)) {
      b.action(next, "act" + std::to_string(actions++));
    }
  }
  // Every plan needs at least one job, at least one persisted RDD and a
  // final action that re-references something old enough to create cache
  // probes.
  b.persist(pool.back());
  b.action(pool.back(), "final");
  b.action(pool[pool.size() / 2], "ref-mid");
  return std::make_shared<const Application>(std::move(b).build());
}

struct FuzzPoint {
  std::shared_ptr<const WorkloadRun> run;
  ClusterConfig cluster;
  double fraction = 0.5;
  PolicyConfig policy;
};

FuzzPoint make_point(std::uint64_t seed) {
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  FuzzPoint point;
  auto app = random_app(seed);
  point.run = std::make_shared<const WorkloadRun>(
      WorkloadRun{app, DagScheduler::plan(app), app->name(), app->name()});
  point.cluster = main_cluster();
  point.cluster.num_nodes =
      kNodeChoices[rng.next_below(std::size(kNodeChoices))];
  point.fraction = 0.3 + 0.35 * static_cast<double>(rng.next_below(3));
  point.policy.name = kPolicies[seed % std::size(kPolicies)];
  return point;
}

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.jct_ms, b.jct_ms);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses_from_disk, b.misses_from_disk);
  EXPECT_EQ(a.misses_recompute, b.misses_recompute);
  EXPECT_EQ(a.blocks_cached, b.blocks_cached);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.purged_blocks, b.purged_blocks);
  EXPECT_EQ(a.uncacheable_blocks, b.uncacheable_blocks);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_completed, b.prefetches_completed);
  EXPECT_EQ(a.prefetches_useful, b.prefetches_useful);
  EXPECT_EQ(a.prefetches_wasted, b.prefetches_wasted);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.disk_bytes_written, b.disk_bytes_written);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.recompute_cpu_ms, b.recompute_cpu_ms);
  EXPECT_EQ(a.per_rdd_probes, b.per_rdd_probes);
  EXPECT_EQ(a.mrd_table_peak_entries, b.mrd_table_peak_entries);
  EXPECT_EQ(a.mrd_update_messages, b.mrd_update_messages);
}

RunMetrics run_point(const FuzzPoint& point, std::size_t node_jobs,
                     NodeParallelStats* stats = nullptr,
                     ExecMode exec_mode = ExecMode::kAuto) {
  return run_with_policy(*point.run, point.cluster, point.fraction,
                         point.policy, DagVisibility::kRecurring, node_jobs,
                         stats, exec_mode);
}

// ---------------------------------------------------------------------------
// Partitioner invariants on every random plan
// ---------------------------------------------------------------------------

void expect_partition_of_all_nodes(const NodeGroups& groups,
                                   NodeId num_nodes) {
  std::vector<char> seen(num_nodes, 0);
  NodeId last_lead = 0;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    ASSERT_FALSE(groups.groups[g].empty());
    if (g > 0) EXPECT_LT(last_lead, groups.groups[g].front());
    last_lead = groups.groups[g].front();
    for (std::size_t i = 0; i < groups.groups[g].size(); ++i) {
      const NodeId node = groups.groups[g][i];
      ASSERT_LT(node, num_nodes);
      EXPECT_EQ(seen[node], 0) << "node in two groups";
      seen[node] = 1;
      if (i > 0) EXPECT_LT(groups.groups[g][i - 1], node);
    }
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    EXPECT_EQ(seen[n], 1) << "node " << n << " missing";
  }
}

TEST(FuzzIdentity, PartitionerCoversEveryNodeExactlyOnce) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzPoint point = make_point(seed);
    const NodeId n = point.cluster.num_nodes;
    const ClosurePartitioner part(point.run->plan, n);
    expect_partition_of_all_nodes(part.plan_groups(), n);
    for (const RddInfo& rdd : point.run->plan.app().rdds()) {
      if (!rdd.persisted) continue;
      expect_partition_of_all_nodes(part.probe_groups(rdd.id), n);
      // Per-RDD groups are never coarser than the whole-plan union: the
      // union only adds edges, which can only merge groups further.
      EXPECT_GE(part.probe_groups(rdd.id).num_groups(),
                part.plan_groups().num_groups());
    }
    // The node-closedness predicate is exactly "all singletons".
    EXPECT_EQ(plan_supports_node_parallel(point.run->plan, n),
              part.plan_groups().num_groups() == n);
  }
}

// ---------------------------------------------------------------------------
// Differential identity: node_jobs in {1, 2, 8}
// ---------------------------------------------------------------------------

TEST(FuzzIdentity, RunMetricsMatchSerialOracleForAnyNodeJobs) {
  std::size_t coupled_plans = 0;
  std::size_t parallel_regions = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzPoint point = make_point(seed);
    const RunMetrics oracle = run_point(point, 1);
    NodeParallelStats stats;
    for (const std::size_t node_jobs : {2u, 8u}) {
      SCOPED_TRACE("node_jobs " + std::to_string(node_jobs));
      expect_identical(oracle, run_point(point, node_jobs, &stats));
      EXPECT_TRUE(stats.engaged);
      EXPECT_GE(stats.plan_groups, 1u);
      EXPECT_LE(stats.plan_groups, stats.num_nodes);
      EXPECT_LE(stats.probe_regions_parallel, stats.probe_regions);
      if (stats.probe_regions > 0) {
        EXPECT_GE(stats.min_groups, 1u);
        EXPECT_LE(stats.min_groups, stats.max_groups);
        EXPECT_LE(stats.max_groups, stats.num_nodes);
        EXPECT_LE(stats.largest_group, stats.num_nodes);
        EXPECT_GE(stats.mean_groups(), 1.0);
      }
    }
    if (stats.plan_groups < stats.num_nodes) ++coupled_plans;
    parallel_regions += stats.probe_regions_parallel;
  }
  // The generator must actually produce the interesting mix: some coupled
  // plans (otherwise this fuzz never leaves the trivially safe regime) and
  // some parallel probe regions (otherwise everything fell back to serial).
  EXPECT_GT(coupled_plans, 5u);
  EXPECT_LT(coupled_plans, kSeeds);
  EXPECT_GT(parallel_regions, 0u);
}

// ---------------------------------------------------------------------------
// Differential identity: event scheduler, explicit at every worker count
// ---------------------------------------------------------------------------

// kAuto already routes node_jobs > 1 through the event scheduler, so the
// test above covers it implicitly; this one forces ExecMode::kEvent —
// including the single-worker drain, which kAuto never picks — and checks
// the instruction-graph accounting alongside the metrics.
TEST(FuzzIdentity, EventSchedulerMatchesSerialOracleForAnyWorkerCount) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzPoint point = make_point(seed);
    const RunMetrics oracle = run_point(point, 1);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      NodeParallelStats stats;
      expect_identical(
          oracle, run_point(point, workers, &stats, ExecMode::kEvent));
      // The instruction graph is a property of the plan, not of the worker
      // count: same size, same critical path, every time.
      EXPECT_GT(stats.instructions, 0u);
      EXPECT_GE(stats.critical_path, 1u);
      EXPECT_LE(stats.critical_path, stats.instructions);
      EXPECT_GE(stats.max_queue_depth, 1u);
      NodeParallelStats again;
      run_point(point, 2, &again, ExecMode::kEvent);
      EXPECT_EQ(stats.instructions, again.instructions);
      EXPECT_EQ(stats.critical_path, again.critical_path);
      EXPECT_EQ(stats.max_queue_depth, again.max_queue_depth);
    }
  }
}

/// Renders metrics through the same formatting helpers the bench drivers
/// use, so the comparison covers the full metrics→CSV path.
std::string csv_bytes_for(const std::vector<RunMetrics>& results,
                          const std::string& path) {
  CsvWriter csv(path);
  csv.write_row({"workload", "policy", "jct_ms", "hit", "disk_read",
                 "disk_write", "network", "recompute_cpu_ms"});
  for (const RunMetrics& m : results) {
    csv.write_row({m.workload, m.policy, format_double(m.jct_ms, 4),
                   format_double(m.hit_ratio(), 4),
                   std::to_string(m.disk_bytes_read),
                   std::to_string(m.disk_bytes_written),
                   std::to_string(m.network_bytes),
                   format_double(m.recompute_cpu_ms, 4)});
  }
  csv.close();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(FuzzIdentity, CsvBytesMatchSerialOracle) {
  std::vector<RunMetrics> serial, two, eight, event_one, event_eight;
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 3) {
    const FuzzPoint point = make_point(seed);
    serial.push_back(run_point(point, 1));
    two.push_back(run_point(point, 2));
    eight.push_back(run_point(point, 8));
    event_one.push_back(run_point(point, 1, nullptr, ExecMode::kEvent));
    event_eight.push_back(run_point(point, 8, nullptr, ExecMode::kEvent));
  }
  const std::string base = testing::TempDir() + "fuzz_identity_csv_";
  const std::string bytes1 = csv_bytes_for(serial, base + "1.csv");
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, csv_bytes_for(two, base + "2.csv"));
  EXPECT_EQ(bytes1, csv_bytes_for(eight, base + "8.csv"));
  EXPECT_EQ(bytes1, csv_bytes_for(event_one, base + "e1.csv"));
  EXPECT_EQ(bytes1, csv_bytes_for(event_eight, base + "e8.csv"));
}

// ---------------------------------------------------------------------------
// Differential identity: pooled run context, fresh vs reused in place
// ---------------------------------------------------------------------------

// Every random DAG runs twice through ONE pooled RunContext: the first run
// constructs the per-run state into the pool, the second replays through
// reset-in-place (fully_reused() must report it did). Both must reproduce a
// context-free oracle exactly — RunMetrics field for field and CSV byte for
// byte — across serial, fan-out and explicit-event execution, or the pool's
// reset paths leak state between sweep points.
TEST(FuzzIdentity, PooledContextReuseMatchesFreshRun) {
  struct Mode {
    const char* label;
    std::size_t node_jobs;
    ExecMode exec_mode;
  };
  constexpr Mode kModes[] = {{"serial", 1, ExecMode::kAuto},
                             {"fanout", 4, ExecMode::kAuto},
                             {"event", 2, ExecMode::kEvent}};
  std::vector<RunMetrics> oracle_all, first_all, reused_all;
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 2) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzPoint point = make_point(seed);
    const Mode& mode = kModes[(seed / 2) % std::size(kModes)];
    SCOPED_TRACE(mode.label);
    const RunMetrics oracle =
        run_point(point, mode.node_jobs, nullptr, mode.exec_mode);

    RunConfig config;
    config.cluster = point.cluster;
    config.cluster.cache_bytes_per_node =
        cache_bytes_per_node_for(*point.run, point.cluster, point.fraction);
    config.policy = point.policy;
    config.node_jobs = mode.node_jobs;
    config.exec_mode = mode.exec_mode;
    RunContext context;
    config.context = &context;
    const RunMetrics first = run_plan(point.run->plan, config);
    EXPECT_FALSE(context.fully_reused());
    const RunMetrics reused = run_plan(point.run->plan, config);
    EXPECT_TRUE(context.fully_reused());
    expect_identical(oracle, first);
    expect_identical(oracle, reused);
    oracle_all.push_back(oracle);
    first_all.push_back(first);
    reused_all.push_back(reused);
  }
  const std::string base = testing::TempDir() + "fuzz_pooled_csv_";
  const std::string bytes = csv_bytes_for(oracle_all, base + "oracle.csv");
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, csv_bytes_for(first_all, base + "first.csv"));
  EXPECT_EQ(bytes, csv_bytes_for(reused_all, base + "reused.csv"));
}

// ---------------------------------------------------------------------------
// Differential identity across SweepRunner thread counts
// ---------------------------------------------------------------------------

TEST(FuzzIdentity, SweepRunnerThreadCountsMatchSerialOracle) {
  SweepRunner serial(1);
  SweepRunner threaded(4);
  SweepRunner nested(1, 8);
  SweepRunner composed(4, 2);
  std::vector<SweepTicket> from_serial, from_threaded, from_nested,
      from_composed;
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 2) {
    const FuzzPoint point = make_point(seed);
    const SweepJob job{point.run, point.cluster, point.fraction, point.policy,
                       DagVisibility::kRecurring};
    from_serial.push_back(serial.submit(job));
    from_threaded.push_back(threaded.submit(job));
    from_nested.push_back(nested.submit(job));
    from_composed.push_back(composed.submit(job));
  }
  for (std::size_t i = 0; i < from_serial.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const RunMetrics oracle = from_serial[i].get();
    expect_identical(oracle, from_threaded[i].get());
    expect_identical(oracle, from_nested[i].get());
    expect_identical(oracle, from_composed[i].get());
  }
  // The nested and composed runners fanned out intra-run; their aggregated
  // accounting must reflect that. The threaded runner only parallelized
  // across sweep points (node_jobs 1), so it reports no intra-run
  // engagement.
  EXPECT_TRUE(nested.stats().node_parallel.engaged);
  EXPECT_TRUE(composed.stats().node_parallel.engaged);
  EXPECT_FALSE(threaded.stats().node_parallel.engaged);
  EXPECT_FALSE(serial.stats().node_parallel.engaged);
}

// ---------------------------------------------------------------------------
// Differential identity under adversarial steal schedules
// ---------------------------------------------------------------------------

// Forces the event engine into a worst-case steal pattern: claim batches are
// capped at one instruction and newly-ready work is scattered to *other*
// shards, so nearly every instruction is executed by a thief. The results
// must still match the serial oracle byte for byte — stealing reorders who
// runs an instruction, never what it computes.
TEST(FuzzIdentity, ForcedStealSchedulesMatchSerialOracle) {
  set_event_forced_steal_for_test(true);
  std::vector<RunMetrics> oracle_all, stolen_all;
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 2) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzPoint point = make_point(seed);
    set_event_forced_steal_for_test(false);
    const RunMetrics oracle = run_point(point, 1);
    set_event_forced_steal_for_test(true);
    for (const std::size_t workers : {2u, 8u}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      NodeParallelStats stats;
      const RunMetrics stolen =
          run_point(point, workers, &stats, ExecMode::kEvent);
      expect_identical(oracle, stolen);
      if (workers == 8u) {
        oracle_all.push_back(oracle);
        stolen_all.push_back(stolen);
      }
    }
  }
  set_event_forced_steal_for_test(false);
  const std::string base = testing::TempDir() + "fuzz_steal_csv_";
  const std::string bytes = csv_bytes_for(oracle_all, base + "oracle.csv");
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, csv_bytes_for(stolen_all, base + "stolen.csv"));
}

// ---------------------------------------------------------------------------
// Differential identity with the persistent pool disabled
// ---------------------------------------------------------------------------

// MRD_NO_PERSISTENT_POOL=1 swaps the shared executor for per-runner threads
// (and forces node_jobs to 1 there); results must not change, only where
// the work runs.
TEST(FuzzIdentity, KillSwitchMatchesPersistentPoolResults) {
  std::vector<RunMetrics> pooled, killed;
  {
    SweepRunner runner(4, 2);
    for (std::uint64_t seed = 0; seed < kSeeds; seed += 4) {
      const FuzzPoint point = make_point(seed);
      pooled.push_back(
          runner
              .submit(SweepJob{point.run, point.cluster, point.fraction,
                               point.policy, DagVisibility::kRecurring})
              .get());
    }
    EXPECT_GT(runner.stats().exec_tasks, 0u);
  }
  Executor::set_disabled_for_test(1);
  {
    SweepRunner runner(4, 2);
    for (std::uint64_t seed = 0; seed < kSeeds; seed += 4) {
      const FuzzPoint point = make_point(seed);
      killed.push_back(
          runner
              .submit(SweepJob{point.run, point.cluster, point.fraction,
                               point.policy, DagVisibility::kRecurring})
              .get());
    }
    EXPECT_EQ(runner.stats().exec_tasks, 0u);
  }
  Executor::set_disabled_for_test(-1);
  ASSERT_EQ(pooled.size(), killed.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    expect_identical(pooled[i], killed[i]);
  }
  const std::string base = testing::TempDir() + "fuzz_kill_csv_";
  const std::string bytes = csv_bytes_for(pooled, base + "pooled.csv");
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, csv_bytes_for(killed, base + "killed.csv"));
}

}  // namespace
}  // namespace mrd
