#include <gtest/gtest.h>

#include "cache/lru.h"
#include "cluster/memory_store.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

/// Test policy that nominates a fixed (possibly bogus) victim.
class FixedVictimPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "fixed"; }
  void on_block_cached(const BlockId&, std::uint64_t) override {}
  void on_block_accessed(const BlockId&) override {}
  void on_block_evicted(const BlockId&) override {}
  std::optional<BlockId> choose_victim() override { return victim; }
  std::optional<BlockId> victim;
};

TEST(MemoryStore, InsertWithinCapacityStores) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  const InsertResult r = store.insert(block(1, 0), 40);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_EQ(store.used(), 40u);
  EXPECT_EQ(store.free_bytes(), 60u);
  EXPECT_TRUE(store.contains(block(1, 0)));
  EXPECT_EQ(store.block_bytes(block(1, 0)), 40u);
}

TEST(MemoryStore, EvictsUntilFits) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  store.insert(block(1, 1), 40);
  const InsertResult r = store.insert(block(1, 2), 60);
  EXPECT_TRUE(r.stored);
  // Evicting the single LRU block (40) is enough: 40 + 60 = 100 fits.
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));
  EXPECT_EQ(r.evicted[0].second, 40u);
  EXPECT_EQ(store.num_blocks(), 2u);
  EXPECT_EQ(store.used(), 100u);
}

TEST(MemoryStore, OversizedBlockRejected) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  const InsertResult r = store.insert(block(2, 0), 200);
  EXPECT_FALSE(r.stored);
  EXPECT_TRUE(r.evicted.empty());      // nothing sacrificed for a lost cause
  EXPECT_TRUE(store.contains(block(1, 0)));
}

TEST(MemoryStore, ReinsertResidentBlockIsAccess) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  store.insert(block(1, 1), 40);
  store.insert(block(1, 0), 40);  // refresh
  // Now 1,1 is LRU.
  const InsertResult r = store.insert(block(1, 2), 40);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 1));
}

TEST(MemoryStore, ReinsertWithDifferentSizeIsABug) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_ANY_THROW(store.insert(block(1, 0), 41));
}

TEST(MemoryStore, RemoveNotifiesPolicy) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_TRUE(store.remove(block(1, 0)));
  EXPECT_FALSE(store.remove(block(1, 0)));
  EXPECT_EQ(store.used(), 0u);
  EXPECT_EQ(lru.resident_count(), 0u);
}

TEST(MemoryStore, AccessReportsResidency) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_TRUE(store.access(block(1, 0)));
  EXPECT_FALSE(store.access(block(9, 9)));
}

TEST(MemoryStore, FallsBackWhenPolicyNominatesNonResident) {
  FixedVictimPolicy policy;
  policy.victim = block(42, 42);  // not resident: store must not stall
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 60);
  const InsertResult r = store.insert(block(1, 1), 60);
  EXPECT_TRUE(r.stored);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));  // insertion-order fallback
}

TEST(MemoryStore, FallsBackWhenPolicyHasNoVictim) {
  FixedVictimPolicy policy;  // victim = nullopt
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 60);
  const InsertResult r = store.insert(block(1, 1), 60);
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(r.evicted.size(), 1u);
}

/// Test policy that records every notification it receives.
class CountingPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "counting"; }
  void on_block_cached(const BlockId& b, std::uint64_t) override {
    cached.push_back(b);
  }
  void on_block_accessed(const BlockId& b) override { accessed.push_back(b); }
  void on_block_evicted(const BlockId& b) override { evicted.push_back(b); }
  std::optional<BlockId> choose_victim() override {
    return cached.empty() ? std::nullopt
                          : std::optional<BlockId>(cached.front());
  }
  std::vector<BlockId> cached, accessed, evicted;
};

// Regression: insert() used to take a notify_policy flag that could skip
// on_block_cached, leaving the policy blind to resident blocks (it could
// then never nominate them, forcing spurious FIFO fallbacks). The policy
// now observes every store mutation unconditionally.
TEST(MemoryStore, PolicyObservesEveryInsert) {
  CountingPolicy policy;
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 40);
  store.insert(block(1, 1), 40);
  EXPECT_EQ(policy.cached, (std::vector<BlockId>{block(1, 0), block(1, 1)}));
  EXPECT_TRUE(policy.accessed.empty());

  // Re-insert of a resident block is an access, not a second cache event.
  store.insert(block(1, 0), 40);
  EXPECT_EQ(policy.cached.size(), 2u);
  EXPECT_EQ(policy.accessed, std::vector<BlockId>{block(1, 0)});
}

TEST(MemoryStore, PolicyThatTracksInsertsEvictsWithoutFallback) {
  CountingPolicy policy;  // victim = first block it saw cached
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 60);
  const InsertResult r = store.insert(block(1, 1), 60);
  EXPECT_TRUE(r.stored);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));
  EXPECT_EQ(policy.evicted, std::vector<BlockId>{block(1, 0)});
}

// Exercises the O(1) insertion-order bookkeeping (list + iterator map):
// removals from the middle must unlink exactly the right node so the FIFO
// fallback still walks survivors oldest-first.
TEST(MemoryStore, FallbackOrderSurvivesInterleavedRemovals) {
  FixedVictimPolicy policy;  // never nominates anything valid
  MemoryStore store(90, &policy);
  store.insert(block(1, 0), 30);
  store.insert(block(1, 1), 30);
  store.insert(block(1, 2), 30);
  EXPECT_TRUE(store.remove(block(1, 1)));  // middle of insertion order

  // Needs 60 free: falls back to FIFO twice — oldest survivors 1,0 then 1,2.
  const InsertResult r = store.insert(block(2, 0), 90);
  EXPECT_TRUE(r.stored);
  ASSERT_EQ(r.evicted.size(), 2u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));
  EXPECT_EQ(r.evicted[1].first, block(1, 2));
  EXPECT_EQ(store.num_blocks(), 1u);
}

TEST(MemoryStore, ResidentBlocksListsAll) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 30);
  store.insert(block(1, 1), 30);
  const auto blocks = store.resident_blocks();
  EXPECT_EQ(blocks.size(), 2u);
}

TEST(MemoryStore, ExactCapacityFits) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  const InsertResult r = store.insert(block(1, 0), 100);
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(store.free_bytes(), 0u);
}

}  // namespace
}  // namespace mrd
