#include <gtest/gtest.h>

#include "cache/lru.h"
#include "cluster/memory_store.h"

namespace mrd {
namespace {

BlockId block(RddId r, PartitionIndex p) { return BlockId{r, p}; }

/// Test policy that nominates a fixed (possibly bogus) victim.
class FixedVictimPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "fixed"; }
  void on_block_cached(const BlockId&, std::uint64_t) override {}
  void on_block_accessed(const BlockId&) override {}
  void on_block_evicted(const BlockId&) override {}
  std::optional<BlockId> choose_victim() override { return victim; }
  std::optional<BlockId> victim;
};

TEST(MemoryStore, InsertWithinCapacityStores) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  const InsertResult r = store.insert(block(1, 0), 40);
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_EQ(store.used(), 40u);
  EXPECT_EQ(store.free_bytes(), 60u);
  EXPECT_TRUE(store.contains(block(1, 0)));
  EXPECT_EQ(store.block_bytes(block(1, 0)), 40u);
}

TEST(MemoryStore, EvictsUntilFits) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  store.insert(block(1, 1), 40);
  const InsertResult r = store.insert(block(1, 2), 60);
  EXPECT_TRUE(r.stored);
  // Evicting the single LRU block (40) is enough: 40 + 60 = 100 fits.
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));
  EXPECT_EQ(r.evicted[0].second, 40u);
  EXPECT_EQ(store.num_blocks(), 2u);
  EXPECT_EQ(store.used(), 100u);
}

TEST(MemoryStore, OversizedBlockRejected) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  const InsertResult r = store.insert(block(2, 0), 200);
  EXPECT_FALSE(r.stored);
  EXPECT_TRUE(r.evicted.empty());      // nothing sacrificed for a lost cause
  EXPECT_TRUE(store.contains(block(1, 0)));
}

TEST(MemoryStore, ReinsertResidentBlockIsAccess) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  store.insert(block(1, 1), 40);
  store.insert(block(1, 0), 40);  // refresh
  // Now 1,1 is LRU.
  const InsertResult r = store.insert(block(1, 2), 40);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 1));
}

TEST(MemoryStore, ReinsertWithDifferentSizeIsABug) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_ANY_THROW(store.insert(block(1, 0), 41));
}

TEST(MemoryStore, RemoveNotifiesPolicy) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_TRUE(store.remove(block(1, 0)));
  EXPECT_FALSE(store.remove(block(1, 0)));
  EXPECT_EQ(store.used(), 0u);
  EXPECT_EQ(lru.resident_count(), 0u);
}

TEST(MemoryStore, AccessReportsResidency) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 40);
  EXPECT_TRUE(store.access(block(1, 0)));
  EXPECT_FALSE(store.access(block(9, 9)));
}

TEST(MemoryStore, FallsBackWhenPolicyNominatesNonResident) {
  FixedVictimPolicy policy;
  policy.victim = block(42, 42);  // not resident: store must not stall
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 60);
  const InsertResult r = store.insert(block(1, 1), 60);
  EXPECT_TRUE(r.stored);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].first, block(1, 0));  // insertion-order fallback
}

TEST(MemoryStore, FallsBackWhenPolicyHasNoVictim) {
  FixedVictimPolicy policy;  // victim = nullopt
  MemoryStore store(100, &policy);
  store.insert(block(1, 0), 60);
  const InsertResult r = store.insert(block(1, 1), 60);
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(r.evicted.size(), 1u);
}

TEST(MemoryStore, ResidentBlocksListsAll) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  store.insert(block(1, 0), 30);
  store.insert(block(1, 1), 30);
  const auto blocks = store.resident_blocks();
  EXPECT_EQ(blocks.size(), 2u);
}

TEST(MemoryStore, ExactCapacityFits) {
  LruPolicy lru;
  MemoryStore store(100, &lru);
  const InsertResult r = store.insert(block(1, 0), 100);
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(store.free_bytes(), 0u);
}

}  // namespace
}  // namespace mrd
