// Stress tests for the process-wide persistent work-stealing executor:
// every submitted task runs exactly once (owner pops and steals combined),
// hinted deques drain under contention via stealing, hints out of range
// fall back to modulo targeting, nested submits don't deadlock, the
// MRD_NO_PERSISTENT_POOL kill switch routes TaskGroup inline, and the
// steady state spawns zero new threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.h"

namespace mrd {
namespace {

/// Simple countdown latch (C++17 — no std::latch).
class Latch {
 public:
  explicit Latch(int n) : remaining_(n) {}
  void count_down() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

struct CountTask final : Executor::Task {
  std::atomic<int>* counter = nullptr;
  std::atomic<int>* last_worker = nullptr;
  Latch* latch = nullptr;
  std::chrono::milliseconds delay{0};

  void run(unsigned worker) noexcept override {
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    if (last_worker) last_worker->store(static_cast<int>(worker));
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    if (latch) latch->count_down();
  }
};

/// Restores the environment-driven enable/disable state on scope exit so a
/// failing test can't poison the rest of the binary.
struct EnableGuard {
  explicit EnableGuard(int mode) { Executor::set_disabled_for_test(mode); }
  ~EnableGuard() { Executor::set_disabled_for_test(-1); }
};

TEST(Executor, ConfiguredWidthIsPositive) {
  EXPECT_GE(Executor::configured_width(), 1u);
}

TEST(Executor, EveryTaskRunsExactlyOnce) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  EXPECT_GE(exec.width(), 1u);
  constexpr int kTasks = 256;
  std::atomic<int> counter{0};
  Latch latch(kTasks);
  std::vector<CountTask> tasks(kTasks);
  for (CountTask& t : tasks) {
    t.counter = &counter;
    t.latch = &latch;
    exec.submit(&t);
  }
  latch.wait();
  EXPECT_EQ(counter.load(), kTasks);
  // The test body runs off-pool.
  EXPECT_EQ(Executor::current_worker(), -1);
}

TEST(Executor, TasksRunOnPoolWorkers) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  std::atomic<int> last_worker{-2};
  Latch latch(1);
  CountTask task;
  task.last_worker = &last_worker;
  task.latch = &latch;
  exec.submit(&task);
  latch.wait();
  EXPECT_GE(last_worker.load(), 0);
  EXPECT_LT(last_worker.load(),
            static_cast<int>(exec.width()));
}

TEST(Executor, HintedBacklogDrainsThroughStealing) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  if (exec.width() < 2) GTEST_SKIP() << "needs >= 2 workers to steal";
  const ExecutorStats before = exec.stats();
  // Pile slow tasks onto ONE deque: worker 0 can only run them serially,
  // so the rest of the pool must steal to drain the backlog in time.
  constexpr int kTasks = 64;
  std::atomic<int> counter{0};
  Latch latch(kTasks);
  std::vector<CountTask> tasks(kTasks);
  for (CountTask& t : tasks) {
    t.counter = &counter;
    t.latch = &latch;
    t.delay = std::chrono::milliseconds(2);
    exec.submit(&t, /*hint=*/0);
  }
  latch.wait();
  const ExecutorStats after = exec.stats();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_GT(after.steals, before.steals);
  EXPECT_GE(after.max_deque_depth, 2u);
  EXPECT_EQ(after.executed - before.executed,
            static_cast<std::uint64_t>(kTasks));
}

TEST(Executor, OutOfRangeHintFallsBackToModuloTargeting) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  std::atomic<int> counter{0};
  Latch latch(8);
  std::vector<CountTask> tasks(8);
  int hint = static_cast<int>(exec.width()) * 3 + 1;
  for (CountTask& t : tasks) {
    t.counter = &counter;
    t.latch = &latch;
    exec.submit(&t, hint);
    hint += 7;
  }
  latch.wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(Executor, TasksCanSubmitFromTasks) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  std::atomic<int> counter{0};
  Latch latch(1);
  CountTask child;
  child.counter = &counter;
  child.latch = &latch;
  struct ParentTask final : Executor::Task {
    Executor* exec = nullptr;
    CountTask* child = nullptr;
    void run(unsigned) noexcept override { exec->submit(child); }
  };
  ParentTask parent;
  parent.exec = &exec;
  parent.child = &child;
  exec.submit(&parent);
  latch.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(Executor, SteadyStateSpawnsNoThreads) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  // Warm up: the pool exists, its workers are counted.
  {
    Latch latch(1);
    CountTask warm;
    warm.latch = &latch;
    exec.submit(&warm);
    latch.wait();
  }
  const std::uint64_t spawned = exec.stats().threads_spawned;
  EXPECT_EQ(spawned, static_cast<std::uint64_t>(exec.width()));
  std::atomic<int> counter{0};
  Latch latch(128);
  std::vector<CountTask> tasks(128);
  for (CountTask& t : tasks) {
    t.counter = &counter;
    t.latch = &latch;
    exec.submit(&t);
  }
  latch.wait();
  EXPECT_EQ(counter.load(), 128);
  EXPECT_EQ(exec.stats().threads_spawned, spawned);
}

TEST(TaskGroup, RunsEveryJobAndWaits) {
  EnableGuard guard(0);
  std::atomic<int> counter{0};
  TaskGroup group;
  for (int i = 0; i < 200; ++i) {
    group.submit([&counter] { ++counter; });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(TaskGroup, ExceptionsPropagateThroughWait) {
  EnableGuard guard(0);
  TaskGroup group(2);
  group.submit([] { throw std::runtime_error("task failed"); });
  group.submit([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, MaxParallelOneRunsInlineOnCaller) {
  EnableGuard guard(0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  TaskGroup group(1);
  group.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  group.wait();
  EXPECT_EQ(ran_on, caller);
}

TEST(TaskGroup, KillSwitchRoutesJobsInline) {
  EnableGuard guard(1);
  EXPECT_FALSE(Executor::enabled());
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::atomic<int> counter{0};
  TaskGroup group(8);
  group.submit([&] {
    ran_on = std::this_thread::get_id();
    ++counter;
  });
  group.submit([&counter] { ++counter; });
  group.wait();
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskGroup, SubmitBatchWakesEnoughWorkers) {
  EnableGuard guard(0);
  Executor& exec = Executor::instance();
  constexpr int kTasks = 32;
  std::atomic<int> counter{0};
  Latch latch(kTasks);
  std::vector<CountTask> tasks(kTasks);
  std::vector<Executor::Task*> batch;
  for (CountTask& t : tasks) {
    t.counter = &counter;
    t.latch = &latch;
    batch.push_back(&t);
  }
  exec.submit_batch(batch.data(), batch.size());
  latch.wait();
  EXPECT_EQ(counter.load(), kTasks);
}

}  // namespace
}  // namespace mrd
