#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "api/spark_context.h"
#include "core/mrd_manager.h"
#include "core/profile_store.h"
#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "dag/reference_profile.h"

namespace mrd {
namespace {

ExecutionPlan plan_of(SparkContext&& sc) {
  return DagScheduler::plan(std::move(sc).build_shared());
}

/// data cached in job0, referenced in jobs 1 and 2.
ExecutionPlan three_job_plan(RddId* cached_out) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 100).map("data").cache();
  data.count("job0");
  data.map("m1").count("job1");
  data.map("m2").count("job2");
  *cached_out = data.id();
  return plan_of(std::move(sc));
}

TEST(ReferenceProfile, CreationAndReferencesRecorded) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  const ReferenceProfileMap profiles = build_reference_profile(plan);

  ASSERT_EQ(profiles.count(cached), 1u);
  const RddReferenceProfile& p = profiles.at(cached);
  EXPECT_EQ(p.creation.job, 0u);
  ASSERT_EQ(p.references.size(), 2u);
  EXPECT_EQ(p.references[0].job, 1u);
  EXPECT_EQ(p.references[1].job, 2u);
  EXPECT_LT(p.creation.stage, p.references[0].stage);
  EXPECT_LT(p.references[0].stage, p.references[1].stage);
}

TEST(ReferenceProfile, NonPersistedRddsAbsent) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 100).map("data");  // not cached
  data.count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_TRUE(build_reference_profile(plan).empty());
}

TEST(ReferenceProfile, JobFragmentSeesOnlyThatJob) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);

  const ReferenceProfileMap job0 = build_job_reference_profile(plan, 0);
  ASSERT_EQ(job0.count(cached), 1u);
  EXPECT_TRUE(job0.at(cached).references.empty());  // created, not read

  const ReferenceProfileMap job1 = build_job_reference_profile(plan, 1);
  ASSERT_EQ(job1.count(cached), 1u);
  EXPECT_EQ(job1.at(cached).references.size(), 1u);
  // Creation happened in an earlier job — invisible from this fragment.
  EXPECT_EQ(job1.at(cached).creation.stage, kInvalidStage);
}

TEST(ReferenceProfile, JobOutOfRangeThrows) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  EXPECT_ANY_THROW(build_job_reference_profile(plan, 99));
}

// ---- Stale stored profiles (recurring applications) ----

TEST(ReferenceProfile, MrdManagerReconcilesStaleStoredProfile) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  const auto num_stages = static_cast<StageId>(plan.total_stages());

  // A recurring application whose stored profile came from a *differently
  // shaped* earlier run: it carries the real references plus a reference
  // into a stage/job the observed DAG does not have, and an entry for an
  // RDD id past the app's range.
  ReferenceProfileMap stale = build_reference_profile(plan);
  const std::size_t real_refs = stale.at(cached).references.size();
  stale.at(cached).references.push_back(
      ReferenceEvent{static_cast<StageId>(num_stages + 4), 99});
  const auto phantom_rdd = static_cast<RddId>(plan.app().num_rdds() + 3);
  RddReferenceProfile phantom;
  phantom.rdd = phantom_rdd;
  phantom.references.push_back(ReferenceEvent{0, 0});
  stale[phantom_rdd] = phantom;

  ProfileStore store;
  store.record(plan.app().name(), stale);
  MrdManager manager(std::make_shared<AppProfiler>(&store),
                     DistanceMetric::kStage, /*num_nodes=*/4);
  manager.on_application_start(plan);

  // Both out-of-range references were dropped (logged + counted), the
  // in-range ones kept.
  EXPECT_EQ(manager.stats().profile_refs_reconciled, 2u);
  EXPECT_EQ(manager.table().num_entries(), real_refs);

  // The phantom RDD must not surface anywhere.
  EXPECT_TRUE(std::isinf(manager.distance(phantom_rdd)));
  const std::vector<RddId> order = manager.prefetch_order();
  EXPECT_EQ(std::count(order.begin(), order.end(), phantom_rdd), 0);

  // Consume every real stage: without reconciliation the phantom reference
  // would keep the cached RDD at a finite distance forever (stale-distance
  // evictions, never purged). Reconciled, it goes inactive like any RDD
  // whose references ran out.
  manager.on_stage_start(plan, plan.jobs().back().id, num_stages - 1);
  manager.on_stage_end(plan, plan.jobs().back().id, num_stages - 1);
  EXPECT_TRUE(std::isinf(manager.distance(cached)));
  const std::vector<RddId> purge = manager.purge_rdds();
  EXPECT_EQ(std::count(purge.begin(), purge.end(), cached), 1);
}

TEST(ReferenceProfile, MrdManagerKeepsMatchingStoredProfileIntact) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  ProfileStore store;
  store.record(plan.app().name(), build_reference_profile(plan));
  MrdManager manager(std::make_shared<AppProfiler>(&store),
                     DistanceMetric::kStage, /*num_nodes=*/4);
  manager.on_application_start(plan);
  EXPECT_EQ(manager.stats().profile_refs_reconciled, 0u);
  EXPECT_EQ(manager.table().num_entries(),
            build_reference_profile(plan).at(cached).references.size());
}

// ---- Table 1 statistics ----

TEST(DistanceStats, SingleGapComputedExactly) {
  SparkContext sc("app");
  auto data = sc.text_file("in", 4, 100).map("d").cache();
  data.count("job0");  // stage 0: creation
  data.count("job1");  // stage 1: reference
  const ExecutionPlan plan = plan_of(std::move(sc));

  const ReferenceDistanceStats stats = reference_distance_stats(plan);
  EXPECT_EQ(stats.num_gaps, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_stage_distance, 1.0);
  EXPECT_EQ(stats.max_stage_distance, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_job_distance, 1.0);
  EXPECT_EQ(stats.max_job_distance, 1u);
}

TEST(DistanceStats, NoCachingMeansNoGaps) {
  SparkContext sc("app");
  sc.text_file("in", 4, 100).map("m").reduce_by_key("r").save();
  const ExecutionPlan plan = plan_of(std::move(sc));
  const ReferenceDistanceStats stats = reference_distance_stats(plan);
  EXPECT_EQ(stats.num_gaps, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_stage_distance, 0.0);
  EXPECT_EQ(stats.max_stage_distance, 0u);
}

TEST(DistanceStats, GapsMatchHelperList) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  const auto gaps = stage_distance_gaps(plan);
  const ReferenceDistanceStats stats = reference_distance_stats(plan);
  EXPECT_EQ(gaps.size(), stats.num_gaps);
  std::uint32_t max_gap = 0;
  double sum = 0;
  for (auto g : gaps) {
    max_gap = std::max(max_gap, g);
    sum += g;
  }
  EXPECT_EQ(max_gap, stats.max_stage_distance);
  EXPECT_DOUBLE_EQ(sum / gaps.size(), stats.avg_stage_distance);
}

// ---- Table 3 characteristics ----

TEST(Characteristics, CountsMatchPlan) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  const WorkloadCharacteristics c = workload_characteristics(plan);
  EXPECT_EQ(c.jobs, 3u);
  EXPECT_EQ(c.stages, plan.stage_appearances());
  EXPECT_EQ(c.active_stages, plan.active_stages());
  EXPECT_EQ(c.rdds, plan.app().num_rdds());
  EXPECT_EQ(c.persisted_rdds, 1u);
  EXPECT_EQ(c.total_references, 2u);  // jobs 1 and 2 probe the cached RDD
  EXPECT_DOUBLE_EQ(c.refs_per_rdd, 2.0);
  EXPECT_GT(c.input_bytes, 0u);
  EXPECT_GT(c.total_stage_input_bytes, 0u);
}

TEST(Characteristics, ActiveNeverExceedsAppearances) {
  RddId cached;
  const ExecutionPlan plan = three_job_plan(&cached);
  const WorkloadCharacteristics c = workload_characteristics(plan);
  EXPECT_LE(c.active_stages, c.stages);
}

// ---- Peak live working set ----

TEST(PeakLive, SequentialGenerationsDoNotStack) {
  // gen1 dies (last ref) before gen2's last use: the peak is less than the
  // total persisted footprint.
  SparkContext sc("app");
  auto gen1 = sc.text_file("in", 4, 1000).map("gen1").cache();
  gen1.count("job0");
  auto gen2 = gen1.map("gen2").cache();  // references gen1, creates gen2
  gen2.count("job1");
  gen2.count("job2");  // only gen2 alive here
  const ExecutionPlan plan = plan_of(std::move(sc));

  const std::uint64_t peak = peak_live_persisted_bytes(plan);
  const std::uint64_t total = 2u * 4u * 1000u;
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, total);
}

TEST(PeakLive, SimultaneouslyLiveRddsSum) {
  SparkContext sc("app");
  auto a = sc.text_file("a", 4, 1000).map("ca").cache();
  auto b = sc.text_file("b", 4, 1000).map("cb").cache();
  a.zip_partitions(b, "z").count("job0");
  a.zip_partitions(b, "z2").count("job1");
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(peak_live_persisted_bytes(plan), 8000u);
}

TEST(PeakLive, EmptyForUncachedApp) {
  SparkContext sc("app");
  sc.text_file("in", 2, 100).count();
  const ExecutionPlan plan = plan_of(std::move(sc));
  EXPECT_EQ(peak_live_persisted_bytes(plan), 0u);
}

}  // namespace
}  // namespace mrd
