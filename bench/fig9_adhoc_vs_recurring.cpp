// Regenerates Figure 9: ad-hoc (per-job DAG fragments) vs recurring (stored
// whole-application profile) runs of MRD, for K-Means (17 jobs, high
// refs/RDD — profile matters) and TriangleCount (2 jobs, low refs/RDD —
// indiscernible).
//
// The recurring run genuinely goes through the ProfileStore: the first
// (profiling) run records the application profile, the second run is
// recognized as recurring and replays it.
#include "bench_common.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "ad-hoc JCT", "recurring JCT", "vs ad-hoc",
                    "hit (ad-hoc)", "hit (recurring)"});
  CsvWriter csv(bench::out_dir() + "/fig9_adhoc_vs_recurring.csv");
  csv.write_row({"workload", "adhoc_jct_ratio", "recurring_jct_ratio",
                 "adhoc_hit", "recurring_hit"});

  std::cout << "Figure 9: effects of DAG information availability (ad-hoc vs "
               "recurring applications)\n\n";
  const PolicyConfig lru = bench::policy("lru");
  for (const char* key : {"km", "tc"}) {
    const WorkloadRun run =
        plan_workload(*find_workload(key), bench::bench_params());

    ProfileStore store;
    PolicyConfig mrd = bench::policy("mrd");
    mrd.profile_store = &store;

    const BestComparison adhoc = best_improvement(
        run, cluster, fractions, lru, mrd, DagVisibility::kAdHoc);
    // The ad-hoc sweep recorded profiles; this pass is a recurring re-run.
    const BestComparison recurring = best_improvement(
        run, cluster, fractions, lru, mrd, DagVisibility::kRecurring);

    table.add_row({run.name, format_percent(adhoc.jct_ratio(), 0),
                   format_percent(recurring.jct_ratio(), 0),
                   format_percent(recurring.candidate.jct_ms /
                                      adhoc.candidate.jct_ms,
                                  0),
                   format_percent(adhoc.candidate.hit_ratio(), 0),
                   format_percent(recurring.candidate.hit_ratio(), 0)});
    csv.write_row({key, format_double(adhoc.jct_ratio(), 4),
                   format_double(recurring.jct_ratio(), 4),
                   format_double(adhoc.candidate.hit_ratio(), 4),
                   format_double(recurring.candidate.hit_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n(Paper: the whole-application view helps KM noticeably and "
               "leaves TC indiscernible.)\n";
  return 0;
}
