// Regenerates Figure 9: ad-hoc (per-job DAG fragments) vs recurring (stored
// whole-application profile) runs of MRD, for K-Means (17 jobs, high
// refs/RDD — profile matters) and TriangleCount (2 jobs, low refs/RDD —
// indiscernible).
//
// The recurring run genuinely goes through the ProfileStore: the first
// (profiling) run records the application profile, the second run is
// recognized as recurring and replays it. That is a real cross-run data
// dependency, so the bench runs as two parallel phases — every ad-hoc run
// completes (and records its profile) before any recurring run starts.
#include "bench_common.h"

#include <deque>

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "ad-hoc JCT", "recurring JCT", "vs ad-hoc",
                    "hit (ad-hoc)", "hit (recurring)"});
  CsvWriter csv(bench::out_dir() + "/fig9_adhoc_vs_recurring.csv");
  csv.write_row({"workload", "adhoc_jct_ratio", "recurring_jct_ratio",
                 "adhoc_hit", "recurring_hit"});

  std::cout << "Figure 9: effects of DAG information availability (ad-hoc vs "
               "recurring applications)\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");

  struct Row {
    const char* key;
    std::shared_ptr<const WorkloadRun> run;
    PolicyConfig mrd;
    PendingBest adhoc;
    BestComparison adhoc_result;
  };
  std::deque<ProfileStore> stores;  // stable addresses across both phases
  std::vector<Row> rows;

  // Phase 1: ad-hoc sweeps (these record the application profiles).
  for (const char* key : {"km", "tc"}) {
    const auto run =
        plan_workload_shared(*find_workload(key), bench::bench_params());
    PolicyConfig mrd = bench::policy("mrd");
    mrd.profile_store = &stores.emplace_back();
    rows.push_back(Row{key, run, mrd,
                       runner.submit_best(run, cluster, fractions, lru, mrd,
                                          DagVisibility::kAdHoc),
                       BestComparison{}});
  }
  for (Row& row : rows) row.adhoc_result = row.adhoc.get();

  // Phase 2: every profile is recorded; these passes are recurring re-runs.
  std::vector<PendingBest> recurring;
  for (Row& row : rows) {
    recurring.push_back(runner.submit_best(row.run, cluster, fractions, lru,
                                           row.mrd,
                                           DagVisibility::kRecurring));
  }

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const BestComparison& adhoc = row.adhoc_result;
    const BestComparison rec = recurring[i].get();

    table.add_row({row.run->name, format_percent(adhoc.jct_ratio(), 0),
                   format_percent(rec.jct_ratio(), 0),
                   format_percent(rec.candidate.jct_ms /
                                      adhoc.candidate.jct_ms,
                                  0),
                   format_percent(adhoc.candidate.hit_ratio(), 0),
                   format_percent(rec.candidate.hit_ratio(), 0)});
    csv.write_row({row.key, format_double(adhoc.jct_ratio(), 4),
                   format_double(rec.jct_ratio(), 4),
                   format_double(adhoc.candidate.hit_ratio(), 4),
                   format_double(rec.candidate.hit_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n(Paper: the whole-application view helps KM noticeably and "
               "leaves TC indiscernible.)\n";
  bench::report_sweep(runner);
  return 0;
}
