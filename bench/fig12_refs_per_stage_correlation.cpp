// Regenerates Figure 12: JCT reduction vs average references per stage
// across the 14 SparkBench workloads, with the OLS trendline (paper reports
// R² = 0.71).
#include "bench_common.h"

#include "dag/dag_analysis.h"
#include "util/math.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "Refs per stage", "JCT reduction"});
  CsvWriter csv(bench::out_dir() + "/fig12_refs_per_stage_correlation.csv");
  csv.write_row({"workload", "refs_per_stage", "jct_reduction"});

  std::cout << "Figure 12: relationship of performance and references per "
               "stage\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");

  struct Row {
    const WorkloadSpec* spec;
    std::shared_ptr<const WorkloadRun> run;
    PendingBest best;
  };
  std::vector<Row> rows;
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    const auto run = plan_workload_shared(spec, bench::bench_params());
    rows.push_back(Row{
        &spec, run,
        runner.submit_best(run, cluster, fractions, lru, mrd)});
  }

  std::vector<double> xs, ys;
  for (Row& row : rows) {
    const WorkloadCharacteristics chars =
        workload_characteristics(row.run->plan);
    const BestComparison best = row.best.get();
    const double reduction = 1.0 - best.jct_ratio();
    xs.push_back(chars.refs_per_stage);
    ys.push_back(reduction);
    table.add_row({row.spec->name, format_double(chars.refs_per_stage, 2),
                   format_percent(reduction, 1)});
    csv.write_row({row.spec->key, format_double(chars.refs_per_stage, 4),
                   format_double(reduction, 4)});
  }
  table.print(std::cout);

  const LinearFit fit = linear_regression(xs, ys);
  std::cout << "\nTrendline: reduction = " << format_double(fit.slope, 4)
            << " x refs/stage + " << format_double(fit.intercept, 4)
            << "   R^2 = " << format_double(fit.r_squared, 2)
            << "  (paper: R^2 = 0.71, positive slope)\n";
  bench::report_sweep(runner);
  return 0;
}
