// Scale-out stress tier: proves the substrate's cost tracks *active work*,
// not cluster size.
//
// One synthetic iterative workload (a PageRank-shaped chain over a large
// persisted base plus a fleet of small persisted "dimension" RDDs) is planned
// once per tier and replayed unchanged at every cluster size of a 25 → 200 →
// 1000 node sweep. Per-node cache is total/num_nodes, so the *total* cluster
// cache — and with it the number of probes, cache writes, evictions, spills
// and prefetches (the active work) — is held constant across sizes. Under
// that setup every per-phase wall clock should be roughly flat in cluster
// size; a phase that grows ~linearly with nodes has an O(cluster) term on the
// hot path (the class of bug this tier exists to catch: per-event full-node
// broadcasts, full-cluster stat scans, per-region group rebuilds).
//
// The sweep runs with BlockPlacement::kRddMixed — the scale-tier placement
// that salts each RDD's ring offset so small RDDs don't strand most of a
// large cluster — and asserts the resulting spread (satellite of the
// placement change; the 25-node paper benches stay on round-robin and are
// byte-identical to before).
//
// Tiers:
//   smoke  25/200 nodes,  ~134k blocks cached,  ~52k peak live  (CI, fast)
//   full   25/200/1000,   ~924k blocks cached, ~203k peak live
//
// Self-check (always on): whole-run wall at the largest size must stay
// within a small constant factor of the smallest size (4x smoke, 5x full).
// Gate (--gate FILE): per-phase and whole-run *ratios* largest/smallest are
// compared against the committed BENCH_scale.json ratios with a 40% margin —
// ratios, not absolute times, so the gate is robust to machine speed.
// Additionally each tier runs a node_jobs 1-vs-4 differential (field-exact
// RunMetrics compare) to re-verify fan-out identity at scale.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "dag/dag_builder.h"
#include "dag/dag_scheduler.h"
#include "dag/placement.h"
#include "exec/run_context.h"
#include "util/alloc_stats.h"
#include "util/check.h"
#include "util/scoped_timer.h"

namespace mrd {
namespace {

constexpr std::uint64_t kBlockBytes = 64ull << 10;
constexpr std::uint64_t kRankBytes = 32ull << 10;
constexpr double kFraction = 0.4;  // total cache / peak live working set
/// Gate margin on ratios (mirrors perf_microbench's median margin).
constexpr double kGateMargin = 1.4;
/// Absolute slack added to every ratio limit: a near-1.0 committed ratio
/// should not gate on scheduler jitter.
constexpr double kRatioSlack = 0.25;
/// Phases whose small-cluster median is below this floor get no ratio (too
/// little signal to divide by); phases whose large-cluster median is below
/// 1 ms are never gated.
constexpr double kRatioFloorMs = 0.2;
constexpr double kPhaseGateFloorMs = 1.0;

struct TierSpec {
  std::string name;
  std::vector<std::uint32_t> nodes;  // ascending; first/last form the ratio
  std::uint32_t parts = 0;           // partitions of the big chain RDDs
  std::uint32_t small_rdds = 0;      // dimension RDD count
  std::uint32_t small_parts = 0;     // partitions per dimension RDD
  std::uint32_t iterations = 0;
  double max_whole_run_ratio = 0.0;  // self-check bound, largest/smallest
};

// The whole-run bounds are deliberately loose backstops: whole-run wall at
// 1000 nodes includes both legitimate extra policy work (MRD issues ~30x
// more prefetch orders against 1000 small caches than 25 large ones) and
// allocator/locality noise, so it drifts run to run. Quiet-machine medians
// sit near 2x (smoke) and 4x (full) — see the committed BENCH_scale.json —
// and an O(cluster) substrate term pushes them past 10x. The sharp check is
// the per-unit ratio (kMaxUnitRatio below), which strips the work mix out.
TierSpec smoke_tier() { return {"smoke", {25, 200}, 16384, 32, 100, 6, 5.0}; }
TierSpec full_tier() {
  return {"full", {25, 200, 1000}, 65536, 64, 100, 12, 8.0};
}

/// The synthetic chain. Per iteration, one job joins the current ranks with
/// the persisted base (probing every partition of both) and caches the next
/// ranks generation — retiring the previous one, which MRD purges and LRU
/// churns out — and a second job re-reads every small dimension RDD. The
/// plan depends only on the tier, never on the cluster, so every size of the
/// sweep replays identical active work.
WorkloadRun make_scale_run(const TierSpec& tier) {
  DagBuilder b("scale-chain-" + tier.name);
  b.set_compute_ms_per_mb(0.5);
  const RddId links = b.source("links", tier.parts, kBlockBytes);
  const RddId base = b.map(links, "base");
  b.persist(base);

  std::vector<RddId> dims;
  dims.reserve(tier.small_rdds);
  for (std::uint32_t s = 0; s < tier.small_rdds; ++s) {
    const RddId src = b.source("dim-src-" + std::to_string(s),
                               tier.small_parts, kBlockBytes);
    const RddId dim = b.map(src, "dim-" + std::to_string(s));
    b.persist(dim);
    dims.push_back(dim);
  }

  TransformOpts rank_opts;
  rank_opts.bytes_per_partition = kRankBytes;
  RddId ranks = b.map(base, "ranks-0", rank_opts);
  b.persist(ranks);
  b.action(ranks, "init");

  for (std::uint32_t it = 1; it <= tier.iterations; ++it) {
    TransformOpts join_opts;
    join_opts.partitions = tier.parts;
    const RddId contrib =
        b.join(ranks, base, "contrib-" + std::to_string(it), join_opts);
    const RddId next =
        b.map(contrib, "ranks-" + std::to_string(it), rank_opts);
    b.persist(next);
    b.action(next, "iterate-" + std::to_string(it));

    const RddId mix = b.union_of(dims, "dim-mix-" + std::to_string(it));
    const RddId scored = b.filter(mix, "dim-score-" + std::to_string(it));
    b.action(scored, "score-" + std::to_string(it));
    ranks = next;
  }

  WorkloadRun run{nullptr, ExecutionPlan(nullptr, {}, {}, {}),
                  "scale-chain-" + tier.name, tier.name};
  auto app = std::make_shared<Application>(std::move(b).build());
  run.app = app;
  run.plan = DagScheduler::plan(app);
  return run;
}

ClusterConfig scale_cluster(std::uint32_t num_nodes) {
  ClusterConfig cluster = main_cluster();
  cluster.name = "scale-" + std::to_string(num_nodes);
  cluster.num_nodes = num_nodes;
  cluster.placement = BlockPlacement::kRddMixed;
  return cluster;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string json_number(double value) { return format_double(value, 3); }

struct SizeResult {
  std::uint32_t num_nodes = 0;
  double median_ms = 0.0;
  std::vector<double> samples_ms;
  std::array<double, kNumSimPhases> phase_median_ms{};
  RunMetrics metrics;  // first repeat (repeats are deterministic replicas)
  /// Heap-allocation accounting across the repeats (pooled run context):
  /// the first repeat pays construction, later repeats reuse in place. Zero
  /// everywhere when the counting allocator is compiled out (sanitizers).
  std::uint64_t fresh_allocs = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_runs = 0;
  double mean_steady_allocs() const {
    return steady_runs > 0
               ? static_cast<double>(steady_allocs) /
                     static_cast<double>(steady_runs)
               : 0.0;
  }
};

/// The block-level event count a phase's cost is proportional to when the
/// substrate is O(active work). The counts are decision-stream properties:
/// deterministic per (plan, cluster, policy), and *allowed* to grow with
/// cluster size (e.g. MRD issues far more prefetch orders against 1000 tiny
/// caches than against 25 large ones) — which is exactly why phases are
/// judged per unit of their own driver, not on raw wall clock.
std::uint64_t phase_work(const RunMetrics& m, std::size_t p) {
  switch (static_cast<SimPhase>(p)) {
    case SimPhase::kProbes:
      return m.probes;
    case SimPhase::kCacheWrites:
      return m.blocks_cached;
    case SimPhase::kPrefetchIssue:
      return m.prefetches_issued;
    case SimPhase::kPrefetchServe:
      return m.prefetches_completed;
    case SimPhase::kPurge:
      return m.purged_blocks;
    default:
      return 1;  // broadcast/partition: plan-sized, constant across the sweep
  }
}

/// One tier × policy of the sweep, plus what is needed to re-measure it.
struct Scenario {
  std::string tier;
  std::string policy;
  double max_whole_run_ratio = 0.0;
  std::shared_ptr<const WorkloadRun> run;
  std::vector<SizeResult> sizes;

  const SizeResult& smallest() const { return sizes.front(); }
  const SizeResult& largest() const { return sizes.back(); }
  double whole_run_ratio() const {
    return smallest().median_ms > 0.0
               ? largest().median_ms / smallest().median_ms
               : 0.0;
  }
  /// Largest/smallest per-phase ratio; negative when the smallest-cluster
  /// phase is too quick to divide by.
  double phase_ratio(std::size_t p) const {
    const double base = smallest().phase_median_ms[p];
    if (base < kRatioFloorMs) return -1.0;
    return largest().phase_median_ms[p] / base;
  }
  /// The scaling verdict: per-unit-of-work cost ratio, largest/smallest.
  /// ~1 means the phase spent wall clock proportional to its own event
  /// count at both scales; an O(cluster) term on the phase's hot path shows
  /// up as a ratio tracking num_nodes. Negative when either end is too
  /// quick (or did no work of that kind) to divide by.
  double phase_unit_ratio(std::size_t p) const {
    const SizeResult& lo = smallest();
    const SizeResult& hi = largest();
    const std::uint64_t lo_work = phase_work(lo.metrics, p);
    const std::uint64_t hi_work = phase_work(hi.metrics, p);
    if (lo.phase_median_ms[p] < kRatioFloorMs || lo_work == 0 ||
        hi_work == 0) {
      return -1.0;
    }
    const double lo_unit =
        lo.phase_median_ms[p] / static_cast<double>(lo_work);
    const double hi_unit =
        hi.phase_median_ms[p] / static_cast<double>(hi_work);
    return hi_unit / lo_unit;
  }
};

void measure_size(SizeResult* result, const WorkloadRun& run,
                  std::uint32_t num_nodes, const PolicyConfig& policy,
                  std::size_t repeat, std::size_t node_jobs,
                  ExecMode exec_mode = ExecMode::kAuto) {
  result->num_nodes = num_nodes;
  result->samples_ms.clear();
  std::array<std::vector<double>, kNumSimPhases> phase_samples;
  ClusterConfig cluster = scale_cluster(num_nodes);
  cluster.cache_bytes_per_node =
      cache_bytes_per_node_for(run, cluster, kFraction);
  // One pooled context across the repeats: the first pays construction, the
  // rest replay through reset-in-place — the same steady state SweepRunner
  // reaches, measured here at scale.
  RunContext context;
  for (std::size_t rep = 0; rep < repeat; ++rep) {
    RunConfig config;
    config.cluster = cluster;
    config.policy = policy;
    config.node_jobs = node_jobs;
    config.exec_mode = exec_mode;
    config.context = &context;
    PhaseTimers timers;
    config.phase_timers = &timers;
    const auto start = std::chrono::steady_clock::now();
    alloc_stats::ThreadScope alloc_scope;
    RunMetrics metrics = run_plan(run.plan, config);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    result->samples_ms.push_back(wall_ms);
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      phase_samples[p].push_back(timers.ms[p]);
    }
    if (rep == 0) {
      result->metrics = std::move(metrics);
      result->fresh_allocs = alloc_scope.allocs();
    } else if (context.fully_reused()) {
      ++result->steady_runs;
      result->steady_allocs += alloc_scope.allocs();
    }
  }
  result->median_ms = median(result->samples_ms);
  for (std::size_t p = 0; p < kNumSimPhases; ++p) {
    result->phase_median_ms[p] = median(phase_samples[p]);
  }
}

void measure_scenario(Scenario* scenario, const TierSpec& tier,
                      std::size_t repeat, std::size_t node_jobs) {
  scenario->sizes.assign(tier.nodes.size(), SizeResult{});
  for (std::size_t i = 0; i < tier.nodes.size(); ++i) {
    measure_size(&scenario->sizes[i], *scenario->run, tier.nodes[i],
                 bench::policy(scenario->policy), repeat, node_jobs);
  }
}

/// Committed whole-run ratio for `tier`/`policy` out of a BENCH_scale.json,
/// or negative when absent. Same targeted-scan approach as perf_microbench:
/// the file's shape is our own, so find the scenario's identity line and
/// read the field that follows it.
double committed_ratio(const std::string& json, const std::string& tier,
                       const std::string& policy) {
  const std::string key =
      "\"tier\": \"" + tier + "\", \"policy\": \"" + policy + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return -1.0;
  const std::string field = "\"whole_run_ratio\": ";
  const std::size_t pos = json.find(field, at);
  if (pos == std::string::npos) return -1.0;
  return std::atof(json.c_str() + pos + field.size());
}

double committed_phase_unit_ratio(const std::string& json,
                                  const std::string& tier,
                                  const std::string& policy,
                                  std::string_view phase) {
  const std::string key =
      "\"tier\": \"" + tier + "\", \"policy\": \"" + policy + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return -1.0;
  const std::string object = "\"phase_unit_ratio\": {";
  const std::size_t obj = json.find(object, at);
  if (obj == std::string::npos) return -1.0;
  const std::size_t end = json.find('}', obj);
  const std::string field = "\"" + std::string(phase) + "\": ";
  const std::size_t pos = json.find(field, obj);
  if (pos == std::string::npos || pos > end) return -1.0;
  return std::atof(json.c_str() + pos + field.size());
}

/// Field name of the first RunMetrics difference, or "" (field-exact, as in
/// perf_microbench: the simulation is deterministic, doubles must match
/// bit-for-bit).
std::string metrics_diff(const RunMetrics& a, const RunMetrics& b) {
  if (a.jct_ms != b.jct_ms) return "jct_ms";
  if (a.probes != b.probes) return "probes";
  if (a.hits != b.hits) return "hits";
  if (a.misses_from_disk != b.misses_from_disk) return "misses_from_disk";
  if (a.misses_recompute != b.misses_recompute) return "misses_recompute";
  if (a.blocks_cached != b.blocks_cached) return "blocks_cached";
  if (a.evictions != b.evictions) return "evictions";
  if (a.spills != b.spills) return "spills";
  if (a.purged_blocks != b.purged_blocks) return "purged_blocks";
  if (a.uncacheable_blocks != b.uncacheable_blocks) {
    return "uncacheable_blocks";
  }
  if (a.prefetches_issued != b.prefetches_issued) return "prefetches_issued";
  if (a.prefetches_completed != b.prefetches_completed) {
    return "prefetches_completed";
  }
  if (a.prefetches_useful != b.prefetches_useful) return "prefetches_useful";
  if (a.prefetches_wasted != b.prefetches_wasted) return "prefetches_wasted";
  if (a.disk_bytes_read != b.disk_bytes_read) return "disk_bytes_read";
  if (a.disk_bytes_written != b.disk_bytes_written) {
    return "disk_bytes_written";
  }
  if (a.network_bytes != b.network_bytes) return "network_bytes";
  if (a.recompute_cpu_ms != b.recompute_cpu_ms) return "recompute_cpu_ms";
  if (a.per_rdd_probes != b.per_rdd_probes) return "per_rdd_probes";
  if (a.mrd_table_peak_entries != b.mrd_table_peak_entries) {
    return "mrd_table_peak_entries";
  }
  if (a.mrd_update_messages != b.mrd_update_messages) {
    return "mrd_update_messages";
  }
  return "";
}

/// kRddMixed spread assertion: the dimension-RDD fleet (many small RDDs)
/// must not strand most of a 1000-node cluster the way round-robin does.
/// Pure placement arithmetic — deterministic, no simulation involved.
void check_placement_spread(std::uint32_t num_nodes, std::uint32_t rdds,
                            std::uint32_t parts) {
  std::vector<std::uint32_t> mixed(num_nodes, 0);
  std::vector<std::uint32_t> rr(num_nodes, 0);
  for (RddId r = 0; r < rdds; ++r) {
    for (PartitionIndex j = 0; j < parts; ++j) {
      const BlockId block{r, j};
      ++mixed[placement_owner(block, num_nodes, BlockPlacement::kRddMixed)];
      ++rr[placement_owner(block, num_nodes, BlockPlacement::kRoundRobin)];
    }
  }
  const auto summarize = [](const std::vector<std::uint32_t>& counts) {
    std::uint32_t max = 0;
    std::uint32_t covered = 0;
    for (std::uint32_t c : counts) {
      max = std::max(max, c);
      covered += c > 0 ? 1 : 0;
    }
    return std::pair<std::uint32_t, std::uint32_t>{max, covered};
  };
  const auto [max_mixed, covered_mixed] = summarize(mixed);
  const auto [max_rr, covered_rr] = summarize(rr);
  const double mean =
      static_cast<double>(rdds) * parts / static_cast<double>(num_nodes);
  std::printf(
      "Placement spread (%u rdds x %u partitions on %u nodes, mean %.1f "
      "blocks/node):\n"
      "  round-robin: max %u blocks/node, %u/%u nodes covered\n"
      "  rdd-mixed:   max %u blocks/node, %u/%u nodes covered\n",
      rdds, parts, num_nodes, mean, max_rr, covered_rr, num_nodes, max_mixed,
      covered_mixed, num_nodes);
  // Round-robin strands every node >= parts and stacks all rdds on the rest;
  // the salted mapping must cover most of the cluster and stay within a
  // small factor of the mean load. The stranding contrast (rdds piling on
  // the same few nodes) only bites once the cluster dwarfs the small RDDs,
  // so that pair of checks engages in the num_nodes >> parts regime.
  MRD_CHECK(covered_mixed * 4 > num_nodes * 3);
  MRD_CHECK(static_cast<double>(max_mixed) <= 4.0 * mean + 1.0);
  if (num_nodes >= 4 * parts) {
    MRD_CHECK(covered_mixed > 2 * covered_rr);
    MRD_CHECK(max_mixed * 2 < max_rr);
  }
}

}  // namespace
}  // namespace mrd

int main(int argc, char** argv) {
  using namespace mrd;

  std::size_t repeat = 3;
  std::size_t node_jobs = 1;
  bool smoke_only = false;
  std::string gate_file;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (bench::parse_count_flag(argc, argv, &i, "--repeat", "-r", &repeat) ||
        bench::parse_count_flag(argc, argv, &i, "--node-jobs", "",
                                &node_jobs)) {
      continue;
    }
    if (arg == "--smoke") {
      smoke_only = true;
      continue;
    }
    if (arg == "--gate" && i + 1 < argc) {
      gate_file = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--smoke] [--repeat N] [--node-jobs N] [--gate FILE]\n"
          "  --smoke        25/200-node tier only (CI; ~10^5 blocks)\n"
          "  --repeat N     samples per point, median reported (default 3)\n"
          "  --node-jobs N  intra-run node workers (default 1; results "
          "identical)\n"
          "  --gate FILE    fail if any size ratio exceeds FILE's committed "
          "ratio by >40%%\n",
          argv[0]);
      return 0;
    }
    std::fprintf(stderr, "%s: unknown argument %s\n", argv[0], argv[i]);
    return 2;
  }

  std::vector<TierSpec> tiers{smoke_tier()};
  if (!smoke_only) tiers.push_back(full_tier());

  // Satellite check: the scale placement actually spreads small RDDs. Runs
  // at the largest cluster of the largest tier.
  {
    const TierSpec& top = tiers.back();
    check_placement_spread(top.nodes.back(), top.small_rdds, top.small_parts);
  }

  std::vector<Scenario> scenarios;
  for (const TierSpec& tier : tiers) {
    auto run = std::make_shared<const WorkloadRun>(make_scale_run(tier));
    std::uint64_t peak_live = 0;  // reported, not asserted
    for (const RddInfo& rdd : run->app->rdds()) {
      if (rdd.persisted) peak_live += rdd.num_partitions;
    }
    std::printf("\nTier %s: %zu rdds, %zu jobs, %llu persisted blocks "
                "across the plan\n",
                tier.name.c_str(), run->app->num_rdds(),
                run->plan.jobs().size(),
                static_cast<unsigned long long>(peak_live));
    for (const std::string& policy : {std::string("mrd"), std::string("lru")}) {
      Scenario scenario;
      scenario.tier = tier.name;
      scenario.policy = policy;
      scenario.max_whole_run_ratio = tier.max_whole_run_ratio;
      scenario.run = run;
      measure_scenario(&scenario, tier, repeat, node_jobs);
      scenarios.push_back(std::move(scenario));
    }

    // Fan-out identity at scale: node_jobs 1 vs 4 at the tier's middle size
    // must agree on every RunMetrics field — under both exec modes (kAuto
    // at node_jobs 4 is the event scheduler on the persistent pool;
    // kBarrier is the serial oracle, which ignores node_jobs).
    const std::uint32_t diff_nodes = tier.nodes[tier.nodes.size() / 2];
    SizeResult serial, barrier4, event4;
    measure_size(&serial, *run, diff_nodes, bench::policy("mrd"), 1, 1);
    measure_size(&barrier4, *run, diff_nodes, bench::policy("mrd"), repeat, 4,
                 ExecMode::kBarrier);
    measure_size(&event4, *run, diff_nodes, bench::policy("mrd"), repeat, 4,
                 ExecMode::kEvent);
    for (const auto& [label, fanned] :
         {std::pair<const char*, const SizeResult*>{"barrier", &barrier4},
          {"event", &event4}}) {
      const std::string diff = metrics_diff(serial.metrics, fanned->metrics);
      if (!diff.empty()) {
        std::fprintf(stderr,
                     "FAIL: node_jobs 1 vs 4 (%s engine) differ on %s at %u "
                     "nodes (%s)\n",
                     label, diff.c_str(), diff_nodes, tier.name.c_str());
        return 1;
      }
    }
    // Informational engine comparison (the gate's ratios stay measured at
    // the sweep's --node-jobs, default 1): same run, serial oracle vs the
    // event engine at 4 workers.
    std::printf("  node_jobs 1 vs 4 at %u nodes: metrics identical under "
                "both exec modes\n"
                "  engines at %u nodes: serial oracle %.1f ms, event @ 4 "
                "workers %.1f ms (%.2fx)\n",
                diff_nodes, diff_nodes, barrier4.median_ms, event4.median_ms,
                event4.median_ms > 0.0
                    ? barrier4.median_ms / event4.median_ms
                    : 0.0);
  }

  // --- Report: per-size medians and the largest/smallest ratios.
  AsciiTable table({"tier/policy", "nodes", "wall ms", "probes", "writes",
                    "issue", "serve", "purge", "bcast", "part"});
  for (const Scenario& s : scenarios) {
    for (const SizeResult& r : s.sizes) {
      table.add_row({s.tier + "/" + s.policy, std::to_string(r.num_nodes),
                     format_double(r.median_ms, 1),
                     format_double(r.phase_median_ms[0], 1),
                     format_double(r.phase_median_ms[1], 1),
                     format_double(r.phase_median_ms[2], 1),
                     format_double(r.phase_median_ms[3], 1),
                     format_double(r.phase_median_ms[4], 1),
                     format_double(r.phase_median_ms[5], 1),
                     format_double(r.phase_median_ms[6], 1)});
    }
    table.add_separator();
  }
  std::printf("\n");
  table.print(std::cout);

  // The "equal active work" premise, verifiable: block-level event counts
  // per size. These are decision-stream properties (deterministic), so a
  // count that grows with cluster size is the *policy* doing more work at
  // that scale, not substrate overhead — the phase ratios above divide by
  // the same wall regardless, which is why the gate compares against
  // committed ratios instead of assuming perfect flatness.
  AsciiTable work({"tier/policy", "nodes", "probes", "hits", "cached",
                   "evicted", "spilled", "pf issued", "pf done", "purged"});
  for (const Scenario& s : scenarios) {
    for (const SizeResult& r : s.sizes) {
      const RunMetrics& m = r.metrics;
      work.add_row({s.tier + "/" + s.policy, std::to_string(r.num_nodes),
                    std::to_string(m.probes), std::to_string(m.hits),
                    std::to_string(m.blocks_cached),
                    std::to_string(m.evictions), std::to_string(m.spills),
                    std::to_string(m.prefetches_issued),
                    std::to_string(m.prefetches_completed),
                    std::to_string(m.purged_blocks)});
    }
    work.add_separator();
  }
  std::printf("\n");
  work.print(std::cout);
  std::printf("\nSize ratios, largest/smallest cluster ('-' = too fast or "
              "no work to divide by).\n"
              "Per-unit = phase wall / its own event count — the O(active "
              "work) verdict:\n");
  for (const Scenario& s : scenarios) {
    std::string raw;
    std::string unit;
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      const double r = s.phase_ratio(p);
      const double u = s.phase_unit_ratio(p);
      raw += " " + std::string(kSimPhaseNames[p]) + "=" +
             (r < 0.0 ? "-" : format_double(r, 2));
      unit += " " + std::string(kSimPhaseNames[p]) + "=" +
              (u < 0.0 ? "-" : format_double(u, 2));
    }
    std::printf("  %s/%s: whole-run %.2fx\n    raw:     %s\n    per-unit:%s\n",
                s.tier.c_str(), s.policy.c_str(), s.whole_run_ratio(),
                raw.c_str(), unit.c_str());
  }

  // --- Self-check: (a) the largest cluster must finish within a small
  // constant factor of the smallest (probes are plan-identical across the
  // sweep, so a blow-up here is substrate overhead); (b) no phase may cost
  // more than kMaxUnitRatio x per unit of its own work at the large end —
  // an O(cluster) term on a phase's hot path shows up as a per-unit ratio
  // tracking num_nodes (40x here), while legitimate scale effects (colder
  // caches, 1000 separate node states) stay in low single digits. One
  // re-measure before failing (load bursts rarely span both).
  constexpr double kMaxUnitRatio = 6.0;
  const auto self_check = [&](const Scenario& s, bool verbose) {
    bool ok = true;
    if (s.whole_run_ratio() > s.max_whole_run_ratio) {
      if (verbose) {
        std::fprintf(stderr,
                     "FAIL: %s/%s whole-run grows %.2fx from %u to %u nodes "
                     "(bound %.2fx) — an O(cluster) term is back on the hot "
                     "path\n",
                     s.tier.c_str(), s.policy.c_str(), s.whole_run_ratio(),
                     s.smallest().num_nodes, s.largest().num_nodes,
                     s.max_whole_run_ratio);
      }
      ok = false;
    }
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      if (s.largest().phase_median_ms[p] < kPhaseGateFloorMs) continue;
      const double unit = s.phase_unit_ratio(p);
      if (unit <= kMaxUnitRatio) continue;  // includes the -1 "no signal"
      if (verbose) {
        std::fprintf(stderr,
                     "FAIL: %s/%s phase %s costs %.2fx more per unit of its "
                     "own work at %u nodes than at %u (bound %.2fx)\n",
                     s.tier.c_str(), s.policy.c_str(),
                     std::string(kSimPhaseNames[p]).c_str(), unit,
                     s.largest().num_nodes, s.smallest().num_nodes,
                     kMaxUnitRatio);
      }
      ok = false;
    }
    return ok;
  };
  for (Scenario& s : scenarios) {
    if (self_check(s, false)) continue;
    std::printf("  %s/%s over a self-check bound — re-measuring\n",
                s.tier.c_str(), s.policy.c_str());
    const TierSpec tier = s.tier == "smoke" ? smoke_tier() : full_tier();
    measure_scenario(&s, tier, repeat, node_jobs);
    if (!self_check(s, true)) return 1;
  }

  // Load the committed baseline *before* writing the fresh JSON: the gate
  // file is typically the checked-out BENCH_scale.json in the working
  // directory, i.e. the very path the write below replaces — reading it
  // afterwards would gate the run against itself.
  std::string committed;
  if (!gate_file.empty()) {
    std::ifstream in(gate_file);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read gate file %s\n",
                   gate_file.c_str());
      return 1;
    }
    committed.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }

  // --- JSON (same layout discipline as BENCH_core.json: written fresh on
  // every run; commit it to update the gate's baseline ratios).
  std::ofstream json("BENCH_scale.json");
  json << "{\n  \"bench\": \"scale_stress\",\n"
       << "  \"cache_fraction\": " << json_number(kFraction) << ",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    json << "    {\n      \"tier\": \"" << s.tier << "\", \"policy\": \""
         << s.policy << "\",\n      \"sizes\": [\n";
    for (std::size_t j = 0; j < s.sizes.size(); ++j) {
      const SizeResult& r = s.sizes[j];
      json << "        {\"num_nodes\": " << r.num_nodes
           << ", \"median_ms\": " << json_number(r.median_ms)
           << ", \"allocs\": {\"available\": "
           << (alloc_stats::available() ? "true" : "false")
           << ", \"fresh\": " << r.fresh_allocs
           << ", \"steady_runs\": " << r.steady_runs
           << ", \"steady_mean\": " << json_number(r.mean_steady_allocs())
           << "}, \"phase_median_ms\": {";
      for (std::size_t p = 0; p < kNumSimPhases; ++p) {
        json << (p ? ", " : "") << "\"" << kSimPhaseNames[p]
             << "\": " << json_number(r.phase_median_ms[p]);
      }
      json << "}}" << (j + 1 < s.sizes.size() ? "," : "") << "\n";
    }
    json << "      ],\n      \"whole_run_ratio\": "
         << json_number(s.whole_run_ratio()) << ",\n      \"phase_ratio\": {";
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      json << (p ? ", " : "") << "\"" << kSimPhaseNames[p]
           << "\": " << json_number(s.phase_ratio(p));
    }
    json << "},\n      \"phase_unit_ratio\": {";
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      json << (p ? ", " : "") << "\"" << kSimPhaseNames[p]
           << "\": " << json_number(s.phase_unit_ratio(p));
    }
    json << "}\n    }" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nJSON: BENCH_scale.json\n");

  // --- Scaling gate: current size ratios vs the committed file's, with a
  // 40% margin. Ratios are machine-speed independent, so no absolute-time
  // baseline is needed; scenarios absent from the committed file (e.g. the
  // full tier when CI gates a --smoke run) are skipped.
  if (!gate_file.empty()) {
    const auto gate_scenario = [&committed](const Scenario& s) {
      const double base = committed_ratio(committed, s.tier, s.policy);
      if (base <= 0.0) {
        std::printf("  %s/%s: no committed ratio, skipped\n", s.tier.c_str(),
                    s.policy.c_str());
        return true;
      }
      const double limit = base * kGateMargin + kRatioSlack;
      bool ok = s.whole_run_ratio() <= limit;
      std::printf("  %s/%s: ratio %.2f vs committed %.2f (limit %.2f) %s\n",
                  s.tier.c_str(), s.policy.c_str(), s.whole_run_ratio(), base,
                  limit, ok ? "OK" : "REGRESSED");
      for (std::size_t p = 0; p < kNumSimPhases; ++p) {
        // Gate per-unit-of-work ratios (the O(active work) verdict), only
        // for phases with committed signal and a measurable current cost:
        // sub-millisecond phases are all jitter.
        const double phase_base = committed_phase_unit_ratio(
            committed, s.tier, s.policy, kSimPhaseNames[p]);
        if (phase_base <= 0.0) continue;
        if (s.largest().phase_median_ms[p] < kPhaseGateFloorMs) continue;
        const double current = s.phase_unit_ratio(p);
        if (current < 0.0) continue;
        // At least +1.0 absolute headroom: a low committed ratio (~1.2)
        // would otherwise gate at ~1.9, within repeat-1 noise for a
        // couple-of-ms phase. An O(cluster) term lands at the node spread
        // itself (8x smoke, 40x full), far beyond either formula.
        const double phase_limit = std::max(
            phase_base * kGateMargin + kRatioSlack, phase_base + 1.0);
        if (current > phase_limit) {
          std::printf("  %s/%s phase %s: per-unit ratio %.2f vs committed "
                      "%.2f (limit %.2f) REGRESSED\n",
                      s.tier.c_str(), s.policy.c_str(),
                      std::string(kSimPhaseNames[p]).c_str(), current,
                      phase_base, phase_limit);
          ok = false;
        }
      }
      return ok;
    };

    std::printf("\nScaling gate vs %s (margin %.0f%% on size ratios):\n",
                gate_file.c_str(), (kGateMargin - 1.0) * 100.0);
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (!gate_scenario(scenarios[i])) failing.push_back(i);
    }
    if (!failing.empty()) {
      std::printf("  re-measuring %zu scenario(s) to rule out a transient "
                  "load burst:\n",
                  failing.size());
      bool gate_ok = true;
      for (const std::size_t i : failing) {
        Scenario& s = scenarios[i];
        const TierSpec tier = s.tier == "smoke" ? smoke_tier() : full_tier();
        measure_scenario(&s, tier, repeat, node_jobs);
        gate_ok = gate_scenario(s) && gate_ok;
      }
      if (!gate_ok) {
        std::fprintf(stderr,
                     "FAIL: scaling gate — at least one size ratio grew "
                     ">40%% over the committed BENCH_scale.json in both "
                     "measurements\n");
        return 1;
      }
    }
    std::printf("Scaling gate passed.\n");
  }
  return 0;
}
