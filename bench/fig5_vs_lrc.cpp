// Regenerates Figure 5: MRD vs LRC on the "LRC cluster" preset (20 nodes,
// EC2 m4.large-like) for the graph-heavy workloads the LRC paper evaluates.
//
// Shape targets: MRD beats LRC on every workload; the biggest margin is on
// ConnectedComponents (paper: up to 45%, ~30% average).
#include "bench_common.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = lrc_cluster();
  const std::vector<double>& fractions = default_cache_fractions();
  const char* keys[] = {"cc", "svdpp", "pr", "scc", "po"};

  AsciiTable table({"Workload", "LRC vs LRU", "MRD vs LRU", "MRD vs LRC"});
  CsvWriter csv(bench::out_dir() + "/fig5_vs_lrc.csv");
  csv.write_row({"workload", "lrc_jct_ratio", "mrd_jct_ratio",
                 "mrd_vs_lrc_ratio"});

  std::cout << "Figure 5: comparison to the LRC policy (LRC cluster)\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  struct Row {
    const char* key;
    std::shared_ptr<const WorkloadRun> run;
    PendingBest lrc, mrd;
  };
  std::vector<Row> rows;
  for (const char* key : keys) {
    const auto run =
        plan_workload_shared(*find_workload(key), bench::bench_params());
    rows.push_back(Row{
        key, run,
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("lrc")),
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("mrd"))});
  }

  double sum_ratio = 0;
  for (Row& row : rows) {
    const BestComparison lrc = row.lrc.get();
    const BestComparison mrd = row.mrd.get();
    // Best-vs-best comparison (the paper takes the best values from each
    // system's experiments): ratio of the two normalized-JCT improvements.
    const double vs_lrc = lrc.jct_ratio() == 0
                                 ? 1.0
                                 : mrd.jct_ratio() / lrc.jct_ratio();
    sum_ratio += vs_lrc;
    table.add_row({row.run->name, format_percent(lrc.jct_ratio(), 0),
                   format_percent(mrd.jct_ratio(), 0),
                   format_percent(vs_lrc, 0)});
    csv.write_row({row.key, format_double(lrc.jct_ratio(), 4),
                   format_double(mrd.jct_ratio(), 4),
                   format_double(vs_lrc, 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "",
                 format_percent(sum_ratio / std::size(keys), 0)});
  table.print(std::cout);
  std::cout << "\n(MRD vs LRC < 100% means MRD is faster. Paper: up to 45% "
               "improvement, ~30% average.)\n";
  bench::report_sweep(runner);
  return 0;
}
