// Regenerates Figure 5: MRD vs LRC on the "LRC cluster" preset (20 nodes,
// EC2 m4.large-like) for the graph-heavy workloads the LRC paper evaluates.
//
// Shape targets: MRD beats LRC on every workload; the biggest margin is on
// ConnectedComponents (paper: up to 45%, ~30% average).
#include "bench_common.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = lrc_cluster();
  const std::vector<double>& fractions = default_cache_fractions();
  const char* keys[] = {"cc", "svdpp", "pr", "scc", "po"};

  AsciiTable table({"Workload", "LRC vs LRU", "MRD vs LRU", "MRD vs LRC"});
  CsvWriter csv(bench::out_dir() + "/fig5_vs_lrc.csv");
  csv.write_row({"workload", "lrc_jct_ratio", "mrd_jct_ratio",
                 "mrd_vs_lrc_ratio"});

  std::cout << "Figure 5: comparison to the LRC policy (LRC cluster)\n\n";
  double sum_ratio = 0;
  const PolicyConfig lru = bench::policy("lru");
  for (const char* key : keys) {
    const WorkloadRun run =
        plan_workload(*find_workload(key), bench::bench_params());
    const BestComparison lrc =
        best_improvement(run, cluster, fractions, lru, bench::policy("lrc"));
    const BestComparison mrd =
        best_improvement(run, cluster, fractions, lru, bench::policy("mrd"));
    // Best-vs-best comparison (the paper takes the best values from each
    // system's experiments): ratio of the two normalized-JCT improvements.
    const double vs_lrc = lrc.jct_ratio() == 0
                                 ? 1.0
                                 : mrd.jct_ratio() / lrc.jct_ratio();
    sum_ratio += vs_lrc;
    table.add_row({run.name, format_percent(lrc.jct_ratio(), 0),
                   format_percent(mrd.jct_ratio(), 0),
                   format_percent(vs_lrc, 0)});
    csv.write_row({key, format_double(lrc.jct_ratio(), 4),
                   format_double(mrd.jct_ratio(), 4),
                   format_double(vs_lrc, 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "",
                 format_percent(sum_ratio / std::size(keys), 0)});
  table.print(std::cout);
  std::cout << "\n(MRD vs LRC < 100% means MRD is faster. Paper: up to 45% "
               "improvement, ~30% average.)\n";
  return 0;
}
