// Regenerates Table 1: reference-distance characteristics of the SparkBench
// and HiBench workloads (average/maximum job and stage distances).
//
// Shape targets: SparkBench distances dwarf HiBench's; LP and SCC have the
// suite's largest values; Sort/WordCount are exactly zero.
//
// Planning-only driver: no cache simulation runs. Each workload's DAG plan
// and distance stats are computed on the persistent executor (--jobs N).
#include "bench_common.h"

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"

#include <chrono>

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  AsciiTable table({"Workload", "Avg Job Dist", "Max Job Dist",
                    "Avg Stage Dist", "Max Stage Dist"});
  CsvWriter csv(bench::out_dir() + "/table1_reference_distance.csv");
  csv.write_row({"suite", "workload", "avg_job", "max_job", "avg_stage",
                 "max_stage"});

  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t planned = 0;

  const auto emit = [&](const char* suite,
                        const std::vector<WorkloadSpec>& specs) {
    std::vector<ReferenceDistanceStats> stats(specs.size());
    TaskGroup group(options.jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      group.submit([&specs, &stats, i] {
        const ExecutionPlan plan = DagScheduler::plan(specs[i].make({}));
        stats[i] = reference_distance_stats(plan);
      });
    }
    group.wait();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const WorkloadSpec& spec = specs[i];
      const ReferenceDistanceStats& s = stats[i];
      ++planned;
      table.add_row({spec.name, format_double(s.avg_job_distance, 2),
                     std::to_string(s.max_job_distance),
                     format_double(s.avg_stage_distance, 2),
                     std::to_string(s.max_stage_distance)});
      csv.write_row({suite, spec.key, format_double(s.avg_job_distance, 4),
                     std::to_string(s.max_job_distance),
                     format_double(s.avg_stage_distance, 4),
                     std::to_string(s.max_stage_distance)});
    }
  };

  std::cout << "Table 1: reference distance characteristics of benchmark "
               "workloads\n\n";
  emit("sparkbench", sparkbench_workloads());
  table.add_separator();
  emit("hibench", hibench_workloads());
  table.print(std::cout);
  std::cout << "\nCSV: " << bench::out_dir()
            << "/table1_reference_distance.csv\n";
  bench::report_wall(planned, options.jobs, wall_start);
  return 0;
}
