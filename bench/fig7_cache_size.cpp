// Regenerates Figure 7: cache-size sweep for SVD++ on the LRC cluster —
// hit ratio and runtime under LRU, LRC and MRD at each cache size — plus the
// paper's cache-space-savings observation (MRD matches LRU's hit ratio with
// roughly a third of the cache).
#include "bench_common.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = lrc_cluster();
  const auto run =
      plan_workload_shared(*find_workload("svdpp"), bench::bench_params());
  const std::vector<double> fractions = {0.2, 0.35, 0.5, 0.65, 0.8, 1.0};
  const char* policies[] = {"lru", "lrc", "mrd"};

  AsciiTable table({"Cache (frac of WS)", "Cache/node", "LRU hit", "LRC hit",
                    "MRD hit", "LRU JCT(s)", "LRC JCT(s)", "MRD JCT(s)"});
  CsvWriter csv(bench::out_dir() + "/fig7_cache_size.csv");
  csv.write_row({"fraction", "cache_bytes_per_node", "policy", "hit_ratio",
                 "jct_ms"});

  std::cout << "Figure 7: effects of cache size on hit ratio and runtime "
               "(SVD++, LRC cluster)\n\n";

  // All (fraction × policy) points queued before any is collected.
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  std::vector<std::vector<SweepTicket>> tickets;
  for (double fraction : fractions) {
    auto& per_policy = tickets.emplace_back();
    for (const char* pol : policies) {
      per_policy.push_back(runner.submit(
          SweepJob{run, cluster, fraction, bench::policy(pol)}));
    }
  }

  // For the savings computation: smallest fraction at which each policy
  // reaches LRU's hit ratio at the largest size × a target level.
  std::vector<std::vector<double>> hits(3), jcts(3);
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    const double fraction = fractions[fi];
    std::vector<std::string> row;
    row.push_back(format_double(fraction, 2));
    row.push_back(
        human_bytes(cache_bytes_per_node_for(*run, cluster, fraction)));
    std::vector<std::string> hit_cells, jct_cells;
    for (int i = 0; i < 3; ++i) {
      const RunMetrics m = tickets[fi][i].get();
      hits[i].push_back(m.hit_ratio());
      jcts[i].push_back(m.jct_ms);
      hit_cells.push_back(format_percent(m.hit_ratio(), 0));
      jct_cells.push_back(format_double(m.jct_ms / 1000.0, 2));
      csv.write_row({format_double(fraction, 2),
                     std::to_string(
                         cache_bytes_per_node_for(*run, cluster, fraction)),
                     policies[i], format_double(m.hit_ratio(), 4),
                     format_double(m.jct_ms, 1)});
    }
    for (auto& c : hit_cells) row.push_back(c);
    for (auto& c : jct_cells) row.push_back(c);
    table.add_row(row);
  }
  table.print(std::cout);

  // Cache-space savings: the smallest fraction at which MRD's hit ratio
  // matches or beats LRU's at a mid-sweep point.
  const double target = hits[0][2];  // LRU at fraction 0.5
  double mrd_needed = fractions.back();
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (hits[2][i] >= target) {
      mrd_needed = fractions[i];
      break;
    }
  }
  std::cout << "\nTo match LRU's hit ratio at fraction 0.50 ("
            << format_percent(target, 0) << "), MRD needs fraction "
            << format_double(mrd_needed, 2) << " — "
            << format_percent(1.0 - mrd_needed / 0.5, 0)
            << " cache-space savings (paper: 63% for SVD++).\n";
  std::cout << "CSV: " << bench::out_dir() << "/fig7_cache_size.csv\n";
  bench::report_sweep(runner);
  return 0;
}
