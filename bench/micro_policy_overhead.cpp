// §4.4 overhead claims, measured with google-benchmark:
//   * MRD's victim-selection cost is the same order as LRU's;
//   * the MRD_Table stays small (the paper: < 300 references, a few KB) and
//     updates are a cheap sorted-insert;
//   * the per-stage decrement (consume) is linear in table size.
//
// Also measures the harness's own dispatch machinery: fork-join via the
// persistent work-stealing executor vs spawning threads per batch
// (BM_SpawnVsPersistentPool) and the cross-worker steal handoff latency
// (BM_StealLatency).
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/spark_context.h"
#include "cache/lru.h"
#include "cluster/memory_store.h"
#include "core/cache_monitor.h"
#include "core/policy_registry.h"
#include "core/ref_distance_table.h"
#include "dag/dag_scheduler.h"
#include "exec/executor.h"
#include "exec/run_context.h"
#include "util/arena.h"
#include "workloads/workloads.h"

namespace mrd {
namespace {

ExecutionPlan benchmark_plan() {
  return DagScheduler::plan(find_workload("pr")->make({}));
}

void BM_LruChooseVictim(benchmark::State& state) {
  LruPolicy lru;
  const auto blocks = static_cast<PartitionIndex>(state.range(0));
  for (PartitionIndex p = 0; p < blocks; ++p) {
    lru.on_block_cached(BlockId{1, p}, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.choose_victim());
  }
}
BENCHMARK(BM_LruChooseVictim)->Arg(64)->Arg(512)->Arg(4096);

void BM_MrdChooseVictim(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 1);
  CacheMonitor monitor(manager, 0, 1);
  monitor.on_application_start(plan);
  monitor.on_stage_start(plan, 0, 0);
  const auto blocks = static_cast<PartitionIndex>(state.range(0));
  for (PartitionIndex p = 0; p < blocks; ++p) {
    monitor.on_block_cached(BlockId{1, p}, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.choose_victim());
  }
}
BENCHMARK(BM_MrdChooseVictim)->Arg(64)->Arg(512)->Arg(4096);

void BM_MrdTableUpdate(benchmark::State& state) {
  const auto refs = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    RefDistanceTable table;
    for (std::uint32_t i = 0; i < refs; ++i) {
      table.add_reference(i % 37, i, i / 4);
    }
    benchmark::DoNotOptimize(table.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * refs);
}
BENCHMARK(BM_MrdTableUpdate)->Arg(300)->Arg(3000);

void BM_MrdTableConsume(benchmark::State& state) {
  const auto refs = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RefDistanceTable table;
    for (std::uint32_t i = 0; i < refs; ++i) {
      table.add_reference(i % 37, i, i / 4);
    }
    state.ResumeTiming();
    table.consume_up_to(refs / 2);
    benchmark::DoNotOptimize(table.num_entries());
  }
}
BENCHMARK(BM_MrdTableConsume)->Arg(300)->Arg(3000);

void BM_AppProfilerParseJob(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  for (auto _ : state) {
    AppProfiler profiler;
    for (JobId j = 0; j < plan.jobs().size(); ++j) {
      benchmark::DoNotOptimize(profiler.parse_job(plan, j));
    }
  }
}
BENCHMARK(BM_AppProfilerParseJob);

void BM_PrefetchOrder(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 25);
  manager->on_application_start(plan);
  manager->on_stage_start(plan, 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager->prefetch_order());
  }
}
BENCHMARK(BM_PrefetchOrder);

// Per-call cost of one budgeted prefetch_candidates() pass. Arg(1) measures
// the steady state: the frontier cursor proved the whole stream skippable on
// an earlier pass, so a repeat pass is O(1). Arg(0) invalidates the cursor
// every iteration (one insert/evict pair, as resident churn between stages
// does), measuring the full re-enumeration a cold pass pays.
void BM_MrdPrefetchCandidates(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 1);
  CacheMonitor monitor(manager, 0, 1);
  monitor.on_application_start(plan);
  monitor.on_stage_start(plan, 0, 0);
  PrefetchBudget budget;
  budget.queue_slots = 64;
  const bool warm_cursor = state.range(0) != 0;
  for (auto _ : state) {
    if (!warm_cursor) {
      monitor.on_block_cached(BlockId{0, 0}, 1);
      monitor.on_block_evicted(BlockId{0, 0});
    }
    std::size_t offers = 0;
    monitor.prefetch_candidates(budget, [&](const BlockId&) {
      ++offers;
      return PrefetchOffer::kSkipped;
    });
    benchmark::DoNotOptimize(offers);
  }
}
BENCHMARK(BM_MrdPrefetchCandidates)->Arg(0)->Arg(1);

// Steady-state cache-write churn: a store at capacity, alternately fed
// batches of two RDDs so every admission evicts a block of the other RDD
// through the policy's streaming bulk path. This is the per-block cost the
// runner's cache_writes phase pays under pressure (argmax memo, arena
// lists, flat-map probes) — the end-to-end bench's hottest loop, isolated.
void BM_CacheWriteChurn(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 1);
  CacheMonitor monitor(manager, 0, 1);
  monitor.on_application_start(plan);
  monitor.on_stage_start(plan, 0, 0);
  const auto blocks = static_cast<PartitionIndex>(state.range(0));
  MemoryStore store(blocks, &monitor);  // capacity = one full batch
  std::vector<BlockId> batch_a, batch_b;
  for (PartitionIndex p = 0; p < blocks; ++p) {
    batch_a.push_back(BlockId{1, p});
    batch_b.push_back(BlockId{2, p});
  }
  BatchInsertResult result;
  for (auto _ : state) {
    result.stored = result.refreshed = result.rejected = 0;
    result.evicted.clear();
    store.insert_batch(batch_a.data(), batch_a.size(), 1, &result);
    store.insert_batch(batch_b.data(), batch_b.size(), 1, &result);
    benchmark::DoNotOptimize(result.stored);
  }
  state.SetItemsProcessed(state.iterations() * blocks * 2);
}
BENCHMARK(BM_CacheWriteChurn)->Arg(64)->Arg(512)->Arg(4096);

// Full drain of a populated store through the streaming bulk-eviction API:
// the cost of one large pressure event (one argmax rescan per drained RDD
// plus O(1) per streamed victim).
void BM_BulkEvictStream(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 1);
  CacheMonitor monitor(manager, 0, 1);
  monitor.on_application_start(plan);
  monitor.on_stage_start(plan, 0, 0);
  const auto blocks = static_cast<PartitionIndex>(state.range(0));
  MemoryStore store(blocks, &monitor);
  std::vector<std::pair<BlockId, std::uint64_t>> evicted;
  for (auto _ : state) {
    state.PauseTiming();
    BatchInsertResult fill;
    std::vector<BlockId> batch;
    for (PartitionIndex p = 0; p < blocks; ++p) {
      batch.push_back(BlockId{1 + (p & 3), p});
    }
    store.insert_batch(batch.data(), batch.size(), 1, &fill);
    evicted.clear();
    state.ResumeTiming();
    std::uint64_t remaining = blocks;
    monitor.choose_victims(remaining, [&](const BlockId& victim) {
      store.remove(victim);
      evicted.emplace_back(victim, 1);
      return --remaining;
    });
    benchmark::DoNotOptimize(evicted.size());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_BulkEvictStream)->Arg(512)->Arg(4096);

// Per-call cost of the forced-prefetch threshold test vs. resident-set
// size: the inactive-resident byte total is maintained incrementally, so
// the call must stay O(1) as residents grow.
void BM_MrdPrefetchMayEvict(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  auto manager = std::make_shared<MrdManager>(std::make_shared<AppProfiler>(),
                                              DistanceMetric::kStage, 1);
  CacheMonitor monitor(manager, 0, 1);
  monitor.on_application_start(plan);
  monitor.on_stage_start(plan, 0, 0);
  const auto blocks = static_cast<PartitionIndex>(state.range(0));
  for (PartitionIndex p = 0; p < blocks; ++p) {
    monitor.on_block_cached(BlockId{1, p}, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.prefetch_may_evict(1000, 100000));
  }
}
BENCHMARK(BM_MrdPrefetchMayEvict)->Arg(64)->Arg(512)->Arg(4096);

// Per-point cost of rewinding a pooled RunContext between sweep points: the
// second prepare() hits the key match and resets every per-run structure in
// place (journal truncate, policy rewind, store clear) instead of
// reconstructing them. This is the fixed overhead SweepRunner pays per
// (policy, fraction) point in the steady state — it must stay far below one
// run's wall clock.
void BM_RunContextReset(benchmark::State& state) {
  static const ExecutionPlan plan = benchmark_plan();
  RunConfig config;
  config.cluster.num_nodes = 25;
  config.cluster.cache_bytes_per_node = 64ull << 20;
  RunContext context;
  context.prepare(plan, config);  // pay construction once, outside the loop
  for (auto _ : state) {
    context.prepare(plan, config);
    benchmark::DoNotOptimize(context.fully_reused());
  }
}
BENCHMARK(BM_RunContextReset);

// Arena slab reuse: after the first lap every reset() retains the slabs, so
// a refill of the same footprint is pure pointer bumps — no allocator
// round-trips regardless of how many laps run.
void BM_ArenaSlabReuse(benchmark::State& state) {
  const auto arrays = static_cast<std::size_t>(state.range(0));
  Arena arena;
  for (auto _ : state) {
    arena.reset();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < arrays; ++i) {
      std::uint32_t* a = arena.make_array<std::uint32_t>(64);
      a[0] = static_cast<std::uint32_t>(i);
      sum += a[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * arrays);
}
BENCHMARK(BM_ArenaSlabReuse)->Arg(64)->Arg(1024);

/// One fork-join of `range(0)` trivial jobs, spawn-per-batch vs the
/// persistent pool. Arg is the fan-out width. The spawn variant is what
/// every engine run and every sweep paid before the executor existed; the
/// pool variant must amortize thread creation to zero (the benchmark also
/// asserts the pool spawned no threads while it ran).
void BM_SpawnVsPersistentPool(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const bool pooled = state.range(1) != 0;
  if (pooled && !Executor::enabled()) {
    state.SkipWithError("persistent pool disabled");
    return;
  }
  const std::uint64_t spawned_before =
      pooled ? Executor::instance().stats().threads_spawned : 0;
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    if (pooled) {
      TaskGroup group;
      for (std::size_t i = 0; i < jobs; ++i) {
        group.submit([&sum, i] {
          sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
      }
      group.wait();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(jobs);
      for (std::size_t i = 0; i < jobs; ++i) {
        threads.emplace_back([&sum, i] {
          sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
      }
      for (std::thread& t : threads) t.join();
    }
    benchmark::DoNotOptimize(sum.load());
  }
  if (pooled &&
      Executor::instance().stats().threads_spawned != spawned_before) {
    state.SkipWithError("persistent pool spawned threads mid-benchmark");
  }
  state.SetItemsProcessed(state.iterations() * jobs);
  state.SetLabel(pooled ? "pool" : "spawn");
}
BENCHMARK(BM_SpawnVsPersistentPool)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->UseRealTime();

/// Latency from hinting a task onto one (busy) worker's deque until a thief
/// runs it: the executor's cross-worker handoff cost. The deque's owner is
/// blocked for the whole measurement, so every sample is a genuine steal
/// (verified against the pool's steal counter; requires >= 2 workers).
void BM_StealLatency(benchmark::State& state) {
  if (!Executor::enabled() || Executor::instance().width() < 2) {
    state.SkipWithError("needs the persistent pool with >= 2 workers");
    return;
  }
  Executor& exec = Executor::instance();

  struct SignalTask final : Executor::Task {
    std::mutex mu;
    std::condition_variable cv;
    bool fired = false;
    void run(unsigned) noexcept override {
      std::lock_guard<std::mutex> lock(mu);
      fired = true;
      cv.notify_one();
    }
    void wait_and_reset() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return fired; });
      fired = false;
    }
  };
  struct BlockerTask final : Executor::Task {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> worker{-1};
    void run(unsigned w) noexcept override {
      worker.store(static_cast<int>(w));
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return release; });
    }
  };

  BlockerTask blocker;
  exec.submit(&blocker);
  while (blocker.worker.load() < 0) std::this_thread::yield();
  const int busy = blocker.worker.load();

  const std::uint64_t steals_before = exec.stats().steals;
  SignalTask task;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    exec.submit(&task, /*hint=*/busy);
    task.wait_and_reset();
    ++samples;
  }
  {
    std::lock_guard<std::mutex> lock(blocker.mu);
    blocker.release = true;
    blocker.cv.notify_one();
  }
  const std::uint64_t stolen = exec.stats().steals - steals_before;
  if (stolen < samples) {
    state.SetLabel("WARNING: " + std::to_string(samples - stolen) +
                   " samples ran on the hinted worker");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_StealLatency)->UseRealTime();

}  // namespace
}  // namespace mrd

// Also print the §4.4 table-size claim once, before the timing output.
int main(int argc, char** argv) {
  {
    using namespace mrd;
    const ExecutionPlan plan =
        DagScheduler::plan(find_workload("scc")->make({}));
    auto manager = std::make_shared<MrdManager>(
        std::make_shared<AppProfiler>(), DistanceMetric::kStage, 25);
    manager->on_application_start(plan);
    const std::size_t entries = manager->table().num_entries();
    // One entry = (RddId, StageId, JobId) = 12 bytes of payload.
    std::printf(
        "MRD_Table footprint for SCC (largest workload): %zu references "
        "(~%zu KB payload; paper: <300 references, a few KB)\n\n",
        entries, entries * 12 / 1024 + 1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
