// Regenerates Figure 8: stage-distance vs job-distance metric for
// LabelPropagation (many active stages per job — job distance degrades it)
// and K-Means (≈1 active stage per job — the metric barely matters).
#include "bench_common.h"

#include "dag/dag_analysis.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  AsciiTable table({"Workload", "Active/Jobs", "MRD(stage) JCT", "MRD(job) JCT",
                    "job vs stage", "hit(stage)", "hit(job)"});
  CsvWriter csv(bench::out_dir() + "/fig8_stage_vs_job_distance.csv");
  csv.write_row({"workload", "active_per_job", "stage_jct_ratio",
                 "job_jct_ratio", "stage_hit", "job_hit"});

  std::cout << "Figure 8: effects of the reference distance metric (stage vs "
               "job)\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");

  // Fixed cache size (0.5 of the live working set) and ad-hoc DAG
  // visibility: per the paper's §4.1, within a single submitted job the
  // job metric is "always either infinite or zero", so this mode is where
  // the stage metric's extra granularity is operative.
  const double fraction = 0.5;
  const auto vis = DagVisibility::kAdHoc;

  struct Row {
    const char* key;
    std::shared_ptr<const WorkloadRun> run;
    SweepTicket lru, stage, job;
  };
  std::vector<Row> rows;
  for (const char* key : {"lp", "km"}) {
    const auto run =
        plan_workload_shared(*find_workload(key), bench::bench_params());
    rows.push_back(Row{
        key, run,
        runner.submit(SweepJob{run, cluster, fraction, lru, vis}),
        runner.submit(
            SweepJob{run, cluster, fraction, bench::policy("mrd"), vis}),
        runner.submit(
            SweepJob{run, cluster, fraction, bench::policy("mrd-job"),
                     vis})});
  }

  for (Row& row : rows) {
    const WorkloadCharacteristics c = workload_characteristics(row.run->plan);
    const double ratio_active_jobs =
        static_cast<double>(c.active_stages) / static_cast<double>(c.jobs);

    const RunMetrics lru_m = row.lru.get();
    const RunMetrics stage_m = row.stage.get();
    const RunMetrics job_m = row.job.get();

    table.add_row({row.run->name, format_double(ratio_active_jobs, 2),
                   bench::norm_jct(stage_m.jct_ms, lru_m.jct_ms),
                   bench::norm_jct(job_m.jct_ms, lru_m.jct_ms),
                   format_percent(job_m.jct_ms / stage_m.jct_ms, 0),
                   format_percent(stage_m.hit_ratio(), 0),
                   format_percent(job_m.hit_ratio(), 0)});
    csv.write_row({row.key, format_double(ratio_active_jobs, 2),
                   format_double(stage_m.jct_ms / lru_m.jct_ms, 4),
                   format_double(job_m.jct_ms / lru_m.jct_ms, 4),
                   format_double(stage_m.hit_ratio(), 4),
                   format_double(job_m.hit_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n(Paper: the job metric significantly degrades LP, which has "
               "a high active-stage-to-job ratio, but barely affects KM.)\n";
  bench::report_sweep(runner);
  return 0;
}
