// Regenerates Figure 8: stage-distance vs job-distance metric for
// LabelPropagation (many active stages per job — job distance degrades it)
// and K-Means (≈1 active stage per job — the metric barely matters).
#include "bench_common.h"

#include "dag/dag_analysis.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  AsciiTable table({"Workload", "Active/Jobs", "MRD(stage) JCT", "MRD(job) JCT",
                    "job vs stage", "hit(stage)", "hit(job)"});
  CsvWriter csv(bench::out_dir() + "/fig8_stage_vs_job_distance.csv");
  csv.write_row({"workload", "active_per_job", "stage_jct_ratio",
                 "job_jct_ratio", "stage_hit", "job_hit"});

  std::cout << "Figure 8: effects of the reference distance metric (stage vs "
               "job)\n\n";
  const PolicyConfig lru = bench::policy("lru");
  for (const char* key : {"lp", "km"}) {
    const WorkloadRun run =
        plan_workload(*find_workload(key), bench::bench_params());
    const WorkloadCharacteristics c = workload_characteristics(run.plan);
    const double ratio_active_jobs =
        static_cast<double>(c.active_stages) / static_cast<double>(c.jobs);

    // Fixed cache size (0.5 of the live working set) and ad-hoc DAG
    // visibility: per the paper's §4.1, within a single submitted job the
    // job metric is "always either infinite or zero", so this mode is where
    // the stage metric's extra granularity is operative.
    const double fraction = 0.5;
    const auto vis = DagVisibility::kAdHoc;
    const RunMetrics lru_m = run_with_policy(run, cluster, fraction, lru, vis);
    const RunMetrics stage_m =
        run_with_policy(run, cluster, fraction, bench::policy("mrd"), vis);
    const RunMetrics job_m =
        run_with_policy(run, cluster, fraction, bench::policy("mrd-job"), vis);

    table.add_row({run.name, format_double(ratio_active_jobs, 2),
                   bench::norm_jct(stage_m.jct_ms, lru_m.jct_ms),
                   bench::norm_jct(job_m.jct_ms, lru_m.jct_ms),
                   format_percent(job_m.jct_ms / stage_m.jct_ms, 0),
                   format_percent(stage_m.hit_ratio(), 0),
                   format_percent(job_m.hit_ratio(), 0)});
    csv.write_row({key, format_double(ratio_active_jobs, 2),
                   format_double(stage_m.jct_ms / lru_m.jct_ms, 4),
                   format_double(job_m.jct_ms / lru_m.jct_ms, 4),
                   format_double(stage_m.hit_ratio(), 4),
                   format_double(job_m.hit_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n(Paper: the job metric significantly degrades LP, which has "
               "a high active-stage-to-job ratio, but barely affects KM.)\n";
  return 0;
}
