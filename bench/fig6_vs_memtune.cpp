// Regenerates Figure 6: MRD vs MemTune on the "MemTune cluster" preset
// (6 nodes, System G-like).
//
// Shape targets: MRD wins everywhere except (at most) LogisticRegression —
// a low-reference-distance workload where the paper also saw a slight MRD
// disadvantage; the best case is PageRank (paper: up to 68%, ~33% average).
#include "bench_common.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = memtune_cluster();
  const std::vector<double>& fractions = default_cache_fractions();
  const char* keys[] = {"pr", "logr", "km", "cc", "svdpp"};

  AsciiTable table(
      {"Workload", "MemTune vs LRU", "MRD vs LRU", "MRD vs MemTune"});
  CsvWriter csv(bench::out_dir() + "/fig6_vs_memtune.csv");
  csv.write_row({"workload", "memtune_jct_ratio", "mrd_jct_ratio",
                 "mrd_vs_memtune_ratio"});

  std::cout << "Figure 6: comparison to the MemTune policy (MemTune "
               "cluster)\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  struct Row {
    const char* key;
    std::shared_ptr<const WorkloadRun> run;
    PendingBest memtune, mrd;
  };
  std::vector<Row> rows;
  for (const char* key : keys) {
    const auto run =
        plan_workload_shared(*find_workload(key), bench::bench_params());
    rows.push_back(Row{
        key, run,
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("memtune")),
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("mrd"))});
  }

  double sum_ratio = 0;
  for (Row& row : rows) {
    const BestComparison memtune = row.memtune.get();
    const BestComparison mrd = row.mrd.get();
    // Best-vs-best comparison (the paper takes the best values from each
    // system's experiments): ratio of the two normalized-JCT improvements.
    const double vs_memtune = memtune.jct_ratio() == 0
                                 ? 1.0
                                 : mrd.jct_ratio() / memtune.jct_ratio();
    sum_ratio += vs_memtune;
    table.add_row({row.run->name, format_percent(memtune.jct_ratio(), 0),
                   format_percent(mrd.jct_ratio(), 0),
                   format_percent(vs_memtune, 0)});
    csv.write_row({row.key, format_double(memtune.jct_ratio(), 4),
                   format_double(mrd.jct_ratio(), 4),
                   format_double(vs_memtune, 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "",
                 format_percent(sum_ratio / std::size(keys), 0)});
  table.print(std::cout);
  std::cout << "\n(MRD vs MemTune < 100% means MRD is faster. Paper: up to "
               "68% improvement, ~33% average, LogR slightly negative.)\n";
  bench::report_sweep(runner);
  return 0;
}
