// Regenerates Figure 6: MRD vs MemTune on the "MemTune cluster" preset
// (6 nodes, System G-like).
//
// Shape targets: MRD wins everywhere except (at most) LogisticRegression —
// a low-reference-distance workload where the paper also saw a slight MRD
// disadvantage; the best case is PageRank (paper: up to 68%, ~33% average).
#include "bench_common.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = memtune_cluster();
  const std::vector<double>& fractions = default_cache_fractions();
  const char* keys[] = {"pr", "logr", "km", "cc", "svdpp"};

  AsciiTable table(
      {"Workload", "MemTune vs LRU", "MRD vs LRU", "MRD vs MemTune"});
  CsvWriter csv(bench::out_dir() + "/fig6_vs_memtune.csv");
  csv.write_row({"workload", "memtune_jct_ratio", "mrd_jct_ratio",
                 "mrd_vs_memtune_ratio"});

  std::cout << "Figure 6: comparison to the MemTune policy (MemTune "
               "cluster)\n\n";
  double sum_ratio = 0;
  const PolicyConfig lru = bench::policy("lru");
  for (const char* key : keys) {
    const WorkloadRun run =
        plan_workload(*find_workload(key), bench::bench_params());
    const BestComparison memtune = best_improvement(
        run, cluster, fractions, lru, bench::policy("memtune"));
    const BestComparison mrd =
        best_improvement(run, cluster, fractions, lru, bench::policy("mrd"));
    // Best-vs-best comparison (the paper takes the best values from each
    // system's experiments): ratio of the two normalized-JCT improvements.
    const double vs_memtune = memtune.jct_ratio() == 0
                                 ? 1.0
                                 : mrd.jct_ratio() / memtune.jct_ratio();
    sum_ratio += vs_memtune;
    table.add_row({run.name, format_percent(memtune.jct_ratio(), 0),
                   format_percent(mrd.jct_ratio(), 0),
                   format_percent(vs_memtune, 0)});
    csv.write_row({key, format_double(memtune.jct_ratio(), 4),
                   format_double(mrd.jct_ratio(), 4),
                   format_double(vs_memtune, 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "",
                 format_percent(sum_ratio / std::size(keys), 0)});
  table.print(std::cout);
  std::cout << "\n(MRD vs MemTune < 100% means MRD is faster. Paper: up to "
               "68% improvement, ~33% average, LogR slightly negative.)\n";
  return 0;
}
