// Scores the measured Figure 4 series against the paper's per-workload bars.
//
// The other fig benches check *shape targets* (orderings, directions, rough
// factors — see EXPERIMENTS.md). This one closes the quantitative gap: it
// computes each SparkBench workload's normalized JCT (full MRD vs LRU,
// best-of-cache-size, exactly as fig4_overall_performance does) and scores
// the 14-element vector against the paper's Fig 4 readings with
//   - Spearman rank correlation (do the same workloads benefit most?), and
//   - per-workload deviation (how far is each bar from the paper's?).
//
// The paper's bars are approximate chart readings (the paper prints only the
// averages: evict 62%, prefetch 67%, full 53%); they are anchored on the
// stated extremes — SCC is the best case (~20%) and DT the no-effect case
// (~95%) — and sum to the published 53% average. Rank correlation is the
// meaningful score at that fidelity; the deviation column mostly documents
// the simulator's compressed miss costs (see EXPERIMENTS.md, Fig 4 note).
//
// Exit status: gates on what EXPERIMENTS.md documents as reproduced, not on
// full rank agreement (the simulator's compressed miss costs pull the graph
// workloads — the paper's best cases — toward the middle of the field, which
// caps rho around ~0.3 today): rho must stay positive (>= 0.15), DT must
// stay the (near-)worst bar, and the mean must show MRD clearly winning.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "util/math.h"

using namespace mrd;

namespace {

struct PaperBar {
  const char* key;
  double full_ratio;  // paper Fig 4, full MRD, normalized JCT vs LRU
};

// Table 3 order, matching sparkbench_workloads().
constexpr PaperBar kPaperFig4[] = {
    {"km", 0.45},  {"linr", 0.55}, {"logr", 0.45}, {"svm", 0.60},
    {"dt", 0.95},  {"mf", 0.60},   {"pr", 0.40},   {"tc", 0.75},
    {"sp", 0.70},  {"lp", 0.30},   {"svdpp", 0.45}, {"cc", 0.55},
    {"scc", 0.20}, {"po", 0.40},
};

/// Average ranks (1-based, ties averaged), the standard Spearman treatment.
std::vector<double> ranks_of(const std::vector<double>& xs) {
  std::vector<std::size_t> order(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::vector<double> ra = ranks_of(a);
  const std::vector<double> rb = ranks_of(b);
  const double ma = mean(ra), mb = mean(rb);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  std::cout << "JCT validation: measured normalized JCT (full MRD vs LRU) "
               "against the paper's Fig 4 bars\n\n";

  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");
  std::vector<PendingBest> pending;
  const std::vector<WorkloadSpec>& specs = sparkbench_workloads();
  MRD_CHECK(specs.size() == std::size(kPaperFig4));
  for (const WorkloadSpec& spec : specs) {
    pending.push_back(runner.submit_best(
        plan_workload_shared(spec, bench::bench_params()), cluster,
        fractions, lru, mrd));
  }

  AsciiTable table({"Workload", "Paper", "Measured", "Deviation"});
  CsvWriter csv(bench::out_dir() + "/jct_validation.csv");
  csv.write_row({"workload", "paper_ratio", "measured_ratio", "deviation"});

  std::vector<double> paper, measured;
  double max_dev = 0.0;
  const char* max_dev_key = "";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    MRD_CHECK(specs[i].key == kPaperFig4[i].key);
    const BestComparison best = pending[i].get();
    const double ratio = best.jct_ratio();
    const double dev = std::abs(ratio - kPaperFig4[i].full_ratio);
    paper.push_back(kPaperFig4[i].full_ratio);
    measured.push_back(ratio);
    if (dev > max_dev) {
      max_dev = dev;
      max_dev_key = specs[i].key.c_str();
    }
    table.add_row({specs[i].name, format_percent(kPaperFig4[i].full_ratio, 0),
                   format_percent(ratio, 0), format_percent(dev, 0)});
    csv.write_row({specs[i].key, format_double(kPaperFig4[i].full_ratio, 4),
                   format_double(ratio, 4), format_double(dev, 4)});
  }
  table.print(std::cout);

  const double rho = spearman(paper, measured);
  std::cout << "\nSpearman rank correlation: " << format_double(rho, 3)
            << " (1.0 = same benefit ordering as the testbed)\n"
            << "Mean measured ratio: " << format_percent(mean(measured), 0)
            << " (paper average 53%)\n"
            << "Max deviation: " << format_percent(max_dev, 0) << " ("
            << max_dev_key << ")\n";
  std::cout << "CSV: " << bench::out_dir() << "/jct_validation.csv\n";
  bench::report_sweep(runner);

  bool ok = true;
  if (rho < 0.15) {
    std::fprintf(stderr,
                 "FAIL: Spearman rho %.3f < 0.15 — the simulator no longer "
                 "even weakly ranks workload benefits like the testbed\n",
                 rho);
    ok = false;
  }
  // The paper's no-effect case must stay (nearly) the worst measured bar.
  std::size_t dt_rank = 0;
  const double dt = measured[4];  // Table 3 order: DT is the 5th workload
  for (const double m : measured) {
    if (m > dt) ++dt_rank;
  }
  if (dt_rank > 1) {
    std::fprintf(stderr,
                 "FAIL: DT (paper's no-effect case) is no longer among the "
                 "two worst measured bars (%zu workloads above it)\n",
                 dt_rank);
    ok = false;
  }
  if (mean(measured) > 0.85) {
    std::fprintf(stderr,
                 "FAIL: mean measured ratio %.2f > 0.85 — MRD no longer "
                 "clearly beats LRU on average\n",
                 mean(measured));
    ok = false;
  }
  return ok ? 0 : 1;
}
