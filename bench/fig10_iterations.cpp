// Regenerates Figure 10: effect of tripling workload iterations on MRD's
// normalized JCT and hit ratio (more iterations → more jobs, stages and
// references → more MRD opportunity, with diminishing returns).
#include "bench_common.h"

#include "dag/dag_scheduler.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "Jobs x1", "Jobs x3", "JCT x1", "JCT x3",
                    "hit x1", "hit x3"});
  CsvWriter csv(bench::out_dir() + "/fig10_iterations.csv");
  csv.write_row({"workload", "jobs_x1", "jobs_x3", "jct_ratio_x1",
                 "jct_ratio_x3", "hit_x1", "hit_x3"});

  std::cout << "Figure 10: effects of tripling the number of iterations\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");

  struct Row {
    const WorkloadSpec* spec;
    std::shared_ptr<const WorkloadRun> run1, run3;
    PendingBest c1, c3;
  };
  std::vector<Row> rows;
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    if (spec.default_iterations == 0) continue;  // DT, TC: not iterable
    WorkloadParams base = bench::bench_params();
    WorkloadParams tripled = base;
    tripled.iterations = spec.default_iterations * 3;

    const auto run1 = plan_workload_shared(spec, base);
    const auto run3 = plan_workload_shared(spec, tripled);
    rows.push_back(Row{
        &spec, run1, run3,
        runner.submit_best(run1, cluster, fractions, lru, mrd),
        runner.submit_best(run3, cluster, fractions, lru, mrd)});
  }

  double sum1 = 0, sum3 = 0, hit1 = 0, hit3 = 0;
  int n = 0;
  for (Row& row : rows) {
    const BestComparison c1 = row.c1.get();
    const BestComparison c3 = row.c3.get();

    sum1 += c1.jct_ratio();
    sum3 += c3.jct_ratio();
    hit1 += c1.candidate.hit_ratio();
    hit3 += c3.candidate.hit_ratio();
    ++n;

    table.add_row({row.spec->name,
                   std::to_string(row.run1->plan.jobs().size()),
                   std::to_string(row.run3->plan.jobs().size()),
                   format_percent(c1.jct_ratio(), 0),
                   format_percent(c3.jct_ratio(), 0),
                   format_percent(c1.candidate.hit_ratio(), 0),
                   format_percent(c3.candidate.hit_ratio(), 0)});
    csv.write_row({row.spec->key,
                   std::to_string(row.run1->plan.jobs().size()),
                   std::to_string(row.run3->plan.jobs().size()),
                   format_double(c1.jct_ratio(), 4),
                   format_double(c3.jct_ratio(), 4),
                   format_double(c1.candidate.hit_ratio(), 4),
                   format_double(c3.candidate.hit_ratio(), 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "", format_percent(sum1 / n, 0),
                 format_percent(sum3 / n, 0), format_percent(hit1 / n, 0),
                 format_percent(hit3 / n, 0)});
  table.print(std::cout);
  std::cout << "\n(Paper: average JCT ratio improves from 62% to 54% and hit "
               "ratio from 94% to 96% when iterations triple.)\n";
  bench::report_sweep(runner);
  return 0;
}
