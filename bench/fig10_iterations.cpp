// Regenerates Figure 10: effect of tripling workload iterations on MRD's
// normalized JCT and hit ratio (more iterations → more jobs, stages and
// references → more MRD opportunity, with diminishing returns).
#include "bench_common.h"

#include "dag/dag_scheduler.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "Jobs x1", "Jobs x3", "JCT x1", "JCT x3",
                    "hit x1", "hit x3"});
  CsvWriter csv(bench::out_dir() + "/fig10_iterations.csv");
  csv.write_row({"workload", "jobs_x1", "jobs_x3", "jct_ratio_x1",
                 "jct_ratio_x3", "hit_x1", "hit_x3"});

  std::cout << "Figure 10: effects of tripling the number of iterations\n\n";
  double sum1 = 0, sum3 = 0, hit1 = 0, hit3 = 0;
  int n = 0;
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    if (spec.default_iterations == 0) continue;  // DT, TC: not iterable
    WorkloadParams base = bench::bench_params();
    WorkloadParams tripled = base;
    tripled.iterations = spec.default_iterations * 3;

    const WorkloadRun run1 = plan_workload(spec, base);
    const WorkloadRun run3 = plan_workload(spec, tripled);
    const BestComparison c1 =
        best_improvement(run1, cluster, fractions, lru, mrd);
    const BestComparison c3 =
        best_improvement(run3, cluster, fractions, lru, mrd);

    sum1 += c1.jct_ratio();
    sum3 += c3.jct_ratio();
    hit1 += c1.candidate.hit_ratio();
    hit3 += c3.candidate.hit_ratio();
    ++n;

    table.add_row({spec.name, std::to_string(run1.plan.jobs().size()),
                   std::to_string(run3.plan.jobs().size()),
                   format_percent(c1.jct_ratio(), 0),
                   format_percent(c3.jct_ratio(), 0),
                   format_percent(c1.candidate.hit_ratio(), 0),
                   format_percent(c3.candidate.hit_ratio(), 0)});
    csv.write_row({spec.key, std::to_string(run1.plan.jobs().size()),
                   std::to_string(run3.plan.jobs().size()),
                   format_double(c1.jct_ratio(), 4),
                   format_double(c3.jct_ratio(), 4),
                   format_double(c1.candidate.hit_ratio(), 4),
                   format_double(c3.candidate.hit_ratio(), 4)});
  }
  table.add_separator();
  table.add_row({"Average", "", "", format_percent(sum1 / n, 0),
                 format_percent(sum3 / n, 0), format_percent(hit1 / n, 0),
                 format_percent(hit3 / n, 0)});
  table.print(std::cout);
  std::cout << "\n(Paper: average JCT ratio improves from 62% to 54% and hit "
               "ratio from 94% to 96% when iterations triple.)\n";
  return 0;
}
