// Regenerates Table 3: SparkBench workload characteristics (input sizes,
// stage inputs, shuffle volumes, job/stage/RDD counts, references per
// RDD/stage, job type).
//
// Planning-only driver: no cache simulation runs. Each workload's DAG plan
// and characteristics are computed on the persistent executor (--jobs N).
#include "bench_common.h"

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"

#include <chrono>

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  AsciiTable table({"Workload", "Category", "Input", "Stage Inputs",
                    "Shuffle R/W", "Jobs", "Stages", "Active", "RDDs",
                    "Refs/RDD", "Refs/Stage", "Job Type"});
  CsvWriter csv(bench::out_dir() + "/table3_workload_characteristics.csv");
  csv.write_row({"workload", "input_bytes", "stage_input_bytes",
                 "shuffle_bytes", "jobs", "stages", "active_stages", "rdds",
                 "refs_per_rdd", "refs_per_stage"});

  std::cout << "Table 3: SparkBench benchmark characteristics (inputs scaled "
               "to 1/8 of the paper's)\n\n";
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<WorkloadSpec>& specs = sparkbench_workloads();
  std::vector<WorkloadCharacteristics> characteristics(specs.size());
  {
    TaskGroup group(options.jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      group.submit([&specs, &characteristics, i] {
        const ExecutionPlan plan = DagScheduler::plan(specs[i].make({}));
        characteristics[i] = workload_characteristics(plan);
      });
    }
    group.wait();
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const WorkloadSpec& spec = specs[i];
    const WorkloadCharacteristics& c = characteristics[i];
    table.add_row({spec.name, spec.category, human_bytes(c.input_bytes),
                   human_bytes(c.total_stage_input_bytes),
                   human_bytes(c.shuffle_bytes), std::to_string(c.jobs),
                   std::to_string(c.stages), std::to_string(c.active_stages),
                   std::to_string(c.rdds), format_double(c.refs_per_rdd, 2),
                   format_double(c.refs_per_stage, 2), spec.job_type});
    csv.write_row({spec.key, std::to_string(c.input_bytes),
                   std::to_string(c.total_stage_input_bytes),
                   std::to_string(c.shuffle_bytes), std::to_string(c.jobs),
                   std::to_string(c.stages), std::to_string(c.active_stages),
                   std::to_string(c.rdds), format_double(c.refs_per_rdd, 4),
                   format_double(c.refs_per_stage, 4)});
  }
  table.print(std::cout);
  std::cout << "\nCSV: " << bench::out_dir()
            << "/table3_workload_characteristics.csv\n";
  bench::report_wall(specs.size(), options.jobs, wall_start);
  return 0;
}
