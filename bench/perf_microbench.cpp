// Core-simulator performance microbench: times the heaviest workload ×
// policy runs (the graph workloads at 8× the default scale, cache fraction
// 0.5) and reports the speedup over the recorded pre-optimization baselines,
// with a per-subsystem breakdown from the runner's PhaseTimers.
//
// Writes BENCH_core.json (cwd) with the raw samples, medians, speedups and
// phase profile; the committed copy at the repo root records the numbers on
// the reference container. Unlike the figure drivers this bench reports wall
// clock, so its output is machine-dependent by nature.
//
//   perf_microbench [--repeat N] [--node-jobs N] [--scale S] [--gate FILE]
//
// Each scenario runs N times (default 5) and reports the median; simulation
// results are deterministic, so repeats only smooth scheduler noise.
//
// --gate FILE turns the bench into a CI regression gate: FILE is a committed
// BENCH_core.json, and the run fails (exit 1) if any scenario's current
// median exceeds the committed median by more than 40%, or any single
// phase's median exceeds the committed phase median by more than 40% (plus
// a 1 ms absolute slack, so near-zero phases don't gate on jitter). The
// per-phase gate catches a regression in one subsystem (e.g. cache_writes
// churn creeping back) that whole-run noise would otherwise absorb. The
// margin absorbs container-to-container noise while still catching a real
// issue-path regression (the optimizations being guarded are 2x+). A
// scenario that fails is re-measured once before the gate fails: shared
// containers see multi-second load bursts wider than any sane margin, and a
// burst rarely spans both measurements, while a real regression always
// does. (The engine comparison block is re-measured along with the phase
// medians, so a burst that trips the gate cannot leave stale inflated
// numbers for a later --assert-event-fast to fail on.)
//
// The engine comparison block runs each scenario three ways at the same
// worker count — `--exec barrier` (the serial oracle), the event engine on
// the persistent executor, and the event engine with the pool disabled
// (helper workers spawned and joined per run) — and --assert-event-fast
// asserts the pooled path never loses to per-run spawning on the heavy
// graph scenarios (scc, lp).
//
// --gate additionally asserts the zero-allocation steady state: every
// scenario is run through a pooled RunContext (one warmup, then repeats at
// the same key), and a repeat that fully reused its context must perform at
// most a small constant number of heap allocations. Skipped under
// sanitizers, where the counting allocator is compiled out.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/run_context.h"
#include "util/alloc_stats.h"

using namespace mrd;

namespace {

using Clock = std::chrono::steady_clock;

struct Baseline {
  const char* workload;
  const char* policy;
  /// Median wall ms of the same scenario on the reference container at the
  /// pre-optimization tree (commit f9d3c62), RelWithDebInfo, single thread.
  double ms;
};

// Measured with the same harness (scale 8, fraction 0.5, median of 3)
// before the dense-ID data-structure work landed.
constexpr Baseline kSeedBaselines[] = {
    {"scc", "lru", 58.41}, {"scc", "mrd", 543.94}, {"lp", "lru", 42.09},
    {"lp", "mrd", 406.02}, {"pr", "lru", 7.15},    {"pr", "mrd", 33.88},
};

constexpr double kFraction = 0.5;

/// Worker count of the engine comparison (serial oracle vs the event
/// scheduler on the persistent pool vs the event scheduler with the pool
/// disabled, i.e. spawning its workers per run; identical output bytes).
constexpr std::size_t kEngineJobs = 4;

struct Result {
  std::string workload;
  std::string policy;
  double baseline_ms = 0.0;
  double median_ms = 0.0;
  std::vector<double> samples_ms;
  PhaseTimers phases;  // accumulated over all repeats
  /// Per-repeat samples of each phase's ms, for per-phase medians.
  std::array<std::vector<double>, kNumSimPhases> phase_samples;
  std::array<double, kNumSimPhases> phase_median_ms{};
  /// Node-group accounting of the differential verification run.
  NodeParallelStats node_parallel;
  /// Medians of the engine comparison: the serial oracle (`--exec
  /// barrier`), the event engine on the persistent pool at kEngineJobs
  /// workers, and the same event run with the pool disabled (workers
  /// spawned per run).
  double barrier_ms = 0.0;
  double event_ms = 0.0;
  double event_spawn_ms = 0.0;
  /// Event-graph shape of the event-engine run.
  NodeParallelStats event_stats;
  /// Heap allocations of one fresh-context run vs the mean over steady
  /// (fully context-reused) runs — the pooled-run-context regime the alloc
  /// gate asserts stays ~allocation-free.
  std::uint64_t fresh_allocs = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_runs = 0;
  double speedup() const {
    return median_ms > 0.0 ? baseline_ms / median_ms : 0.0;
  }
  double event_speedup() const {
    return event_ms > 0.0 ? barrier_ms / event_ms : 0.0;
  }
  double pool_speedup() const {
    return event_ms > 0.0 ? event_spawn_ms / event_ms : 0.0;
  }
  double mean_steady_allocs() const {
    return steady_runs > 0 ? static_cast<double>(steady_allocs) /
                                 static_cast<double>(steady_runs)
                           : 0.0;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string json_number(double value) { return format_double(value, 3); }

/// Committed median for `workload`/`policy` out of a BENCH_core.json, or a
/// negative value when the scenario is absent. The file's shape is our own
/// (written below), so a targeted scan beats dragging in a JSON parser: find
/// the scenario's identity line, then the "median_ms" that follows it.
double committed_median(const std::string& json, const std::string& workload,
                        const std::string& policy) {
  const std::string key =
      "\"workload\": \"" + workload + "\", \"policy\": \"" + policy + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return -1.0;
  const std::string field = "\"median_ms\": ";
  const std::size_t med = json.find(field, at);
  if (med == std::string::npos) return -1.0;
  return std::atof(json.c_str() + med + field.size());
}

/// Committed per-phase median, same targeted-scan approach: locate the
/// scenario, then its "phase_median_ms" object, then the phase key inside
/// it. Negative when the scenario or the phase object is absent (committed
/// files from before the per-phase gate existed gate on the whole-run
/// median only).
double committed_phase_median(const std::string& json,
                              const std::string& workload,
                              const std::string& policy,
                              std::string_view phase) {
  const std::string key =
      "\"workload\": \"" + workload + "\", \"policy\": \"" + policy + "\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return -1.0;
  const std::string object = "\"phase_median_ms\": {";
  const std::size_t obj = json.find(object, at);
  if (obj == std::string::npos) return -1.0;
  const std::size_t end = json.find('}', obj);
  const std::string field = "\"" + std::string(phase) + "\": ";
  const std::size_t med = json.find(field, obj);
  if (med == std::string::npos || med > end) return -1.0;
  return std::atof(json.c_str() + med + field.size());
}

/// Name of the first RunMetrics field that differs, or "" when the two runs
/// are field-for-field identical (which makes every CSV projection of them
/// byte-identical too). Exact compares throughout: the simulation is
/// deterministic, so even doubles must match bit-for-bit.
std::string metrics_diff(const RunMetrics& a, const RunMetrics& b) {
  if (a.workload != b.workload) return "workload";
  if (a.policy != b.policy) return "policy";
  if (a.jct_ms != b.jct_ms) return "jct_ms";
  if (a.probes != b.probes) return "probes";
  if (a.hits != b.hits) return "hits";
  if (a.misses_from_disk != b.misses_from_disk) return "misses_from_disk";
  if (a.misses_recompute != b.misses_recompute) return "misses_recompute";
  if (a.blocks_cached != b.blocks_cached) return "blocks_cached";
  if (a.evictions != b.evictions) return "evictions";
  if (a.spills != b.spills) return "spills";
  if (a.purged_blocks != b.purged_blocks) return "purged_blocks";
  if (a.uncacheable_blocks != b.uncacheable_blocks) {
    return "uncacheable_blocks";
  }
  if (a.prefetches_issued != b.prefetches_issued) return "prefetches_issued";
  if (a.prefetches_completed != b.prefetches_completed) {
    return "prefetches_completed";
  }
  if (a.prefetches_useful != b.prefetches_useful) return "prefetches_useful";
  if (a.prefetches_wasted != b.prefetches_wasted) return "prefetches_wasted";
  if (a.disk_bytes_read != b.disk_bytes_read) return "disk_bytes_read";
  if (a.disk_bytes_written != b.disk_bytes_written) {
    return "disk_bytes_written";
  }
  if (a.network_bytes != b.network_bytes) return "network_bytes";
  if (a.recompute_cpu_ms != b.recompute_cpu_ms) return "recompute_cpu_ms";
  if (a.per_rdd_probes != b.per_rdd_probes) return "per_rdd_probes";
  if (a.mrd_table_peak_entries != b.mrd_table_peak_entries) {
    return "mrd_table_peak_entries";
  }
  if (a.mrd_update_messages != b.mrd_update_messages) {
    return "mrd_update_messages";
  }
  if (a.stage_timings.size() != b.stage_timings.size()) {
    return "stage_timings";
  }
  for (std::size_t i = 0; i < a.stage_timings.size(); ++i) {
    const StageTiming& x = a.stage_timings[i];
    const StageTiming& y = b.stage_timings[i];
    if (x.stage != y.stage || x.job != y.job ||
        x.duration_ms != y.duration_ms || x.compute_ms != y.compute_ms ||
        x.io_ms != y.io_ms) {
      return "stage_timings";
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repeat = 5;
  std::size_t node_jobs = 1;
  double scale = 8.0;
  std::string gate_file;
  bool assert_event_fast = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (bench::parse_count_flag(argc, argv, &i, "--repeat", "-r", &repeat) ||
        bench::parse_count_flag(argc, argv, &i, "--node-jobs", "",
                                &node_jobs)) {
      continue;
    }
    if (arg == "--assert-event-fast") {
      assert_event_fast = true;
      continue;
    }
    if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
      continue;
    }
    if (arg == "--gate" && i + 1 < argc) {
      gate_file = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--repeat N] [--node-jobs N] [--scale S] [--gate FILE]\n"
          "  --repeat N     samples per scenario, median reported "
          "(default 5)\n"
          "  --node-jobs N  intra-run node workers (default 1; results "
          "identical)\n"
          "  --scale S      workload scale (default 8; baselines assume "
          "8)\n"
          "  --gate FILE    fail if any scenario median exceeds FILE's "
          "committed\n"
          "                 BENCH_core.json median by more than 40%%, or "
          "any\n"
          "                 phase median exceeds its committed value by "
          "more\n"
          "                 than 40%% + 1 ms (failing scenarios are "
          "re-measured\n"
          "                 once to absorb transient machine load)\n"
          "  --assert-event-fast\n"
          "                 fail unless the event engine on the persistent\n"
          "                 pool is at least as fast as the same engine\n"
          "                 spawning workers per run, on the scc and lp\n"
          "                 scenarios at %zu workers (re-measured once on\n"
          "                 failure)\n",
          argv[0], kEngineJobs);
      return 0;
    }
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0],
                 argv[i]);
    return 2;
  }

  WorkloadParams params = bench::bench_params(scale);
  const ClusterConfig cluster = main_cluster();

  // Fills a Result's samples and medians (whole-run and per-phase) from
  // `repeat` timed runs. Reused by the gate's one-shot re-measure of a
  // failing scenario.
  const auto measure = [repeat](Result* result,
                                const std::shared_ptr<const WorkloadRun>& run,
                                RunConfig config) {
    result->samples_ms.clear();
    result->phases = PhaseTimers{};
    for (auto& samples : result->phase_samples) samples.clear();
    for (std::size_t r = 0; r < repeat; ++r) {
      PhaseTimers repeat_phases;  // fresh per repeat: per-phase samples
      config.phase_timers = &repeat_phases;
      const Clock::time_point t0 = Clock::now();
      run_plan(run->plan, config);
      result->samples_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      for (std::size_t p = 0; p < kNumSimPhases; ++p) {
        result->phases.ms[p] += repeat_phases.ms[p];
        result->phase_samples[p].push_back(repeat_phases.ms[p]);
      }
    }
    result->median_ms = median(result->samples_ms);
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      result->phase_median_ms[p] = median(result->phase_samples[p]);
    }
  };

  // Medians of single-run wall clock for the engine comparison at
  // kEngineJobs workers: the serial oracle (`--exec barrier`), the event
  // engine on the persistent pool, and the event engine with the pool
  // disabled (its helper workers spawned and joined per run — the regime
  // the executor retired). The samples are interleaved (oracle, event,
  // spawn, oracle, ...) so a machine load burst hits all three equally
  // instead of biasing whichever ran last.
  const auto measure_engines =
      [repeat](const std::shared_ptr<const WorkloadRun>& run,
               const RunConfig& base, double* barrier_ms, double* event_ms,
               double* event_spawn_ms) {
        RunConfig config = base;
        config.node_jobs = kEngineJobs;
        const auto time_one = [&run](const RunConfig& c) {
          const Clock::time_point t0 = Clock::now();
          run_plan(run->plan, c);
          return std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
        };
        std::vector<double> barrier_samples, event_samples, spawn_samples;
        barrier_samples.reserve(repeat);
        event_samples.reserve(repeat);
        spawn_samples.reserve(repeat);
        for (std::size_t r = 0; r < repeat; ++r) {
          config.exec_mode = ExecMode::kBarrier;
          barrier_samples.push_back(time_one(config));
          config.exec_mode = ExecMode::kEvent;
          event_samples.push_back(time_one(config));
          Executor::set_disabled_for_test(1);
          spawn_samples.push_back(time_one(config));
          Executor::set_disabled_for_test(-1);
        }
        *barrier_ms = median(barrier_samples);
        *event_ms = median(event_samples);
        *event_spawn_ms = median(spawn_samples);
      };

  // Allocation profile of the pooled-run-context path: one cold run builds
  // the context, then kSteadyAllocRuns further runs at the same key must
  // fully reuse it in place. Counted with the thread-local allocation hook
  // (util/alloc_stats.h); zeros under sanitizers, where the hook is
  // compiled out.
  constexpr std::size_t kSteadyAllocRuns = 3;
  const auto measure_allocs =
      [](Result* result, const std::shared_ptr<const WorkloadRun>& run,
         RunConfig config) {
        RunContext context;
        config.context = &context;
        config.phase_timers = nullptr;
        result->fresh_allocs = 0;
        result->steady_allocs = 0;
        result->steady_runs = 0;
        for (std::size_t r = 0; r < 1 + kSteadyAllocRuns; ++r) {
          alloc_stats::ThreadScope scope;
          run_plan(run->plan, config);
          if (r == 0) {
            result->fresh_allocs = scope.allocs();
          } else if (context.fully_reused()) {
            ++result->steady_runs;
            result->steady_allocs += scope.allocs();
          }
        }
      };

  std::printf("Core simulator microbench: scale %.1f, fraction %.2f, "
              "median of %zu, node-jobs %zu\n\n",
              scale, kFraction, repeat, node_jobs);
  AsciiTable table({"Scenario", "Baseline", "Now", "Speedup", "Top phases"});

  std::vector<Result> results;
  // Kept alongside results so the gate can re-measure a failing scenario.
  std::vector<std::shared_ptr<const WorkloadRun>> runs;
  std::vector<RunConfig> configs;
  for (const Baseline& scenario : kSeedBaselines) {
    const auto run =
        plan_workload_shared(*find_workload(scenario.workload), params);
    ClusterConfig sized = cluster;
    sized.cache_bytes_per_node =
        cache_bytes_per_node_for(*run, cluster, kFraction);

    Result result;
    result.workload = scenario.workload;
    result.policy = scenario.policy;
    result.baseline_ms = scenario.ms;

    RunConfig config;
    config.cluster = sized;
    config.policy = bench::policy(scenario.policy);
    config.node_jobs = node_jobs;
    measure(&result, run, config);
    runs.push_back(run);
    configs.push_back(config);

    // Differential verification of the closure-aware group-parallel path:
    // the fan-out run must reproduce the serial oracle field-for-field, and
    // the graph workloads must actually engage parallel probe regions (no
    // serial fallback). record_stage_timings widens the compared surface.
    RunConfig oracle_config = config;
    oracle_config.node_jobs = 1;
    oracle_config.phase_timers = nullptr;
    oracle_config.record_stage_timings = true;
    const RunMetrics oracle = run_plan(run->plan, oracle_config);
    RunConfig parallel_config = oracle_config;
    parallel_config.node_jobs = std::max<std::size_t>(node_jobs, 2);
    parallel_config.parallel_stats = &result.node_parallel;
    const RunMetrics fanned = run_plan(run->plan, parallel_config);
    const std::string diff = metrics_diff(oracle, fanned);
    if (!diff.empty()) {
      std::fprintf(stderr,
                   "FAIL: %s/%s node-jobs %zu diverged from serial oracle "
                   "(field %s)\n",
                   scenario.workload, scenario.policy,
                   parallel_config.node_jobs, diff.c_str());
      return 1;
    }
    if (result.node_parallel.probe_regions_parallel == 0) {
      std::fprintf(stderr,
                   "FAIL: %s/%s fell back to serial probing everywhere "
                   "(0 of %zu probe regions parallel; plan groups %zu/%zu)\n",
                   scenario.workload, scenario.policy,
                   result.node_parallel.probe_regions,
                   result.node_parallel.plan_groups,
                   result.node_parallel.num_nodes);
      return 1;
    }

    // Engine differential + comparison: the `--exec barrier` serial oracle
    // and the event scheduler (at 1 and kEngineJobs workers, pooled and
    // with the pool kill-switched) must each reproduce the plain serial
    // run field-for-field; then time each configuration.
    RunConfig engine_config = oracle_config;
    engine_config.node_jobs = kEngineJobs;
    engine_config.exec_mode = ExecMode::kBarrier;
    const RunMetrics barrier_run = run_plan(run->plan, engine_config);
    engine_config.exec_mode = ExecMode::kEvent;
    engine_config.parallel_stats = &result.event_stats;
    const RunMetrics event_run = run_plan(run->plan, engine_config);
    engine_config.parallel_stats = nullptr;
    Executor::set_disabled_for_test(1);
    const RunMetrics event_spawned = run_plan(run->plan, engine_config);
    Executor::set_disabled_for_test(-1);
    RunConfig event_serial = oracle_config;
    event_serial.node_jobs = 1;
    event_serial.exec_mode = ExecMode::kEvent;
    const RunMetrics event_one = run_plan(run->plan, event_serial);
    for (const auto& [label, metrics] :
         {std::pair<const char*, const RunMetrics*>{"barrier", &barrier_run},
          {"event", &event_run},
          {"event-no-pool", &event_spawned},
          {"event@1", &event_one}}) {
      const std::string engine_diff = metrics_diff(oracle, *metrics);
      if (!engine_diff.empty()) {
        std::fprintf(stderr,
                     "FAIL: %s/%s %s engine diverged from serial oracle "
                     "(field %s)\n",
                     scenario.workload, scenario.policy, label,
                     engine_diff.c_str());
        return 1;
      }
    }
    measure_engines(run, config, &result.barrier_ms, &result.event_ms,
                    &result.event_spawn_ms);
    measure_allocs(&result, run, config);

    // The two heaviest phases, as share of total timed phase ms.
    std::vector<std::pair<double, std::string_view>> shares;
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      shares.emplace_back(result.phases.ms[p], kSimPhaseNames[p]);
    }
    std::sort(shares.rbegin(), shares.rend());
    const double phase_total = result.phases.total();
    std::string top;
    for (std::size_t p = 0; p < 2 && phase_total > 0.0; ++p) {
      if (!top.empty()) top += ", ";
      top += std::string(shares[p].second) + " " +
             format_percent(shares[p].first / phase_total, 0);
    }

    table.add_row({result.workload + "/" + result.policy,
                   format_double(result.baseline_ms, 2) + " ms",
                   format_double(result.median_ms, 2) + " ms",
                   format_double(result.speedup(), 2) + "x", top});
    results.push_back(std::move(result));
  }

  table.print(std::cout);
  std::printf("\n(Baselines: commit f9d3c62 on the reference container; "
              "speedup = baseline / median.)\n");
  std::printf("\nNode-group fan-out (verified against the serial oracle):\n");
  for (const Result& r : results) {
    std::printf(
        "  %s/%s: plan groups %zu/%zu, probe regions %zu (%zu parallel), "
        "groups %zu..%zu, largest %zu\n",
        r.workload.c_str(), r.policy.c_str(), r.node_parallel.plan_groups,
        r.node_parallel.num_nodes, r.node_parallel.probe_regions,
        r.node_parallel.probe_regions_parallel, r.node_parallel.min_groups,
        r.node_parallel.max_groups, r.node_parallel.largest_group);
  }

  std::printf("\nEngine comparison at %zu workers (serial oracle vs pooled "
              "event engine vs per-run-spawn event engine, identical output "
              "bytes):\n",
              kEngineJobs);
  for (const Result& r : results) {
    std::printf(
        "  %s/%s: serial %.2f ms, event %.2f ms, event-no-pool %.2f ms "
        "(pool %.2fx) — %zu instrs, overlap %.1fx, queue depth %zu, "
        "steals %llu (+%llu misses)\n",
        r.workload.c_str(), r.policy.c_str(), r.barrier_ms, r.event_ms,
        r.event_spawn_ms, r.pool_speedup(), r.event_stats.instructions,
        r.event_stats.overlap(), r.event_stats.max_queue_depth,
        static_cast<unsigned long long>(r.event_stats.steals),
        static_cast<unsigned long long>(r.event_stats.failed_steals));
  }

  if (alloc_stats::available()) {
    std::printf("\nHeap allocations per run (pooled run context, %zu steady "
                "runs after one warmup):\n",
                kSteadyAllocRuns);
    for (const Result& r : results) {
      std::printf("  %s/%s: fresh %llu, steady %.1f (%llu/%zu runs reused)\n",
                  r.workload.c_str(), r.policy.c_str(),
                  static_cast<unsigned long long>(r.fresh_allocs),
                  r.mean_steady_allocs(),
                  static_cast<unsigned long long>(r.steady_runs),
                  kSteadyAllocRuns);
    }
  } else {
    std::printf("\nHeap allocation accounting unavailable (sanitizer build); "
                "alloc gate will be skipped.\n");
  }

  // Load the committed baseline *before* writing the fresh JSON: the gate
  // file is typically the checked-out BENCH_core.json in the working
  // directory, i.e. the very path the write below replaces — reading it
  // afterwards would gate the run against itself.
  std::string committed;
  if (!gate_file.empty()) {
    std::ifstream in(gate_file);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read gate file %s\n",
                   gate_file.c_str());
      return 1;
    }
    committed.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }

  std::ofstream json("BENCH_core.json");
  json << "{\n  \"bench\": \"perf_microbench\",\n"
       << "  \"baseline_commit\": \"f9d3c62\",\n"
       << "  \"scale\": " << json_number(scale) << ",\n"
       << "  \"cache_fraction\": " << json_number(kFraction) << ",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"node_jobs\": " << node_jobs << ",\n"
       << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\n      \"workload\": \"" << r.workload
         << "\", \"policy\": \"" << r.policy << "\",\n"
         << "      \"baseline_ms\": " << json_number(r.baseline_ms)
         << ", \"median_ms\": " << json_number(r.median_ms)
         << ", \"speedup\": " << json_number(r.speedup()) << ",\n"
         << "      \"samples_ms\": [";
    for (std::size_t s = 0; s < r.samples_ms.size(); ++s) {
      json << (s ? ", " : "") << json_number(r.samples_ms[s]);
    }
    json << "],\n      \"node_parallel\": {"
         << "\"plan_groups\": " << r.node_parallel.plan_groups
         << ", \"num_nodes\": " << r.node_parallel.num_nodes
         << ", \"probe_regions\": " << r.node_parallel.probe_regions
         << ", \"probe_regions_parallel\": "
         << r.node_parallel.probe_regions_parallel
         << ", \"min_groups\": " << r.node_parallel.min_groups
         << ", \"max_groups\": " << r.node_parallel.max_groups
         << ", \"mean_groups\": "
         << json_number(r.node_parallel.mean_groups())
         << ", \"largest_group\": " << r.node_parallel.largest_group
         << "},\n      \"engine\": {"
         << "\"workers\": " << kEngineJobs
         << ", \"barrier_ms\": " << json_number(r.barrier_ms)
         << ", \"event_ms\": " << json_number(r.event_ms)
         << ", \"event_spawn_ms\": " << json_number(r.event_spawn_ms)
         << ", \"event_speedup\": " << json_number(r.event_speedup())
         << ", \"pool_speedup\": " << json_number(r.pool_speedup())
         << ", \"instructions\": " << r.event_stats.instructions
         << ", \"critical_path\": " << r.event_stats.critical_path
         << ", \"overlap\": " << json_number(r.event_stats.overlap())
         << ", \"max_queue_depth\": " << r.event_stats.max_queue_depth
         << ", \"steals\": " << r.event_stats.steals
         << ", \"failed_steals\": " << r.event_stats.failed_steals
         << ", \"max_shard_depth\": " << r.event_stats.max_shard_depth
         << "},\n      \"allocs\": {"
         << "\"available\": "
         << (alloc_stats::available() ? "true" : "false")
         << ", \"fresh\": " << r.fresh_allocs
         << ", \"steady_runs\": " << r.steady_runs
         << ", \"steady_mean\": " << json_number(r.mean_steady_allocs())
         << "},\n      \"phase_ms\": {";
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      json << (p ? ", " : "") << "\"" << kSimPhaseNames[p]
           << "\": " << json_number(r.phases.ms[p]);
    }
    json << "},\n      \"phase_median_ms\": {";
    for (std::size_t p = 0; p < kNumSimPhases; ++p) {
      json << (p ? ", " : "") << "\"" << kSimPhaseNames[p]
           << "\": " << json_number(r.phase_median_ms[p]);
    }
    json << "}\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("JSON: BENCH_core.json\n");

  if (!gate_file.empty()) {
    constexpr double kGateMargin = 1.4;  // committed median + 40%
    // Prints this scenario's gate lines; true when it is within limits.
    const auto gate_scenario = [&committed](const Result& r) {
      const double limit_base = committed_median(committed, r.workload,
                                                 r.policy);
      if (limit_base <= 0.0) {
        std::printf("  %s/%s: no committed median, skipped\n",
                    r.workload.c_str(), r.policy.c_str());
        return true;
      }
      const double limit = limit_base * kGateMargin;
      bool ok = r.median_ms <= limit;
      std::printf("  %s/%s: %.2f ms vs committed %.2f ms (limit %.2f) %s\n",
                  r.workload.c_str(), r.policy.c_str(), r.median_ms,
                  limit_base, limit, ok ? "OK" : "REGRESSED");
      // Per-phase gate: a subsystem regression can hide inside an OK
      // whole-run median. The 1 ms absolute slack keeps near-zero phases
      // (purge, broadcast) from gating on scheduler jitter.
      constexpr double kPhaseSlackMs = 1.0;
      for (std::size_t p = 0; p < kNumSimPhases; ++p) {
        const double phase_base = committed_phase_median(
            committed, r.workload, r.policy, kSimPhaseNames[p]);
        if (phase_base < 0.0) continue;  // pre-phase-gate committed file
        const double phase_limit = phase_base * kGateMargin + kPhaseSlackMs;
        if (r.phase_median_ms[p] > phase_limit) {
          std::printf("  %s/%s phase %s: %.2f ms vs committed %.2f ms "
                      "(limit %.2f) REGRESSED\n",
                      r.workload.c_str(), r.policy.c_str(),
                      std::string(kSimPhaseNames[p]).c_str(),
                      r.phase_median_ms[p], phase_base, phase_limit);
          ok = false;
        }
      }
      return ok;
    };

    std::printf("\nPerf gate vs %s (margin %.0f%%):\n", gate_file.c_str(),
                (kGateMargin - 1.0) * 100.0);
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!gate_scenario(results[i])) failing.push_back(i);
    }
    if (!failing.empty()) {
      // One re-measure before failing: a shared-container load burst can
      // dilate wall clock past any sane margin, but it rarely spans both
      // measurements — a real regression does. The engine comparison block
      // is re-measured alongside the phase medians: the same burst that
      // trips the gate also dilates barrier_ms/event_ms, and a later
      // --assert-event-fast would otherwise judge the engines on
      // burst-contaminated numbers.
      std::printf("  re-measuring %zu scenario(s) to rule out a transient "
                  "load burst:\n",
                  failing.size());
      bool gate_ok = true;
      for (const std::size_t i : failing) {
        measure(&results[i], runs[i], configs[i]);
        measure_engines(runs[i], configs[i], &results[i].barrier_ms,
                        &results[i].event_ms, &results[i].event_spawn_ms);
        gate_ok = gate_scenario(results[i]) && gate_ok;
      }
      if (!gate_ok) {
        std::fprintf(stderr,
                     "FAIL: perf gate — at least one scenario or phase "
                     "regressed >40%% over the committed median in both "
                     "measurements\n");
        return 1;
      }
    }

    // Steady-state allocation gate: a point that fully reuses its pooled
    // RunContext must stay ~allocation-free — the budget covers the
    // per-run RunMetrics vectors and stray libc buffers, not structural
    // reconstruction (a policy or block-manager rebuild costs thousands of
    // allocations and trips this immediately). Wall-clock noise cannot
    // affect allocation counts, so no re-measure is needed.
    if (alloc_stats::available()) {
      constexpr double kSteadyAllocLimit = 256.0;
      std::printf("\nSteady-state allocation gate (limit %.0f allocs/run):\n",
                  kSteadyAllocLimit);
      bool alloc_ok = true;
      for (const Result& r : results) {
        const bool reused = r.steady_runs == kSteadyAllocRuns;
        const bool ok = reused && r.mean_steady_allocs() <= kSteadyAllocLimit;
        std::printf("  %s/%s: %.1f allocs/run over %llu reused runs %s\n",
                    r.workload.c_str(), r.policy.c_str(),
                    r.mean_steady_allocs(),
                    static_cast<unsigned long long>(r.steady_runs),
                    ok ? "OK" : (reused ? "REGRESSED" : "NOT REUSED"));
        alloc_ok = alloc_ok && ok;
      }
      if (!alloc_ok) {
        std::fprintf(stderr,
                     "FAIL: alloc gate — a steady-state (pooled-context) "
                     "run either failed to reuse its context or allocated "
                     "more than %.0f times\n",
                     kSteadyAllocLimit);
        return 1;
      }
    } else {
      std::printf("\nSteady-state allocation gate skipped (allocation "
                  "accounting unavailable in this build).\n");
    }
  }

  if (assert_event_fast) {
    // Pool-vs-spawn assertion: on the heavy graph workloads (scc and lp)
    // the event engine on the persistent pool must be at least as fast as
    // the same engine spawning its workers per run — if pooling ever loses
    // to raw spawning, the executor is pure overhead. Failing scenarios
    // are re-measured once — shared runners see load bursts wider than the
    // engines' real gap.
    std::printf("\nPooled-vs-spawn event-engine assertion (scc and lp "
                "scenarios):\n");
    if (Executor::configured_width() < 2) {
      // The engine clamps its worker count to the pool width: at width 1
      // both paths run the single-worker drain with no helpers at all, so
      // there is nothing to compare — any difference is pure noise.
      std::printf("  skipped: executor width %zu — the pooled and spawn "
                  "paths are identical at a single worker\n",
                  Executor::configured_width());
      return 0;
    }
    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      Result& r = results[i];
      if (r.workload != "scc" && r.workload != "lp") continue;
      if (r.event_ms > r.event_spawn_ms) {
        measure_engines(runs[i], configs[i], &r.barrier_ms, &r.event_ms,
                        &r.event_spawn_ms);
      }
      const bool fast = r.event_ms <= r.event_spawn_ms;
      std::printf("  %s/%s: event %.2f ms, event-no-pool %.2f ms %s\n",
                  r.workload.c_str(), r.policy.c_str(), r.event_ms,
                  r.event_spawn_ms, fast ? "OK" : "SLOWER");
      ok = ok && fast;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: pooled event engine slower than the per-run-spawn "
                   "baseline on scc/lp in both measurements\n");
      return 1;
    }
  }
  return 0;
}
