// Regenerates Figure 11: JCT reduction vs average stage distance across the
// 14 SparkBench workloads, with the OLS trendline (paper reports R² = 0.46).
#include "bench_common.h"

#include "dag/dag_analysis.h"
#include "util/math.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "Avg stage distance", "JCT reduction"});
  CsvWriter csv(bench::out_dir() + "/fig11_stage_distance_correlation.csv");
  csv.write_row({"workload", "avg_stage_distance", "jct_reduction"});

  std::cout << "Figure 11: relationship of performance and stage distance\n\n";
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");

  struct Row {
    const WorkloadSpec* spec;
    std::shared_ptr<const WorkloadRun> run;
    PendingBest best;
  };
  std::vector<Row> rows;
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    const auto run = plan_workload_shared(spec, bench::bench_params());
    rows.push_back(Row{
        &spec, run,
        runner.submit_best(run, cluster, fractions, lru, mrd)});
  }

  std::vector<double> xs, ys;
  for (Row& row : rows) {
    const ReferenceDistanceStats stats =
        reference_distance_stats(row.run->plan);
    const BestComparison best = row.best.get();
    const double reduction = 1.0 - best.jct_ratio();
    xs.push_back(stats.avg_stage_distance);
    ys.push_back(reduction);
    table.add_row({row.spec->name,
                   format_double(stats.avg_stage_distance, 2),
                   format_percent(reduction, 1)});
    csv.write_row({row.spec->key,
                   format_double(stats.avg_stage_distance, 4),
                   format_double(reduction, 4)});
  }
  table.print(std::cout);

  const LinearFit fit = linear_regression(xs, ys);
  std::cout << "\nTrendline: reduction = " << format_double(fit.slope, 4)
            << " x distance + " << format_double(fit.intercept, 4)
            << "   R^2 = " << format_double(fit.r_squared, 2)
            << "  (paper: R^2 = 0.46, positive slope)\n";
  bench::report_sweep(runner);
  return 0;
}
