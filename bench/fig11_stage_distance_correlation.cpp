// Regenerates Figure 11: JCT reduction vs average stage distance across the
// 14 SparkBench workloads, with the OLS trendline (paper reports R² = 0.46).
#include "bench_common.h"

#include "dag/dag_analysis.h"
#include "util/math.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "Avg stage distance", "JCT reduction"});
  CsvWriter csv(bench::out_dir() + "/fig11_stage_distance_correlation.csv");
  csv.write_row({"workload", "avg_stage_distance", "jct_reduction"});

  std::cout << "Figure 11: relationship of performance and stage distance\n\n";
  std::vector<double> xs, ys;
  const PolicyConfig lru = bench::policy("lru");
  const PolicyConfig mrd = bench::policy("mrd");
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    const WorkloadRun run = plan_workload(spec, bench::bench_params());
    const ReferenceDistanceStats stats = reference_distance_stats(run.plan);
    const BestComparison best =
        best_improvement(run, cluster, fractions, lru, mrd);
    const double reduction = 1.0 - best.jct_ratio();
    xs.push_back(stats.avg_stage_distance);
    ys.push_back(reduction);
    table.add_row({spec.name, format_double(stats.avg_stage_distance, 2),
                   format_percent(reduction, 1)});
    csv.write_row({spec.key, format_double(stats.avg_stage_distance, 4),
                   format_double(reduction, 4)});
  }
  table.print(std::cout);

  const LinearFit fit = linear_regression(xs, ys);
  std::cout << "\nTrendline: reduction = " << format_double(fit.slope, 4)
            << " x distance + " << format_double(fit.intercept, 4)
            << "   R^2 = " << format_double(fit.r_squared, 2)
            << "  (paper: R^2 = 0.46, positive slope)\n";
  return 0;
}
