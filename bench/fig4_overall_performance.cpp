// Regenerates Figure 4: best-of-cache-size normalized JCT for MRD
// eviction-only, prefetch-only and full (vs LRU at the same cache size), plus
// the LRU→MRD cache hit ratios, for all 14 SparkBench workloads on the Main
// cluster.
//
// Shape targets: full MRD cuts the average JCT to ~one half of LRU's;
// I/O-intensive workloads improve most; DT barely moves; eviction provides
// the bulk of the improvement; hit ratios rise for every workload.
#include "bench_common.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "MRD-evict", "MRD-prefetch", "MRD full",
                    "LRU hit", "MRD hit"});
  CsvWriter csv(bench::out_dir() + "/fig4_overall_performance.csv");
  csv.write_row({"workload", "evict_only_jct_ratio",
                 "prefetch_only_jct_ratio", "full_jct_ratio", "lru_hit",
                 "mrd_hit", "best_fraction"});

  std::cout << "Figure 4: overall performance of MRD (normalized JCT vs LRU, "
               "best cache size per workload)\n\n";

  // Queue every (workload × variant × fraction) point, then collect in
  // workload order — the pool saturates across the whole figure at once.
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);
  const PolicyConfig lru = bench::policy("lru");
  struct Row {
    const WorkloadSpec* spec;
    PendingBest evict, prefetch, full;
  };
  std::vector<Row> rows;
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    const auto run = plan_workload_shared(spec, bench::bench_params());
    rows.push_back(Row{
        &spec,
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("mrd-evict")),
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("mrd-prefetch")),
        runner.submit_best(run, cluster, fractions, lru,
                           bench::policy("mrd"))});
  }

  double sum_evict = 0, sum_prefetch = 0, sum_full = 0;
  for (Row& row : rows) {
    const BestComparison evict = row.evict.get();
    const BestComparison prefetch = row.prefetch.get();
    const BestComparison full = row.full.get();

    sum_evict += evict.jct_ratio();
    sum_prefetch += prefetch.jct_ratio();
    sum_full += full.jct_ratio();

    table.add_row({row.spec->name, format_percent(evict.jct_ratio(), 0),
                   format_percent(prefetch.jct_ratio(), 0),
                   format_percent(full.jct_ratio(), 0),
                   format_percent(full.baseline.hit_ratio(), 0),
                   format_percent(full.candidate.hit_ratio(), 0)});
    csv.write_row({row.spec->key, format_double(evict.jct_ratio(), 4),
                   format_double(prefetch.jct_ratio(), 4),
                   format_double(full.jct_ratio(), 4),
                   format_double(full.baseline.hit_ratio(), 4),
                   format_double(full.candidate.hit_ratio(), 4),
                   format_double(full.fraction, 2)});
  }

  const double n = static_cast<double>(sparkbench_workloads().size());
  table.add_separator();
  table.add_row({"Average", format_percent(sum_evict / n, 0),
                 format_percent(sum_prefetch / n, 0),
                 format_percent(sum_full / n, 0), "", ""});
  table.print(std::cout);
  std::cout << "\n(100% = LRU at the same cache size; lower is better. "
               "Paper: evict 62%, prefetch 67%, full 53% on average.)\n";
  std::cout << "CSV: " << bench::out_dir() << "/fig4_overall_performance.csv\n";
  bench::report_sweep(runner);
  return 0;
}
