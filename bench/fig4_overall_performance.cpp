// Regenerates Figure 4: best-of-cache-size normalized JCT for MRD
// eviction-only, prefetch-only and full (vs LRU at the same cache size), plus
// the LRU→MRD cache hit ratios, for all 14 SparkBench workloads on the Main
// cluster.
//
// Shape targets: full MRD cuts the average JCT to ~one half of LRU's;
// I/O-intensive workloads improve most; DT barely moves; eviction provides
// the bulk of the improvement; hit ratios rise for every workload.
#include "bench_common.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  const std::vector<double>& fractions = default_cache_fractions();

  AsciiTable table({"Workload", "MRD-evict", "MRD-prefetch", "MRD full",
                    "LRU hit", "MRD hit"});
  CsvWriter csv(bench::out_dir() + "/fig4_overall_performance.csv");
  csv.write_row({"workload", "evict_only_jct_ratio",
                 "prefetch_only_jct_ratio", "full_jct_ratio", "lru_hit",
                 "mrd_hit", "best_fraction"});

  std::cout << "Figure 4: overall performance of MRD (normalized JCT vs LRU, "
               "best cache size per workload)\n\n";

  double sum_evict = 0, sum_prefetch = 0, sum_full = 0;
  const PolicyConfig lru = bench::policy("lru");
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    const WorkloadRun run = plan_workload(spec, bench::bench_params());
    const BestComparison evict = best_improvement(
        run, cluster, fractions, lru, bench::policy("mrd-evict"));
    const BestComparison prefetch = best_improvement(
        run, cluster, fractions, lru, bench::policy("mrd-prefetch"));
    const BestComparison full =
        best_improvement(run, cluster, fractions, lru, bench::policy("mrd"));

    sum_evict += evict.jct_ratio();
    sum_prefetch += prefetch.jct_ratio();
    sum_full += full.jct_ratio();

    table.add_row({spec.name, format_percent(evict.jct_ratio(), 0),
                   format_percent(prefetch.jct_ratio(), 0),
                   format_percent(full.jct_ratio(), 0),
                   format_percent(full.baseline.hit_ratio(), 0),
                   format_percent(full.candidate.hit_ratio(), 0)});
    csv.write_row({spec.key, format_double(evict.jct_ratio(), 4),
                   format_double(prefetch.jct_ratio(), 4),
                   format_double(full.jct_ratio(), 4),
                   format_double(full.baseline.hit_ratio(), 4),
                   format_double(full.candidate.hit_ratio(), 4),
                   format_double(full.fraction, 2)});
  }

  const double n = static_cast<double>(sparkbench_workloads().size());
  table.add_separator();
  table.add_row({"Average", format_percent(sum_evict / n, 0),
                 format_percent(sum_prefetch / n, 0),
                 format_percent(sum_full / n, 0), "", ""});
  table.print(std::cout);
  std::cout << "\n(100% = LRU at the same cache size; lower is better. "
               "Paper: evict 62%, prefetch 67%, full 53% on average.)\n";
  std::cout << "CSV: " << bench::out_dir() << "/fig4_overall_performance.csv\n";
  return 0;
}
