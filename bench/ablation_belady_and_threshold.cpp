// Ablations beyond the paper's figures:
//   1. Belady-MIN bound — MRD should land between LRU and the clairvoyant
//      oracle on JCT at matched cache sizes;
//   2. prefetch-threshold sweep — the paper fixes 25% "experimentally" and
//      lists dynamic tuning as future work;
//   3. guarded prefetch — the §4.4 future-work pre-check, off by default in
//      MRD, measured here.
#include "bench_common.h"

using namespace mrd;

int main() {
  const ClusterConfig cluster = main_cluster();
  std::cout << "Ablation 1: Belady-MIN bound (JCT normalized to LRU, "
               "fraction 0.5)\n\n";
  {
    AsciiTable table({"Workload", "LRU", "LRC", "MRD", "Belady-MIN"});
    for (const char* key : {"pr", "cc", "svdpp", "km", "po"}) {
      const WorkloadRun run =
          plan_workload(*find_workload(key), bench::bench_params());
      const double lru =
          run_with_policy(run, cluster, 0.5, bench::policy("lru")).jct_ms;
      std::vector<std::string> row{run.name, "100%"};
      for (const char* pol : {"lrc", "mrd", "belady"}) {
        const double jct =
            run_with_policy(run, cluster, 0.5, bench::policy(pol)).jct_ms;
        row.push_back(bench::norm_jct(jct, lru));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\nAblation 2: prefetch-threshold sweep (SVD++, JCT "
               "normalized to LRU at fraction 0.5)\n\n";
  {
    AsciiTable table({"Threshold", "MRD JCT vs LRU", "hit ratio",
                      "prefetches completed"});
    const WorkloadRun run =
        plan_workload(*find_workload("svdpp"), bench::bench_params());
    const double lru =
        run_with_policy(run, cluster, 0.5, bench::policy("lru")).jct_ms;
    for (double threshold : {0.0, 0.10, 0.25, 0.50, 0.90}) {
      PolicyConfig mrd = bench::policy("mrd");
      mrd.prefetch_threshold = threshold;
      const RunMetrics m = run_with_policy(run, cluster, 0.5, mrd);
      table.add_row({format_percent(threshold, 0),
                     bench::norm_jct(m.jct_ms, lru),
                     format_percent(m.hit_ratio(), 0),
                     std::to_string(m.prefetches_completed)});
    }
    table.print(std::cout);
    std::cout << "(The paper fixes 25%; dynamic thresholds are its stated "
                 "future work.)\n";
  }

  std::cout << "\nAblation 3: guarded prefetch — the paper's future-work "
               "pre-check (fraction 0.4)\n\n";
  {
    AsciiTable table({"Workload", "MRD aggressive", "MRD guarded",
                      "wasted (aggr)", "wasted (guard)"});
    for (const char* key : {"pr", "svdpp", "po"}) {
      const WorkloadRun run =
          plan_workload(*find_workload(key), bench::bench_params());
      const double lru =
          run_with_policy(run, cluster, 0.4, bench::policy("lru")).jct_ms;
      const RunMetrics aggressive =
          run_with_policy(run, cluster, 0.4, bench::policy("mrd"));
      const RunMetrics guarded =
          run_with_policy(run, cluster, 0.4, bench::policy("mrd-guarded"));
      table.add_row({run.name, bench::norm_jct(aggressive.jct_ms, lru),
                     bench::norm_jct(guarded.jct_ms, lru),
                     std::to_string(aggressive.prefetches_wasted),
                     std::to_string(guarded.prefetches_wasted)});
    }
    table.print(std::cout);
  }
  return 0;
}
