// Ablations beyond the paper's figures:
//   1. Belady-MIN bound — MRD should land between LRU and the clairvoyant
//      oracle on JCT at matched cache sizes;
//   2. prefetch-threshold sweep — the paper fixes 25% "experimentally" and
//      lists dynamic tuning as future work;
//   3. guarded prefetch — the §4.4 future-work pre-check, off by default in
//      MRD, measured here.
#include "bench_common.h"

using namespace mrd;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  const ClusterConfig cluster = main_cluster();
  SweepRunner runner(options.jobs, options.node_jobs, options.exec_mode);

  std::cout << "Ablation 1: Belady-MIN bound (JCT normalized to LRU, "
               "fraction 0.5)\n\n";
  {
    AsciiTable table({"Workload", "LRU", "LRC", "MRD", "Belady-MIN"});
    struct Row {
      std::shared_ptr<const WorkloadRun> run;
      std::vector<SweepTicket> futures;  // lru, lrc, mrd, belady
    };
    std::vector<Row> rows;
    for (const char* key : {"pr", "cc", "svdpp", "km", "po"}) {
      Row row;
      row.run = plan_workload_shared(*find_workload(key), bench::bench_params());
      for (const char* pol : {"lru", "lrc", "mrd", "belady"}) {
        row.futures.push_back(runner.submit(
            SweepJob{row.run, cluster, 0.5, bench::policy(pol)}));
      }
      rows.push_back(std::move(row));
    }
    for (Row& r : rows) {
      const double lru = r.futures[0].get().jct_ms;
      std::vector<std::string> row{r.run->name, "100%"};
      for (int i = 1; i < 4; ++i) {
        row.push_back(bench::norm_jct(r.futures[i].get().jct_ms, lru));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\nAblation 2: prefetch-threshold sweep (SVD++, JCT "
               "normalized to LRU at fraction 0.5)\n\n";
  {
    AsciiTable table({"Threshold", "MRD JCT vs LRU", "hit ratio",
                      "prefetches completed"});
    const auto run =
        plan_workload_shared(*find_workload("svdpp"), bench::bench_params());
    const auto lru_future =
        runner.submit(SweepJob{run, cluster, 0.5, bench::policy("lru")});
    const std::vector<double> thresholds = {0.0, 0.10, 0.25, 0.50, 0.90};
    std::vector<SweepTicket> futures;
    for (double threshold : thresholds) {
      PolicyConfig mrd = bench::policy("mrd");
      mrd.prefetch_threshold = threshold;
      futures.push_back(runner.submit(SweepJob{run, cluster, 0.5, mrd}));
    }
    const double lru = lru_future.get().jct_ms;
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      const RunMetrics m = futures[i].get();
      table.add_row({format_percent(thresholds[i], 0),
                     bench::norm_jct(m.jct_ms, lru),
                     format_percent(m.hit_ratio(), 0),
                     std::to_string(m.prefetches_completed)});
    }
    table.print(std::cout);
    std::cout << "(The paper fixes 25%; dynamic thresholds are its stated "
                 "future work.)\n";
  }

  std::cout << "\nAblation 3: guarded prefetch — the paper's future-work "
               "pre-check (fraction 0.4)\n\n";
  {
    AsciiTable table({"Workload", "MRD aggressive", "MRD guarded",
                      "wasted (aggr)", "wasted (guard)"});
    struct Row {
      std::shared_ptr<const WorkloadRun> run;
      SweepTicket lru, aggressive, guarded;
    };
    std::vector<Row> rows;
    for (const char* key : {"pr", "svdpp", "po"}) {
      const auto run =
          plan_workload_shared(*find_workload(key), bench::bench_params());
      rows.push_back(Row{
          run,
          runner.submit(SweepJob{run, cluster, 0.4, bench::policy("lru")}),
          runner.submit(SweepJob{run, cluster, 0.4, bench::policy("mrd")}),
          runner.submit(
              SweepJob{run, cluster, 0.4, bench::policy("mrd-guarded")})});
    }
    for (Row& row : rows) {
      const double lru = row.lru.get().jct_ms;
      const RunMetrics aggressive = row.aggressive.get();
      const RunMetrics guarded = row.guarded.get();
      table.add_row({row.run->name, bench::norm_jct(aggressive.jct_ms, lru),
                     bench::norm_jct(guarded.jct_ms, lru),
                     std::to_string(aggressive.prefetches_wasted),
                     std::to_string(guarded.prefetches_wasted)});
    }
    table.print(std::cout);
  }
  bench::report_sweep(runner);
  return 0;
}
