// Shared plumbing for the table/figure bench binaries: workload planning,
// best-of-cache-size comparisons, and output to stdout (paper-style ASCII
// tables) plus CSV files under bench_out/ for re-plotting.
//
// Every driver accepts `--jobs N` (default: all hardware threads) and fans
// its independent simulation runs out through a SweepRunner; results are
// byte-identical to `--jobs 1`. Each driver ends with a wall-clock speedup
// line from `report_sweep`.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mrd {
namespace bench {

/// Benches run the workloads at the repo's default sizes (1/8 of the
/// paper's inputs — see DESIGN.md); pass a smaller scale for quick checks.
inline WorkloadParams bench_params(double scale = 1.0) {
  WorkloadParams params;
  params.scale = scale;
  return params;
}

inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline PolicyConfig policy(const std::string& name) {
  PolicyConfig config;
  config.name = name;
  return config;
}

/// Percentage of LRU's JCT (the paper's normalized JCT axis).
inline std::string norm_jct(double candidate_ms, double baseline_ms) {
  return format_percent(baseline_ms == 0 ? 1.0 : candidate_ms / baseline_ms,
                        0);
}

struct Options {
  /// Worker threads for the sweep (`--jobs N`; 1 = serial).
  std::size_t jobs = ThreadPool::default_threads();
};

/// Parses bench flags; exits on malformed or unknown arguments.
inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a count\n", argv[0],
                     argv[i]);
        std::exit(2);
      }
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "%s: --jobs must be >= 1\n", argv[0]);
        std::exit(2);
      }
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const long parsed = std::strtol(argv[i] + 7, nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "%s: --jobs must be >= 1\n", argv[0]);
        std::exit(2);
      }
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--jobs N]\n  --jobs N  parallel sweep workers "
                  "(default: hardware threads; results identical for any "
                  "N)\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                   argv[0], argv[i]);
      std::exit(2);
    }
  }
  return options;
}

/// The wall-clock speedup line every driver prints after its tables.
inline void report_sweep(const SweepRunner& runner) {
  const SweepStats stats = runner.stats();
  if (stats.runs == 0) return;
  std::cout << "\n[sweep] " << stats.runs << " runs on " << stats.threads
            << (stats.threads == 1 ? " thread: " : " threads: ")
            << format_double(stats.wall_ms / 1000.0, 2) << "s wall, "
            << format_double(stats.aggregate_ms / 1000.0, 2)
            << "s aggregate — " << format_double(stats.speedup(), 1)
            << "x speedup\n";
}

/// Speedup line for planning-only drivers (table1/table3), which time their
/// DAG planning fan-out directly instead of going through a SweepRunner.
inline void report_wall(std::size_t tasks, std::size_t threads,
                        std::chrono::steady_clock::time_point wall_start) {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  std::cout << "\n[sweep] " << tasks << " plans on " << threads
            << (threads == 1 ? " thread: " : " threads: ")
            << format_double(wall_ms / 1000.0, 2) << "s wall\n";
}

}  // namespace bench
}  // namespace mrd
