// Shared plumbing for the table/figure bench binaries: workload planning,
// best-of-cache-size comparisons, and output to stdout (paper-style ASCII
// tables) plus CSV files under bench_out/ for re-plotting.
//
// Every driver accepts `--jobs N` (default: the executor width) and fans
// its independent simulation runs out through a SweepRunner; results are
// byte-identical to `--jobs 1`. `--node-jobs N` additionally fans the
// per-node phases *inside* each run; the two levels compose — sweep points
// and engine helpers queue on the same persistent executor — and are
// likewise byte-identical for every value. Each driver ends with a
// wall-clock speedup line from `report_sweep`.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "exec/executor.h"
#include "harness/experiment.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/table.h"

namespace mrd {
namespace bench {

/// Benches run the workloads at the repo's default sizes (1/8 of the
/// paper's inputs — see DESIGN.md); pass a smaller scale for quick checks.
inline WorkloadParams bench_params(double scale = 1.0) {
  WorkloadParams params;
  params.scale = scale;
  return params;
}

inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline PolicyConfig policy(const std::string& name) {
  PolicyConfig config;
  config.name = name;
  return config;
}

/// Percentage of LRU's JCT (the paper's normalized JCT axis).
inline std::string norm_jct(double candidate_ms, double baseline_ms) {
  return format_percent(baseline_ms == 0 ? 1.0 : candidate_ms / baseline_ms,
                        0);
}

struct Options {
  /// Worker threads for the sweep (`--jobs N`; 1 = serial).
  std::size_t jobs = Executor::configured_width();
  /// Intra-run node workers (`--node-jobs N`); composes with --jobs.
  std::size_t node_jobs = 1;
  /// Engine for multi-worker runs (`--exec auto|barrier|event`). Output is
  /// byte-identical across engines; only wall clock differs.
  ExecMode exec_mode = ExecMode::kAuto;
};

/// Parses one `--flag N` / `--flag=N` positive integer; returns false if
/// `argv[*i]` is not `flag`. Exits on a malformed count.
inline bool parse_count_flag(int argc, char** argv, int* i,
                             std::string_view flag, std::string_view alias,
                             std::size_t* out) {
  const std::string_view arg = argv[*i];
  const char* text = nullptr;
  if (arg == flag || (!alias.empty() && arg == alias)) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s requires a count\n", argv[0], argv[*i]);
      std::exit(2);
    }
    text = argv[++*i];
  } else if (arg.substr(0, flag.size()) == flag &&
             arg.size() > flag.size() && arg[flag.size()] == '=') {
    text = argv[*i] + flag.size() + 1;
  } else {
    return false;
  }
  const long parsed = std::strtol(text, nullptr, 10);
  if (parsed < 1) {
    std::fprintf(stderr, "%s: %.*s must be >= 1\n", argv[0],
                 static_cast<int>(flag.size()), flag.data());
    std::exit(2);
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

/// Parses one `--exec MODE` / `--exec=MODE` flag.
inline bool parse_exec_flag(int argc, char** argv, int* i, ExecMode* out) {
  const std::string_view arg = argv[*i];
  const char* text = nullptr;
  if (arg == "--exec") {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s: --exec requires a mode\n", argv[0]);
      std::exit(2);
    }
    text = argv[++*i];
  } else if (arg.rfind("--exec=", 0) == 0) {
    text = argv[*i] + 7;
  } else {
    return false;
  }
  const std::string_view mode = text;
  if (mode == "auto") {
    *out = ExecMode::kAuto;
  } else if (mode == "barrier") {
    *out = ExecMode::kBarrier;
  } else if (mode == "event") {
    *out = ExecMode::kEvent;
  } else {
    std::fprintf(stderr, "%s: --exec must be auto|barrier|event\n", argv[0]);
    std::exit(2);
  }
  return true;
}

/// Parses bench flags; exits on malformed or unknown arguments.
inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (parse_count_flag(argc, argv, &i, "--jobs", "-j", &options.jobs) ||
        parse_count_flag(argc, argv, &i, "--node-jobs", "",
                         &options.node_jobs) ||
        parse_exec_flag(argc, argv, &i, &options.exec_mode)) {
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--jobs N] [--node-jobs N] [--exec MODE]\n"
          "  --jobs N       parallel sweep workers (default: executor "
          "width;\n"
          "                 results identical for any N)\n"
          "  --node-jobs N  per-run node workers; composes with --jobs\n"
          "                 (results identical for any N)\n"
          "  --exec MODE    auto|barrier|event engine for multi-worker runs\n"
          "                 (identical output; wall clock differs)\n",
          argv[0]);
      std::exit(0);
    }
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0],
                 argv[i]);
    std::exit(2);
  }
  return options;
}

/// The wall-clock speedup line every driver prints after its tables.
inline void report_sweep(const SweepRunner& runner) {
  const SweepStats stats = runner.stats();
  if (stats.runs == 0) return;
  std::cout << "\n[sweep] " << stats.runs << " runs on " << stats.threads
            << (stats.threads == 1 ? " thread: " : " threads: ")
            << format_double(stats.wall_ms / 1000.0, 2) << "s wall, "
            << format_double(stats.aggregate_ms / 1000.0, 2)
            << "s aggregate — " << format_double(stats.speedup(), 1)
            << "x speedup; queue "
            << format_double(stats.mean_queue_ms(), 1)
            << "ms mean, run σ "
            << format_double(stats.run_stddev_ms(), 1) << "ms";
  if (runner.node_jobs() > 1) {
    std::cout << "; node-jobs " << runner.node_jobs();
  }
  // Closure-aware node-group accounting: how the intra-run fan-out actually
  // decomposed the plans (deterministic — a property of the plans, not of
  // thread timing).
  const NodeParallelStats& np = stats.node_parallel;
  if (np.engaged && np.probe_regions > 0) {
    std::cout << "; groups " << np.min_groups << ".."
              << np.max_groups << "/" << np.num_nodes << " (mean "
              << format_double(np.mean_groups(), 1) << ", largest "
              << np.largest_group << "), parallel probes "
              << format_percent(np.parallel_probe_share(), 0);
  }
  // Event-engine graph shape: structural overlap (instructions per
  // critical-path step) and the deepest per-node instruction queue.
  if (np.instructions > 0) {
    std::cout << "; event " << np.instructions << " instrs, overlap "
              << format_double(np.overlap(), 1) << "x, queue depth "
              << np.max_queue_depth;
  }
  // Engine work-stealing activity (timing-dependent — reported, never
  // asserted): steals across the per-worker shards and the deepest any
  // shard ran.
  if (np.steals > 0 || np.failed_steals > 0 || np.max_shard_depth > 0) {
    std::cout << "; engine steals " << np.steals << " (+"
              << np.failed_steals << " misses), shard depth "
              << np.max_shard_depth;
  }
  // Executor-level dispatch: sweep tasks executed on the persistent pool,
  // cross-deque steals among them, and the deepest worker deque.
  if (stats.exec_tasks > 0) {
    std::cout << "; pool " << stats.exec_tasks << " tasks, steals "
              << stats.exec_steals << ", deque depth "
              << stats.exec_max_deque_depth;
  }
  // Heap-allocation accounting from the pooled run contexts: total allocs
  // across the sweep, and the mean per steady-state point (a point that
  // fully reused its context — the zero-allocation regime the CI gate
  // asserts). Absent under sanitizers, where the counting allocator is
  // compiled out.
  if (stats.alloc_stats_available) {
    std::cout << "; allocs " << stats.heap_allocs << " ("
              << stats.steady_runs << "/" << stats.runs
              << " steady @ " << format_double(stats.mean_steady_allocs(), 1)
              << "/run, dispatch "
              << format_double(stats.mean_dispatch_allocs(), 1) << "/run)";
  }
  std::cout << "\n";
}

/// Speedup line for planning-only drivers (table1/table3), which time their
/// DAG planning fan-out directly instead of going through a SweepRunner.
inline void report_wall(std::size_t tasks, std::size_t threads,
                        std::chrono::steady_clock::time_point wall_start) {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  std::cout << "\n[sweep] " << tasks << " plans on " << threads
            << (threads == 1 ? " thread: " : " threads: ")
            << format_double(wall_ms / 1000.0, 2) << "s wall\n";
}

}  // namespace bench
}  // namespace mrd
