// Shared plumbing for the table/figure bench binaries: workload planning,
// best-of-cache-size comparisons, and output to stdout (paper-style ASCII
// tables) plus CSV files under bench_out/ for re-plotting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/table.h"

namespace mrd {
namespace bench {

/// Benches run the workloads at the repo's default sizes (1/8 of the
/// paper's inputs — see DESIGN.md); pass a smaller scale for quick checks.
inline WorkloadParams bench_params(double scale = 1.0) {
  WorkloadParams params;
  params.scale = scale;
  return params;
}

inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline PolicyConfig policy(const std::string& name) {
  PolicyConfig config;
  config.name = name;
  return config;
}

/// Percentage of LRU's JCT (the paper's normalized JCT axis).
inline std::string norm_jct(double candidate_ms, double baseline_ms) {
  return format_percent(baseline_ms == 0 ? 1.0 : candidate_ms / baseline_ms,
                        0);
}

}  // namespace bench
}  // namespace mrd
