// Metrics collected over one simulated application run. The benches derive
// every paper series from these: normalized JCT (Figs 4–10), cache hit ratio
// (Figs 4, 7–10), and the §4.4 overhead counters.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mrd {

struct StageTiming {
  std::uint32_t stage = 0;
  std::uint32_t job = 0;
  double duration_ms = 0.0;
  double compute_ms = 0.0;  // max over nodes
  double io_ms = 0.0;       // max over nodes (demand I/O)
};

struct RunMetrics {
  std::string workload;
  std::string policy;

  /// Job completion time for the whole application (all jobs), ms.
  double jct_ms = 0.0;

  // Cache probe outcomes (block granularity, recompute-triggered probes
  // included — they are real BlockManager accesses).
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses_from_disk = 0;   // satisfied by the node's disk copy
  std::uint64_t misses_recompute = 0;   // lineage recomputation

  // Store activity.
  std::uint64_t blocks_cached = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spills = 0;          // evictions that wrote a new disk copy
  std::uint64_t purged_blocks = 0;   // MRD all-out purge victims
  std::uint64_t uncacheable_blocks = 0;  // larger than a node's whole cache

  // Prefetching.
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetches_completed = 0;
  std::uint64_t prefetches_useful = 0;  // completed and later hit
  std::uint64_t prefetches_wasted = 0;  // completed but evicted unused

  // Data movement.
  std::uint64_t disk_bytes_read = 0;
  std::uint64_t disk_bytes_written = 0;
  std::uint64_t network_bytes = 0;
  double recompute_cpu_ms = 0.0;

  std::vector<StageTiming> stage_timings;

  /// Per-RDD (probes, hits) across the cluster — which data each policy
  /// actually served from memory. Sorted by RDD id; only RDDs that were
  /// actually probed appear.
  std::vector<std::pair<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>>>
      per_rdd_probes;

  // MRD bookkeeping (zero for non-MRD policies) — §4.4 overhead claims.
  std::size_t mrd_table_peak_entries = 0;
  std::size_t mrd_update_messages = 0;

  double hit_ratio() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(probes);
  }

  std::uint64_t misses() const { return probes - hits; }
};

}  // namespace mrd
