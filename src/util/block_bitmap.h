// Dense per-RDD block-presence bitmaps.
//
// BlockId keys are two small dense integers, so membership sets over them
// (e.g. "which blocks have a disk copy") fit naturally in one bitmap per
// RDD: contains/insert are two array indexings and a bit test — no hashing,
// no probe walk, and the per-RDD words stay hot in cache under the
// sequential partition orders the simulator produces. A hash set pays a
// guaranteed cache miss per operation once it outgrows L2, which the
// monotonically growing spill set does on the large workloads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dag/ids.h"

namespace mrd {

class BlockBitmap {
 public:
  bool contains(const BlockId& block) const {
    if (block.rdd >= bits_.size()) return false;
    const std::vector<std::uint64_t>& words = bits_[block.rdd];
    const std::size_t w = block.partition >> 6;
    return w < words.size() && (words[w] >> (block.partition & 63)) & 1;
  }

  /// Sets the block's bit; returns true if it was newly set.
  bool insert(const BlockId& block) {
    if (block.rdd >= bits_.size()) {
      bits_.resize(block.rdd + 1);
      counts_.resize(block.rdd + 1, 0);
    }
    std::vector<std::uint64_t>& words = bits_[block.rdd];
    const std::size_t w = block.partition >> 6;
    if (w >= words.size()) words.resize(w + 1, 0);
    const std::uint64_t mask = std::uint64_t{1} << (block.partition & 63);
    if ((words[w] & mask) != 0) return false;
    words[w] |= mask;
    ++counts_[block.rdd];
    return true;
  }

  /// Set bits of `rdd` — the O(1) whole-RDD pre-filter.
  std::uint32_t rdd_count(RddId rdd) const {
    return rdd < counts_.size() ? counts_[rdd] : 0;
  }

  /// Clears every bit while retaining the per-RDD word arrays — a pooled
  /// bitmap refilled by a same-shape run performs no allocations.
  void clear() {
    for (std::size_t rdd = 0; rdd < bits_.size(); ++rdd) {
      if (counts_[rdd] == 0) continue;
      std::fill(bits_[rdd].begin(), bits_[rdd].end(), 0);
      counts_[rdd] = 0;
    }
  }

 private:
  /// Presence words, indexed [rdd][partition / 64]; grown on demand.
  std::vector<std::vector<std::uint64_t>> bits_;
  /// Set bits per RDD (index == RddId).
  std::vector<std::uint32_t> counts_;
};

}  // namespace mrd
