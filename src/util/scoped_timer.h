// Lightweight phase timing for the simulator hot path.
//
// The runner accounts wall time per simulation subsystem (probe resolution,
// prefetch issue/serve, purge, broadcasts) so the perf microbench can report
// a per-subsystem breakdown alongside the run-level wall clock. Timers are
// opt-in: a null PhaseTimers pointer costs one branch per phase, so ordinary
// runs (benches, sweeps) pay nothing.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string_view>

namespace mrd {

/// The per-stage subsystems the runner distinguishes.
enum class SimPhase : std::size_t {
  kProbes = 0,        // demand-path block resolution (hits, disk, lineage)
  kCacheWrites,       // caching newly materialized persisted blocks
  kPrefetchIssue,     // collecting candidates + queueing prefetch orders
  kPrefetchServe,     // serving the queues with stage idle disk time
  kPurge,             // stage-end proactive purge
  kBroadcast,         // DAG event fan-out to every node's policy
  kPartition,         // closure-aware node-group analysis (once per run)
  kCount,
};

inline constexpr std::size_t kNumSimPhases =
    static_cast<std::size_t>(SimPhase::kCount);

inline constexpr std::array<std::string_view, kNumSimPhases> kSimPhaseNames = {
    "probes",         "cache_writes", "prefetch_issue",
    "prefetch_serve", "purge",        "broadcast",
    "partition",
};

/// Accumulated wall milliseconds per phase over one (or more) runs.
struct PhaseTimers {
  std::array<double, kNumSimPhases> ms{};

  double& operator[](SimPhase phase) {
    return ms[static_cast<std::size_t>(phase)];
  }
  double operator[](SimPhase phase) const {
    return ms[static_cast<std::size_t>(phase)];
  }
  double total() const {
    double sum = 0.0;
    for (double v : ms) sum += v;
    return sum;
  }
};

/// Adds the elapsed wall time of its scope to one phase accumulator.
/// A null `timers` disables the clock reads entirely.
class ScopedTimer {
 public:
  ScopedTimer(PhaseTimers* timers, SimPhase phase) : timers_(timers) {
    if (timers_ != nullptr) {
      sink_ = &(*timers_)[phase];
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (timers_ != nullptr) {
      *sink_ += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseTimers* timers_;
  double* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mrd
