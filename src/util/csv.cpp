#include "util/csv.h"

#include "util/check.h"

namespace mrd {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  MRD_CHECK_MSG(out_.is_open(), "cannot open CSV file " << path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace mrd
