// Minimal leveled logger. The simulator is single-threaded per run, but
// experiment sweeps may run several simulations on worker threads, so the sink
// is protected by a mutex and messages are emitted as whole lines.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace mrd {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log configuration. Defaults to kWarn so tests and benches stay quiet;
/// examples raise it to kInfo.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Writes one formatted line to stderr. Thread-safe.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  /// Atomic: sweep worker threads consult the level while the main thread
  /// may reconfigure it.
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mu_;
};

const char* log_level_name(LogLevel level);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mrd

#define MRD_LOG(level)                                   \
  if (!::mrd::Logger::instance().enabled(level)) {       \
  } else                                                 \
    ::mrd::detail::LogLine(level)

#define MRD_LOG_TRACE MRD_LOG(::mrd::LogLevel::kTrace)
#define MRD_LOG_DEBUG MRD_LOG(::mrd::LogLevel::kDebug)
#define MRD_LOG_INFO MRD_LOG(::mrd::LogLevel::kInfo)
#define MRD_LOG_WARN MRD_LOG(::mrd::LogLevel::kWarn)
#define MRD_LOG_ERROR MRD_LOG(::mrd::LogLevel::kError)
