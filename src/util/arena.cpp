#include "util/arena.h"

#include <algorithm>

#include "util/alloc_stats.h"
#include "util/check.h"

namespace mrd {

namespace {

inline std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t slab_bytes)
    : slab_bytes_(std::max<std::size_t>(slab_bytes, 64)) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  MRD_DCHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  std::size_t aligned = slabs_.empty() ? 0 : align_up(offset_, align);
  if (slabs_.empty() || aligned + bytes > slabs_[current_].size) {
    switch_slab(bytes + align);
    aligned = align_up(offset_, align);
  }
  Slab& slab = slabs_[current_];
  std::byte* p = slab.data.get() + aligned;
  offset_ = aligned + bytes;
  allocated_ += bytes;
  alloc_stats::note_arena_bytes(bytes);
  MRD_DCHECK((reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0 ||
             align > alignof(std::max_align_t));
  return p;
}

void Arena::switch_slab(std::size_t bytes) {
  // Walk forward through retained slabs for one with room; slabs are
  // fresh-rewound (offset 0) past `current_`, so the first fit wins.
  std::size_t next = slabs_.empty() ? 0 : current_ + 1;
  while (next < slabs_.size() && slabs_[next].size < bytes) ++next;
  if (next == slabs_.size()) {
    const std::size_t size = std::max(slab_bytes_, bytes);
    slabs_.push_back(Slab{std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
  }
  current_ = next;
  offset_ = 0;
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  allocated_ = 0;
}

void Arena::release() {
  slabs_.clear();
  current_ = 0;
  offset_ = 0;
  allocated_ = 0;
  reserved_ = 0;
}

}  // namespace mrd
