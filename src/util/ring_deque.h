// Power-of-two ring buffer with deque semantics and stable *logical*
// positions.
//
// std::deque allocates and frees its chunk nodes as elements flow through,
// so a long-lived FIFO (the per-node prefetch queue) keeps the allocator on
// the steady-state profile even when its length is bounded. RingDeque holds
// one contiguous power-of-two buffer that only ever grows; push/pop at both
// ends are index arithmetic, and `clear()` keeps the capacity.
//
// Elements are addressed by a monotonically increasing logical position
// (returned by push_back), valid until the element is popped — surviving
// growth *and* pushes/pops at either end, unlike raw pointers into a
// std::deque. Not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace mrd {

template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }

  /// Logical positions of the current front/back element.
  std::uint64_t front_pos() const {
    MRD_DCHECK(size_ > 0);
    return head_;
  }
  std::uint64_t back_pos() const {
    MRD_DCHECK(size_ > 0);
    return head_ + size_ - 1;
  }

  T& front() { return at(head_); }
  const T& front() const { return at(head_); }
  T& back() { return at(head_ + size_ - 1); }
  const T& back() const { return at(head_ + size_ - 1); }

  /// The element at logical position `pos` (must be live: in
  /// [front_pos(), back_pos()]).
  T& at(std::uint64_t pos) {
    MRD_DCHECK(size_ > 0 && pos >= head_ && pos < head_ + size_);
    return buffer_[pos & mask_];
  }
  const T& at(std::uint64_t pos) const {
    MRD_DCHECK(size_ > 0 && pos >= head_ && pos < head_ + size_);
    return buffer_[pos & mask_];
  }

  /// Appends and returns the element's logical position.
  std::uint64_t push_back(T value) {
    if (size_ == buffer_.size()) grow();
    const std::uint64_t pos = head_ + size_;
    buffer_[pos & mask_] = std::move(value);
    ++size_;
    return pos;
  }

  void pop_front() {
    MRD_DCHECK(size_ > 0);
    ++head_;
    --size_;
  }

  void pop_back() {
    MRD_DCHECK(size_ > 0);
    --size_;
  }

  /// Empties the deque, retaining the buffer. Logical positions stay
  /// monotonic across clears (the next push continues from the current
  /// head), so stale positions can never alias new elements.
  void clear() {
    head_ += size_;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buffer_.empty() ? 16 : buffer_.size() * 2;
    std::vector<T> next(new_cap);
    const std::uint64_t new_mask = new_cap - 1;
    for (std::size_t i = 0; i < size_; ++i) {
      const std::uint64_t pos = head_ + i;
      next[pos & new_mask] = std::move(buffer_[pos & mask_]);
    }
    buffer_ = std::move(next);
    mask_ = new_mask;
  }

  std::vector<T> buffer_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mrd
