#include "util/alloc_stats.h"

#include <cstdlib>
#include <new>

namespace mrd::alloc_stats {

namespace {

// Plain PODs with static (zero) initialization: safe to touch from the very
// first allocation of the process, before any dynamic initializer ran.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_bytes = 0;
thread_local std::uint64_t t_arena_bytes = 0;

}  // namespace

bool available() { return MRD_ALLOC_STATS_ENABLED != 0; }

std::uint64_t thread_allocs() { return t_allocs; }
std::uint64_t thread_frees() { return t_frees; }
std::uint64_t thread_alloc_bytes() { return t_bytes; }

void note_arena_bytes(std::uint64_t bytes) { t_arena_bytes += bytes; }
std::uint64_t thread_arena_bytes() { return t_arena_bytes; }

}  // namespace mrd::alloc_stats

#if MRD_ALLOC_STATS_ENABLED

namespace {

inline void note_alloc(std::size_t size) {
  ++mrd::alloc_stats::t_allocs;
  mrd::alloc_stats::t_bytes += size;
}

inline void note_free(void* p) {
  if (p != nullptr) ++mrd::alloc_stats::t_frees;
}

void* counted_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  while (p == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    p = std::malloc(size);
  }
  note_alloc(size);
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  while (p == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    p = std::aligned_alloc(align, padded == 0 ? align : padded);
  }
  note_alloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete[](void* p) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  note_free(p);
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  note_free(p);
  std::free(p);
}

#endif  // MRD_ALLOC_STATS_ENABLED
