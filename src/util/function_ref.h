// A non-owning, allocation-free callable reference — the hot-path
// replacement for `std::function` in the policy sink interfaces
// (PrefetchSink, EvictionSink, PrefetchBudget::rdd_on_disk).
//
// `std::function` type-erases by *owning* a copy of the callable, which
// heap-allocates whenever the callable outgrows the small-object buffer —
// and the sinks' capture lists ([&] over half a stage loop's locals) always
// do. The sinks never outlive the call they are passed to, so ownership
// buys nothing: a {object pointer, trampoline pointer} pair erases the same
// calls with zero allocations. This is what turned the prefetch-issue phase
// from the last steady-state allocation source (~2 allocs per node per
// stage) into an allocation-free one.
//
// The referenced callable must outlive the FunctionRef. Binding a lambda
// directly in a call expression is safe (the temporary lives to the end of
// the full expression); *storing* a FunctionRef — as PrefetchBudget does —
// requires the callable to be a named object that outlives the budget.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace mrd {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit, mirrors std::function
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }
  friend bool operator==(const FunctionRef& f, std::nullptr_t) {
    return f.call_ == nullptr;
  }
  friend bool operator!=(const FunctionRef& f, std::nullptr_t) {
    return f.call_ != nullptr;
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace mrd
