#include "util/logging.h"

#include <iostream>

namespace mrd {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace mrd
