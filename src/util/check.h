// Lightweight invariant checking for the simulator.
//
// MRD_CHECK is always on (simulation correctness depends on it and the cost is
// negligible next to event processing); MRD_DCHECK compiles out in NDEBUG
// builds and is meant for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mrd {

/// Thrown when an internal invariant is violated. Tests assert on this type.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace mrd

#define MRD_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::mrd::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MRD_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream mrd_check_os_;                               \
      mrd_check_os_ << msg;                                           \
      ::mrd::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                  mrd_check_os_.str());               \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define MRD_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define MRD_DCHECK(expr) MRD_CHECK(expr)
#endif
