#include "util/table.h"

#include <algorithm>
#include <ostream>

#include "util/check.h"
#include "util/format.h"

namespace mrd {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MRD_CHECK(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> row) {
  MRD_CHECK_MSG(row.size() == header_.size(),
                "row has " << row.size() << " cells, header has "
                           << header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = (c == 0) ? pad_right(cells[c], widths[c])
                                          : pad_left(cells[c], widths[c]);
      os << ' ' << padded << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

}  // namespace mrd
