// ASCII table printer — the bench binaries print paper-style tables with it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrd {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Adds a horizontal separator row (rendered as dashes).
  void add_separator();

  /// Renders with column alignment: first column left-aligned, the rest
  /// right-aligned (numeric convention).
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace mrd
