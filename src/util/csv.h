// CSV writer used by the bench harness so figure data can be re-plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mrd {

/// Streams rows to a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws CheckFailure if the file can't be opened.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Flushes and closes. Safe to call more than once.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  static std::string escape(const std::string& field);
  std::ofstream out_;
};

}  // namespace mrd
