#include "util/math.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mrd {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double max_value(const std::vector<double>& xs) {
  MRD_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(const std::vector<double>& xs) {
  MRD_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  MRD_CHECK(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  if (xs.size() < 2) return fit;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;  // all x identical: no defined slope

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace mrd
