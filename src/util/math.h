// Statistics helpers: summary stats for Table 1 and ordinary least squares for
// the Fig 11/12 trendlines (the paper reports R² values there).
#pragma once

#include <cstddef>
#include <vector>

namespace mrd {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);
double min_value(const std::vector<double>& xs);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// Ordinary least squares y = slope*x + intercept. Requires xs.size() ==
/// ys.size() and at least two distinct x values; otherwise returns a fit with
/// n == xs.size() and zero slope/R².
LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys);

}  // namespace mrd
