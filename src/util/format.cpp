#include "util/format.h"

#include <array>
#include <cstdio>

namespace mrd {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 6> kUnits = {"B",  "KB", "MB",
                                                        "GB", "TB", "PB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace mrd
