// Fixed-size work-queue thread pool for the experiment harness.
//
// Simulation runs are independent and deterministic, so the sweep fans them
// out across workers and reassembles results in input order; the pool itself
// is a plain FIFO queue + condition variable, nothing fancier. A pool of
// size 0 or 1 degenerates to inline execution on the submitting thread,
// which keeps the serial path free of threading machinery (and of TSan
// noise) while sharing one code path with the parallel one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrd {

class ThreadPool {
 public:
  /// Starts `threads` workers. 0 and 1 both mean "no workers": submit()
  /// runs the task inline before returning.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (every submitted task still runs) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 = inline mode).
  std::size_t size() const { return workers_.size(); }

  /// Submits a callable; the future resolves with its result (or its
  /// exception). FIFO dispatch: tasks start in submission order.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Sensible default worker count for CPU-bound sweeps.
  static std::size_t default_threads();

 private:
  void post(std::function<void()> task);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrd
