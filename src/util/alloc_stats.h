// Thread-local heap-allocation accounting.
//
// The zero-allocation steady state (pooled RunContexts, arena-backed
// program storage, capacity-preserving clears) is only enforceable if the
// harness can *count* allocations. alloc_stats.cpp replaces the global
// operator new/delete with thin wrappers that bump thread-local counters
// and forward to malloc/free — one relaxed thread-local increment per
// allocation, no locks, no behaviour change. Benches snapshot the counters
// around a sweep point (`ThreadScope`) and the CI gate asserts that reused
// contexts stay near zero.
//
// Under ASan/TSan the replacement operators are compiled out entirely (the
// sanitizer runtimes interpose their own), so `available()` reports false
// and every counter reads zero — callers must gate their assertions on it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mrd::alloc_stats {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MRD_ALLOC_STATS_ENABLED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MRD_ALLOC_STATS_ENABLED 0
#else
#define MRD_ALLOC_STATS_ENABLED 1
#endif
#else
#define MRD_ALLOC_STATS_ENABLED 1
#endif

/// True when the counting operator new/delete replacements are linked in
/// (false under sanitizers, where the counters stay zero).
bool available();

/// Heap allocations / freed blocks / allocated bytes on *this thread* since
/// it started. Monotonic.
std::uint64_t thread_allocs();
std::uint64_t thread_frees();
std::uint64_t thread_alloc_bytes();

/// Bytes handed out by Arena slabs on this thread (the slab mallocs are
/// already in thread_allocs; this tracks arena *bump* traffic so benches can
/// report how much allocation the arena absorbed).
void note_arena_bytes(std::uint64_t bytes);
std::uint64_t thread_arena_bytes();

/// Delta counter: captures the thread counters at construction; the
/// accessors report growth since then.
class ThreadScope {
 public:
  ThreadScope()
      : allocs0_(thread_allocs()),
        frees0_(thread_frees()),
        bytes0_(thread_alloc_bytes()) {}

  std::uint64_t allocs() const { return thread_allocs() - allocs0_; }
  std::uint64_t frees() const { return thread_frees() - frees0_; }
  std::uint64_t bytes() const { return thread_alloc_bytes() - bytes0_; }

 private:
  std::uint64_t allocs0_;
  std::uint64_t frees0_;
  std::uint64_t bytes0_;
};

}  // namespace mrd::alloc_stats
