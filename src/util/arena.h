// Bump-pointer arena with slab reuse.
//
// RunContext-scoped storage for program structures that live exactly as
// long as one compiled run setup (probe permutations, group maps,
// dependency snapshots): allocation is a pointer bump, and `reset()`
// rewinds in place while *retaining* every slab — rebuilding a context for
// a new workload reuses the previous workload's slabs instead of going back
// to the allocator. This is the same amortization trick as BlockList's
// intrusive node freelist, lifted from one container to whole-run scope.
//
// Trivially-destructible payloads only: reset() never runs destructors.
// Not thread-safe; each RunContext owns its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace mrd {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bytes, aligned to `align` — a power of two up to
  /// alignof(max_align_t), the alignment of the slab bases themselves.
  /// Larger values only round the offset, so they are honoured modulo the
  /// slab base alignment, not absolutely; no current payload needs more.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed array allocation. T must be trivially destructible (reset()
  /// never runs destructors). The returned elements are value-initialized.
  template <typename T>
  T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructors");
    if (count == 0) return nullptr;
    void* p = allocate(count * sizeof(T), alignof(T));
    return new (p) T[count]();
  }

  /// Rewinds to empty, retaining every slab for reuse.
  void reset();

  /// Drops every slab back to the allocator (tests / memory pressure).
  void release();

  std::size_t slab_count() const { return slabs_.size(); }
  /// Bytes handed out since the last reset().
  std::size_t bytes_allocated() const { return allocated_; }
  /// Total capacity currently held across slabs.
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Moves the bump cursor to a slab with >= bytes of room, appending a new
  /// slab only if no retained one fits.
  void switch_slab(std::size_t bytes);

  std::vector<Slab> slabs_;
  std::size_t slab_bytes_;
  std::size_t current_ = 0;  // slab index the cursor is in (slabs_ nonempty)
  std::size_t offset_ = 0;   // bump offset within slabs_[current_]
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace mrd
