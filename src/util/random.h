// Deterministic pseudo-random number generation for workload synthesis.
//
// Every simulation run owns one Rng seeded from its RunConfig, so identical
// configurations replay identical block-reference streams — a property the
// determinism tests rely on. xoshiro256** is used for its speed and quality;
// splitmix64 expands the single 64-bit seed into the full state.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.h"

namespace mrd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    MRD_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for our bounds (<< 2^32).
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MRD_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mrd
