// Small string-formatting helpers shared by the reporters and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mrd {

/// "1.5 GB", "934 MB", "268 KB" — matches the paper's table style.
std::string human_bytes(std::uint64_t bytes);

/// Fixed-precision double, e.g. format_double(5.345, 2) == "5.35".
std::string format_double(double value, int precision);

/// Percent with one decimal: format_percent(0.534) == "53.4%".
std::string format_percent(double fraction, int precision = 1);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left/right padding to a fixed width (spaces).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace mrd
