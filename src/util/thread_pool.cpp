#include "util/thread_pool.h"

#include <algorithm>

namespace mrd {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // a packaged_task: exceptions land in the caller's future
  }
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

}  // namespace mrd
