// Open-addressing hash containers for the simulator hot path.
//
// The per-node cache layer keys everything by BlockId — two dense 32-bit
// integers — so a node-based std::unordered_map pays an allocation, a
// pointer chase and a bucket indirection per operation for keys that pack
// into a single word. FlatMap64 stores (key, value) slots contiguously with
// linear probing and backward-shift deletion (no tombstones), which keeps
// probe sequences short under churny insert/erase workloads like eviction.
//
// Keys are raw uint64_t; BlockId packs via pack_block_id(). The key
// 0xFFFF...FF is reserved as the empty sentinel (it corresponds to
// BlockId{kInvalidRdd, 0xFFFFFFFF}, which is never stored).
//
// Iteration order is hash order: deterministic for a given sequence of
// operations, but *not* sorted — callers that need ordered output must sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "dag/ids.h"
#include "util/check.h"

namespace mrd {

inline constexpr std::uint64_t pack_block_id(const BlockId& block) {
  return (static_cast<std::uint64_t>(block.rdd) << 32) | block.partition;
}

inline constexpr BlockId unpack_block_id(std::uint64_t key) {
  return BlockId{static_cast<RddId>(key >> 32),
                 static_cast<PartitionIndex>(key & 0xFFFFFFFFu)};
}

template <typename Value>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the map, *retaining* the slot array: a table that refills to a
  /// similar size after a clear (pooled per-run state) re-probes warm slots
  /// instead of re-growing from 16 — no allocator traffic in steady state.
  void clear() {
    if (size_ != 0) {
      for (Slot& slot : slots_) {
        if (slot.key != kEmptyKey) {
          slot.key = kEmptyKey;
          slot.value = Value{};
        }
      }
    }
    size_ = 0;
#ifndef NDEBUG
    ++mutations_;
#endif
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  const Value* find(std::uint64_t key) const {
    // The sentinel is never stored, but without this guard the probe loop
    // below would *match the first empty slot* and hand back a pointer to
    // an empty slot's value — a live reference into unoccupied storage.
    MRD_DCHECK(key != kEmptyKey);
    if (size_ == 0 || key == kEmptyKey) return nullptr;
    std::size_t i = index_of(key);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.key == key) {
#ifndef NDEBUG
        lookup_stamp_ = mutations_;
#endif
        return &slot.value;
      }
      if (slot.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Returns the value slot for `key`, default-constructing it if absent.
  Value& operator[](std::uint64_t key) { return *find_or_insert(key).first; }

  /// One-probe find-or-insert: the value slot for `key` plus whether it was
  /// just inserted (default-constructed). Merges the find + insert probe
  /// walks a lookup-then-insert pair would pay — the store's admission hot
  /// path runs exactly one probe sequence per block through this.
  std::pair<Value*, bool> find_or_insert(std::uint64_t key) {
    MRD_DCHECK(key != kEmptyKey);
    reserve_for_insert();
    std::size_t i = index_of(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) {
#ifndef NDEBUG
        lookup_stamp_ = mutations_;
#endif
        return {&slot.value, false};
      }
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.value = Value{};
        ++size_;
#ifndef NDEBUG
        lookup_stamp_ = mutations_;
#endif
        return {&slot.value, true};
      }
      i = (i + 1) & mask_;
    }
  }

  /// Inserts (key, value); returns false (leaving the map unchanged) if the
  /// key is already present.
  bool insert(std::uint64_t key, Value value) {
    MRD_DCHECK(key != kEmptyKey);
    reserve_for_insert();
    std::size_t i = index_of(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) return false;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes `key` via backward-shift deletion. Returns false if absent.
  bool erase(std::uint64_t key) {
    // Same spurious-match hazard as find(): erasing "the first empty slot"
    // would backward-shift over live entries and underflow size_.
    MRD_DCHECK(key != kEmptyKey);
    if (size_ == 0 || key == kEmptyKey) return false;
    std::size_t i = index_of(key);
    while (true) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
    erase_at(i);
    return true;
  }

  /// Removes the entry whose value slot a prior find() returned, skipping
  /// the second probe sequence a find-then-erase pair would pay. `found`
  /// must be a pointer returned by find()/operator[] on this map with no
  /// intervening mutation — any insert can rehash and any erase can
  /// backward-shift slots, leaving `found` pointing at a different (or
  /// empty) entry. Debug builds validate the pointer (in range, aligned,
  /// occupied) and cross-check the mutation counter against the stamp the
  /// lookup recorded, so misuse fails loudly instead of silently corrupting
  /// the table.
  void erase_found(Value* found) {
    const Slot* slot = reinterpret_cast<const Slot*>(
        reinterpret_cast<const char*>(found) - offsetof(Slot, value));
#ifndef NDEBUG
    MRD_CHECK(!slots_.empty());
    MRD_CHECK(slot >= slots_.data() && slot < slots_.data() + slots_.size());
    MRD_CHECK((reinterpret_cast<const char*>(slot) -
               reinterpret_cast<const char*>(slots_.data())) %
                  static_cast<std::ptrdiff_t>(sizeof(Slot)) ==
              0);
    MRD_CHECK(slot->key != kEmptyKey);
    // A rehash or backward-shift happened after the lookup that produced
    // `found`: the pointer is stale.
    MRD_CHECK(lookup_stamp_ == mutations_);
#endif
    erase_at(static_cast<std::size_t>(slot - slots_.data()));
  }

  /// Visits every (key, value) pair in hash order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    Value value{};
  };
  static_assert(std::is_standard_layout_v<Slot>,
                "erase_found recovers the Slot from its value member");

  /// Shifts the probe chain back over the hole at `i` so lookups never need
  /// tombstones.
  void erase_at(std::size_t i) {
#ifndef NDEBUG
    ++mutations_;
#endif
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmptyKey) break;
      const std::size_t ideal = index_of(slots_[j].key);
      // slots_[j] may move into the hole at i only if its ideal position is
      // no later (cyclically) than i along its probe chain.
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].key = kEmptyKey;
    slots_[i].value = Value{};
    --size_;
  }

  static std::size_t mix(std::uint64_t key) {
    // splitmix64 finalizer — full-avalanche over the packed (rdd, partition).
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ull;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBull;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  std::size_t index_of(std::uint64_t key) const { return mix(key) & mask_; }

  void reserve_for_insert() {
    if (slots_.empty()) {
      slots_.resize(16);
      mask_ = 15;
      return;
    }
    // Grow at 5/8 load: linear probing's expected probe length explodes
    // past ~3/4 (unsuccessful lookups average dozens of slots at 7/8),
    // and the churny erase/insert hot paths probe far more often than they
    // grow. The extra memory is a few KB per node-level table.
    if ((size_ + 1) * 8 > slots_.size() * 5) rehash(slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
#ifndef NDEBUG
    ++mutations_;
#endif
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    mask_ = new_capacity - 1;
    for (Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::size_t i = index_of(slot.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
#ifndef NDEBUG
  /// Structural-change counter (rehash / backward-shift / clear) and the
  /// counter value at the last successful lookup — the staleness
  /// cross-check behind erase_found's debug validation.
  std::uint64_t mutations_ = 0;
  mutable std::uint64_t lookup_stamp_ = 0;
#endif
};

/// Set of packed 64-bit keys on the same open-addressing layout.
class FlatSet64 {
 public:
  bool contains(std::uint64_t key) const { return map_.contains(key); }
  bool insert(std::uint64_t key) { return map_.insert(key, Empty{}); }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](std::uint64_t key, const Empty&) { fn(key); });
  }

 private:
  struct Empty {};
  FlatMap64<Empty> map_;
};

}  // namespace mrd
