// Arena-backed doubly-linked list of packed block ids.
//
// std::list pays one allocator round-trip per node. On the cache hot path
// every block's lifecycle threads two such lists (the store's
// insertion-order fallback plus a policy recency/FIFO order), so the
// allocator ends up at the top of the cache-write profile. BlockList keeps
// nodes in one contiguous vector with an intrusive free list: push, erase
// and relink are index surgery, the only allocation is the vector's
// amortized growth, and erased slots are recycled in place.
//
// Handles (Index) are stable for the lifetime of the element, like
// std::list iterators; kNil plays end(). Not thread-safe.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mrd {

class BlockList {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNil = 0xFFFFFFFFu;

  bool empty() const { return head_ == kNil; }
  Index front() const { return head_; }
  Index back() const { return tail_; }
  Index next(Index i) const { return nodes_[i].next; }
  Index prev(Index i) const { return nodes_[i].prev; }
  std::uint64_t key(Index i) const { return nodes_[i].key; }

  Index push_front(std::uint64_t key) {
    const Index i = acquire(key);
    nodes_[i].prev = kNil;
    nodes_[i].next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = i;
    } else {
      tail_ = i;
    }
    head_ = i;
    return i;
  }

  Index push_back(std::uint64_t key) {
    const Index i = acquire(key);
    nodes_[i].next = kNil;
    nodes_[i].prev = tail_;
    if (tail_ != kNil) {
      nodes_[tail_].next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
    return i;
  }

  void erase(Index i) {
    unlink(i);
    nodes_[i].next = free_;
    free_ = i;
  }

  /// Empties the list, retaining the node slab (the vector keeps its
  /// capacity, so a pooled list refills without touching the allocator).
  void clear() {
    nodes_.clear();
    head_ = tail_ = free_ = kNil;
  }

  /// Relinks an existing element at the front (most-recent position).
  void move_to_front(Index i) {
    if (head_ == i) return;
    unlink(i);
    nodes_[i].prev = kNil;
    nodes_[i].next = head_;
    nodes_[head_].prev = i;  // head_ != kNil: the list held >= 2 elements
    head_ = i;
  }

 private:
  struct Node {
    std::uint64_t key;
    Index prev;
    Index next;
  };

  Index acquire(std::uint64_t key) {
    Index i;
    if (free_ != kNil) {
      i = free_;
      free_ = nodes_[i].next;
      nodes_[i].key = key;
    } else {
      i = static_cast<Index>(nodes_.size());
      MRD_DCHECK(i != kNil);
      nodes_.push_back(Node{key, kNil, kNil});
    }
    return i;
  }

  void unlink(Index i) {
    Node& n = nodes_[i];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      tail_ = n.prev;
    }
  }

  std::vector<Node> nodes_;
  Index head_ = kNil;
  Index tail_ = kNil;
  Index free_ = kNil;
};

}  // namespace mrd
