#include "sim/node_accounting.h"

namespace mrd {

double stage_wall_ms(const std::vector<NodeAccounting>& nodes,
                     const ClusterConfig& config) {
  double wall = 0.0;
  for (const NodeAccounting& n : nodes) {
    wall = std::max(wall, n.wall_ms(config));
  }
  return wall + config.stage_overhead_ms;
}

double max_io_ms(const std::vector<NodeAccounting>& nodes,
                 const ClusterConfig& config) {
  double ms = 0.0;
  for (const NodeAccounting& n : nodes) ms = std::max(ms, n.io_ms(config));
  return ms;
}

double max_cpu_ms(const std::vector<NodeAccounting>& nodes,
                  const ClusterConfig& config) {
  double ms = 0.0;
  for (const NodeAccounting& n : nodes) {
    ms = std::max(ms, n.cpu_wall_ms(config));
  }
  return ms;
}

}  // namespace mrd
