// Per-node, per-stage resource accounting and the stage timing model.
//
// Tasks on a node pipeline their I/O against other tasks' computation, so a
// stage's wall time on a node is max(cpu_wall, demand_io) rather than their
// sum; the stage (a Spark barrier) ends when the slowest node finishes.
// Disk idle time inside the stage window (wall − demand_io) is what the
// prefetcher can steal — the paper's "overlapping the stalling time of I/O
// with computation".
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/cluster_config.h"

namespace mrd {

struct NodeAccounting {
  double cpu_task_ms = 0.0;        // total task CPU demand (not wall time)
  double max_task_ms = 0.0;        // longest single task (wall floor)
  std::uint64_t disk_read_bytes = 0;
  std::uint64_t disk_write_bytes = 0;
  std::uint64_t network_bytes = 0;

  void add_task(double ms) {
    cpu_task_ms += ms;
    max_task_ms = std::max(max_task_ms, ms);
  }

  double disk_ms(const ClusterConfig& config) const {
    return static_cast<double>(disk_read_bytes + disk_write_bytes) *
           config.disk_ms_per_byte();
  }

  double io_ms(const ClusterConfig& config) const {
    return disk_ms(config) +
           static_cast<double>(network_bytes) * config.network_ms_per_byte();
  }

  /// Wall-clock CPU time: tasks run on cpu_slots_per_node slots; a node can
  /// never finish faster than its longest task.
  double cpu_wall_ms(const ClusterConfig& config) const {
    const double parallel =
        cpu_task_ms / static_cast<double>(config.cpu_slots_per_node);
    return std::max(parallel, max_task_ms);
  }

  double wall_ms(const ClusterConfig& config) const {
    return std::max(cpu_wall_ms(config), io_ms(config));
  }
};

/// Stage wall time: barrier across all nodes plus fixed scheduling overhead.
double stage_wall_ms(const std::vector<NodeAccounting>& nodes,
                     const ClusterConfig& config);

/// Max demand-I/O and compute across nodes (for StageTiming reporting).
double max_io_ms(const std::vector<NodeAccounting>& nodes,
                 const ClusterConfig& config);
double max_cpu_ms(const std::vector<NodeAccounting>& nodes,
                  const ClusterConfig& config);

}  // namespace mrd
