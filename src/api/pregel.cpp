#include "api/pregel.h"

#include <string>

#include "util/check.h"

namespace mrd {

Dataset pregel(SparkContext& sc, Dataset vertices, Dataset edges,
               const PregelConfig& config) {
  MRD_CHECK(config.supersteps >= 1);

  Dataset current = vertices.cache();
  edges.cache();

  // Everything the loop creates uses uniform blocks; partition counts carry
  // the volume differences (vertex sets neither grow nor shrink across
  // supersteps, messages scale by message_size_factor).
  const RddInfo& vinfo = sc.builder().rdd(vertices.id());
  const std::uint64_t block = config.block_bytes;
  const std::uint64_t vertex_total = vinfo.total_bytes();
  const auto message_total = static_cast<std::uint64_t>(
      config.message_size_factor * static_cast<double>(vertex_total));
  const auto parts_for = [block](std::uint64_t total) {
    return static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, (total + block - 1) / block));
  };
  const std::uint32_t vertex_parts = parts_for(vertex_total);
  const std::uint32_t message_parts = parts_for(message_total);

  // Ring buffer of past vertex generations for the long-range joins.
  std::vector<Dataset> history;
  history.push_back(current);

  for (std::uint32_t step = 0; step < config.supersteps; ++step) {
    const std::string tag = "#" + std::to_string(step);

    // aggregateMessages: GraphX ships the (small) vertex attributes to the
    // edge partitions through a routing-table shuffle, zips them with the
    // co-partitioned edges, and reduces the messages with map-side combine.
    // Two shuffles of vertex/message scale per superstep; the edge set
    // itself never reshuffles.
    TransformOpts ship_opts;
    ship_opts.bytes_per_partition = block;
    ship_opts.partitions = vertex_parts;
    Dataset shipped = current.repartition(vertex_parts, "shipVertices" + tag);
    TransformOpts msg_opts;
    msg_opts.bytes_per_partition = block;
    msg_opts.partitions = message_parts;
    Dataset triplets = shipped.zip_partitions(edges, "triplets" + tag);
    Dataset messages = triplets.reduce_by_key("messages" + tag, msg_opts);
    if (config.cache_messages) messages.cache();

    // Vertex program: messages come back partitioned by the vertex
    // partitioner, so the join with the vertex set is local (GraphX's
    // leftZipJoin), not a shuffle.
    TransformOpts join_opts;
    join_opts.bytes_per_partition = block;
    join_opts.partitions = parts_for(vertex_total + message_total);
    TransformOpts vprog_opts;
    vprog_opts.cost_factor = config.vprog_cost_factor;
    vprog_opts.bytes_per_partition = block;
    vprog_opts.partitions = vertex_parts;
    Dataset joined =
        current.zip_partitions(messages, "vjoin" + tag, join_opts);
    Dataset next = joined.map_values("vprog" + tag, vprog_opts).cache();

    // Lineage-truncation join against an older generation.
    if (config.long_range_join_every > 0 &&
        (step + 1) % config.long_range_join_every == 0 &&
        history.size() > config.long_range_join_every) {
      const Dataset& old =
          history[history.size() - 1 - config.long_range_join_every];
      TransformOpts trunc_opts;
      trunc_opts.bytes_per_partition = block;
      trunc_opts.partitions = vertex_parts;
      next = next.zip_partitions(old, "truncate" + tag, trunc_opts).cache();
    }

    // Periodic re-reference of the original vertex set (label re-seeding).
    if (config.graph_ref_every > 0 &&
        (step + 1) % config.graph_ref_every == 0) {
      TransformOpts seed_opts;
      seed_opts.bytes_per_partition = block;
      seed_opts.partitions = vertex_parts;
      next = next.zip_partitions(vertices, "reseed" + tag, seed_opts).cache();
    }

    // Convergence check: one job per superstep.
    messages.count("activeMessages" + tag);

    current = next;
    history.push_back(current);
  }

  if (config.final_graph_join && config.supersteps > 1 &&
      history.size() > 1) {
    // Output job: compare the final labels against the *first* generation —
    // an RDD created at the start of the loop and untouched since. This is
    // the whole-application reference gap behind Table 1's huge "Maximum
    // Job/Stage Distance" values for LP and SCC.
    TransformOpts out_opts;
    out_opts.bytes_per_partition = block;
    out_opts.partitions = vertex_parts;
    current = current.zip_partitions(history[1], "compareToInitial", out_opts)
                  .cache();
  }
  current.count("finalVertices");
  return current;
}

}  // namespace mrd
