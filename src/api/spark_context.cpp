#include "api/spark_context.h"

namespace mrd {

SparkContext::SparkContext(std::string app_name)
    : builder_(std::move(app_name)) {}

Dataset SparkContext::text_file(std::string name, std::uint32_t partitions,
                                std::uint64_t bytes_per_partition) {
  const RddId id =
      builder_.source(std::move(name), partitions, bytes_per_partition);
  return Dataset(&builder_, id);
}

Dataset SparkContext::parallelize(std::string name, std::uint32_t partitions,
                                  std::uint64_t bytes_per_partition) {
  // Modelled as a source with negligible read cost (the builder charges
  // deserialization; partition bytes are typically tiny here).
  const RddId id =
      builder_.source(std::move(name), partitions, bytes_per_partition);
  return Dataset(&builder_, id);
}

void SparkContext::set_compute_ms_per_mb(double ms_per_mb) {
  builder_.set_compute_ms_per_mb(ms_per_mb);
}

Application SparkContext::build() && { return std::move(builder_).build(); }

std::shared_ptr<const Application> SparkContext::build_shared() && {
  return std::make_shared<const Application>(std::move(builder_).build());
}

}  // namespace mrd
