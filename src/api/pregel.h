// A GraphX-style Pregel operator on the Dataset API.
//
// Every SparkBench graph workload (PageRank, ConnectedComponents,
// StronglyConnectedComponents, LabelPropagation, ShortestPaths, SVD++,
// PregelOperation, TriangleCount's core) is built on GraphX's Pregel loop,
// whose per-superstep shape is what gives those workloads their large stage
// counts and long reference distances:
//
//   messages   = aggregateMessages(triplets)   // join(V, E) → reduceByKey
//   newVerts   = V.outerJoin(messages).mapValues(vprog).cache()
//   messages.count()                           // one job per superstep
//
// Old vertex/message generations keep being referenced a few supersteps
// back (lineage truncation joins), then go inactive — exactly the pattern
// MRD's purge-and-prefetch exploits.
#pragma once

#include <cstdint>

#include "api/dataset.h"
#include "api/spark_context.h"

namespace mrd {

struct PregelConfig {
  std::uint32_t supersteps = 10;
  /// Uniform block (partition) size for all datasets the loop creates.
  /// Spark partitions within an application are roughly uniform (HDFS block
  /// sized); per-RDD partition *counts* scale with data volume instead.
  std::uint64_t block_bytes = 1 << 20;
  /// Message volume relative to the vertex set (per superstep).
  double message_size_factor = 0.6;
  /// CPU intensity multiplier of the vertex program.
  double vprog_cost_factor = 1.0;
  /// Cache the per-superstep message datasets (GraphX does).
  bool cache_messages = true;
  /// Every k-th superstep re-references the vertices from k supersteps ago
  /// (GraphX's lineage-checkpoint join); 0 disables. This is what creates
  /// the *long* reference distances of SCC/LP.
  std::uint32_t long_range_join_every = 0;
  /// Every k-th superstep re-references the ORIGINAL vertex set (label
  /// re-seeding in LP, phase restarts in SCC); 0 disables. Produces the
  /// multi-job reference gaps of the paper's Table 1.
  std::uint32_t graph_ref_every = 0;
  /// Reference the original vertex set once more in the final output job.
  bool final_graph_join = true;
};

/// Runs the Pregel loop; returns the final vertex Dataset (cached).
/// `vertices` and `edges` should already be cached sources/derivations.
Dataset pregel(SparkContext& sc, Dataset vertices, Dataset edges,
               const PregelConfig& config);

}  // namespace mrd
