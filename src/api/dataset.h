// A Spark-like, lazily-evaluated dataset API over DagBuilder.
//
// User programs (examples/, workload generators) look like Spark driver
// code: transformations chain Datasets, cache() marks persistence, and
// actions (count/collect/save) register jobs. Nothing executes here — the
// SparkContext finalizes everything into an Application whose plan the
// simulator replays.
//
//   SparkContext sc("PageRank");
//   auto links = sc.text_file("links", 100, 8_MB).cache();
//   auto ranks = links.map_values("init");
//   for (int i = 0; i < 10; ++i) {
//     ranks = links.join(ranks, "contribs").reduce_by_key("ranks").cache();
//     ranks.count();
//   }
#pragma once

#include <cstdint>
#include <string>

#include "dag/dag_builder.h"
#include "dag/ids.h"

namespace mrd {

class SparkContext;

class Dataset {
 public:
  Dataset() = default;

  RddId id() const { return id_; }
  bool valid() const { return builder_ != nullptr; }

  /// Marks this dataset persisted (returns itself for chaining).
  Dataset cache() const;
  Dataset persist() const { return cache(); }
  void unpersist() const;

  // ---- Narrow transformations ----
  Dataset map(std::string name = {}, const TransformOpts& opts = {}) const;
  Dataset filter(std::string name = {}, const TransformOpts& opts = {}) const;
  Dataset flat_map(std::string name = {},
                   const TransformOpts& opts = {}) const;
  Dataset map_partitions(std::string name = {},
                         const TransformOpts& opts = {}) const;
  Dataset map_values(std::string name = {},
                     const TransformOpts& opts = {}) const;
  Dataset sample(double fraction, std::string name = {}) const;
  Dataset union_with(const Dataset& other, std::string name = {},
                     const TransformOpts& opts = {}) const;
  Dataset zip_partitions(const Dataset& other, std::string name = {},
                         const TransformOpts& opts = {}) const;

  // ---- Wide transformations ----
  Dataset reduce_by_key(std::string name = {},
                        const TransformOpts& opts = {}) const;
  Dataset group_by_key(std::string name = {},
                       const TransformOpts& opts = {}) const;
  Dataset aggregate_by_key(std::string name = {},
                           const TransformOpts& opts = {}) const;
  Dataset sort_by_key(std::string name = {},
                      const TransformOpts& opts = {}) const;
  Dataset distinct(std::string name = {}, const TransformOpts& opts = {}) const;
  Dataset repartition(std::uint32_t partitions, std::string name = {}) const;
  Dataset join(const Dataset& other, std::string name = {},
               const TransformOpts& opts = {}) const;
  Dataset cogroup(const Dataset& other, std::string name = {},
                  const TransformOpts& opts = {}) const;

  // ---- Actions (each submits one job) ----
  void count(std::string name = "count") const;
  void collect(std::string name = "collect") const;
  void save(std::string name = "saveAsTextFile") const;
  void foreach_action(std::string name = "foreach") const;

 private:
  friend class SparkContext;
  Dataset(DagBuilder* builder, RddId id) : builder_(builder), id_(id) {}

  Dataset derive(TransformKind kind, std::string name,
                 const TransformOpts& opts) const;
  Dataset derive2(TransformKind kind, const Dataset& other, std::string name,
                  const TransformOpts& opts) const;
  std::string auto_name(const char* op, std::string name) const;

  DagBuilder* builder_ = nullptr;
  RddId id_ = kInvalidRdd;
};

}  // namespace mrd
