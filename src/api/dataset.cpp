#include "api/dataset.h"

#include "util/check.h"

namespace mrd {

Dataset Dataset::cache() const {
  MRD_CHECK(valid());
  builder_->persist(id_);
  return *this;
}

void Dataset::unpersist() const {
  MRD_CHECK(valid());
  builder_->unpersist(id_);
}

Dataset Dataset::map(std::string name, const TransformOpts& opts) const {
  return derive(TransformKind::kMap, auto_name("map", std::move(name)), opts);
}
Dataset Dataset::filter(std::string name, const TransformOpts& opts) const {
  return derive(TransformKind::kFilter, auto_name("filter", std::move(name)),
                opts);
}
Dataset Dataset::flat_map(std::string name, const TransformOpts& opts) const {
  return derive(TransformKind::kFlatMap,
                auto_name("flatMap", std::move(name)), opts);
}
Dataset Dataset::map_partitions(std::string name,
                                const TransformOpts& opts) const {
  return derive(TransformKind::kMapPartitions,
                auto_name("mapPartitions", std::move(name)), opts);
}
Dataset Dataset::map_values(std::string name,
                            const TransformOpts& opts) const {
  return derive(TransformKind::kMapValues,
                auto_name("mapValues", std::move(name)), opts);
}
Dataset Dataset::sample(double fraction, std::string name) const {
  TransformOpts opts;
  opts.size_factor = fraction;
  return derive(TransformKind::kSample, auto_name("sample", std::move(name)),
                opts);
}
Dataset Dataset::union_with(const Dataset& other, std::string name,
                            const TransformOpts& opts) const {
  return derive2(TransformKind::kUnion, other,
                 auto_name("union", std::move(name)), opts);
}
Dataset Dataset::zip_partitions(const Dataset& other, std::string name,
                                const TransformOpts& opts) const {
  return derive2(TransformKind::kZipPartitions, other,
                 auto_name("zipPartitions", std::move(name)), opts);
}

Dataset Dataset::reduce_by_key(std::string name,
                               const TransformOpts& opts) const {
  return derive(TransformKind::kReduceByKey,
                auto_name("reduceByKey", std::move(name)), opts);
}
Dataset Dataset::group_by_key(std::string name,
                              const TransformOpts& opts) const {
  return derive(TransformKind::kGroupByKey,
                auto_name("groupByKey", std::move(name)), opts);
}
Dataset Dataset::aggregate_by_key(std::string name,
                                  const TransformOpts& opts) const {
  return derive(TransformKind::kAggregateByKey,
                auto_name("aggregateByKey", std::move(name)), opts);
}
Dataset Dataset::sort_by_key(std::string name,
                             const TransformOpts& opts) const {
  return derive(TransformKind::kSortByKey,
                auto_name("sortByKey", std::move(name)), opts);
}
Dataset Dataset::distinct(std::string name, const TransformOpts& opts) const {
  return derive(TransformKind::kDistinct,
                auto_name("distinct", std::move(name)), opts);
}
Dataset Dataset::repartition(std::uint32_t partitions,
                             std::string name) const {
  TransformOpts opts;
  opts.partitions = partitions;
  return derive(TransformKind::kRepartition,
                auto_name("repartition", std::move(name)), opts);
}
Dataset Dataset::join(const Dataset& other, std::string name,
                      const TransformOpts& opts) const {
  return derive2(TransformKind::kJoin, other,
                 auto_name("join", std::move(name)), opts);
}
Dataset Dataset::cogroup(const Dataset& other, std::string name,
                         const TransformOpts& opts) const {
  return derive2(TransformKind::kCogroup, other,
                 auto_name("cogroup", std::move(name)), opts);
}

void Dataset::count(std::string name) const {
  MRD_CHECK(valid());
  builder_->action(id_, std::move(name));
}
void Dataset::collect(std::string name) const {
  MRD_CHECK(valid());
  builder_->action(id_, std::move(name));
}
void Dataset::save(std::string name) const {
  MRD_CHECK(valid());
  builder_->action(id_, std::move(name));
}
void Dataset::foreach_action(std::string name) const {
  MRD_CHECK(valid());
  builder_->action(id_, std::move(name));
}

Dataset Dataset::derive(TransformKind kind, std::string name,
                        const TransformOpts& opts) const {
  MRD_CHECK(valid());
  const RddId child = builder_->apply(kind, std::move(name), {id_}, opts);
  return Dataset(builder_, child);
}

Dataset Dataset::derive2(TransformKind kind, const Dataset& other,
                         std::string name, const TransformOpts& opts) const {
  MRD_CHECK(valid());
  MRD_CHECK(other.valid());
  MRD_CHECK_MSG(builder_ == other.builder_,
                "datasets belong to different applications");
  const RddId child =
      builder_->apply(kind, std::move(name), {id_, other.id_}, opts);
  return Dataset(builder_, child);
}

std::string Dataset::auto_name(const char* op, std::string name) const {
  MRD_CHECK_MSG(valid(), "operation '" << op << "' on a default-constructed "
                                          "Dataset");
  if (!name.empty()) return name;
  return std::string(op) + "@" + std::to_string(builder_->num_rdds());
}

}  // namespace mrd
