// Driver-side entry point: creates source Datasets and finalizes the
// recorded program into an Application.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/dataset.h"
#include "dag/application.h"
#include "dag/dag_builder.h"

namespace mrd {

class SparkContext {
 public:
  explicit SparkContext(std::string app_name);

  /// HDFS-backed source.
  Dataset text_file(std::string name, std::uint32_t partitions,
                    std::uint64_t bytes_per_partition);

  /// In-memory collection source (tiny; driver-side data).
  Dataset parallelize(std::string name, std::uint32_t partitions,
                      std::uint64_t bytes_per_partition);

  /// Baseline CPU cost per MB of produced data (workload knob).
  void set_compute_ms_per_mb(double ms_per_mb);

  DagBuilder& builder() { return builder_; }

  /// Finalizes into a validated Application; the context may not be used
  /// afterwards.
  Application build() &&;
  std::shared_ptr<const Application> build_shared() &&;

 private:
  DagBuilder builder_;
};

}  // namespace mrd
