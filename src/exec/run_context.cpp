#include "exec/run_context.h"

#include <algorithm>

#include "core/mrd_manager.h"
#include "util/check.h"

namespace mrd {

RunContext::RunContext() = default;
RunContext::~RunContext() = default;

RunContext::Engine RunContext::engine_for(const RunConfig& config) {
  const bool event =
      config.exec_mode == ExecMode::kEvent ||
      (config.exec_mode == ExecMode::kAuto && config.node_jobs > 1 &&
       config.cluster.num_nodes > 1);
  return event ? Engine::kEvent : Engine::kBarrier;
}

namespace {

std::size_t effective_node_jobs(const RunConfig& config) {
  const std::size_t lo = std::max<std::size_t>(config.node_jobs, 1);
  return std::min<std::size_t>(lo, config.cluster.num_nodes);
}

}  // namespace

bool RunContext::matches(const ExecutionPlan& plan,
                         const RunConfig& config) const {
  // Field-by-field (no Key construction: building one copies the policy
  // name, and matches() runs on the steady path).
  return valid_ && key_.plan == &plan &&
         key_.plan_stages == plan.total_stages() &&
         key_.plan_jobs == plan.jobs().size() &&
         key_.plan_rdds == plan.app().num_rdds() &&
         key_.policy_name == config.policy.name &&
         key_.metric == config.policy.metric &&
         key_.prefetch_threshold == config.policy.prefetch_threshold &&
         key_.memtune_window == config.policy.memtune_window &&
         key_.profile_store == config.policy.profile_store &&
         key_.num_nodes == config.cluster.num_nodes &&
         key_.placement == config.cluster.placement &&
         key_.visibility == config.visibility &&
         key_.node_jobs == effective_node_jobs(config) &&
         key_.engine == engine_for(config);
}

void RunContext::prepare(const ExecutionPlan& plan, const RunConfig& config) {
  const Engine engine = engine_for(config);
  if (valid_ && matches(plan, config)) {
    if (engine == Engine::kBarrier) {
      // Shared policy state first (once — the per-node resets below replay
      // against it), then the cluster model, then the resolver's charges.
      if (setup_.manager != nullptr) setup_.manager->reset_for_reuse();
      master_->reset_for_reuse(config.cluster, setup_.factory);
      resolver_->reset_for_reuse();
      fully_reused_ = true;
    } else {
      // The event engine owns its cluster model and rewinds it inside
      // run(); the context only vouches for the key. Counts as fully
      // reused once the engine actually exists.
      fully_reused_ = event_engine_ != nullptr;
    }
    return;
  }

  teardown();
  key_.plan = &plan;
  key_.plan_stages = plan.total_stages();
  key_.plan_jobs = plan.jobs().size();
  key_.plan_rdds = plan.app().num_rdds();
  key_.policy_name = config.policy.name;
  key_.metric = config.policy.metric;
  key_.prefetch_threshold = config.policy.prefetch_threshold;
  key_.memtune_window = config.policy.memtune_window;
  key_.profile_store = config.policy.profile_store;
  key_.num_nodes = config.cluster.num_nodes;
  key_.placement = config.cluster.placement;
  key_.visibility = config.visibility;
  key_.node_jobs = effective_node_jobs(config);
  key_.engine = engine;
  valid_ = true;
  fully_reused_ = false;
  if (engine == Engine::kBarrier) {
    setup_ = make_policy(config.policy, config.cluster.num_nodes);
    master_ =
        std::make_unique<BlockManagerMaster>(config.cluster, setup_.factory);
    resolver_ = std::make_unique<LineageResolver>(plan, master_.get());
  }
  // Event engine: created lazily by node_scheduler.cpp via the slot.
}

ClosurePartitioner& RunContext::ensure_partitioner(const ExecutionPlan& plan) {
  MRD_CHECK(valid_ && key_.plan == &plan);
  if (partitioner_ == nullptr) {
    partitioner_ = std::make_unique<ClosurePartitioner>(plan, key_.num_nodes,
                                                        key_.placement);
  }
  return *partitioner_;
}

void RunContext::set_event_engine(std::shared_ptr<void> engine) {
  event_engine_ = std::move(engine);
}

void RunContext::teardown() {
  // The event engine holds arena-backed storage: every consumer is
  // destroyed before the arena rewinds (slabs are retained, so the next
  // key's structures recycle this key's memory).
  event_engine_.reset();
  resolver_.reset();
  master_.reset();
  partitioner_.reset();
  setup_ = PolicySetup{};
  arena_.reset();
  valid_ = false;
  fully_reused_ = false;
}

}  // namespace mrd
