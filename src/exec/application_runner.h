// The top of the simulation stack: replays an ExecutionPlan on the cluster,
// driving cache policies through the full event protocol and accounting
// stage wall-times — producing the RunMetrics every bench reports from.
//
// Per executed stage the runner:
//   1. broadcasts stage start;
//   2. resolves every cached-RDD probe (hit / disk read / lineage
//      recompute);
//   3. charges source reads, shuffle reads/writes and task computation;
//   4. caches the stage's persisted outputs (evictions may spill);
//   5. derives the stage wall time (barrier over nodes; compute overlaps
//      demand I/O);
//   6. lets each node's prefetch queue consume the disk idle time inside
//      the stage window;
//   7. broadcasts stage end, executes proactive purges, and collects fresh
//      prefetch orders (Algorithm 1's eviction and prefetching phases).
#pragma once

#include <cstddef>
#include <memory>

#include "cluster/cluster_config.h"
#include "core/policy_registry.h"
#include "dag/application.h"
#include "dag/execution_plan.h"
#include "exec/node_partition.h"
#include "metrics/run_metrics.h"
#include "util/scoped_timer.h"

namespace mrd {

/// Whether the policies see the whole application DAG up front (recurring
/// application with a stored profile) or job fragments as they submit
/// (ad-hoc / first run). Paper §4.1 / Fig 9.
enum class DagVisibility { kAdHoc, kRecurring };

/// How the runner drives the per-stage per-node work.
///   kAuto    — serial decision stream with node_jobs <= 1 (the differential
///              oracle); the event scheduler when node_jobs > 1 on a
///              multi-node cluster.
///   kBarrier — the bulk-synchronous fan-out (per-phase thread-pool
///              fan/join), kept as the comparison baseline the event
///              scheduler is benchmarked against.
///   kEvent   — the per-node instruction scheduler unconditionally, even
///              with a single worker (differential tests drive this).
/// Every mode produces byte-identical RunMetrics for a given plan/config.
enum class ExecMode { kAuto, kBarrier, kEvent };

class RunContext;

struct RunConfig {
  ClusterConfig cluster = main_cluster();
  PolicyConfig policy;
  DagVisibility visibility = DagVisibility::kRecurring;
  /// Per-node cap on outstanding prefetch orders.
  std::size_t max_prefetch_queue = 64;
  bool record_stage_timings = false;
  /// Workers fanning the per-stage per-node phases (probes, cache writes,
  /// prefetch issue/serve, purge) across the simulated nodes *within* this
  /// run. <=1 runs serially. Results are byte-identical for every value:
  /// each node's state only ever sees its own serial subsequence of events.
  /// Closure-free phases fan per node unconditionally; the probe phase fans
  /// per *node group* — connected components of the probed RDD's closure
  /// touches graph (ClosurePartitioner) — so cross-node recompute closures
  /// execute on the one worker owning their whole group.
  std::size_t node_jobs = 1;
  /// Execution engine selection (see ExecMode).
  ExecMode exec_mode = ExecMode::kAuto;
  /// Optional per-phase wall-clock accumulation (perf instrumentation);
  /// null = no clock reads on the simulation path.
  PhaseTimers* phase_timers = nullptr;
  /// Optional sink for group-parallelism accounting (how the closure-aware
  /// fan-out engaged); null = not collected. The counters are deterministic
  /// for a given (plan, cluster, node_jobs).
  NodeParallelStats* parallel_stats = nullptr;
  /// Optional pooled per-run state (exec/run_context.h): the runner resets
  /// and reuses its structures in place when the context's key matches this
  /// (plan, config), and rebuilds them into it otherwise. Null runs with a
  /// fresh context (identical results — pooling is purely an allocation
  /// optimization).
  RunContext* context = nullptr;
};

/// True when every demand probe's lineage-recompute closure stays on the
/// probed block's owner node — i.e. the whole-plan touches graph of
/// ClosurePartitioner has all-singleton components. Kept as the exact
/// (closure-enumerating) successor of the former per-edge sufficient check;
/// the runner itself no longer gates on it — plans that fail it still fan
/// out per node *group* instead of falling back to serial.
bool plan_supports_node_parallel(const ExecutionPlan& plan, NodeId num_nodes);

/// Plans and runs `app`. Deterministic for a given (app, config).
RunMetrics run_application(std::shared_ptr<const Application> app,
                           const RunConfig& config);

/// Runs an already-planned application (lets sweeps share one plan).
RunMetrics run_plan(const ExecutionPlan& plan, const RunConfig& config);

}  // namespace mrd
