// The top of the simulation stack: replays an ExecutionPlan on the cluster,
// driving cache policies through the full event protocol and accounting
// stage wall-times — producing the RunMetrics every bench reports from.
//
// Per executed stage the runner:
//   1. broadcasts stage start;
//   2. resolves every cached-RDD probe (hit / disk read / lineage
//      recompute);
//   3. charges source reads, shuffle reads/writes and task computation;
//   4. caches the stage's persisted outputs (evictions may spill);
//   5. derives the stage wall time (barrier over nodes; compute overlaps
//      demand I/O);
//   6. lets each node's prefetch queue consume the disk idle time inside
//      the stage window;
//   7. broadcasts stage end, executes proactive purges, and collects fresh
//      prefetch orders (Algorithm 1's eviction and prefetching phases).
#pragma once

#include <cstddef>
#include <memory>

#include "cluster/cluster_config.h"
#include "core/policy_registry.h"
#include "dag/application.h"
#include "dag/execution_plan.h"
#include "metrics/run_metrics.h"
#include "util/scoped_timer.h"

namespace mrd {

/// Whether the policies see the whole application DAG up front (recurring
/// application with a stored profile) or job fragments as they submit
/// (ad-hoc / first run). Paper §4.1 / Fig 9.
enum class DagVisibility { kAdHoc, kRecurring };

struct RunConfig {
  ClusterConfig cluster = main_cluster();
  PolicyConfig policy;
  DagVisibility visibility = DagVisibility::kRecurring;
  /// Per-node cap on outstanding prefetch orders.
  std::size_t max_prefetch_queue = 64;
  bool record_stage_timings = false;
  /// Workers fanning the per-stage per-node phases (probes, cache writes,
  /// prefetch issue/serve, purge) across the simulated nodes *within* this
  /// run. <=1 runs serially. Results are byte-identical for every value:
  /// each node's state only ever sees its own serial subsequence of events,
  /// and cross-node work falls back to the serial path (see
  /// plan_supports_node_parallel).
  std::size_t node_jobs = 1;
  /// Optional per-phase wall-clock accumulation (perf instrumentation);
  /// null = no clock reads on the simulation path.
  PhaseTimers* phase_timers = nullptr;
};

/// True when every demand probe's lineage-recompute closure stays on the
/// probed block's owner node, making per-node fan-out safe. A narrow
/// persisted→persisted edge that changes partition counts can re-map a
/// parent partition onto a different node (pj = j mod parent_partitions);
/// the sufficient per-edge condition checked here is that the parent either
/// keeps the child's indices (parent_partitions >= child_partitions) or
/// preserves owner residues (num_nodes divides parent_partitions). When this
/// returns false, run_plan ignores node_jobs and runs serially — same
/// output, no parallelism.
bool plan_supports_node_parallel(const ExecutionPlan& plan, NodeId num_nodes);

/// Plans and runs `app`. Deterministic for a given (app, config).
RunMetrics run_application(std::shared_ptr<const Application> app,
                           const RunConfig& config);

/// Runs an already-planned application (lets sweeps share one plan).
RunMetrics run_plan(const ExecutionPlan& plan, const RunConfig& config);

}  // namespace mrd
