#include "exec/node_scheduler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/block_manager_master.h"
#include "exec/executor.h"
#include "exec/lineage_resolver.h"
#include "exec/node_partition.h"
#include "exec/run_context.h"
#include "sim/node_accounting.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/random.h"
#include "util/ring_deque.h"
#include "util/scoped_timer.h"

namespace mrd {

namespace {

/// Accounting buffers cycle with period 3: stage s writes buffer s % 3, and
/// kClose(s) — which waits for the stage wall and every serve of s — resets
/// it for stage s + 3, whose acct-writing instructions depend on the close.
constexpr std::size_t kAcctBuffers = 3;

/// Instructions a worker claims from its shard per lock acquisition. Most
/// instructions are tiny (an activity-flag check, one node's accounting), so
/// per-instruction locking would swamp the work; 8 amortizes the lock to
/// noise while keeping shards shallow enough that thieves stay fed
/// (BM_StealLatency tracks the claim+steal round-trip this trades against —
/// the former ready_.size()/workers+1 heuristic claimed up to 16 and starved
/// peers right when the ready set was deepest).
constexpr std::size_t kClaimBatch = 8;

/// Test hook (set_event_forced_steal_for_test): claim one instruction at a
/// time and hand every newly-ready instruction to *other* shards, so every
/// execution is preceded by a steal — the most adversarial legal schedule.
std::atomic<bool> g_forced_steal{false};

struct Instr {
  enum class Op : std::uint8_t {
    kBcast,
    kIssue,
    kProbe,
    kAcct,
    kWall,
    kServe,
    kPurge,
    kClose,
  };
  Op op = Op::kIssue;
  std::uint32_t stage = 0;   // dense executed-stage index
  std::uint32_t node = 0;    // kIssue / kAcct / kServe / kPurge
  std::uint32_t region = 0;  // kProbe: region index; kBcast: bcast index
  std::uint32_t group = 0;   // kProbe: group index within the region
  /// Journal position this instruction's node dereferences replay up to.
  std::size_t horizon = 0;
  /// Dependency count accumulated at compile time; the runtime countdown
  /// copies live in EventRun::deps_ (atomic, per run).
  std::uint32_t deps = 0;
  /// CSR range into the edge target array (instructions unblocked by this
  /// one completing).
  std::uint32_t edges_begin = 0;
  std::uint32_t edges_end = 0;
};

struct BcastRec {
  enum class Kind : std::uint8_t {
    kAppStart,
    kJobStart,
    kStageStart,
    kStageEnd,
    kRddProbed,
  };
  Kind kind = Kind::kAppStart;
  JobId job = 0;
  StageId stage = 0;
  RddId rdd = 0;
};

struct StageRec {
  const StageExecution* rec = nullptr;
  JobId job = 0;
  /// Job overheads (jobs submitted since the previous executed stage) that
  /// the serial runner adds to jct_ms before this stage's wall.
  std::uint32_t jobs_before = 0;
  double wall = 0.0;
  double inner_wall = 0.0;
  std::vector<NodeAccounting>* acct = nullptr;
};

struct RegionRec {
  RddId rdd = 0;
  StageId stage_id = 0;
  std::uint32_t salt = 0;
  /// node -> group index for multi-group regions; nullptr when the region
  /// has a single group (no filtering needed).
  const std::vector<std::uint32_t>* group_of = nullptr;
  const NodeGroups* groups = nullptr;
  /// The shared per-(stage, rdd) probe permutation, built by whichever group
  /// instruction of the region runs first (seeded — identical to the serial
  /// runner's draw).
  std::once_flag once;
  std::vector<PartitionIndex> order;
};

/// The compiled program plus the mutable run state the instructions touch.
/// Compiles once, runs many times: a pooled RunContext caches the whole
/// EventRun (in its type-erased engine slot), and each run() re-arms the
/// graph from the compile-time dependency snapshot and rewinds the cluster
/// model in place instead of reconstructing either.
class EventRun {
 public:
  EventRun(const ExecutionPlan& plan, const RunConfig& config, Arena* arena)
      : plan_(plan),
        config_(&config),
        arena_(arena),
        num_nodes_(config.cluster.num_nodes),
        setup_(make_policy(config.policy, num_nodes_)),
        master_(config.cluster, setup_.factory),
        resolver_(plan, &master_),
        gated_(setup_.manager != nullptr),
        batch_scratch_(num_nodes_) {
    MRD_CHECK(arena_ != nullptr);
    for (auto& buffer : acct_buffers_) {
      buffer.assign(num_nodes_, NodeAccounting{});
    }
    metrics_.workload = plan.app().name();
    metrics_.policy = config.policy.name;
  }

  RunMetrics run(const RunConfig& config);

  ~EventRun() {
    // A stale helper may still sit queued in the executor; detach it so the
    // late invocation becomes a no-op instead of touching freed memory (the
    // node itself stays alive through its self-reference).
    for (auto& helper : helpers_) {
      std::lock_guard<std::mutex> lk(helper->mu);
      helper->engine = nullptr;
    }
  }

 private:
  // ---- Compilation -------------------------------------------------------
  void compile();
  std::uint32_t emit(Instr instr);
  void add_edge(std::uint32_t from, std::uint32_t to);
  /// FIFO-chains `id` onto `node`'s queue and applies the broadcast gate.
  void chain(std::uint32_t id, NodeId node);
  void gate(std::uint32_t id);
  void emit_broadcast(BcastRec rec);
  const std::vector<std::uint32_t>* group_map_for(RddId rdd,
                                                  const NodeGroups& groups);
  void build_edges_csr();

  // ---- Execution ---------------------------------------------------------
  void execute(const Instr& in, PhaseTimers* timers);
  void exec_broadcast(const Instr& in);
  void exec_issue(const Instr& in);
  void exec_probe(const Instr& in);
  void exec_acct(const Instr& in);
  void exec_wall(const Instr& in);
  void exec_serve(const Instr& in);
  void worker_loop(std::size_t shard_index);
  void drain_serial(PhaseTimers* timers);
  /// Grows the per-participant shard/helper arrays to `workers` (first
  /// multi-worker run only; reused forever after).
  void ensure_shards(std::size_t workers);
  /// A helper joining the active run: passes the join gate, takes a shard
  /// ticket, runs worker_loop, departs. Bounces harmlessly when no run is
  /// active or every shard is taken (a stale invocation from the previous
  /// run).
  void helper_arrive();
  /// Wakes up to `surplus` sleeping participants (batched: one lock).
  void wake_workers(std::size_t surplus);
  void finalize();
  /// Replays the recorded non-gated journal appends (a pure function of the
  /// plan) so every run starts from the identical materialized journal.
  void append_pre_events();
  /// Pooled rewind between runs: resets the cluster model in place and
  /// re-arms the instruction graph from the compile-time snapshot.
  void reset_for_run();

  const ExecutionPlan& plan_;
  /// Re-bound at the top of each run() — the engine outlives any one
  /// caller's RunConfig.
  const RunConfig* config_;
  /// The owning RunContext's arena; holds the dependency snapshot (freed
  /// wholesale when the context rekeys, after this engine is destroyed).
  Arena* arena_;
  const NodeId num_nodes_;
  PolicySetup setup_;
  BlockManagerMaster master_;
  LineageResolver resolver_;
  /// MRD variants hide shared cross-node state (the reference-distance
  /// table) behind the DAG events: their broadcasts are scheduled as gate
  /// instructions. Stateless-event policies pre-append the whole journal.
  const bool gated_;
  std::unique_ptr<ClosurePartitioner> partitioner_;

  // Program.
  std::vector<Instr> instrs_;
  std::vector<BcastRec> bcasts_;
  std::vector<StageRec> stages_;
  std::deque<RegionRec> regions_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_pairs_;
  std::vector<std::uint32_t> edge_targets_;
  std::vector<std::uint32_t> critical_;  // longest dep chain ending at i
  std::vector<std::int32_t> prev_on_node_;
  std::vector<std::uint32_t> queue_depth_;
  std::int32_t gate_ = -1;
  std::vector<std::uint32_t> epoch_;   // instructions since the last gate
  std::vector<std::unique_ptr<std::vector<std::uint32_t>>> group_map_cache_;
  std::uint32_t pending_jobs_ = 0;
  std::size_t horizon_ = 0;
  std::vector<std::int32_t> close_of_stage_;
  /// True once compile() ran; later runs only re-arm.
  bool compiled_ = false;
  /// Non-gated journal appends in emission order (see append_pre_events).
  std::vector<BcastRec> pre_events_;
  /// Compile-time deps counter per instruction (arena array, instrs_.size()
  /// entries) — executing a run consumes Instr::deps; this restores them.
  std::uint32_t* initial_deps_ = nullptr;
  /// Compile-time parallelism accounting, always collected; copied out to
  /// RunConfig::parallel_stats per run. Every field is a function of the
  /// context key (plan, node count, placement, node_jobs), so one compile's
  /// numbers serve every reuse.
  NodeParallelStats compile_stats_;

  // Run state.
  std::array<std::vector<NodeAccounting>, kAcctBuffers> acct_buffers_;
  std::vector<std::vector<BlockId>> batch_scratch_;  // per-node, pooled
  RunMetrics metrics_;
  std::atomic<std::uint64_t> background_read_{0};
  std::atomic<std::uint64_t> background_write_{0};

  // Engine: one work-stealing shard per participant. The owner pushes and
  // pops LIFO at the back of its ring; thieves lock the victim's mutex and
  // steal FIFO from the front. Counters (steals / failed_steals /
  // max_depth) and the PhaseTimers are owner-written only — no timer_mu_
  // round-trips — and merged by the caller after the join gate closes.
  struct alignas(64) Shard {
    std::mutex mu;
    RingDeque<std::uint32_t> deque;
    PhaseTimers timers;
    std::uint64_t steals = 0;
    std::uint64_t failed_steals = 0;
    std::size_t max_depth = 0;
  };

  /// A persistent executor task that contributes one worker to the active
  /// run. Pooled with the engine: submitting it allocates nothing. `mu`
  /// orders invocations against engine teardown (a stale queued helper must
  /// not touch a freed engine); `self` keeps the node alive until the late
  /// invocation drains even if the engine is gone by then.
  struct HelperTask : Executor::Task {
    std::mutex mu;
    EventRun* engine = nullptr;
    std::atomic<int> queued{0};
    std::shared_ptr<HelperTask> self;

    void run(unsigned /*worker*/) noexcept override {
      {
        std::lock_guard<std::mutex> lk(mu);
        if (engine != nullptr) engine->helper_arrive();
      }
      // Release the self-reference last: `queued` must be clear before a
      // resubmission can write `self` again, and dropping `keep` may delete
      // this node.
      std::shared_ptr<HelperTask> keep = std::move(self);
      queued.store(0);
    }
  };

  static constexpr std::uint32_t kRunActiveBit = 0x80000000u;
  static constexpr std::uint32_t kArrivedMask = 0x7fffffffu;

  std::size_t workers_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::shared_ptr<HelperTask>> helpers_;
  /// Per-run dependency countdowns (initial_deps_ holds the compile-time
  /// values). acq_rel decrements chain every producer's writes to whoever
  /// pushes — and later executes — the dependent.
  std::unique_ptr<std::atomic<std::uint32_t>[]> deps_;
  std::vector<std::uint32_t> ready_;  // single-worker drain only
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> stop_{false};
  /// Eventcount: ready-but-unclaimed instructions across all shards.
  /// seq_cst pairs with sleepers_ for the missed-wakeup argument (a pusher
  /// bumps ready_count_ before reading sleepers_; a sleeper registers under
  /// sleep_mu_ and re-reads ready_count_ in the predicate).
  std::atomic<std::uint64_t> ready_count_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::mutex error_mu_;
  std::exception_ptr error_;
  /// Join gate: kRunActiveBit while a run accepts helpers; low bits count
  /// arrived helpers. The caller closes the bit and waits for the count to
  /// reach zero — the lock-free equivalent of joining spawned threads.
  std::atomic<std::uint32_t> sync_{0};
  /// Shard tickets for arriving helpers (the caller owns shard 0).
  std::atomic<std::uint32_t> shard_ticket_{1};
  /// Per-run steal accounting, summed from the shards after the join.
  std::uint64_t run_steals_ = 0;
  std::uint64_t run_failed_steals_ = 0;
  std::size_t run_max_shard_depth_ = 0;
};

std::uint32_t EventRun::emit(Instr instr) {
  const auto id = static_cast<std::uint32_t>(instrs_.size());
  instr.horizon = horizon_;
  instrs_.push_back(instr);
  critical_.push_back(1);
  return id;
}

void EventRun::add_edge(std::uint32_t from, std::uint32_t to) {
  edge_pairs_.emplace_back(from, to);
  ++instrs_[to].deps;
  critical_[to] = std::max(critical_[to], critical_[from] + 1);
}

void EventRun::gate(std::uint32_t id) {
  if (gated_) {
    if (gate_ >= 0) add_edge(static_cast<std::uint32_t>(gate_), id);
    epoch_.push_back(id);
  }
}

void EventRun::chain(std::uint32_t id, NodeId node) {
  if (prev_on_node_[node] >= 0) {
    add_edge(static_cast<std::uint32_t>(prev_on_node_[node]), id);
  }
  prev_on_node_[node] = static_cast<std::int32_t>(id);
  ++queue_depth_[node];
}

void EventRun::emit_broadcast(BcastRec rec) {
  if (!gated_) {
    // No shared state behind the events: record the append, deliver lazily
    // through each instruction's horizon. The journal is a pure function of
    // the plan, so the recorded sequence replays identically at the start
    // of every run (append_pre_events) — fully materialized before any
    // worker starts.
    pre_events_.push_back(rec);
    ++horizon_;
    return;
  }
  // Shared-state policies: the broadcast is itself an instruction, gated on
  // every reader of the previous epoch — the table mutates exactly at the
  // serialized points of the serial run.
  const auto bcast = static_cast<std::uint32_t>(bcasts_.size());
  bcasts_.push_back(rec);
  Instr instr;
  instr.op = Instr::Op::kBcast;
  instr.region = bcast;
  const std::uint32_t id = emit(instr);
  for (std::uint32_t reader : epoch_) add_edge(reader, id);
  epoch_.clear();
  if (gate_ >= 0) add_edge(static_cast<std::uint32_t>(gate_), id);
  gate_ = static_cast<std::int32_t>(id);
  ++horizon_;
}

const std::vector<std::uint32_t>* EventRun::group_map_for(
    RddId rdd, const NodeGroups& groups) {
  if (groups.num_groups() <= 1) return nullptr;
  auto& slot = group_map_cache_[rdd];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<std::uint32_t>>(num_nodes_, 0);
    for (std::size_t g = 0; g < groups.groups.size(); ++g) {
      for (NodeId member : groups.groups[g]) {
        (*slot)[member] = static_cast<std::uint32_t>(g);
      }
    }
  }
  return slot.get();
}

void EventRun::compile() {
  prev_on_node_.assign(num_nodes_, -1);
  queue_depth_.assign(num_nodes_, 0);
  group_map_cache_.resize(plan_.app().num_rdds());
  partitioner_ = std::make_unique<ClosurePartitioner>(
      plan_, num_nodes_, config_->cluster.placement);
  // Always collected: the counters are key-constant, and a later run under
  // the same key may ask for them even if the first one didn't.
  NodeParallelStats* stats = &compile_stats_;
  const std::size_t workers = std::max<std::size_t>(config_->node_jobs, 1);

  if (config_->visibility == DagVisibility::kRecurring) {
    emit_broadcast({BcastRec::Kind::kAppStart, 0, 0, 0});
  }

  for (const JobInfo& job : plan_.jobs()) {
    emit_broadcast({BcastRec::Kind::kJobStart, job.id, 0, 0});
    ++pending_jobs_;

    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      const auto t = static_cast<std::uint32_t>(stages_.size());
      stages_.push_back(StageRec{&rec, job.id, 0, 0.0, 0.0,
                                 &acct_buffers_[t % kAcctBuffers]});
      stages_.back().jobs_before = pending_jobs_;
      pending_jobs_ = 0;
      const std::int32_t close_gate =
          t >= kAcctBuffers ? close_of_stage_[t - kAcctBuffers] : -1;

      emit_broadcast({BcastRec::Kind::kStageStart, job.id, rec.stage, 0});

      // Prefetch-order refresh, one instruction per node.
      for (NodeId n = 0; n < num_nodes_; ++n) {
        Instr in;
        in.op = Instr::Op::kIssue;
        in.stage = t;
        in.node = n;
        const std::uint32_t id = emit(in);
        chain(id, n);
        gate(id);
      }

      // Probe regions: one instruction per closure group.
      std::vector<std::uint32_t> stage_probe_instrs;
      for (RddId p : rec.probes) {
        const RddInfo& info = plan_.app().rdd(p);
        const NodeGroups& groups = partitioner_->probe_groups(p);
        const bool parallel = workers > 1 && groups.num_groups() > 1;
        if (stats != nullptr) {
          const std::size_t g = groups.num_groups();
          stats->probe_regions += 1;
          if (parallel) stats->probe_regions_parallel += 1;
          stats->probes_total += info.num_partitions;
          if (parallel) stats->probes_parallel += info.num_partitions;
          stats->min_groups =
              stats->probe_regions == 1 ? g : std::min(stats->min_groups, g);
          stats->max_groups = std::max(stats->max_groups, g);
          stats->groups_sum += g;
          stats->largest_group =
              std::max(stats->largest_group, groups.largest_group());
        }
        const auto region = static_cast<std::uint32_t>(regions_.size());
        regions_.emplace_back();
        RegionRec& rg = regions_.back();
        rg.rdd = p;
        rg.stage_id = rec.stage;
        rg.salt = placement_salt(p, num_nodes_, config_->cluster.placement);
        rg.groups = &groups;
        rg.group_of = group_map_for(p, groups);
        for (std::size_t g = 0; g < groups.groups.size(); ++g) {
          Instr in;
          in.op = Instr::Op::kProbe;
          in.stage = t;
          in.region = region;
          in.group = static_cast<std::uint32_t>(g);
          const std::uint32_t id = emit(in);
          for (NodeId member : groups.groups[g]) chain(id, member);
          gate(id);
          if (close_gate >= 0) {
            add_edge(static_cast<std::uint32_t>(close_gate), id);
          }
          stage_probe_instrs.push_back(id);
        }
        emit_broadcast({BcastRec::Kind::kRddProbed, 0, rec.stage, p});
      }

      // Per-node accounting + cache writes.
      std::vector<std::uint32_t> acct_instrs;
      acct_instrs.reserve(num_nodes_);
      for (NodeId n = 0; n < num_nodes_; ++n) {
        Instr in;
        in.op = Instr::Op::kAcct;
        in.stage = t;
        in.node = n;
        const std::uint32_t id = emit(in);
        chain(id, n);
        gate(id);
        if (close_gate >= 0) {
          add_edge(static_cast<std::uint32_t>(close_gate), id);
        }
        acct_instrs.push_back(id);
      }

      // The stage-wall join: the one cross-node reduction a stage needs.
      Instr wall;
      wall.op = Instr::Op::kWall;
      wall.stage = t;
      const std::uint32_t wall_id = emit(wall);
      for (std::uint32_t id : stage_probe_instrs) add_edge(id, wall_id);
      for (std::uint32_t id : acct_instrs) add_edge(id, wall_id);
      gate(wall_id);

      // Prefetch serve inside the stage window.
      std::vector<std::uint32_t> serve_instrs;
      serve_instrs.reserve(num_nodes_);
      for (NodeId n = 0; n < num_nodes_; ++n) {
        Instr in;
        in.op = Instr::Op::kServe;
        in.stage = t;
        in.node = n;
        const std::uint32_t id = emit(in);
        chain(id, n);
        add_edge(wall_id, id);
        gate(id);
        serve_instrs.push_back(id);
      }

      emit_broadcast({BcastRec::Kind::kStageEnd, job.id, rec.stage, 0});

      // Stage-end purge (observes the stage-end event via its horizon).
      for (NodeId n = 0; n < num_nodes_; ++n) {
        Instr in;
        in.op = Instr::Op::kPurge;
        in.stage = t;
        in.node = n;
        const std::uint32_t id = emit(in);
        chain(id, n);
        gate(id);
      }

      // Buffer recycle: ready once the wall and every serve released the
      // stage's accounting.
      Instr close;
      close.op = Instr::Op::kClose;
      close.stage = t;
      const std::uint32_t close_id = emit(close);
      add_edge(wall_id, close_id);
      for (std::uint32_t id : serve_instrs) add_edge(id, close_id);
      gate(close_id);
      close_of_stage_.push_back(static_cast<std::int32_t>(close_id));
    }
  }

  build_edges_csr();

  if (stats != nullptr) {
    stats->engaged = workers > 1 && num_nodes_ > 1;
    stats->plan_groups = partitioner_->plan_groups().num_groups();
    stats->num_nodes = num_nodes_;
    stats->instructions = instrs_.size();
    std::uint32_t cp = 0;
    for (std::uint32_t c : critical_) cp = std::max(cp, c);
    stats->critical_path = cp;
    std::uint32_t depth = 0;
    for (std::uint32_t d : queue_depth_) depth = std::max(depth, d);
    stats->max_queue_depth = depth;
  }
}

void EventRun::build_edges_csr() {
  // Two-pass CSR over (from, to) pairs: dependents of one instruction land
  // contiguously, in emission order.
  std::vector<std::uint32_t> counts(instrs_.size() + 1, 0);
  for (const auto& e : edge_pairs_) ++counts[e.first + 1];
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  edge_targets_.resize(edge_pairs_.size());
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (const auto& e : edge_pairs_) {
    edge_targets_[cursor[e.first]++] = e.second;
  }
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    instrs_[i].edges_begin = counts[i];
    instrs_[i].edges_end = counts[i + 1];
  }
  edge_pairs_.clear();
  edge_pairs_.shrink_to_fit();
}

void EventRun::exec_broadcast(const Instr& in) {
  const BcastRec& rec = bcasts_[in.region];
  switch (rec.kind) {
    case BcastRec::Kind::kAppStart:
      master_.broadcast_application_start(plan_);
      break;
    case BcastRec::Kind::kJobStart:
      master_.broadcast_job_start(plan_, rec.job);
      break;
    case BcastRec::Kind::kStageStart:
      master_.broadcast_stage_start(plan_, rec.job, rec.stage);
      break;
    case BcastRec::Kind::kStageEnd:
      master_.broadcast_stage_end(plan_, rec.job, rec.stage);
      break;
    case BcastRec::Kind::kRddProbed:
      master_.broadcast_rdd_probed(plan_, rec.rdd, rec.stage);
      break;
  }
}

void EventRun::exec_issue(const Instr& in) {
  // Same skip rule as the serial runner's issue_prefetch_orders.
  if ((master_.node_activity(in.node) & (kNodeHasDisk | kNodeHasQueue)) == 0) {
    return;
  }
  master_.node_at(in.node, in.horizon)
      .refresh_prefetch_orders(plan_, config_->max_prefetch_queue);
}

void EventRun::exec_probe(const Instr& in) {
  RegionRec& rg = regions_[in.region];
  std::call_once(rg.once, [&] {
    const RddInfo& info = plan_.app().rdd(rg.rdd);
    rg.order.resize(info.num_partitions);
    for (PartitionIndex j = 0; j < info.num_partitions; ++j) {
      rg.order[j] = j;
    }
    // Identical draw to the serial runner: tasks are scheduled in waves,
    // not partition order, and the seed pins the permutation per
    // (stage, rdd).
    Rng rng((static_cast<std::uint64_t>(rg.stage_id) << 32) ^ rg.rdd);
    for (std::size_t j = rg.order.size(); j > 1; --j) {
      std::swap(rg.order[j - 1], rg.order[rng.next_below(j)]);
    }
  });
  std::vector<NodeAccounting>* acct = stages_[in.stage].acct;
  if (rg.group_of == nullptr) {
    for (PartitionIndex j : rg.order) {
      resolver_.demand_block(BlockId{rg.rdd, j}, acct, in.horizon);
    }
    return;
  }
  const std::vector<std::uint32_t>& group_of = *rg.group_of;
  for (PartitionIndex j : rg.order) {
    if (group_of[(j + rg.salt) % num_nodes_] != in.group) continue;
    resolver_.demand_block(BlockId{rg.rdd, j}, acct, in.horizon);
  }
}

void EventRun::exec_acct(const Instr& in) {
  const StageRec& st = stages_[in.stage];
  const StageExecution& rec = *st.rec;
  const NodeId n = in.node;
  NodeAccounting& acct = (*st.acct)[n];

  // Source (HDFS) reads: the node's share of each source RDD's partitions
  // (j % num_nodes == n). Byte counters are integral, so the closed form
  // equals the serial per-partition loop exactly.
  for (RddId s : rec.source_reads) {
    const RddInfo& info = plan_.app().rdd(s);
    if (info.num_partitions > n) {
      const std::uint64_t count =
          (info.num_partitions - n + num_nodes_ - 1) / num_nodes_;
      acct.disk_read_bytes += count * info.bytes_per_partition;
    }
  }

  // Shuffle reads.
  for (ShuffleId sid : rec.shuffle_reads) {
    const ShuffleInfo& shuffle = plan_.shuffle(sid);
    const std::uint64_t share = shuffle.bytes / num_nodes_;
    acct.network_bytes += share * (num_nodes_ - 1) / num_nodes_;
    acct.disk_read_bytes += share / num_nodes_;
  }

  // Task computation: repeat add_task exactly as many times as the serial
  // loop does for this node, so the floating-point accumulation sequence is
  // identical.
  const StageInfo& stage = plan_.stage(rec.stage);
  double per_task_ms = 0.0;
  for (RddId r : rec.computes) {
    const RddInfo& info = plan_.app().rdd(r);
    per_task_ms += info.compute_ms_per_partition *
                   static_cast<double>(info.num_partitions) /
                   static_cast<double>(stage.num_tasks);
  }
  for (PartitionIndex i = n; i < stage.num_tasks;
       i += static_cast<PartitionIndex>(num_nodes_)) {
    acct.add_task(per_task_ms);
  }

  // Shuffle write of map stages.
  if (stage.shuffle_write) {
    const ShuffleInfo& shuffle = plan_.shuffle(*stage.shuffle_write);
    acct.disk_write_bytes += shuffle.bytes / num_nodes_;
  }

  // Cache newly materialized persisted RDDs: this node's slice of each,
  // one batched admission per RDD (pooled per-node scratch).
  std::vector<BlockId>& batch = batch_scratch_[n];
  for (RddId r : rec.computes) {
    const RddInfo& info = plan_.app().rdd(r);
    if (!info.persisted) continue;
    batch.clear();
    const PartitionIndex first = first_local_partition(
        r, n, num_nodes_, config_->cluster.placement);
    for (PartitionIndex j = first; j < info.num_partitions;
         j += static_cast<PartitionIndex>(num_nodes_)) {
      batch.push_back(BlockId{r, j});
    }
    if (batch.empty()) continue;
    IoCharge charge;
    master_.node_at(n, in.horizon)
        .cache_blocks(batch.data(), batch.size(), info.bytes_per_partition,
                      &charge);
    acct.disk_read_bytes += charge.disk_read_bytes;
    acct.disk_write_bytes += charge.disk_write_bytes;
  }
}

void EventRun::exec_wall(const Instr& in) {
  StageRec& st = stages_[in.stage];
  // Wall instructions are totally ordered (each stage's wall precedes every
  // next-stage acct through the serve→purge→probe chains), so these plain
  // accumulations happen in stage order — bit-identical to the serial run.
  for (std::uint32_t j = 0; j < st.jobs_before; ++j) {
    metrics_.jct_ms += config_->cluster.job_overhead_ms;
  }
  st.wall = stage_wall_ms(*st.acct, config_->cluster);
  st.inner_wall = st.wall - config_->cluster.stage_overhead_ms;
  metrics_.jct_ms += st.wall;
  if (config_->record_stage_timings) {
    metrics_.stage_timings.push_back(
        StageTiming{st.rec->stage, st.rec->job, st.wall,
                    max_cpu_ms(*st.acct, config_->cluster),
                    max_io_ms(*st.acct, config_->cluster)});
  }
  for (const NodeAccounting& a : *st.acct) {
    metrics_.disk_bytes_read += a.disk_read_bytes;
    metrics_.disk_bytes_written += a.disk_write_bytes;
    metrics_.network_bytes += a.network_bytes;
  }
}

void EventRun::exec_serve(const Instr& in) {
  const NodeId n = in.node;
  if ((master_.node_activity(n) & kNodeHasQueue) == 0) return;
  const StageRec& st = stages_[in.stage];
  const double slack =
      st.inner_wall - (*st.acct)[n].disk_ms(config_->cluster);
  if (slack <= 0.0) return;
  IoCharge charge;
  master_.node_at(n, in.horizon).serve_prefetch(slack, &charge);
  // Background byte totals are unsigned sums — order-free, so relaxed
  // atomic accumulation reproduces the serial total exactly.
  background_read_.fetch_add(charge.disk_read_bytes,
                             std::memory_order_relaxed);
  background_write_.fetch_add(charge.disk_write_bytes,
                              std::memory_order_relaxed);
}

void EventRun::execute(const Instr& in, PhaseTimers* timers) {
  switch (in.op) {
    case Instr::Op::kBcast: {
      ScopedTimer timer(timers, SimPhase::kBroadcast);
      exec_broadcast(in);
      break;
    }
    case Instr::Op::kIssue: {
      ScopedTimer timer(timers, SimPhase::kPrefetchIssue);
      exec_issue(in);
      break;
    }
    case Instr::Op::kProbe: {
      ScopedTimer timer(timers, SimPhase::kProbes);
      exec_probe(in);
      break;
    }
    case Instr::Op::kAcct: {
      ScopedTimer timer(timers, SimPhase::kCacheWrites);
      exec_acct(in);
      break;
    }
    case Instr::Op::kWall:
      exec_wall(in);
      break;
    case Instr::Op::kServe: {
      ScopedTimer timer(timers, SimPhase::kPrefetchServe);
      exec_serve(in);
      break;
    }
    case Instr::Op::kPurge: {
      ScopedTimer timer(timers, SimPhase::kPurge);
      master_.execute_purge_at(in.node, in.horizon);
      break;
    }
    case Instr::Op::kClose:
      stages_[in.stage].acct->assign(num_nodes_, NodeAccounting{});
      break;
  }
}

void EventRun::drain_serial(PhaseTimers* timers) {
  // Single worker: no peers to feed or wait on, so shards and the
  // eventcount buy nothing — drain the ready stack in place.
  std::size_t executed = 0;
  while (!ready_.empty()) {
    const std::uint32_t id = ready_.back();
    ready_.pop_back();
    execute(instrs_[id], timers);
    const Instr& done = instrs_[id];
    for (std::uint32_t e = done.edges_begin; e < done.edges_end; ++e) {
      const std::uint32_t to = edge_targets_[e];
      if (deps_[to].fetch_sub(1, std::memory_order_relaxed) == 1) {
        ready_.push_back(to);
      }
    }
    ++executed;
  }
  remaining_.fetch_sub(executed, std::memory_order_relaxed);
}

void EventRun::ensure_shards(std::size_t workers) {
  while (shards_.size() < workers) {
    shards_.push_back(std::make_unique<Shard>());
  }
  while (helpers_.size() + 1 < workers) {
    auto helper = std::make_shared<HelperTask>();
    helper->engine = this;
    helpers_.push_back(std::move(helper));
  }
}

void EventRun::wake_workers(std::size_t surplus) {
  if (surplus == 0 || sleepers_.load() == 0) return;
  std::lock_guard<std::mutex> lk(sleep_mu_);
  const std::uint32_t asleep = sleepers_.load();
  if (asleep == 0) return;
  if (surplus > 1 && asleep > 1) {
    sleep_cv_.notify_all();
  } else {
    sleep_cv_.notify_one();
  }
}

void EventRun::helper_arrive() {
  std::uint32_t gate = sync_.load();
  do {
    if ((gate & kRunActiveBit) == 0) return;  // between runs: bounce
  } while (!sync_.compare_exchange_weak(gate, gate + 1));
  const std::uint32_t ticket = shard_ticket_.fetch_add(1);
  if (ticket < workers_) worker_loop(ticket);
  const std::uint32_t prev = sync_.fetch_sub(1);
  if (((prev - 1) & kArrivedMask) == 0) {
    // Last one out wakes the caller waiting on the join gate.
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_all();
  }
}

void EventRun::worker_loop(std::size_t shard_index) {
  Shard& my = *shards_[shard_index];
  PhaseTimers* timers = config_->phase_timers != nullptr ? &my.timers : nullptr;
  const bool forced_steal = g_forced_steal.load(std::memory_order_relaxed);
  const std::size_t claim_cap = forced_steal ? 1 : kClaimBatch;
  std::array<std::uint32_t, kClaimBatch> batch;

  while (!stop_.load()) {
    // Claim LIFO from our own shard — the freshest instructions, whose
    // nodes' state this worker just touched.
    std::size_t batch_n = 0;
    {
      std::lock_guard<std::mutex> lk(my.mu);
      while (batch_n < claim_cap && !my.deque.empty()) {
        batch[batch_n++] = my.deque.back();
        my.deque.pop_back();
      }
    }
    if (batch_n == 0) {
      // Steal FIFO from a victim's front: the oldest, coldest work — the
      // end the owner is furthest from.
      for (std::size_t i = 1; i < workers_ && batch_n == 0; ++i) {
        Shard& victim = *shards_[(shard_index + i) % workers_];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (victim.deque.empty()) {
          ++my.failed_steals;
          continue;
        }
        std::size_t take =
            std::min((victim.deque.size() + 1) / 2, claim_cap);
        while (take-- > 0) {
          batch[batch_n++] = victim.deque.front();
          victim.deque.pop_front();
        }
        ++my.steals;
      }
    }
    if (batch_n == 0) {
      std::unique_lock<std::mutex> lk(sleep_mu_);
      if (stop_.load()) break;
      sleepers_.fetch_add(1);
      sleep_cv_.wait(lk, [this] {
        return stop_.load() || ready_count_.load() > 0;
      });
      sleepers_.fetch_sub(1);
      continue;
    }
    ready_count_.fetch_sub(batch_n);

    try {
      for (std::size_t b = 0; b < batch_n; ++b) {
        execute(instrs_[batch[b]], timers);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        stop_.store(true);
      }
      sleep_cv_.notify_all();
      break;
    }

    // Apply the batch's completions: acq_rel countdown, newly ready
    // instructions pushed to our own back (hot) — or scattered across the
    // other shards under the forced-steal schedule.
    std::size_t newly = 0;
    if (!forced_steal) {
      std::lock_guard<std::mutex> lk(my.mu);
      for (std::size_t b = 0; b < batch_n; ++b) {
        const Instr& done = instrs_[batch[b]];
        for (std::uint32_t e = done.edges_begin; e < done.edges_end; ++e) {
          const std::uint32_t to = edge_targets_[e];
          if (deps_[to].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            my.deque.push_back(to);
            ++newly;
          }
        }
      }
      my.max_depth = std::max(my.max_depth, my.deque.size());
    } else {
      std::size_t rotor = 0;
      for (std::size_t b = 0; b < batch_n; ++b) {
        const Instr& done = instrs_[batch[b]];
        for (std::uint32_t e = done.edges_begin; e < done.edges_end; ++e) {
          const std::uint32_t to = edge_targets_[e];
          if (deps_[to].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            Shard& target =
                *shards_[(shard_index + 1 + rotor++ % (workers_ - 1)) %
                         workers_];
            std::lock_guard<std::mutex> lk(target.mu);
            target.deque.push_back(to);
            ++newly;
          }
        }
      }
    }
    if (newly > 0) {
      ready_count_.fetch_add(newly);  // seq_cst: precedes the sleepers_ read
      // This worker consumes its next batch itself; wake peers only for the
      // surplus (under forced steal it kept nothing, so wake for all).
      wake_workers(forced_steal ? newly : newly - 1);
    }
    if (remaining_.fetch_sub(batch_n) == batch_n) {
      // That was the last instruction anywhere: release every sleeper and
      // the join gate.
      {
        std::lock_guard<std::mutex> lk(sleep_mu_);
        stop_.store(true);
      }
      sleep_cv_.notify_all();
      break;
    }
  }
}

void EventRun::finalize() {
  // Jobs submitted after the last executed stage still pay their overhead.
  for (std::uint32_t j = 0; j < pending_jobs_; ++j) {
    metrics_.jct_ms += config_->cluster.job_overhead_ms;
  }

  if (setup_.manager != nullptr) {
    setup_.manager->profiler().on_application_end(plan_);
    metrics_.mrd_table_peak_entries =
        setup_.manager->stats().max_table_entries;
    metrics_.mrd_update_messages =
        setup_.manager->stats().table_update_messages;
  }

  const NodeCacheStats stats = master_.aggregate_stats();
  metrics_.probes = stats.probes;
  metrics_.hits = stats.hits;
  metrics_.per_rdd_probes.reserve(stats.per_rdd.size());
  for (std::size_t rdd = 0; rdd < stats.per_rdd.size(); ++rdd) {
    if (stats.per_rdd[rdd].first == 0 && stats.per_rdd[rdd].second == 0) {
      continue;
    }
    metrics_.per_rdd_probes.emplace_back(static_cast<std::uint32_t>(rdd),
                                         stats.per_rdd[rdd]);
  }
  metrics_.misses_from_disk = stats.disk_hits;
  metrics_.misses_recompute = stats.cold_misses;
  metrics_.blocks_cached = stats.blocks_cached;
  metrics_.evictions = stats.evictions;
  metrics_.spills = stats.spills;
  metrics_.purged_blocks = stats.purged;
  metrics_.uncacheable_blocks = stats.uncacheable;
  metrics_.prefetches_issued = stats.prefetches_issued;
  metrics_.prefetches_completed = stats.prefetches_completed;
  metrics_.prefetches_useful = stats.prefetches_useful;
  metrics_.prefetches_wasted = stats.prefetches_wasted;
  metrics_.disk_bytes_read += background_read_.load();
  metrics_.disk_bytes_written += background_write_.load();
  metrics_.recompute_cpu_ms = resolver_.recompute_cpu_ms();
}

void EventRun::append_pre_events() {
  for (const BcastRec& rec : pre_events_) {
    switch (rec.kind) {
      case BcastRec::Kind::kAppStart:
        master_.enqueue_application_start(plan_);
        break;
      case BcastRec::Kind::kJobStart:
        master_.enqueue_job_start(plan_, rec.job);
        break;
      case BcastRec::Kind::kStageStart:
        master_.enqueue_stage_start(plan_, rec.job, rec.stage);
        break;
      case BcastRec::Kind::kStageEnd:
        master_.enqueue_stage_end(plan_, rec.job, rec.stage);
        break;
      case BcastRec::Kind::kRddProbed:
        master_.enqueue_rdd_probed(plan_, rec.rdd, rec.stage);
        break;
    }
  }
}

void EventRun::reset_for_run() {
  // Same protocol as the barrier path's context reuse: shared policy state
  // once, then the cluster model (which re-reads the possibly changed
  // capacity from the rewritten config), then the resolver's charges.
  if (setup_.manager != nullptr) setup_.manager->reset_for_reuse();
  master_.reset_for_reuse(config_->cluster, setup_.factory);
  resolver_.reset_for_reuse();
  for (auto& buffer : acct_buffers_) {
    buffer.assign(num_nodes_, NodeAccounting{});
  }
  for (auto& batch : batch_scratch_) batch.clear();
  // Reset the metrics without surrendering the vectors' buffers.
  auto per_rdd = std::move(metrics_.per_rdd_probes);
  per_rdd.clear();
  auto timings = std::move(metrics_.stage_timings);
  timings.clear();
  metrics_ = RunMetrics{};
  metrics_.per_rdd_probes = std::move(per_rdd);
  metrics_.stage_timings = std::move(timings);
  metrics_.workload = plan_.app().name();
  metrics_.policy = config_->policy.name;
  background_read_.store(0, std::memory_order_relaxed);
  background_write_.store(0, std::memory_order_relaxed);
  // The instruction graph re-arms in run(): deps_ is restored from the
  // compile-time snapshot there (shared with the first-run path).
  ready_.clear();
  remaining_.store(0, std::memory_order_relaxed);
  ready_count_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
}

RunMetrics EventRun::run(const RunConfig& config) {
  MRD_CHECK(config.cluster.num_nodes == num_nodes_);
  config_ = &config;
  if (!compiled_) {
    // Compilation covers the closure analysis the barrier runner times under
    // kPartition, plus the instruction-graph build it has no analogue for.
    // Pooled reuses skip it entirely (the kPartition phase then reads ~0).
    ScopedTimer timer(config_->phase_timers, SimPhase::kPartition);
    compile();
    // Snapshot the dependency counters: executing a run consumes the deps_
    // countdowns, and restoring this snapshot is all a later run needs to
    // re-arm the graph.
    initial_deps_ = arena_->make_array<std::uint32_t>(instrs_.size());
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
      initial_deps_[i] = instrs_[i].deps;
    }
    deps_ = std::make_unique<std::atomic<std::uint32_t>[]>(instrs_.size());
    compiled_ = true;
  } else {
    reset_for_run();
  }
  if (config_->parallel_stats != nullptr) {
    *config_->parallel_stats = compile_stats_;
  }
  // Materialize the non-gated journal before any instruction executes.
  append_pre_events();

  if (!instrs_.empty()) {
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
      deps_[i].store(initial_deps_[i], std::memory_order_relaxed);
    }
    remaining_.store(instrs_.size(), std::memory_order_relaxed);
    // Worker cap: the executor's configured width (MRD_EXECUTOR_THREADS,
    // else hardware_concurrency) — oversubscribing a graph scheduler only
    // adds context switches, it can't add overlap. (The structural stats
    // above use the *requested* worker count so reported numbers stay
    // machine-independent.)
    const std::size_t workers =
        std::min({std::max<std::size_t>(config_->node_jobs, 1),
                  instrs_.size(), Executor::configured_width()});
    workers_ = workers;
    if (workers == 1) {
      ready_.reserve(64);
      for (std::size_t i = 0; i < instrs_.size(); ++i) {
        if (initial_deps_[i] == 0) {
          ready_.push_back(static_cast<std::uint32_t>(i));
        }
      }
      MRD_CHECK(!ready_.empty());
      drain_serial(config_->phase_timers);
    } else {
      ensure_shards(workers);
      std::size_t seeds = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        Shard& shard = *shards_[w];
        shard.deque.clear();
        shard.timers = PhaseTimers{};
        shard.steals = 0;
        shard.failed_steals = 0;
        shard.max_depth = 0;
      }
      // Seed the initial ready set round-robin so every participant starts
      // with local work instead of a steal stampede.
      for (std::size_t i = 0; i < instrs_.size(); ++i) {
        if (initial_deps_[i] == 0) {
          shards_[seeds % workers]->deque.push_back(
              static_cast<std::uint32_t>(i));
          ++seeds;
        }
      }
      MRD_CHECK(seeds > 0);
      ready_count_.store(seeds);
      stop_.store(false);
      shard_ticket_.store(1);
      sync_.store(kRunActiveBit);

      // Recruit helpers. The caller always participates and drains to
      // completion on its own if no helper ever shows up, so queuing
      // helpers behind a saturated executor can only delay speedup, never
      // progress — that is what lets sweep-level and run-level parallelism
      // compose without a deadlock.
      std::vector<std::thread> spawned;
      if (Executor::enabled()) {
        Executor& executor = Executor::instance();
        for (std::size_t w = 1; w < workers; ++w) {
          HelperTask* helper = helpers_[w - 1].get();
          if (helper->queued.exchange(1) == 0) {
            helper->self = helpers_[w - 1];
            executor.submit(helper);
          }
          // else: still queued from the previous run — it will join this
          // one (or bounce off the gate) when the executor gets to it.
        }
      } else {
        // MRD_NO_PERSISTENT_POOL=1: per-run spawns, same sharded engine.
        spawned.reserve(workers - 1);
        for (std::size_t w = 1; w < workers; ++w) {
          spawned.emplace_back([this] { helper_arrive(); });
        }
      }
      worker_loop(0);
      // Close the join gate and wait for every arrived helper to depart;
      // late invocations bounce off the cleared bit.
      sync_.fetch_and(~kRunActiveBit);
      {
        std::unique_lock<std::mutex> lk(sleep_mu_);
        sleep_cv_.wait(lk, [this] {
          return (sync_.load() & kArrivedMask) == 0;
        });
      }
      for (std::thread& t : spawned) t.join();

      run_steals_ = 0;
      run_failed_steals_ = 0;
      run_max_shard_depth_ = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const Shard& shard = *shards_[w];
        run_steals_ += shard.steals;
        run_failed_steals_ += shard.failed_steals;
        run_max_shard_depth_ =
            std::max(run_max_shard_depth_, shard.max_depth);
        if (config_->phase_timers != nullptr) {
          for (std::size_t i = 0; i < kNumSimPhases; ++i) {
            config_->phase_timers->ms[i] += shard.timers.ms[i];
          }
        }
      }
      if (config_->parallel_stats != nullptr) {
        config_->parallel_stats->steals = run_steals_;
        config_->parallel_stats->failed_steals = run_failed_steals_;
        config_->parallel_stats->max_shard_depth = run_max_shard_depth_;
      }
      if (error_) std::rethrow_exception(error_);
    }
    MRD_CHECK(remaining_.load() == 0);
  }

  finalize();
  return metrics_;
}

}  // namespace

void set_event_forced_steal_for_test(bool forced) {
  g_forced_steal.store(forced);
}

RunMetrics run_plan_event(const ExecutionPlan& plan, const RunConfig& config) {
  // Pooled contexts cache the whole EventRun — compiled instruction graph,
  // cluster model, partitioner — behind the context's type-erased engine
  // slot; a key match re-arms it in place. Without a pooled context the
  // local one makes this a plain compile-and-run.
  RunContext local_context;
  RunContext& ctx = config.context != nullptr ? *config.context : local_context;
  ctx.prepare(plan, config);
  if (ctx.event_engine() == nullptr) {
    ctx.set_event_engine(
        std::shared_ptr<void>(new EventRun(plan, config, &ctx.arena())));
  }
  return static_cast<EventRun*>(ctx.event_engine().get())->run(config);
}

}  // namespace mrd
