// Pooled per-run state: everything a simulation run builds that can be
// rewound in place and handed to the next run. Sweeps execute thousands of
// (policy, fraction) points against one plan; constructing the cluster model
// (per-node BlockManagers, policies, resolver, partitioner, the event
// scheduler's instruction graph) from scratch for every point made the
// allocator the dominant cost of a sweep's steady state. A RunContext keeps
// those structures alive between runs and resets them in place instead.
//
// A context is keyed by the *structural* inputs of a run — the plan, the
// policy configuration, node count, placement, DAG visibility, intra-run
// worker count and the resolved engine. prepare() reuses the pooled
// structures in place when the key matches (fully_reused() == true: the
// steady state the allocation gate measures) and tears down + rebuilds
// otherwise, rewinding the arena so the new key's structures recycle the old
// key's slabs. Inputs *outside* the key — notably the cache capacity a sweep
// varies per fraction point — flow through the reset instead of forcing a
// rebuild.
//
// Not thread-safe: one context serves one run at a time (SweepRunner keeps
// per-worker-thread pools).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/block_manager.h"
#include "cluster/block_manager_master.h"
#include "core/policy_registry.h"
#include "dag/execution_plan.h"
#include "dag/ids.h"
#include "dag/placement.h"
#include "exec/application_runner.h"
#include "exec/lineage_resolver.h"
#include "exec/node_partition.h"
#include "sim/node_accounting.h"
#include "util/arena.h"

namespace mrd {

class RunContext {
 public:
  /// Which engine the prepared state serves. Barrier keeps the cluster
  /// model in the context itself; the event scheduler owns its own model
  /// inside the engine slot (it rewinds itself per run).
  enum class Engine : std::uint8_t { kBarrier, kEvent };

  RunContext();
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// True when the last prepare() reset the pooled structures in place —
  /// i.e. the run performed no structural construction. This is the
  /// steady-state predicate the sweep allocation gate classifies runs by.
  bool fully_reused() const { return fully_reused_; }

  /// The run-scoped arena. Lives for the *key's* lifetime, not one run's:
  /// its contents (chunk maps, the event graph's dependency snapshot) are
  /// exactly the structures a key match reuses. Rewound on rekey, retaining
  /// slabs.
  Arena& arena() { return arena_; }

  /// The engine run_plan resolves `config` to — mirrors run_plan's dispatch
  /// so pool lookups and the runner can never disagree.
  static Engine engine_for(const RunConfig& config);

  /// True when prepare(plan, config) would reuse this context in place.
  bool matches(const ExecutionPlan& plan, const RunConfig& config) const;

  /// Binds the context to (plan, config): on a key match, resets the pooled
  /// structures in place (manager once, then master/nodes/policies, then
  /// resolver); otherwise tears everything down — both engines — rewinds
  /// the arena and rebuilds the keyed pieces.
  void prepare(const ExecutionPlan& plan, const RunConfig& config);

  // ---- Barrier-engine state (valid after prepare() under kBarrier) ----

  PolicySetup& setup() { return setup_; }
  BlockManagerMaster& master() { return *master_; }
  LineageResolver& resolver() { return *resolver_; }

  /// Builds the closure partitioner on first use under the current key
  /// (plan / node count / placement are key fields, so a cached partitioner
  /// is always consistent with them).
  ClosurePartitioner& ensure_partitioner(const ExecutionPlan& plan);

  // Per-stage scratch, sized/assigned by the runner before each use; pooled
  // so the buffers stop breathing across runs.
  std::vector<NodeAccounting> acct;
  std::vector<IoCharge> node_background;
  std::vector<PartitionIndex> order;
  std::vector<std::vector<BlockId>> batch_scratch;

  // ---- Event-engine slot (managed by node_scheduler.cpp) ----

  /// The cached event engine (an implementation type private to
  /// node_scheduler.cpp, hence the type-erased slot; the shared_ptr carries
  /// the concrete deleter). Null until the first event run under this key.
  const std::shared_ptr<void>& event_engine() const { return event_engine_; }
  void set_event_engine(std::shared_ptr<void> engine);

 private:
  struct Key {
    const ExecutionPlan* plan = nullptr;
    // Cheap fingerprint guarding plan-address reuse: a different plan at a
    // recycled address with identical shape would still replay correctly,
    // but matching shapes make the stale-pointer window practically
    // impossible to hit.
    std::size_t plan_stages = 0;
    std::size_t plan_jobs = 0;
    std::size_t plan_rdds = 0;
    std::string policy_name;
    DistanceMetric metric = DistanceMetric::kStage;
    double prefetch_threshold = 0.0;
    std::size_t memtune_window = 0;
    ProfileStore* profile_store = nullptr;
    NodeId num_nodes = 0;
    BlockPlacement placement = BlockPlacement::kRoundRobin;
    DagVisibility visibility = DagVisibility::kRecurring;
    /// Effective (clamped) worker count: the probe chunk packing and the
    /// event graph's compile-time parallelism accounting depend on it.
    std::size_t node_jobs = 1;
    Engine engine = Engine::kBarrier;
  };

  /// Destroys every structure under the current key and rewinds the arena.
  /// Arena consumers (event engine, chunk maps) go first.
  void teardown();

  Key key_;
  bool valid_ = false;
  bool fully_reused_ = false;
  Arena arena_;
  PolicySetup setup_;
  std::unique_ptr<BlockManagerMaster> master_;
  std::unique_ptr<LineageResolver> resolver_;
  std::unique_ptr<ClosurePartitioner> partitioner_;
  std::shared_ptr<void> event_engine_;
};

}  // namespace mrd
