// Demand-path resolution of persisted blocks, with Spark's lineage
// semantics: a cache miss on a persisted block is satisfied by the node's
// disk copy if one exists, otherwise by recomputing the block from its
// lineage — recursively probing persisted ancestors (each a real cache
// access), re-reading shuffle files and HDFS sources, and re-caching the
// recomputed block.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "cluster/block_manager_master.h"
#include "dag/execution_plan.h"
#include "sim/node_accounting.h"
#include "util/flat_hash.h"

namespace mrd {

class LineageResolver {
 public:
  LineageResolver(const ExecutionPlan& plan, BlockManagerMaster* master);

  /// Pooled rewind: zeroes the per-run recompute charges. The shuffle-edge
  /// map is derived from the plan alone and the resolver is rebuilt whenever
  /// the plan changes, so it carries over untouched.
  void reset_for_reuse() {
    std::fill(recompute_cpu_ms_by_node_.begin(),
              recompute_cpu_ms_by_node_.end(), 0.0);
  }

  /// "No horizon": every node dereference replays to the journal end (the
  /// serial runner's semantics, where the journal never runs ahead of the
  /// instruction stream).
  static constexpr std::size_t kNoHorizon = static_cast<std::size_t>(-1);

  /// Resolves a demand read of `block` (whose RDD must be persisted):
  /// probe → disk read → lineage recomputation, charging all costs into
  /// `acct` (indexed by node). Returns the probe outcome for metrics.
  /// `horizon` bounds the journal replay of every node the closure touches
  /// (BlockManagerMaster::node_at) — the event scheduler passes the probe
  /// instruction's journal position so overlapped stages never leak future
  /// events into a node's policy.
  ProbeOutcome demand_block(const BlockId& block,
                            std::vector<NodeAccounting>* acct,
                            std::size_t horizon = kNoHorizon);

  /// CPU milliseconds spent in lineage recomputation so far. Accumulated
  /// per charged node and summed in node-ID order, so the value is
  /// bit-identical no matter how per-node work is interleaved or
  /// parallelized.
  double recompute_cpu_ms() const {
    double total = 0.0;
    for (double ms : recompute_cpu_ms_by_node_) total += ms;
    return total;
  }

 private:
  /// Charges the cost of recomputing partition `partition` of `rdd` to
  /// `charge_node` (the node whose task performs it).
  void recompute_cost(RddId rdd, PartitionIndex partition, NodeId charge_node,
                      std::vector<NodeAccounting>* acct, int depth,
                      std::size_t horizon);

  ProbeOutcome demand_block_impl(const BlockId& block,
                                 std::vector<NodeAccounting>* acct, int depth,
                                 std::size_t horizon);

  void apply_charge(NodeId node, const IoCharge& charge,
                    std::vector<NodeAccounting>* acct) const;

  const ExecutionPlan& plan_;
  BlockManagerMaster* master_;
  /// (child, parent) packed into one key -> shuffle, for wide-edge lookup
  /// during recomputation.
  FlatMap64<ShuffleId> shuffle_by_edge_;
  /// Recompute CPU per charged node (index == NodeId).
  std::vector<double> recompute_cpu_ms_by_node_;
};

}  // namespace mrd
