// Event-driven per-node execution: the instruction scheduler that retires
// the runner's bulk-synchronous phase barriers.
//
// The stage loop of application_runner.cpp is compiled — ahead of any
// execution — into a DAG of small instructions with counted dependencies
// (the ready/pending shape of oneflow's VM scheduler):
//
//   kIssue(n, s)      refresh node n's prefetch orders for stage s;
//   kProbe(r, g)      demand-probe the blocks of probe region r (one
//                     (stage, rdd) pair) owned by closure group g, in the
//                     region's shared seeded permutation order;
//   kAcct(n, s)       node n's deterministic stage accounting (source /
//                     shuffle / compute / shuffle-write charges) plus its
//                     batched cache writes of newly persisted blocks;
//   kWall(s)          the stage-wall reduction over every node's accounting
//                     (the one inherent cross-node join per stage) and the
//                     stage's contribution to RunMetrics;
//   kServe(n, s)      serve node n's prefetch queue with the stage's idle
//                     disk time;
//   kPurge(n, s)      node n's stage-end proactive purge;
//   kBcast            a serialized DAG-event broadcast (only scheduled for
//                     policies with shared cross-node state, i.e. MRD);
//   kClose(s)         recycle stage s's accounting buffer.
//
// Dependencies come from three sources and nothing else:
//   * per-node FIFO edges — each node's instructions are chained in the
//     serial order, so every node (and every closure group member) observes
//     exactly the serial event subsequence;
//   * structural edges — probes/accounting feed the stage wall, the wall
//     feeds the serves, closes recycle buffers three stages behind;
//   * broadcast gates (MRD only) — the shared reference-distance state
//     mutates exactly at the serialized broadcast points, so every
//     instruction reading the table between two broadcasts runs between
//     them. Policies without shared state skip the gates entirely: their
//     whole journal is pre-appended and each instruction replays its nodes
//     only up to its own journal horizon (BlockManagerMaster::node_at), so
//     adjacent stages overlap across nodes.
//
// A ready instruction may execute on any worker; the per-block decision
// stream each node observes is the serial one by construction, so
// RunMetrics and every bench CSV are byte-identical to the serial oracle
// for any worker count.
#pragma once

#include "dag/execution_plan.h"
#include "exec/application_runner.h"
#include "metrics/run_metrics.h"

namespace mrd {

/// Runs `plan` on the event scheduler with config.node_jobs workers
/// (1 worker executes the whole instruction stream inline). Byte-identical
/// to run_plan with node_jobs == 1 for every worker count and any steal
/// schedule.
RunMetrics run_plan_event(const ExecutionPlan& plan, const RunConfig& config);

/// Test hook: forces the engine's work-stealing shards into the most
/// adversarial legal schedule — workers claim one instruction at a time and
/// every newly ready instruction lands on *another* worker's shard, so every
/// execution is preceded by a steal. Proves schedule-independence of the
/// decision stream (fuzz_identity_test). Not thread-safe against concurrent
/// runs; flip it only around whole runs.
void set_event_forced_steal_for_test(bool forced);

}  // namespace mrd
