// Closure-aware node partitioning: the static analysis behind intra-run
// node parallelism.
//
// The runner fans per-stage work across the simulated nodes, but a demand
// probe of a persisted block can execute a lineage-recompute closure
// (LineageResolver::demand_block) that *touches other nodes*: every
// persisted ancestor reached through a chain of non-persisted narrow
// dependencies is probed on that ancestor block's own owner node. Two nodes
// whose closures touch must be driven by the same worker, or their
// BlockManagers would observe events out of serial order (and race).
//
// ClosurePartitioner builds, per persisted RDD, the undirected "touches"
// graph over nodes induced by those closures and takes connected components
// as *node groups* — the unit the runner fans out while probing that RDD.
// A node-closed RDD (every closure stays on the probed block's owner)
// yields all-singleton groups and keeps full per-node fan-out; a fully
// cross-linked RDD collapses to one group and that probe loop runs
// serially; the sparse re-map coupling of the Pregel workloads' `vjoin`
// steps lands in between with real parallelism. Phases that never run
// closures (prefetch issue/serve, cache writes, purge) stay per-node
// regardless of grouping.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dag/execution_plan.h"
#include "dag/ids.h"
#include "dag/placement.h"

namespace mrd {

/// A partition of the cluster's nodes into groups that may execute
/// concurrently. Deterministic layout: each group's members are sorted
/// ascending, groups are ordered by their smallest member, and every node
/// appears in exactly one group.
struct NodeGroups {
  std::vector<std::vector<NodeId>> groups;

  std::size_t num_groups() const { return groups.size(); }
  std::size_t largest_group() const {
    std::size_t largest = 0;
    for (const auto& g : groups) largest = std::max(largest, g.size());
    return largest;
  }
};

/// How the group-parallel path engaged over one run (all counters are
/// properties of the plan and the fan-out configuration, never of thread
/// timing, so they are deterministic for a given config).
struct NodeParallelStats {
  /// True when the runner fanned work out at all (node_jobs > 1 on a
  /// multi-node cluster).
  bool engaged = false;
  /// Connected components of the union of every persisted RDD's touches
  /// graph. num_nodes components <=> the plan is node-closed.
  std::size_t plan_groups = 0;
  std::size_t num_nodes = 0;
  /// Per-(stage, RDD) probe fan-out regions executed, and how many of them
  /// had more than one group (i.e. ran closures concurrently).
  std::size_t probe_regions = 0;
  std::size_t probe_regions_parallel = 0;
  /// Probe *work* (block probes) executed in all regions and in the
  /// group-fanned ones — the probe-weighted form of the region counters
  /// above. A single fully-coupled region over a million-block RDD counts a
  /// million serial probes here but only one region above; the weighted
  /// share is what makes barrier- and event-mode runs comparable.
  std::uint64_t probes_total = 0;
  std::uint64_t probes_parallel = 0;
  /// Group-count spread over probe regions.
  std::size_t min_groups = 0;
  std::size_t max_groups = 0;
  std::size_t groups_sum = 0;
  /// Largest single group seen in any probe region.
  std::size_t largest_group = 0;
  /// Event-scheduler shape (zero for barrier/serial runs): how many
  /// instructions the run compiled to, the longest dependency chain through
  /// them, and the deepest per-node instruction queue. All three are
  /// properties of the compiled graph, never of thread timing.
  std::size_t instructions = 0;
  std::size_t critical_path = 0;
  std::size_t max_queue_depth = 0;
  /// Work-stealing engine runtime counters (zero for barrier/serial runs).
  /// Unlike everything above these ARE timing-dependent — steals happen
  /// wherever the schedule ran dry — so they are reported, never asserted
  /// equal across runs. The decision stream stays byte-identical no matter
  /// what these count (see DESIGN.md "Persistent executor").
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
  std::size_t max_shard_depth = 0;

  double mean_groups() const {
    return probe_regions > 0
               ? static_cast<double>(groups_sum) /
                     static_cast<double>(probe_regions)
               : 0.0;
  }
  double parallel_region_share() const {
    return probe_regions > 0
               ? static_cast<double>(probe_regions_parallel) /
                     static_cast<double>(probe_regions)
               : 0.0;
  }
  /// Probe-weighted share of parallel probe work (the honest successor of
  /// parallel_region_share for reporting).
  double parallel_probe_share() const {
    return probes_total > 0 ? static_cast<double>(probes_parallel) /
                                  static_cast<double>(probes_total)
                            : 0.0;
  }
  /// Structural overlap of the compiled instruction graph: how many
  /// instructions run per critical-path step if enough workers exist.
  double overlap() const {
    return critical_path > 0 ? static_cast<double>(instructions) /
                                   static_cast<double>(critical_path)
                             : 0.0;
  }
  /// Merge another run's counters (sweep aggregation).
  void merge(const NodeParallelStats& other);
};

/// Builds the touches graphs of an execution plan once and answers group
/// queries per probed RDD. Construction walks every persisted RDD's
/// recompute closure exactly as LineageResolver would execute it: descend
/// through non-persisted narrow parents with the index re-map
/// pj = j % parent.num_partitions, stop at sources (HDFS re-read) and wide
/// RDDs (shuffle-file rebuild), and record a touch edge
/// owner(child block) — owner(persisted parent block) at every persisted
/// ancestor. Closures *below* a persisted ancestor are folded in through
/// the persisted-reach closure (a cold probe of the ancestor recurses into
/// its own closure).
class ClosurePartitioner {
 public:
  ClosurePartitioner(const ExecutionPlan& plan, NodeId num_nodes,
                     BlockPlacement placement = BlockPlacement::kRoundRobin);

  NodeId num_nodes() const { return num_nodes_; }

  /// Node groups safe to fan out while probing `rdd`'s blocks: connected
  /// components of the touches graph of demand closures rooted at `rdd`,
  /// including everything reachable through cold probes of persisted
  /// ancestors. Non-persisted RDDs (never probed) get all-singleton groups.
  const NodeGroups& probe_groups(RddId rdd) const;

  /// Components of the union of every persisted RDD's touches graph — the
  /// whole-plan view. All-singleton (num_groups() == num_nodes) iff every
  /// closure in the plan stays on its owner node, which is exactly the
  /// question the former boolean gate (plan_supports_node_parallel)
  /// answered.
  const NodeGroups& plan_groups() const { return plan_groups_; }

 private:
  /// (a, b) node pairs with a < b; self-touches carry no constraint and are
  /// not stored.
  using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

  NodeGroups components_of(const std::vector<const EdgeList*>& edge_sets) const;

  const ExecutionPlan& plan_;
  NodeId num_nodes_;
  BlockPlacement placement_;
  /// Per-RDD deduplicated cross-node touch pairs of the *direct* closure
  /// (stopping at persisted ancestors). Index == RddId.
  std::vector<EdgeList> direct_edges_;
  /// Persisted ancestors reachable from each RDD's direct closure.
  std::vector<std::vector<RddId>> persisted_parents_;
  /// Transitive closure of persisted_parents_, including the RDD itself.
  std::vector<std::vector<RddId>> reach_;
  NodeGroups plan_groups_;
  /// Lazily computed per-RDD groups (queried from the runner's serial
  /// sections only).
  mutable std::vector<std::unique_ptr<NodeGroups>> probe_groups_;
  /// Shared all-singleton layout, built lazily once: every edge-free RDD —
  /// the overwhelming majority at large N — points here instead of owning
  /// its own O(num_nodes) copy per RDD.
  mutable std::unique_ptr<NodeGroups> singletons_;
};

}  // namespace mrd
