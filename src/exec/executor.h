// Process-wide persistent work-stealing executor.
//
// One pool of workers serves both parallel layers of the harness: sweep
// points (`SweepRunner`) and the event engine's helper workers
// (`node_scheduler.cpp`). Before this existed, every engine run spawned and
// joined raw std::threads and the sweep harness ran a separate allocating
// FIFO pool, so the two layers competed for cores instead of composing.
//
// Scheduling model:
//   * one deque per worker; the owner pushes and pops LIFO at the bottom
//     (back of the ring), thieves steal FIFO from the top (front), so a
//     worker runs its freshest work hot-in-cache while thieves drain the
//     oldest, coarsest tasks;
//   * each deque is guarded by its own mutex — tasks here are coarse
//     (a whole sweep point, a whole engine-helper session), so a per-deque
//     lock is nanoseconds against task bodies of micro- to milliseconds,
//     and it keeps the protocol trivially TSan-clean;
//   * sleeping workers park on a pending-count eventcount (seq_cst counter
//     + condvar); submitters wake at most as many sleepers as they queued
//     tasks (batched wakeups — one lock, one notify_all for a burst);
//   * submitters can pass a worker *hint*: the task is pushed onto that
//     worker's deque so work with warm per-thread state (a pooled
//     RunContext's arena slabs) re-runs on the core that last touched it.
//     Hints are advisory — any idle worker can still steal the task, which
//     is what keeps the pool work-conserving.
//
// Topology: when the machine exposes more than one NUMA node, workers are
// pinned round-robin across the nodes' cpulists (intersected with the
// process affinity mask) so a hinted task's arena slabs stay on the socket
// that allocated them. On single-node machines pinning is skipped entirely
// and hints degrade gracefully to plain deque targeting.
//
// Tasks are raw pointers to caller-owned objects (no per-submit
// allocation); `run()` is noexcept — implementations capture exceptions
// themselves (see SweepRunner's slots and TaskGroup). The pool never runs
// a task twice and never drops one: destruction drains every queued task.
//
// `MRD_NO_PERSISTENT_POOL=1` disables the pool (callers fall back to
// per-run spawning or inline execution); `MRD_EXECUTOR_THREADS=N`
// overrides the worker count, which otherwise follows
// hardware_concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/ring_deque.h"

namespace mrd {

/// Lifetime counters for the pool; all monotonic. `threads_spawned` stays
/// equal to the worker count after startup — the zero-per-run-spawn
/// invariant BM_SpawnVsPersistentPool asserts.
struct ExecutorStats {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;         ///< tasks claimed from another deque
  std::uint64_t failed_steals = 0;  ///< victim probes that found nothing
  std::uint64_t wakeups = 0;        ///< condvar notifications issued
  std::uint64_t threads_spawned = 0;
  std::size_t max_deque_depth = 0;  ///< deepest any single deque has been
};

class Executor {
 public:
  /// A schedulable unit. Implementations are owned by the submitter and
  /// must stay alive until run() returns; run() must not throw (capture
  /// and store exceptions instead).
  class Task {
   public:
    virtual void run(unsigned worker) noexcept = 0;

   protected:
    ~Task() = default;
  };

  /// The process-wide pool, created on first use with configured_width()
  /// workers. Callers must check enabled() first: constructing the
  /// instance spawns threads.
  static Executor& instance();

  /// Worker count the pool runs (or would run) with:
  /// MRD_EXECUTOR_THREADS if set and positive, else hardware_concurrency
  /// (min 1). Benches use this instead of hardware_concurrency directly so
  /// reported worker counts stay overridable and machine-independent.
  static std::size_t configured_width();

  /// False when MRD_NO_PERSISTENT_POOL=1 (or a test override says so):
  /// callers fall back to per-run spawning / inline execution.
  static bool enabled();

  /// Test hook: 1 forces the pool off, 0 forces it on, -1 restores the
  /// environment-variable behaviour.
  static void set_disabled_for_test(int disabled);

  /// Index of the pool worker running the current thread, or -1 off-pool.
  static int current_worker();

  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t width() const { return workers_.size(); }

  /// Queues one task. `hint` >= 0 targets that worker's deque (modulo
  /// width); otherwise the submitting worker's own deque, or round-robin
  /// from outside the pool.
  void submit(Task* task, int hint = -1);

  /// Queues `count` tasks with one wakeup decision (at most one lock of
  /// the sleep mutex for the whole batch).
  void submit_batch(Task* const* tasks, std::size_t count, int hint = -1);

  /// Aggregated lifetime counters (relaxed snapshot).
  ExecutorStats stats() const;

  /// True when workers were pinned across >1 NUMA node at startup.
  bool numa_pinned() const { return numa_pinned_; }

 private:
  struct alignas(64) Worker {
    std::mutex mu;
    RingDeque<Task*> deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::size_t> max_depth{0};
    std::thread thread;
  };

  explicit Executor(std::size_t width);

  void push_to(std::size_t target, Task* task);
  void wake(std::size_t queued);
  Task* try_pop_own(std::size_t self);
  Task* try_steal(std::size_t self);
  void worker_loop(std::size_t self);
  void pin_worker(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_target_{0};

  // Eventcount: pending_ counts queued-but-unclaimed tasks; sleepers_ is
  // only modified under sleep_mu_. All seq_cst — see worker_loop() for the
  // missed-wakeup argument.
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> threads_spawned_{0};
  bool numa_pinned_ = false;
};

/// Fork-join helper over the executor for independent type-erased jobs
/// (the planning drivers: table1/table3). Runs inline when the pool is
/// disabled or `max_parallel <= 1`. Nodes allocate (std::function) — this
/// is for coarse planning fan-outs, not the alloc-gated sweep path.
class TaskGroup {
 public:
  /// `max_parallel` caps how many jobs run concurrently; 0 means the
  /// executor's width.
  explicit TaskGroup(std::size_t max_parallel = 0);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queues fn(); results are communicated through captures.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted job finished; rethrows the first
  /// captured exception.
  void wait();

 private:
  struct Node;

  void dispatch_locked();
  void finished(Node* node);

  std::size_t max_parallel_;
  bool inline_mode_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Node>> nodes_;
  std::size_t next_ = 0;      ///< first not-yet-dispatched node
  std::size_t done_ = 0;      ///< finished count
  std::size_t in_flight_ = 0;
  std::exception_ptr error_;
};

}  // namespace mrd
