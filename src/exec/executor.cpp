#include "exec/executor.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>

#include <fstream>
#include <sstream>
#endif

namespace mrd {
namespace {

thread_local int tl_worker = -1;

/// Test override for enabled(): -1 follow env, 0 force-on, 1 force-off.
std::atomic<int> g_disabled_override{-1};

bool env_disabled() {
  static const bool disabled = [] {
    const char* raw = std::getenv("MRD_NO_PERSISTENT_POOL");
    return raw != nullptr && raw[0] == '1';
  }();
  return disabled;
}

#if defined(__linux__)
/// CPUs per NUMA node, intersected with the process affinity mask. Empty
/// or single-entry when the machine (or the mask) spans one node — pinning
/// is skipped in that case.
const std::vector<std::vector<int>>& numa_topology() {
  static const std::vector<std::vector<int>> topology = [] {
    std::vector<std::vector<int>> nodes;
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return nodes;
    for (int node = 0; node < 1024; ++node) {
      std::ifstream in("/sys/devices/system/node/node" +
                       std::to_string(node) + "/cpulist");
      if (!in.is_open()) break;
      std::string list;
      std::getline(in, list);
      std::vector<int> cpus;
      std::stringstream ss(list);
      std::string range;
      while (std::getline(ss, range, ',')) {
        if (range.empty()) continue;
        const std::size_t dash = range.find('-');
        const int lo = std::atoi(range.c_str());
        const int hi = dash == std::string::npos
                           ? lo
                           : std::atoi(range.c_str() + dash + 1);
        for (int cpu = lo; cpu <= hi && cpu < CPU_SETSIZE; ++cpu) {
          if (CPU_ISSET(cpu, &allowed)) cpus.push_back(cpu);
        }
      }
      if (!cpus.empty()) nodes.push_back(std::move(cpus));
    }
    return nodes;
  }();
  return topology;
}
#endif  // defined(__linux__)

}  // namespace

Executor& Executor::instance() {
  static Executor executor(configured_width());
  return executor;
}

std::size_t Executor::configured_width() {
  static const std::size_t width = [] {
    if (const char* raw = std::getenv("MRD_EXECUTOR_THREADS")) {
      const long parsed = std::atol(raw);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return width;
}

bool Executor::enabled() {
  const int forced = g_disabled_override.load();
  if (forced >= 0) return forced == 0;
  return !env_disabled();
}

void Executor::set_disabled_for_test(int disabled) {
  g_disabled_override.store(disabled);
}

int Executor::current_worker() { return tl_worker; }

Executor::Executor(std::size_t width) {
  MRD_CHECK(width > 0);
#if defined(__linux__)
  numa_pinned_ = numa_topology().size() > 1;
#endif
  workers_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < width; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
    threads_spawned_.fetch_add(1, std::memory_order_relaxed);
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void Executor::push_to(std::size_t target, Task* task) {
  Worker& worker = *workers_[target];
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lk(worker.mu);
    worker.deque.push_back(task);
    depth = worker.deque.size();
  }
  std::size_t seen = worker.max_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !worker.max_depth.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
}

void Executor::wake(std::size_t queued) {
  if (sleepers_.load() == 0) return;
  std::lock_guard<std::mutex> lk(sleep_mu_);
  const std::uint32_t asleep = sleepers_.load();
  if (asleep == 0) return;
  if (queued > 1 && asleep > 1) {
    sleep_cv_.notify_all();
    wakeups_.fetch_add(std::min<std::size_t>(queued, asleep),
                       std::memory_order_relaxed);
  } else {
    sleep_cv_.notify_one();
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Executor::submit(Task* task, int hint) {
  submit_batch(&task, 1, hint);
}

void Executor::submit_batch(Task* const* tasks, std::size_t count, int hint) {
  if (count == 0) return;
  const std::size_t width = workers_.size();
  std::size_t target;
  if (hint >= 0) {
    target = static_cast<std::size_t>(hint) % width;
  } else if (tl_worker >= 0) {
    target = static_cast<std::size_t>(tl_worker);
  } else {
    target = next_target_.fetch_add(1, std::memory_order_relaxed) % width;
  }
  for (std::size_t i = 0; i < count; ++i) {
    // Hinted batches land on one deque (locality); anonymous batches from
    // outside the pool spread round-robin so idle workers start without a
    // steal.
    const std::size_t t =
        (hint >= 0 || tl_worker >= 0) ? target : (target + i) % width;
    push_to(t, tasks[i]);
  }
  submitted_.fetch_add(count, std::memory_order_relaxed);
  pending_.fetch_add(count);  // seq_cst: must precede the sleepers_ read
  wake(count);
}

Executor::Task* Executor::try_pop_own(std::size_t self) {
  Worker& worker = *workers_[self];
  std::lock_guard<std::mutex> lk(worker.mu);
  if (worker.deque.empty()) return nullptr;
  Task* task = worker.deque.back();  // owner end: LIFO at the bottom
  worker.deque.pop_back();
  return task;
}

Executor::Task* Executor::try_steal(std::size_t self) {
  const std::size_t width = workers_.size();
  Worker& me = *workers_[self];
  for (std::size_t i = 1; i < width; ++i) {
    Worker& victim = *workers_[(self + i) % width];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (victim.deque.empty()) {
      me.failed_steals.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Task* task = victim.deque.front();  // thief end: FIFO from the top
    victim.deque.pop_front();
    me.steals.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  return nullptr;
}

void Executor::worker_loop(std::size_t self) {
  tl_worker = static_cast<int>(self);
  pin_worker(self);
  Worker& me = *workers_[self];
  for (;;) {
    Task* task = try_pop_own(self);
    if (task == nullptr) task = try_steal(self);
    if (task != nullptr) {
      pending_.fetch_sub(1);
      task->run(static_cast<unsigned>(self));
      me.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (stop_.load() && pending_.load() == 0) return;
    // Missed-wakeup safety: sleepers_ changes only under sleep_mu_ and the
    // predicate re-reads pending_. A submitter bumps pending_ (seq_cst)
    // *before* reading sleepers_: either it observes this sleeper and
    // notifies, or this sleeper's predicate observes the bump and never
    // blocks.
    sleepers_.fetch_add(1);
    sleep_cv_.wait(lk, [this] {
      return stop_.load() || pending_.load() > 0;
    });
    sleepers_.fetch_sub(1);
    if (stop_.load() && pending_.load() == 0) return;
  }
}

void Executor::pin_worker(std::size_t self) {
#if defined(__linux__)
  const auto& topology = numa_topology();
  if (topology.size() < 2) return;  // single socket: hints only, no pinning
  // Round-robin workers across nodes: worker i lives on node i % nodes,
  // free to float within that node's (allowed) cpulist.
  const std::vector<int>& cpus = topology[self % topology.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)self;
#endif
}

ExecutorStats Executor::stats() const {
  ExecutorStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.wakeups = wakeups_.load(std::memory_order_relaxed);
  stats.threads_spawned = threads_spawned_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    stats.executed += worker->executed.load(std::memory_order_relaxed);
    stats.steals += worker->steals.load(std::memory_order_relaxed);
    stats.failed_steals +=
        worker->failed_steals.load(std::memory_order_relaxed);
    stats.max_deque_depth =
        std::max(stats.max_deque_depth,
                 worker->max_depth.load(std::memory_order_relaxed));
  }
  return stats;
}

// ---------------------------------------------------------------------------
// TaskGroup

struct TaskGroup::Node : Executor::Task {
  TaskGroup* group = nullptr;
  std::function<void()> fn;
  std::exception_ptr error;

  void run(unsigned /*worker*/) noexcept override {
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    group->finished(this);
  }
};

TaskGroup::TaskGroup(std::size_t max_parallel)
    : max_parallel_(max_parallel == 0 ? Executor::configured_width()
                                      : max_parallel),
      inline_mode_(!Executor::enabled() || max_parallel_ <= 1) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destruction swallows task errors; call wait() to observe them.
  }
}

void TaskGroup::submit(std::function<void()> fn) {
  if (inline_mode_) {
    try {
      fn();
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto node = std::make_unique<Node>();
  node->group = this;
  node->fn = std::move(fn);
  nodes_.push_back(std::move(node));
  dispatch_locked();
}

void TaskGroup::dispatch_locked() {
  while (next_ < nodes_.size() && in_flight_ < max_parallel_) {
    Node* node = nodes_[next_].get();
    ++next_;
    ++in_flight_;
    Executor::instance().submit(node);
  }
}

void TaskGroup::finished(Node* node) {
  std::lock_guard<std::mutex> lk(mu_);
  ++done_;
  --in_flight_;
  if (node->error && !error_) error_ = node->error;
  dispatch_locked();
  if (done_ == nodes_.size() && in_flight_ == 0) cv_.notify_all();
}

void TaskGroup::wait() {
  if (!inline_mode_) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return done_ == nodes_.size() && in_flight_ == 0; });
  }
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace mrd
