#include "exec/lineage_resolver.h"

#include "util/check.h"

namespace mrd {

namespace {
// A lineage chain deeper than this indicates a malformed graph (RDD ids are
// dense, so chains are bounded by the RDD count; workloads stay << this).
constexpr int kMaxRecomputeDepth = 100000;

inline std::uint64_t pack_edge(RddId child, RddId parent) {
  return (static_cast<std::uint64_t>(child) << 32) | parent;
}
}  // namespace

LineageResolver::LineageResolver(const ExecutionPlan& plan,
                                 BlockManagerMaster* master)
    : plan_(plan), master_(master) {
  MRD_CHECK(master_ != nullptr);
  recompute_cpu_ms_by_node_.resize(master_->num_nodes(), 0.0);
  for (const ShuffleInfo& s : plan.shuffles()) {
    shuffle_by_edge_[pack_edge(s.reduce_rdd, s.map_rdd)] = s.id;
  }
}

ProbeOutcome LineageResolver::demand_block(const BlockId& block,
                                           std::vector<NodeAccounting>* acct,
                                           std::size_t horizon) {
  return demand_block_impl(block, acct, /*depth=*/0, horizon);
}

ProbeOutcome LineageResolver::demand_block_impl(
    const BlockId& block, std::vector<NodeAccounting>* acct, int depth,
    std::size_t horizon) {
  const RddInfo& info = plan_.app().rdd(block.rdd);
  MRD_CHECK_MSG(info.persisted,
                "demand_block on non-persisted RDD " << info.name);
  const NodeId owner = master_->owner(block);
  BlockManager& bm = master_->node_at(owner, horizon);

  IoCharge charge;
  const ProbeOutcome outcome =
      bm.probe(block, info.bytes_per_partition, &charge);
  apply_charge(owner, charge, acct);
  if (outcome != ProbeOutcome::kCold) return outcome;

  // Recompute from lineage and re-cache (Spark's getOrCompute path).
  recompute_cost(block.rdd, block.partition, owner, acct, depth, horizon);
  IoCharge cache_charge;
  bm.cache_block(block, info.bytes_per_partition, &cache_charge);
  apply_charge(owner, cache_charge, acct);
  return outcome;
}

void LineageResolver::recompute_cost(RddId rdd, PartitionIndex partition,
                                     NodeId charge_node,
                                     std::vector<NodeAccounting>* acct,
                                     int depth, std::size_t horizon) {
  MRD_CHECK_MSG(depth < kMaxRecomputeDepth, "lineage recursion runaway");
  const RddInfo& info = plan_.app().rdd(rdd);

  (*acct)[charge_node].cpu_task_ms += info.compute_ms_per_partition;
  recompute_cpu_ms_by_node_[charge_node] += info.compute_ms_per_partition;

  if (is_source(info.kind)) {
    // Re-read the source partition from (data-local) HDFS.
    (*acct)[charge_node].disk_read_bytes += info.bytes_per_partition;
    return;
  }

  if (is_wide(info.kind)) {
    // Shuffle files are retained for the application lifetime, so a wide
    // RDD's partition is rebuilt from the shuffle, not from parent RDDs.
    const NodeId n = master_->num_nodes();
    for (RddId p : info.parents) {
      const ShuffleId* sid = shuffle_by_edge_.find(pack_edge(rdd, p));
      MRD_CHECK(sid != nullptr);
      const ShuffleInfo& shuffle = plan_.shuffle(*sid);
      const std::uint64_t share =
          shuffle.bytes / std::max<std::uint64_t>(1, info.num_partitions);
      (*acct)[charge_node].network_bytes += share * (n - 1) / n;
      (*acct)[charge_node].disk_read_bytes += share / n;
    }
    return;
  }

  for (RddId p : info.parents) {
    const RddInfo& parent = plan_.app().rdd(p);
    const PartitionIndex pj = partition % parent.num_partitions;
    if (parent.persisted) {
      const BlockId parent_block{p, pj};
      demand_block_impl(parent_block, acct, depth + 1, horizon);
      const NodeId parent_owner = master_->owner(parent_block);
      if (parent_owner != charge_node) {
        // Pulling the parent partition across the network.
        (*acct)[charge_node].network_bytes += parent.bytes_per_partition;
      }
    } else {
      recompute_cost(p, pj, charge_node, acct, depth + 1, horizon);
    }
  }
}

void LineageResolver::apply_charge(NodeId node, const IoCharge& charge,
                                   std::vector<NodeAccounting>* acct) const {
  (*acct)[node].disk_read_bytes += charge.disk_read_bytes;
  (*acct)[node].disk_write_bytes += charge.disk_write_bytes;
}

}  // namespace mrd
