#include "exec/node_partition.h"

#include <algorithm>
#include <numeric>

#include "dag/transform.h"
#include "util/check.h"
#include "util/flat_hash.h"

namespace mrd {

namespace {

/// Minimal union-find over dense node IDs (path halving + union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

inline std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace

void NodeParallelStats::merge(const NodeParallelStats& other) {
  engaged = engaged || other.engaged;
  plan_groups = std::max(plan_groups, other.plan_groups);
  num_nodes = std::max(num_nodes, other.num_nodes);
  if (other.probe_regions > 0) {
    min_groups = probe_regions > 0 ? std::min(min_groups, other.min_groups)
                                   : other.min_groups;
    max_groups = std::max(max_groups, other.max_groups);
  }
  probe_regions += other.probe_regions;
  probe_regions_parallel += other.probe_regions_parallel;
  probes_total += other.probes_total;
  probes_parallel += other.probes_parallel;
  groups_sum += other.groups_sum;
  largest_group = std::max(largest_group, other.largest_group);
  instructions += other.instructions;
  critical_path += other.critical_path;
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  steals += other.steals;
  failed_steals += other.failed_steals;
  max_shard_depth = std::max(max_shard_depth, other.max_shard_depth);
}

ClosurePartitioner::ClosurePartitioner(const ExecutionPlan& plan,
                                       NodeId num_nodes,
                                       BlockPlacement placement)
    : plan_(plan),
      num_nodes_(std::max<NodeId>(num_nodes, 1)),
      placement_(placement) {
  const Application& app = plan.app();
  const std::size_t n = app.num_rdds();
  direct_edges_.resize(n);
  persisted_parents_.resize(n);
  reach_.resize(n);
  probe_groups_.resize(n);

  // --- Direct closure walk per persisted RDD: enumerate every partition's
  // descent through non-persisted narrow parents, recording the persisted
  // ancestors it demands and the cross-node pairs those demands create.
  FlatSet64 edge_set;      // packed (a, b), a < b — per-RDD, cleared by swap
  FlatSet64 visited;       // packed (rdd, index) — per-partition descent
  FlatSet64 parent_set;    // persisted ancestor ids — per-RDD
  std::vector<std::pair<RddId, PartitionIndex>> stack;
  for (const RddInfo& root : app.rdds()) {
    if (!root.persisted) continue;
    edge_set.clear();
    parent_set.clear();
    EdgeList& edges = direct_edges_[root.id];
    const std::uint32_t root_salt =
        placement_salt(root.id, num_nodes_, placement_);
    for (PartitionIndex j = 0; j < root.num_partitions; ++j) {
      const NodeId child_owner = (j + root_salt) % num_nodes_;
      visited.clear();
      stack.clear();
      stack.emplace_back(root.id, j);
      while (!stack.empty()) {
        const auto [id, index] = stack.back();
        stack.pop_back();
        if (!visited.insert(pack(id, index))) continue;
        const RddInfo& info = app.rdd(id);
        // Sources re-read HDFS, wide RDDs rebuild from retained shuffle
        // files: neither demands parent blocks.
        if (is_source(info.kind) || is_wide(info.kind)) continue;
        for (RddId p : info.parents) {
          const RddInfo& parent = app.rdd(p);
          MRD_CHECK(parent.num_partitions > 0);
          const PartitionIndex pj = index % parent.num_partitions;
          if (parent.persisted) {
            // demand_block of {p, pj}: probed (and possibly recomputed +
            // re-cached) on its own owner node.
            const NodeId parent_owner =
                placement_owner(BlockId{p, pj}, num_nodes_, placement_);
            if (parent_owner != child_owner) {
              const NodeId a = std::min(child_owner, parent_owner);
              const NodeId b = std::max(child_owner, parent_owner);
              if (edge_set.insert(pack(a, b))) edges.emplace_back(a, b);
            }
            if (parent_set.insert(p)) persisted_parents_[root.id].push_back(p);
          } else {
            stack.emplace_back(p, pj);
          }
        }
      }
    }
    std::sort(edges.begin(), edges.end());
    std::sort(persisted_parents_[root.id].begin(),
              persisted_parents_[root.id].end());
  }

  // --- Persisted-reach closure: a cold probe of a persisted ancestor runs
  // that ancestor's own closure inline, so a root's touch graph includes
  // every transitively reachable persisted RDD's direct edges.
  for (const RddInfo& root : app.rdds()) {
    if (!root.persisted) continue;
    std::vector<char> seen(n, 0);
    std::vector<RddId> dfs{root.id};
    seen[root.id] = 1;
    while (!dfs.empty()) {
      const RddId id = dfs.back();
      dfs.pop_back();
      reach_[root.id].push_back(id);
      for (RddId p : persisted_parents_[id]) {
        if (!seen[p]) {
          seen[p] = 1;
          dfs.push_back(p);
        }
      }
    }
    std::sort(reach_[root.id].begin(), reach_[root.id].end());
  }

  // --- Whole-plan components: union of every persisted RDD's direct edges.
  std::vector<const EdgeList*> all;
  all.reserve(n);
  for (const RddInfo& r : app.rdds()) {
    if (r.persisted) all.push_back(&direct_edges_[r.id]);
  }
  plan_groups_ = components_of(all);
}

const NodeGroups& ClosurePartitioner::probe_groups(RddId rdd) const {
  MRD_CHECK(rdd < probe_groups_.size());
  if (probe_groups_[rdd] != nullptr) return *probe_groups_[rdd];
  std::vector<const EdgeList*> sets;
  bool any_edges = false;
  if (plan_.app().rdd(rdd).persisted) {
    sets.reserve(reach_[rdd].size());
    for (RddId r : reach_[rdd]) {
      sets.push_back(&direct_edges_[r]);
      any_edges = any_edges || !direct_edges_[r].empty();
    }
  }
  if (!any_edges) {
    // Edge-free closure → all-singleton groups; share one layout instead of
    // materializing an O(num_nodes) copy for every such RDD.
    if (singletons_ == nullptr) {
      singletons_ = std::make_unique<NodeGroups>(components_of({}));
    }
    return *singletons_;
  }
  probe_groups_[rdd] = std::make_unique<NodeGroups>(components_of(sets));
  return *probe_groups_[rdd];
}

NodeGroups ClosurePartitioner::components_of(
    const std::vector<const EdgeList*>& edge_sets) const {
  UnionFind uf(num_nodes_);
  for (const EdgeList* edges : edge_sets) {
    for (const auto& [a, b] : *edges) uf.unite(a, b);
  }
  NodeGroups result;
  std::vector<std::uint32_t> group_of_root(num_nodes_, num_nodes_);
  for (NodeId node = 0; node < num_nodes_; ++node) {
    const std::uint32_t root = uf.find(node);
    if (group_of_root[root] == num_nodes_) {
      group_of_root[root] = static_cast<std::uint32_t>(result.groups.size());
      result.groups.emplace_back();
    }
    // Ascending iteration order: members are sorted and the group list is
    // ordered by smallest member by construction.
    result.groups[group_of_root[root]].push_back(node);
  }
  return result;
}

}  // namespace mrd
