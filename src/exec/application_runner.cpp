#include "exec/application_runner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/block_manager_master.h"
#include "dag/dag_scheduler.h"
#include "exec/lineage_resolver.h"
#include "exec/node_partition.h"
#include "exec/node_scheduler.h"
#include "exec/run_context.h"
#include "sim/node_accounting.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"

namespace mrd {

namespace {

/// Issues new prefetch orders on nodes [lo, hi) (Algorithm 1 lines 24–29).
/// Each node's BlockManager streams its policy's budgeted candidate
/// generator through the issue/force/stop decisions
/// (BlockManager::refresh_prefetch_orders), so the cost per node is
/// proportional to the candidates examined — not the candidate universe.
/// Each node's decisions read only its own BlockManager/policy plus the
/// shared (read-only between stage events) distance table, so disjoint node
/// ranges can run concurrently.
void issue_prefetch_orders(const ExecutionPlan& plan, BlockManagerMaster* master,
                           std::size_t max_queue, NodeId lo, NodeId hi) {
  for (NodeId n = lo; n < hi; ++n) {
    // A node with no disk copies has nothing to prefetch *from* (every
    // offer would come back kSkipped) and, with no queued orders, nothing
    // to flush either: the whole refresh is a no-op. Skipping it without
    // dereferencing the node is what keeps this phase O(nodes that ever
    // spilled), not O(cluster). Decision-identical: the only state a
    // no-op refresh would advance is the policy's resume cursor, and any
    // event that later creates a disk copy (a spill rides an eviction)
    // invalidates that cursor anyway.
    if ((master->node_activity(n) & (kNodeHasDisk | kNodeHasQueue)) == 0) {
      continue;
    }
    master->node(n).refresh_prefetch_orders(plan, max_queue);
  }
}

}  // namespace

bool plan_supports_node_parallel(const ExecutionPlan& plan, NodeId num_nodes) {
  if (num_nodes <= 1) return true;
  // Exact form of the question: the whole-plan touches graph decomposes into
  // one singleton component per node iff every recompute closure stays on
  // the probed block's owner.
  return ClosurePartitioner(plan, num_nodes).plan_groups().num_groups() ==
         num_nodes;
}

RunMetrics run_application(std::shared_ptr<const Application> app,
                           const RunConfig& config) {
  const ExecutionPlan plan = DagScheduler::plan(std::move(app));
  return run_plan(plan, config);
}

RunMetrics run_plan(const ExecutionPlan& plan, const RunConfig& config) {
  const NodeId num_nodes = config.cluster.num_nodes;
  // Engine dispatch: every parallel run goes through the event scheduler
  // (same bytes out, no per-phase fan/join). What remains below is the
  // serial oracle — `--exec barrier` pins it for differential tests, and
  // it is the path single-worker sweep points take. Its old bulk-
  // synchronous fan-out scaffolding (per-phase thread pool, node chunking,
  // probe-region chunk maps) was folded out once the event engine had
  // soaked: intra-run parallelism is the scheduler's job now.
  if (RunContext::engine_for(config) == RunContext::Engine::kEvent) {
    return run_plan_event(plan, config);
  }
  // All per-run structures live in a RunContext: the caller's pooled one
  // when provided (reset in place on a key match — the sweep steady state),
  // a fresh local otherwise. Identical behavior either way.
  RunContext local_context;
  RunContext& ctx = config.context != nullptr ? *config.context : local_context;
  ctx.prepare(plan, config);
  PolicySetup& setup = ctx.setup();
  BlockManagerMaster& master = ctx.master();
  LineageResolver& resolver = ctx.resolver();

  ClosurePartitioner* partitioner = nullptr;
  if (config.parallel_stats != nullptr) {
    // The group decomposition is a deterministic property of the plan, so
    // the serial oracle still reports it (engaged stays false: nothing
    // fans out here). Cached in the context: the partitioner depends only
    // on key fields, so a reused run pays nothing (the timer measures ~0).
    {
      ScopedTimer timer(config.phase_timers, SimPhase::kPartition);
      partitioner = &ctx.ensure_partitioner(plan);
    }
    *config.parallel_stats = NodeParallelStats{};
    config.parallel_stats->plan_groups = partitioner->plan_groups().num_groups();
    config.parallel_stats->num_nodes = num_nodes;
  }

  RunMetrics metrics;
  metrics.workload = plan.app().name();
  metrics.policy = config.policy.name;

  const BlockPlacement placement = config.cluster.placement;

  // Background (prefetch) I/O accumulates here; it rides inside stage
  // windows and never extends them, but the bytes are real.
  IoCharge background;

  // Per-run scratch, reset in place each stage (and pooled across runs via
  // the context): the stage loop used to reallocate all of these per stage
  // (and the batch buffer per RDD per node), which dominated allocator
  // traffic on probe-light stages.
  std::vector<NodeAccounting>& acct = ctx.acct;
  std::vector<IoCharge>& node_background = ctx.node_background;
  std::vector<PartitionIndex>& order = ctx.order;
  std::vector<std::vector<BlockId>>& batch_scratch = ctx.batch_scratch;
  if (batch_scratch.size() < num_nodes) batch_scratch.resize(num_nodes);

  if (config.visibility == DagVisibility::kRecurring) {
    ScopedTimer timer(config.phase_timers, SimPhase::kBroadcast);
    master.broadcast_application_start(plan);
  }

  for (const JobInfo& job : plan.jobs()) {
    {
      ScopedTimer timer(config.phase_timers, SimPhase::kBroadcast);
      master.broadcast_job_start(plan, job.id);
    }
    metrics.jct_ms += config.cluster.job_overhead_ms;

    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kBroadcast);
        master.broadcast_stage_start(plan, job.id, rec.stage);
      }

      // Refresh prefetch orders against the distances as of this stage; the
      // queue is served with this stage's idle disk time, so a block needed
      // next stage can still arrive in time.
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kPrefetchIssue);
        issue_prefetch_orders(plan, &master, config.max_prefetch_queue, 0,
                              num_nodes);
      }

      acct.assign(num_nodes, NodeAccounting{});

      // -- Cached-RDD probes (the block references cache policies compete
      //    on).
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kProbes);
        // `order` is run-scope scratch: the loop body re-fills it every
        // iteration, so only capacity carries over — no per-RDD (or
        // per-stage) allocation churn.
        for (RddId p : rec.probes) {
          const RddInfo& info = plan.app().rdd(p);
          // Tasks are scheduled in waves, not in partition order: probe the
          // blocks in a per-(stage, rdd) pseudo-random permutation. Without
          // this, a strictly cyclic order drives recency-based policies off a
          // 0%-hit cliff that real executors do not exhibit. Seeded, so runs
          // stay deterministic. The permutation is drawn once, up front:
          // every node worker walks the same order, keeping each node's
          // probe subsequence independent of the worker count.
          order.resize(info.num_partitions);
          for (PartitionIndex j = 0; j < info.num_partitions; ++j) {
            order[j] = j;
          }
          Rng rng((static_cast<std::uint64_t>(rec.stage) << 32) ^ p);
          for (std::size_t j = order.size(); j > 1; --j) {
            std::swap(order[j - 1], order[rng.next_below(j)]);
          }
          // Group decomposition accounting (plan shape, not thread timing):
          // what the event engine's probe regions would fan into.
          if (partitioner != nullptr && config.parallel_stats != nullptr) {
            const NodeGroups& groups = partitioner->probe_groups(p);
            NodeParallelStats& st = *config.parallel_stats;
            const std::size_t g = groups.num_groups();
            st.probe_regions += 1;
            st.probes_total += info.num_partitions;
            st.min_groups =
                st.probe_regions == 1 ? g : std::min(st.min_groups, g);
            st.max_groups = std::max(st.max_groups, g);
            st.groups_sum += g;
            st.largest_group =
                std::max(st.largest_group, groups.largest_group());
          }
          for (PartitionIndex j : order) {
            resolver.demand_block(BlockId{p, j}, &acct);
          }
          // This stage is done reading p: its reference is consumed, so
          // mid-stage eviction decisions rank p by its *next* use. A serial
          // barrier: the shared distance table only mutates between
          // fan-outs.
          master.broadcast_rdd_probed(plan, p, rec.stage);
        }
      }

      // -- Source (HDFS) reads: data-local disk.
      for (RddId s : rec.source_reads) {
        const RddInfo& info = plan.app().rdd(s);
        for (PartitionIndex j = 0; j < info.num_partitions; ++j) {
          acct[j % num_nodes].disk_read_bytes += info.bytes_per_partition;
        }
      }

      // -- Shuffle reads: every node pulls its share, mostly remote.
      for (ShuffleId sid : rec.shuffle_reads) {
        const ShuffleInfo& shuffle = plan.shuffle(sid);
        const std::uint64_t share = shuffle.bytes / num_nodes;
        for (NodeId n = 0; n < num_nodes; ++n) {
          acct[n].network_bytes += share * (num_nodes - 1) / num_nodes;
          acct[n].disk_read_bytes += share / num_nodes;
        }
      }

      // -- Task computation.
      const StageInfo& stage = plan.stage(rec.stage);
      double per_task_ms = 0.0;
      for (RddId r : rec.computes) {
        const RddInfo& info = plan.app().rdd(r);
        per_task_ms += info.compute_ms_per_partition *
                       static_cast<double>(info.num_partitions) /
                       static_cast<double>(stage.num_tasks);
      }
      for (PartitionIndex i = 0; i < stage.num_tasks; ++i) {
        acct[i % num_nodes].add_task(per_task_ms);
      }

      // -- Shuffle write of map stages.
      if (stage.shuffle_write) {
        const ShuffleInfo& shuffle = plan.shuffle(*stage.shuffle_write);
        const std::uint64_t share = shuffle.bytes / num_nodes;
        for (NodeId n = 0; n < num_nodes; ++n) {
          acct[n].disk_write_bytes += share;
        }
      }

      // -- Cache newly materialized persisted RDDs. Writes touch only the
      //    owner node's store/policy, so the loop fans out by owner, and
      //    each node's slice of one RDD (its owned partitions, ascending —
      //    enumerated directly with stride num_nodes, not by filtering all
      //    partitions) lands as one batched admission. The per-node event
      //    subsequence is the serial one: node n saw exactly these blocks
      //    in this order under the per-block loop too.
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kCacheWrites);
        for (NodeId n = 0; n < num_nodes; ++n) {
          // Pooled per-node batch buffer.
          std::vector<BlockId>& batch = batch_scratch[n];
          for (RddId r : rec.computes) {
            const RddInfo& info = plan.app().rdd(r);
            if (!info.persisted) continue;
            batch.clear();
            const PartitionIndex first =
                first_local_partition(r, n, num_nodes, placement);
            for (PartitionIndex j = first; j < info.num_partitions;
                 j += num_nodes) {
              batch.push_back(BlockId{r, j});
            }
            if (batch.empty()) continue;
            IoCharge charge;
            master.node(n).cache_blocks(batch.data(), batch.size(),
                                        info.bytes_per_partition, &charge);
            acct[n].disk_read_bytes += charge.disk_read_bytes;
            acct[n].disk_write_bytes += charge.disk_write_bytes;
          }
        }
      }

      // -- Stage wall time (barrier), then let prefetch I/O soak up the
      //    disk idle time inside the window.
      const double wall = stage_wall_ms(acct, config.cluster);
      const double inner_wall = wall - config.cluster.stage_overhead_ms;
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kPrefetchServe);
        node_background.assign(num_nodes, IoCharge{});
        for (NodeId n = 0; n < num_nodes; ++n) {
          // An empty prefetch queue serves nothing whatever the slack:
          // skip the node without dereferencing it. (Cancelled husks may
          // linger in a skipped queue; they are popped for free the next
          // time the node has live orders to serve.)
          if ((master.node_activity(n) & kNodeHasQueue) == 0) continue;
          // The disk is idle whenever it is not serving demand
          // reads/writes; network-bound or compute-bound intervals are
          // prefetch opportunity.
          const double slack = inner_wall - acct[n].disk_ms(config.cluster);
          if (slack > 0.0) {
            master.node(n).serve_prefetch(slack, &node_background[n]);
          }
        }
        for (NodeId n = 0; n < num_nodes; ++n) {
          background.disk_read_bytes += node_background[n].disk_read_bytes;
          background.disk_write_bytes += node_background[n].disk_write_bytes;
        }
      }

      metrics.jct_ms += wall;
      if (config.record_stage_timings) {
        metrics.stage_timings.push_back(
            StageTiming{rec.stage, rec.job, wall,
                        max_cpu_ms(acct, config.cluster),
                        max_io_ms(acct, config.cluster)});
      }
      for (const NodeAccounting& a : acct) {
        metrics.disk_bytes_read += a.disk_read_bytes;
        metrics.disk_bytes_written += a.disk_write_bytes;
        metrics.network_bytes += a.network_bytes;
      }

      // -- Eviction phase of Algorithm 1 at the stage boundary: consume the
      //    stage's references, then drop newly inactive RDDs cluster-wide
      //    (each node's purge is independent of the others').
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kBroadcast);
        master.broadcast_stage_end(plan, job.id, rec.stage);
      }
      {
        ScopedTimer timer(config.phase_timers, SimPhase::kPurge);
        master.execute_purge(0, num_nodes);
      }
    }
  }

  // Application end: persist the profile for recurring-run detection.
  if (setup.manager != nullptr) {
    setup.manager->profiler().on_application_end(plan);
    metrics.mrd_table_peak_entries = setup.manager->stats().max_table_entries;
    metrics.mrd_update_messages = setup.manager->stats().table_update_messages;
  }

  const NodeCacheStats stats = master.aggregate_stats();
  metrics.probes = stats.probes;
  metrics.hits = stats.hits;
  metrics.per_rdd_probes.reserve(stats.per_rdd.size());
  for (std::size_t rdd = 0; rdd < stats.per_rdd.size(); ++rdd) {
    // The dense per-node tables hold {0, 0} for RDDs never probed; only
    // probed RDDs belong in the reported metrics.
    if (stats.per_rdd[rdd].first == 0 && stats.per_rdd[rdd].second == 0) {
      continue;
    }
    metrics.per_rdd_probes.emplace_back(static_cast<std::uint32_t>(rdd),
                                        stats.per_rdd[rdd]);
  }
  metrics.misses_from_disk = stats.disk_hits;
  metrics.misses_recompute = stats.cold_misses;
  metrics.blocks_cached = stats.blocks_cached;
  metrics.evictions = stats.evictions;
  metrics.spills = stats.spills;
  metrics.purged_blocks = stats.purged;
  metrics.uncacheable_blocks = stats.uncacheable;
  metrics.prefetches_issued = stats.prefetches_issued;
  metrics.prefetches_completed = stats.prefetches_completed;
  metrics.prefetches_useful = stats.prefetches_useful;
  metrics.prefetches_wasted = stats.prefetches_wasted;
  metrics.disk_bytes_read += background.disk_read_bytes;
  metrics.disk_bytes_written += background.disk_write_bytes;
  metrics.recompute_cpu_ms = resolver.recompute_cpu_ms();
  return metrics;
}

}  // namespace mrd
