// Persistent (per-process) store of application reference-distance profiles.
//
// The paper (§4.1): "a high percentage of workloads running in a cluster are
// recurring applications ... we save the DAG profile of the application from
// previous runs, in essence storing the reference distance information for
// each RDD." The AppProfiler records a profile on every run and checks
// subsequent runs for discrepancies (§4.4 fault tolerance: profile creation
// resumes/repairs across runs).
//
// The store is shared across simulation runs — including runs executing
// concurrently on sweep worker threads — so every accessor locks and lookups
// return copies rather than interior pointers.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "dag/reference_profile.h"

namespace mrd {

struct StoredProfile {
  ReferenceProfileMap references;
  /// How many completed runs contributed to this profile.
  std::size_t runs = 0;
  /// Incremented whenever a later run's DAG disagreed with the stored
  /// profile and the profile was replaced.
  std::size_t discrepancies = 0;
};

class ProfileStore {
 public:
  bool has_profile(const std::string& app_name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return profiles_.count(app_name) > 0;
  }

  /// Copy of the stored profile, or nullopt if this application is unknown.
  std::optional<StoredProfile> lookup(const std::string& app_name) const;

  /// Records a completed run's profile. If a stored profile exists and
  /// differs, it is replaced and the discrepancy counter bumped.
  void record(const std::string& app_name, ReferenceProfileMap profile);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return profiles_.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    profiles_.clear();
  }

 private:
  static bool profiles_equal(const ReferenceProfileMap& a,
                             const ReferenceProfileMap& b);
  mutable std::mutex mu_;
  std::map<std::string, StoredProfile> profiles_;
};

}  // namespace mrd
