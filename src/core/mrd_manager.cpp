#include "core/mrd_manager.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mrd {

MrdManager::MrdManager(std::shared_ptr<AppProfiler> profiler,
                       DistanceMetric metric, NodeId num_nodes)
    : profiler_(std::move(profiler)), metric_(metric), num_nodes_(num_nodes) {
  MRD_CHECK(profiler_ != nullptr);
}

void MrdManager::on_application_start(const ExecutionPlan& plan) {
  if (application_started_) return;
  application_started_ = true;
  if (profiler_->is_recurring(plan)) {
    ReferenceProfileMap profile = profiler_->application_profile(plan);
    reconcile_profile(&profile, plan);
    load_profile(profile);
    return;
  }
  // No stored profile: application_profile would parse this very plan
  // (build_reference_profile), so skip the intermediate map and feed the
  // table straight from the DAG — references read off the plan are in range
  // by construction (nothing to reconcile), and the pooled table re-admits
  // them into recycled storage, so the profile load allocates nothing in
  // the steady state. The table is insertion-order independent (sorted,
  // deduplicated per RDD), so this loads exactly what load_profile would.
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      for (RddId r : rec.probes) {
        table_.add_reference(r, rec.stage, rec.job);
      }
    }
  }
  ++distance_version_;
  note_table_broadcast();
}

void MrdManager::reconcile_profile(ReferenceProfileMap* profile,
                                   const ExecutionPlan& plan) {
  const std::size_t num_stages = plan.total_stages();
  const std::size_t num_jobs = plan.jobs().size();
  const std::size_t num_rdds = plan.app().num_rdds();
  std::size_t dropped = 0;
  for (auto it = profile->begin(); it != profile->end();) {
    if (it->first >= num_rdds) {
      dropped += it->second.references.size();
      it = profile->erase(it);
      continue;
    }
    std::vector<ReferenceEvent>& refs = it->second.references;
    const auto keep =
        std::remove_if(refs.begin(), refs.end(), [&](const ReferenceEvent& r) {
          return r.stage >= num_stages || r.job >= num_jobs;
        });
    dropped += static_cast<std::size_t>(refs.end() - keep);
    refs.erase(keep, refs.end());
    ++it;
  }
  if (dropped > 0) {
    stats_.profile_refs_reconciled += dropped;
    MRD_LOG_WARN << "stored profile disagrees with observed DAG ("
                 << num_stages << " stages, " << num_jobs << " jobs, "
                 << num_rdds << " RDDs): dropped " << dropped
                 << " out-of-range references (treated as infinite distance)";
  }
}

void MrdManager::on_job_start(const ExecutionPlan& plan, JobId job) {
  if (last_job_started_ != kInvalidJob && job <= last_job_started_) return;
  last_job_started_ = job;
  if (application_started_) {
    // Recurring mode already holds the full profile; the job DAG is only a
    // discrepancy check (profiles are deterministic here, so a no-op).
    return;
  }
  load_profile(profiler_->parse_job(plan, job));
}

void MrdManager::on_stage_start(const ExecutionPlan& plan, JobId job,
                                StageId stage) {
  (void)plan;
  if (last_stage_started_ != kInvalidStage && stage <= last_stage_started_) {
    return;
  }
  last_stage_started_ = stage;
  current_stage_ = stage;
  current_job_ = job;
  ++distance_version_;
  // References strictly before this stage can no longer be served — they
  // belong to stages the scheduler skipped (whose end event never fired to
  // consume them). Dropping them here keeps every mid-stage distance query
  // free of stale front references.
  table_.consume_stale_before(stage);
}

void MrdManager::on_stage_end(const ExecutionPlan& plan, JobId job,
                              StageId stage) {
  (void)plan;
  (void)job;
  if (last_stage_ended_ != kInvalidStage && stage <= last_stage_ended_) return;
  last_stage_ended_ = stage;
  table_.consume_up_to(stage);
  ++distance_version_;
}

void MrdManager::on_rdd_probed(RddId rdd, StageId stage) {
  // Every CacheMonitor forwards the same event. The first forward (at a
  // serialized broadcast point) consumes the references and records the
  // high-water mark; duplicate forwards — including lazy replays running
  // concurrently on node workers — hit the guard below and return without
  // writing anything, which is what makes replay thread-safe.
  if (rdd < rdd_probed_through_.size() && rdd_probed_through_[rdd] > stage) {
    return;
  }
  if (rdd >= rdd_probed_through_.size()) {
    rdd_probed_through_.resize(rdd + 1, 0);
  }
  rdd_probed_through_[rdd] = stage + 1;
  const std::size_t before = table_.num_entries();
  table_.consume_rdd_up_to(rdd, stage);
  if (table_.num_entries() != before) ++distance_version_;
}

void MrdManager::reset_for_reuse() {
  table_.clear();
  current_stage_ = 0;
  current_job_ = 0;
  // Monotonic epoch advance (never back to 1): stamps held by any
  // CacheMonitor — reset or not — can only ever equal versions the manager
  // already produced, so old memos are stale by construction.
  ++distance_version_;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    order_stamp_ = 0;
    purge_stamp_ = 0;
    ++order_version_;
    order_memo_.clear();
    purge_memo_.clear();
  }
  application_started_ = false;
  last_job_started_ = kInvalidJob;
  last_stage_started_ = kInvalidStage;
  last_stage_ended_ = kInvalidStage;
  rdd_probed_through_.clear();
  stats_ = MrdManagerStats{};
  profiler_->reset_for_reuse();
}

double MrdManager::distance(RddId rdd) const {
  return table_.distance(rdd, current_stage_, current_job_, metric_);
}

const std::vector<RddId>& MrdManager::purge_rdds() const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (purge_stamp_ != distance_version_) {
    table_.inactive_rdds(&purge_memo_);  // refilled in place, no allocation
    purge_stamp_ = distance_version_;
  }
  return purge_memo_;
}

const std::vector<RddId>& MrdManager::prefetch_order() const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  refresh_prefetch_order_locked();
  return order_memo_;
}

std::uint64_t MrdManager::prefetch_order_version() const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  refresh_prefetch_order_locked();
  return order_version_;
}

void MrdManager::refresh_prefetch_order_locked() const {
  if (order_stamp_ == distance_version_) return;
  // `order_scratch_` and the memo trade buffers on change, so the refresh
  // recycles the same two allocations for the run's lifetime.
  table_.by_ascending_distance(current_stage_, current_job_, metric_,
                               &order_scratch_);
  if (order_scratch_ != order_memo_) {
    order_memo_.swap(order_scratch_);
    ++order_version_;
  }
  order_stamp_ = distance_version_;
}

void MrdManager::load_profile(const ReferenceProfileMap& profile) {
  for (const auto& [rdd, p] : profile) {
    for (const ReferenceEvent& ref : p.references) {
      table_.add_reference(rdd, ref.stage, ref.job);
    }
  }
  ++distance_version_;
  note_table_broadcast();
}

void MrdManager::note_table_broadcast() {
  // One sendReferenceDistance message per worker node.
  stats_.table_update_messages += num_nodes_;
  stats_.max_table_entries =
      std::max(stats_.max_table_entries, table_.num_entries());
}

}  // namespace mrd
