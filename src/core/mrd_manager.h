// MRDManager (paper §4.2): the centralized component owning the MRD_Table.
//
// It receives reference-distance profiles from the AppProfiler
// (updateReferenceDistance), advances the table as stages execute
// (newReferenceDistance), and computes the eviction ordering, purge orders
// and prefetch orders that the per-node CacheMonitors act on
// (sendReferenceDistance / evictBlock / prefetchBlock in Table 2).
//
// In the real system every CacheMonitor holds a replica of the table and the
// manager pushes deltas; here the CacheMonitors share the manager object and
// we *count* the synchronization messages that would have been sent, so the
// §4.4 communication-overhead claim can be measured by the overhead bench.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/app_profiler.h"
#include "core/ref_distance_table.h"
#include "dag/execution_plan.h"
#include "dag/ids.h"

namespace mrd {

struct MrdManagerStats {
  std::size_t table_update_messages = 0;  // sendReferenceDistance broadcasts
  std::size_t purge_orders = 0;           // cluster-wide all-out purges
  std::size_t max_table_entries = 0;      // peak MRD_Table size
  /// References from a stored profile dropped because they named stages,
  /// jobs or RDDs the observed DAG does not have (stale recurring profile —
  /// the missing stages are treated as infinite distance).
  std::size_t profile_refs_reconciled = 0;
};

class MrdManager {
 public:
  /// `num_nodes` is used only for the message-count accounting.
  MrdManager(std::shared_ptr<AppProfiler> profiler, DistanceMetric metric,
             NodeId num_nodes);

  // ---- DAG event entry points (idempotent per event, so that every node's
  // CacheMonitor can forward them without double-application) ----

  /// Recurring mode: load the whole application profile.
  void on_application_start(const ExecutionPlan& plan);

  /// Ad-hoc mode: parse this job's DAG fragment and merge its references.
  void on_job_start(const ExecutionPlan& plan, JobId job);

  /// Execution advanced to `stage` of `job`.
  void on_stage_start(const ExecutionPlan& plan, JobId job, StageId stage);

  /// `stage` completed: its references are consumed; distances re-derived.
  void on_stage_end(const ExecutionPlan& plan, JobId job, StageId stage);

  /// `stage` finished reading `rdd` — consume that reference immediately
  /// (idempotent; every CacheMonitor forwards the same event).
  void on_rdd_probed(RddId rdd, StageId stage);

  /// Pooled-context rewind: empties the table, memos, idempotency guards and
  /// stats in place (retaining their storage) and resets the profiler's
  /// accumulation. The distance/order epochs advance monotonically instead
  /// of restarting, so every stamp a CacheMonitor memoized against the old
  /// run reads as stale with no per-RDD clearing.
  void reset_for_reuse();

  // ---- Queries used by the CacheMonitors ----

  /// Reference distance of `rdd` at the current execution position
  /// (+infinity = inactive or unknown).
  double distance(RddId rdd) const;

  /// RDDs whose reference lists ran empty — cluster-wide purge candidates.
  /// Memoized against distance_version(): all nodes share one computation
  /// per table change instead of rescanning every tracked RDD per node. The
  /// returned reference stays valid and stable until the next DAG event
  /// (table mutations only happen at serialized broadcast points).
  const std::vector<RddId>& purge_rdds() const;

  /// RDDs by ascending distance — prefetch priority (nearest first).
  /// Memoized like purge_rdds(): the sort runs once per table change, not
  /// once per node per stage.
  const std::vector<RddId>& prefetch_order() const;

  /// Epoch of the prefetch *ordering*: bumps only when prefetch_order()
  /// actually changes content, not on every distance_version() tick (a
  /// stage advance shifts all finite distances by the same amount and
  /// usually leaves the order intact). The per-node frontier cursors in the
  /// CacheMonitors stamp their enumeration state against this.
  std::uint64_t prefetch_order_version() const;

  DistanceMetric metric() const { return metric_; }
  StageId current_stage() const { return current_stage_; }
  JobId current_job() const { return current_job_; }

  /// Monotonic counter bumped whenever a distance query could change its
  /// answer (execution position advanced, references consumed or loaded).
  /// Lets the CacheMonitors memoize per-RDD distances between events; starts
  /// at 1 so a zero stamp always reads as stale.
  std::uint64_t distance_version() const { return distance_version_; }
  const RefDistanceTable& table() const { return table_; }
  const MrdManagerStats& stats() const { return stats_; }
  AppProfiler& profiler() { return *profiler_; }

 private:
  void load_profile(const ReferenceProfileMap& profile);
  /// Drops profile references that fall outside the observed DAG (stage /
  /// job / RDD out of range). A stored profile can disagree with the plan
  /// when a recurring application resubmits with a different shape; using
  /// its out-of-range references verbatim would assign finite distances to
  /// stages that will never execute, so they are reconciled to
  /// infinite-distance (absent) instead, with a warning.
  void reconcile_profile(ReferenceProfileMap* profile,
                         const ExecutionPlan& plan);
  void note_table_broadcast();
  /// Refreshes the prefetch-order memo if distance_version_ moved on.
  /// Caller must hold memo_mutex_.
  void refresh_prefetch_order_locked() const;

  std::shared_ptr<AppProfiler> profiler_;
  DistanceMetric metric_;
  NodeId num_nodes_;

  RefDistanceTable table_;
  StageId current_stage_ = 0;
  JobId current_job_ = 0;
  std::uint64_t distance_version_ = 1;

  // Query memos. Guarded by memo_mutex_ because the per-node decision
  // phases (prefetch issue, purge) query concurrently under --node-jobs;
  // the first caller after a table change computes, the rest reuse. The
  // memos never mutate while a parallel phase runs (distance_version_ only
  // moves at serialized broadcast points), so returning references is safe.
  mutable std::mutex memo_mutex_;
  mutable std::uint64_t order_stamp_ = 0;   // distance_version of the memo
  mutable std::uint64_t order_version_ = 1; // bumps on content change
  mutable std::vector<RddId> order_memo_;
  /// Refresh scratch: swapped with order_memo_ on content change, so both
  /// buffers recycle for the run's lifetime.
  mutable std::vector<RddId> order_scratch_;
  mutable std::uint64_t purge_stamp_ = 0;
  mutable std::vector<RddId> purge_memo_;

  // Idempotency guards (shared CacheMonitors all forward events). Each one
  // turns a duplicate delivery into a pure read — no writes at all — so
  // duplicate forwards may run concurrently (lazy broadcast replay).
  bool application_started_ = false;
  JobId last_job_started_ = kInvalidJob;
  StageId last_stage_started_ = kInvalidStage;
  StageId last_stage_ended_ = kInvalidStage;
  /// Per-RDD probe high-water mark: entry r holds stage+1 of the latest
  /// on_rdd_probed(r, stage) applied (0 = never probed).
  std::vector<StageId> rdd_probed_through_;

  MrdManagerStats stats_;
};

}  // namespace mrd
