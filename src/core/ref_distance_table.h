// The MRD_Table (Algorithm 1 of the paper): for every tracked RDD, the
// ascending list of future reference positions, in both stage-ID and job-ID
// coordinates. The reference distance of an RDD at execution position
// (stage, job) is the gap to its *nearest* remaining reference (Definition 1
// + §4.1: "for comparison it will only use the lowest one"); once the last
// reference is consumed the distance is infinite and the RDD is inactive.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "dag/ids.h"

namespace mrd {

/// Which workflow subdivision measures distance (paper §3.2, Fig 8).
enum class DistanceMetric { kStage, kJob };

class RefDistanceTable {
 public:
  /// Registers a future reference of `rdd` at (stage, job). References may
  /// arrive out of order across jobs (ad-hoc profiling); the table keeps
  /// them sorted. Duplicate (stage, job) entries for the same RDD collapse.
  void add_reference(RddId rdd, StageId stage, JobId job);

  /// Drops all references at or before (stage, job) — called when that stage
  /// execution completes. The reference being serviced by the running stage
  /// stays visible (distance 0) until this is called.
  void consume_up_to(StageId stage);

  /// Drops `rdd`'s references at or before `stage` — called the moment the
  /// running stage finishes reading the RDD, so its distance advances to the
  /// *next* reference for the remainder of the stage.
  void consume_rdd_up_to(RddId rdd, StageId stage);

  /// Drops references *strictly before* `stage`: they belong to execution
  /// positions already in the past (e.g. stages the scheduler skipped, whose
  /// end event therefore never consumed them) and can no longer be served.
  /// Called at stage start so that no query during the stage can observe a
  /// stale front reference.
  void consume_stale_before(StageId stage);

  /// Nearest remaining reference of `rdd`, or nullopt when inactive.
  std::optional<StageId> next_reference_stage(RddId rdd) const;
  std::optional<JobId> next_reference_job(RddId rdd) const;

  /// Reference distance from the current position under `metric`;
  /// +infinity when the RDD has no remaining references (the paper encodes
  /// this as a negative sentinel; we use +inf so that "largest distance
  /// evicted first" needs no special case). References whose stage is
  /// already in the past are skipped under *both* metrics — a stale entry
  /// must read as dead (infinite), never as maximally hot (0).
  double distance(RddId rdd, StageId current_stage, JobId current_job,
                  DistanceMetric metric) const;

  /// True if `rdd` was ever tracked but has no remaining references — the
  /// trigger for the cluster-wide purge order.
  bool is_inactive(RddId rdd) const;

  /// RDDs ordered by ascending distance (finite distances only) — the
  /// prefetch priority order.
  std::vector<RddId> by_ascending_distance(StageId current_stage,
                                           JobId current_job,
                                           DistanceMetric metric) const;

  /// All RDDs currently inactive (purge candidates).
  std::vector<RddId> inactive_rdds() const;

  /// Number of (rdd, reference) entries — the paper's §4.4 footprint claim
  /// ("largest MRD_Table contained < 300 references").
  std::size_t num_entries() const;
  std::size_t num_rdds() const { return refs_.size(); }

  void clear();

 private:
  struct Ref {
    StageId stage;
    JobId job;
    friend auto operator<=>(const Ref&, const Ref&) = default;
  };
  // deque: consumed from the front as execution advances.
  std::map<RddId, std::deque<Ref>> refs_;
};

}  // namespace mrd
