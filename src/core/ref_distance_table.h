// The MRD_Table (Algorithm 1 of the paper): for every tracked RDD, the
// ascending list of future reference positions, in both stage-ID and job-ID
// coordinates. The reference distance of an RDD at execution position
// (stage, job) is the gap to its *nearest* remaining reference (Definition 1
// + §4.1: "for comparison it will only use the lowest one"); once the last
// reference is consumed the distance is infinite and the RDD is inactive.
//
// Layout: RddId and StageId are small dense integers, so the table is
// vector-indexed on both axes — a per-RDD sorted reference array consumed
// from a head cursor, plus per-stage buckets of the RDDs referenced at that
// stage. The buckets make the per-stage consume_* calls incremental: only
// RDDs with a reference at the stages being retired are visited, instead of
// rescanning every tracked RDD (the former std::map sweep).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dag/ids.h"

namespace mrd {

/// Which workflow subdivision measures distance (paper §3.2, Fig 8).
enum class DistanceMetric { kStage, kJob };

class RefDistanceTable {
 public:
  /// Registers a future reference of `rdd` at (stage, job). References may
  /// arrive out of order across jobs (ad-hoc profiling); the table keeps
  /// them sorted. Duplicate (stage, job) entries for the same RDD collapse.
  void add_reference(RddId rdd, StageId stage, JobId job);

  /// Drops all references at or before (stage, job) — called when that stage
  /// execution completes. The reference being serviced by the running stage
  /// stays visible (distance 0) until this is called.
  void consume_up_to(StageId stage);

  /// Drops `rdd`'s references at or before `stage` — called the moment the
  /// running stage finishes reading the RDD, so its distance advances to the
  /// *next* reference for the remainder of the stage.
  void consume_rdd_up_to(RddId rdd, StageId stage);

  /// Drops references *strictly before* `stage`: they belong to execution
  /// positions already in the past (e.g. stages the scheduler skipped, whose
  /// end event therefore never consumed them) and can no longer be served.
  /// Called at stage start so that no query during the stage can observe a
  /// stale front reference.
  void consume_stale_before(StageId stage);

  /// Nearest remaining reference of `rdd`, or nullopt when inactive.
  std::optional<StageId> next_reference_stage(RddId rdd) const;
  std::optional<JobId> next_reference_job(RddId rdd) const;

  /// Reference distance from the current position under `metric`;
  /// +infinity when the RDD has no remaining references (the paper encodes
  /// this as a negative sentinel; we use +inf so that "largest distance
  /// evicted first" needs no special case). References whose stage is
  /// already in the past are skipped under *both* metrics — a stale entry
  /// must read as dead (infinite), never as maximally hot (0).
  double distance(RddId rdd, StageId current_stage, JobId current_job,
                  DistanceMetric metric) const;

  /// True if `rdd` has no remaining references — tracked RDDs whose list ran
  /// empty *and* RDDs never announced at all. An unknown RDD already reads
  /// as infinite distance (dead) from distance(), so it must read as
  /// inactive here too; the former "never tracked => false" answer made the
  /// two queries disagree about the same RDD.
  bool is_inactive(RddId rdd) const;

  /// RDDs ordered by ascending distance (finite distances only) — the
  /// prefetch priority order. Fills `out` in place (cleared first), reusing
  /// its capacity: the enumeration runs once per stage and must stay
  /// allocation-free in the steady state. Not concurrency-safe with itself
  /// (an internal scratch buffer is reused); callers serialize through the
  /// MrdManager memo lock.
  void by_ascending_distance(StageId current_stage, JobId current_job,
                             DistanceMetric metric,
                             std::vector<RddId>* out) const;
  std::vector<RddId> by_ascending_distance(StageId current_stage,
                                           JobId current_job,
                                           DistanceMetric metric) const {
    std::vector<RddId> out;
    by_ascending_distance(current_stage, current_job, metric, &out);
    return out;
  }

  /// All *announced* RDDs currently inactive (purge candidates). Unlike
  /// is_inactive, this cannot enumerate never-announced RDDs — the purge
  /// order is driven by the profile, and an RDD outside the profile has no
  /// blocks the table knows to name (its blocks already rank as
  /// infinite-distance eviction victims on every node). Fills `out` in
  /// place (cleared first), reusing its capacity.
  void inactive_rdds(std::vector<RddId>* out) const;
  std::vector<RddId> inactive_rdds() const {
    std::vector<RddId> out;
    inactive_rdds(&out);
    return out;
  }

  /// Number of (rdd, reference) entries — the paper's §4.4 footprint claim
  /// ("largest MRD_Table contained < 300 references").
  std::size_t num_entries() const { return live_entries_; }
  std::size_t num_rdds() const { return num_tracked_; }

  // ---- Activity log ------------------------------------------------------
  //
  // Append-only journal of RDD activity flips: one entry whenever a queue
  // goes empty -> non-empty ("became active") or non-empty -> empty
  // ("became inactive"). Per RDD the entries strictly alternate, starting
  // from the implicit initial state *inactive* (an RDD never announced has
  // nothing left to wait for). Consumers (the per-node CacheMonitors) keep a
  // read offset into the log and replay only the new suffix, which is what
  // makes their reclaimable-bytes counters O(flips) instead of
  // O(resident blocks) per query. The table only mutates at serialized DAG
  // events, so readers during the parallel decision phases see a stable log.

  /// Entries appended so far (offsets into the log are stable: the log only
  /// grows until clear()).
  std::size_t activity_log_size() const { return activity_log_.size(); }

  /// Decoded entry `i`: the RDD and whether it *became active* (true) or
  /// became inactive (false).
  std::pair<RddId, bool> activity_entry(std::size_t i) const {
    const std::uint64_t e = activity_log_[i];
    return {static_cast<RddId>(e >> 1), (e & 1) != 0};
  }

  void clear();

 private:
  struct Ref {
    StageId stage;
    JobId job;
    friend auto operator<=>(const Ref&, const Ref&) = default;
  };

  /// Capacity-preserving scratch for by_ascending_distance — cleared and
  /// refilled on every call, so only its storage carries over. Mutable
  /// because the enumeration is logically const; callers serialize access.
  mutable std::vector<std::pair<double, RddId>> scored_scratch_;

  /// Sorted references, live in [head, refs.size()): consumption advances
  /// the head instead of shifting the array.
  struct RefQueue {
    std::vector<Ref> refs;
    std::uint32_t head = 0;
    bool tracked = false;

    bool empty() const { return head >= refs.size(); }
    const Ref& front() const { return refs[head]; }
  };

  RefQueue& queue_for(RddId rdd);
  /// Registers `rdd` in the bucket of `stage` (clamped to the consume
  /// cursor, so late announcements are still revisited).
  void bucket_rdd(StageId stage, RddId rdd);
  /// Pops front references of `rdd` while `pred(front)` holds, logging the
  /// activity flip if the queue runs empty.
  template <typename Pred>
  void pop_front_while(RddId rdd, RefQueue& q, Pred&& pred) {
    const bool was_live = !q.empty();
    while (!q.empty() && pred(q.front())) {
      ++q.head;
      --live_entries_;
    }
    if (was_live && q.empty()) log_activity(rdd, /*active=*/false);
  }

  void log_activity(RddId rdd, bool active) {
    activity_log_.push_back((static_cast<std::uint64_t>(rdd) << 1) |
                            (active ? 1u : 0u));
  }

  std::vector<RefQueue> refs_;  // index == RddId
  /// stage -> RDDs announced with a reference at that stage. Entries may be
  /// stale (the reference already consumed via consume_rdd_up_to); popping
  /// re-checks the queue front, so stale entries are harmless.
  std::vector<std::vector<RddId>> stage_buckets_;
  /// Every reference at a stage < cursor has been consumed via the stage
  /// sweep; consume_up_to / consume_stale_before only visit buckets from
  /// here.
  StageId consume_cursor_ = 0;
  std::size_t live_entries_ = 0;
  std::size_t num_tracked_ = 0;
  /// Activity flips, encoded (rdd << 1) | became_active.
  std::vector<std::uint64_t> activity_log_;
};

}  // namespace mrd
