#include "core/policy_registry.h"

#include "cache/belady.h"
#include "cache/fifo.h"
#include "cache/lrc.h"
#include "cache/lru.h"
#include "cache/memtune.h"
#include "util/check.h"

namespace mrd {

namespace {

PolicySetup make_mrd(const PolicyConfig& config, NodeId num_nodes,
                     const MrdPolicyOptions& options, DistanceMetric metric) {
  auto profiler = std::make_shared<AppProfiler>(config.profile_store);
  auto manager =
      std::make_shared<MrdManager>(std::move(profiler), metric, num_nodes);
  PolicySetup setup;
  setup.manager = manager;
  setup.factory = [manager, options](NodeId node, NodeId nodes) {
    return std::make_unique<CacheMonitor>(manager, node, nodes, options);
  };
  return setup;
}

}  // namespace

PolicySetup make_policy(const PolicyConfig& config, NodeId num_nodes) {
  const std::string& name = config.name;
  PolicySetup setup;

  if (name == "lru") {
    setup.factory = [](NodeId, NodeId) { return std::make_unique<LruPolicy>(); };
  } else if (name == "fifo") {
    setup.factory = [](NodeId, NodeId) {
      return std::make_unique<FifoPolicy>();
    };
  } else if (name == "lrc") {
    setup.factory = [](NodeId, NodeId) { return std::make_unique<LrcPolicy>(); };
  } else if (name == "memtune") {
    const std::size_t window = config.memtune_window;
    setup.factory = [window](NodeId node, NodeId nodes) {
      return std::make_unique<MemTunePolicy>(node, nodes, window);
    };
  } else if (name == "belady") {
    setup.factory = [](NodeId, NodeId) {
      return std::make_unique<BeladyPolicy>();
    };
  } else if (name == "mrd" || name == "mrd-evict" || name == "mrd-prefetch" ||
             name == "mrd-job" || name == "mrd-guarded") {
    MrdPolicyOptions options;
    options.prefetch_threshold = config.prefetch_threshold;
    options.mrd_eviction = (name != "mrd-prefetch");
    options.mrd_prefetch = (name != "mrd-evict");
    options.guarded_prefetch = (name == "mrd-guarded");
    const DistanceMetric metric =
        (name == "mrd-job") ? DistanceMetric::kJob : config.metric;
    return make_mrd(config, num_nodes, options, metric);
  } else {
    MRD_CHECK_MSG(false, "unknown cache policy: " << name);
  }
  return setup;
}

std::vector<std::string> known_policies() {
  return {"lru",       "fifo",      "lrc",          "memtune",
          "belady",    "mrd",       "mrd-evict",    "mrd-prefetch",
          "mrd-job",   "mrd-guarded"};
}

}  // namespace mrd
