// CacheMonitor (paper §4.2): the per-worker-node MRD component, implemented
// as a CachePolicy so it plugs into the node's MemoryStore like every
// baseline. It holds (a replica of) the MRDManager's reference-distance
// table and makes the local decisions of Algorithm 1:
//
//  * eviction under pressure  — evict the resident block with the greatest
//    reference distance (lines 18–21);
//  * proactive purge          — blocks of inactive RDDs (lines 13–17);
//  * prefetch orders          — blocks of the nearest-referenced RDDs, with
//    forced eviction allowed while free memory exceeds the threshold
//    (lines 24–29; threshold experimentally 25% of cache space, §4.3).
//
// Every decision path is incremental: per-RDD residency tallies (counts,
// bytes, partition bitmaps) are maintained on each cache/evict event, so
// victim choice, the reclaimable-bytes threshold test, the furthest-resident
// memo, purge enumeration and the prefetch frontier all cost time
// proportional to the RDDs/blocks actually touched — never a rescan of the
// whole resident set or candidate universe.
//
// The Fig-4 ablation variants are expressed with two switches: with
// `mrd_eviction` off the victim choice degrades to Spark's default LRU;
// with `mrd_prefetch` off no prefetch orders are issued.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/resident_set.h"
#include "core/mrd_manager.h"
#include "util/flat_hash.h"

namespace mrd {

struct MrdPolicyOptions {
  bool mrd_eviction = true;
  bool mrd_prefetch = true;
  /// Prefetches may force evictions while free memory exceeds this fraction
  /// of capacity (paper: 25%).
  double prefetch_threshold = 0.25;
  /// The paper's §4.4 future-work improvement: before inserting a forced
  /// prefetch, check it is nearer than the furthest resident block; drop it
  /// otherwise. Off by default (the published MRD is deliberately
  /// aggressive); the ablation bench flips it.
  bool guarded_prefetch = false;
};

class CacheMonitor : public CachePolicy {
 public:
  CacheMonitor(std::shared_ptr<MrdManager> manager, NodeId node,
               NodeId num_nodes, const MrdPolicyOptions& options = {});

  std::string_view name() const override;

  void configure_placement(BlockPlacement placement) override {
    placement_ = placement;
  }

  void on_application_start(const ExecutionPlan& plan) override;
  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override;
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override;
  void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                     StageId stage) override;

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_blocks_cached(const BlockId* blocks, std::size_t count,
                        std::uint64_t bytes_each) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;

  std::optional<BlockId> choose_victim() override;
  void choose_victims(std::uint64_t bytes_needed,
                      const EvictionSink& sink) override;
  void purge_candidates(std::vector<BlockId>* out) override;
  void prefetch_candidates(const PrefetchBudget& budget,
                           const PrefetchSink& sink) override;
  bool prefetch_may_evict(std::uint64_t free_bytes,
                          std::uint64_t capacity) const override;
  bool prefetch_swap_improves(const BlockId& block) const override;
  bool should_promote(const BlockId& block, std::uint64_t free_bytes) override;
  void on_prefetch_insert(bool active) override;
  bool admit_prefetch(const BlockId& block) override;
  bool reset_for_reuse() override;

  const MrdManager& manager() const { return *manager_; }

  /// Bytes of resident data whose RDD is currently inactive (infinite
  /// distance) — the incrementally maintained input of the prefetch
  /// threshold test. Exposed so tests can check it against a from-scratch
  /// recomputation.
  std::uint64_t reclaimable_resident_bytes() const;

  /// Max cached_distance over all residents (-1.0 when nothing resident).
  /// Maintained incrementally: inserts raise the running max directly;
  /// only evicting the last block of the max-distance RDD (or a distance
  /// epoch change) triggers a recomputation, which scans the per-RDD
  /// residency tallies — O(#RDDs), not O(#resident blocks). Public for the
  /// property tests.
  double furthest_resident_distance() const;

 private:
  /// Per-RDD residency tally on this node. Tracks *all* resident blocks of
  /// the RDD (partition bitmap, counts, bytes) so that victim choice, purge
  /// enumeration and the reclaimable-bytes counter never need to rescan the
  /// resident set.
  struct RddResidency {
    /// Partition presence bitmap, grown on demand.
    std::vector<std::uint64_t> bits;
    /// Resident blocks of this RDD (any owner).
    std::uint32_t count = 0;
    /// Resident blocks owned by this node (partition % num_nodes == node) —
    /// the comparison against local_partition_count() that lets the
    /// prefetch frontier skip fully-resident RDDs in O(1).
    std::uint32_t local_count = 0;
    /// Resident bytes of this RDD (any owner).
    std::uint64_t bytes = 0;
    /// Greatest resident partition; valid while count > 0. Repaired by a
    /// downward bitmap scan when the current max is evicted.
    PartitionIndex max_partition = 0;
    /// Size shared by every resident block of this RDD while !mixed — the
    /// overwhelmingly common case (partitions of one RDD are equal-sized),
    /// which keeps per-block byte tracking out of the hash map entirely.
    std::uint64_t uniform_bytes = 0;
    /// A block of a different size arrived: per-block sizes live in
    /// block_bytes_ until the RDD fully drains.
    bool mixed = false;

    bool test(PartitionIndex p) const {
      const std::size_t w = p >> 6;
      return w < bits.size() && (bits[w] >> (p & 63)) & 1;
    }
  };

  /// manager_->distance(rdd), memoized against the manager's
  /// distance_version(): eviction scans ask for the same few RDD distances
  /// once per resident RDD, thousands of times between table changes.
  double cached_distance(RddId rdd) const;

  RddResidency& residency(RddId rdd);

  /// Replays the manager table's activity log suffix appended since the
  /// last call, updating reclaimable_bytes_ and rdd_active_ — O(new flips).
  void sync_activity() const;

  /// Residency/tally update of one cached block, minus the per-batch
  /// bookkeeping (sync_activity, residents_rev_ bump) factored out so
  /// on_blocks_cached pays it once per run.
  void tally_cached_block(const BlockId& block, std::uint64_t bytes);

  /// Size of a currently resident block of `r`.
  std::uint64_t resident_block_bytes(const RddResidency& r,
                                     const BlockId& block) const {
    return r.mixed ? *block_bytes_.find(pack_block_id(block))
                   : r.uniform_bytes;
  }

  /// Records a resident block's new size, demoting the RDD to per-block
  /// (mixed) tracking first if needed.
  void set_block_bytes(RddResidency& r, const BlockId& block,
                       std::uint64_t bytes);

  /// Materializes block_bytes_ entries (at uniform_bytes) for every block
  /// `r` currently holds and flips it to mixed tracking. O(resident blocks
  /// of the RDD), paid only when unequal sizes actually appear.
  void spill_to_mixed(RddResidency& r, RddId rdd);

  /// Post-sync_activity() activity state of `rdd` (false = no live
  /// references left, i.e. infinite distance).
  bool rdd_is_active(RddId rdd) const {
    return rdd < rdd_active_.size() && rdd_active_[rdd];
  }

  /// Whether this node owns `block` under the configured placement.
  bool owns_block(const BlockId& block) const {
    return placement_owner(block, num_nodes_, placement_) == node_;
  }

  /// Smallest partition of `rdd` owned by this node; local partitions are
  /// first, first + num_nodes, ... (see dag/placement.h).
  PartitionIndex first_local(RddId rdd) const {
    return first_local_partition(rdd, node_, num_nodes_, placement_);
  }

  /// Local partitions of `rdd` with `num_partitions` partitions under the
  /// configured placement.
  std::uint32_t local_partition_count(RddId rdd,
                                      PartitionIndex num_partitions) const {
    return local_partition_count_from(first_local(rdd), num_partitions,
                                      num_nodes_);
  }

  std::shared_ptr<MrdManager> manager_;
  NodeId node_;
  NodeId num_nodes_;
  BlockPlacement placement_ = BlockPlacement::kRoundRobin;
  MrdPolicyOptions options_;
  const ExecutionPlan* plan_ = nullptr;
  /// Recency order over residents — the LRU ablation's victim order. Only
  /// maintained when mrd_eviction is off (every MRD decision path runs off
  /// the per-RDD tallies instead, so the full variant skips the per-event
  /// recency-list surgery entirely).
  ResidentSet residents_;
  /// Sizes of resident blocks of *mixed* RDDs only — eviction events carry
  /// no byte count, so byte tallies unwind through RddResidency::
  /// uniform_bytes, falling back to this map when an RDD's blocks disagree.
  FlatMap64<std::uint64_t> block_bytes_;
  /// Resident blocks on this node (all RDDs) — purge_candidates' emptiness
  /// test (residents_ is only maintained in the LRU ablation).
  std::size_t resident_blocks_ = 0;
  /// True while a completed prefetch is being inserted: even in the
  /// prefetch-only ablation, prefetch-induced evictions pick the
  /// largest-distance victim (§4.3).
  bool prefetch_insert_active_ = false;
  /// Per-RDD (distance_version stamp, distance) memo; stamp 0 = unset.
  mutable std::vector<std::pair<std::uint64_t, double>> dist_memo_;
  /// Per-RDD residency tallies; index == RddId, grown on demand.
  std::vector<RddResidency> rdd_residency_;
  /// Bumped whenever the resident set gains or loses a block.
  std::uint64_t residents_rev_ = 0;

  // -- Incremental reclaimable-bytes counter (prefetch threshold test) --
  /// Σ bytes of resident blocks whose RDD is inactive; kept current by
  /// insert/evict events plus replay of the table's activity log.
  mutable std::uint64_t reclaimable_bytes_ = 0;
  /// Activity-log read offset (entries already replayed).
  mutable std::size_t activity_log_pos_ = 0;
  /// Replayed activity per RDD (true = has live references). Initial state
  /// inactive, matching the table's implicit initial state.
  mutable std::vector<bool> rdd_active_;

  // -- Incremental furthest-resident memo --
  mutable std::uint64_t furthest_version_stamp_ = 0;
  mutable bool furthest_dirty_ = false;
  mutable double furthest_memo_ = -1.0;

  // -- Persistent victim memo --
  /// Recomputes victim_ (full argmax over resident RDD tallies) if it is
  /// stale; returns whether anything is resident.
  bool refresh_victim();

  /// The current eviction target: argmax over resident RDDs of
  /// (distance, rdd), valid while victim_valid_ and the distance epoch
  /// stamp matches. The memo survives arbitrarily many evictions and
  /// admissions because neither can silently change the argmax: an
  /// admission re-arming an RDD (count 0 -> 1) with a larger key *replaces*
  /// the memo in O(1) (tally_cached_block), any other admission leaves all
  /// keys unchanged, and an eviction either drains the victim RDD
  /// (invalidating the memo) or shrinks a non-maximal one. Each full rescan
  /// is thus amortized over every block drained from the victim RDD — the
  /// serial path paid one rescan per eviction.
  bool victim_valid_ = false;
  std::uint64_t victim_stamp_ = 0;
  std::pair<double, RddId> victim_{};

  // -- Prefetch frontier cursor --
  /// Resume point into the manager's prefetch order: every enumeration
  /// position before (cursor_idx_, cursor_part_) held a *stable* skip — the
  /// block was resident, or had no disk copy (kSkipped from the sink).
  /// Both conditions can only change through events that bump
  /// residents_rev_ (evict/purge for residency; spills ride along with
  /// evictions for disk copies), and the order itself only changes with
  /// prefetch_order_version(); while both stamps match, the next pass
  /// resumes at the cursor instead of re-testing the prefix. The first
  /// issue, transient skip (kSkippedVolatile: queued-prefetch collisions,
  /// which can clear without touching the resident set) or stop freezes the
  /// frontier at that position — such candidates must be re-offered.
  bool cursor_valid_ = false;
  std::uint64_t cursor_order_version_ = 0;
  std::uint64_t cursor_residents_rev_ = 0;
  std::size_t cursor_idx_ = 0;
  PartitionIndex cursor_part_ = 0;
};

}  // namespace mrd
