// CacheMonitor (paper §4.2): the per-worker-node MRD component, implemented
// as a CachePolicy so it plugs into the node's MemoryStore like every
// baseline. It holds (a replica of) the MRDManager's reference-distance
// table and makes the local decisions of Algorithm 1:
//
//  * eviction under pressure  — evict the resident block with the greatest
//    reference distance (lines 18–21);
//  * proactive purge          — blocks of inactive RDDs (lines 13–17);
//  * prefetch orders          — blocks of the nearest-referenced RDDs, with
//    forced eviction allowed while free memory exceeds the threshold
//    (lines 24–29; threshold experimentally 25% of cache space, §4.3).
//
// The Fig-4 ablation variants are expressed with two switches: with
// `mrd_eviction` off the victim choice degrades to Spark's default LRU;
// with `mrd_prefetch` off no prefetch orders are issued.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/resident_set.h"
#include "core/mrd_manager.h"
#include "util/flat_hash.h"

namespace mrd {

struct MrdPolicyOptions {
  bool mrd_eviction = true;
  bool mrd_prefetch = true;
  /// Prefetches may force evictions while free memory exceeds this fraction
  /// of capacity (paper: 25%).
  double prefetch_threshold = 0.25;
  /// The paper's §4.4 future-work improvement: before inserting a forced
  /// prefetch, check it is nearer than the furthest resident block; drop it
  /// otherwise. Off by default (the published MRD is deliberately
  /// aggressive); the ablation bench flips it.
  bool guarded_prefetch = false;
};

class CacheMonitor : public CachePolicy {
 public:
  CacheMonitor(std::shared_ptr<MrdManager> manager, NodeId node,
               NodeId num_nodes, const MrdPolicyOptions& options = {});

  std::string_view name() const override;

  void on_application_start(const ExecutionPlan& plan) override;
  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override;
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override;
  void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                     StageId stage) override;

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;

  std::optional<BlockId> choose_victim() override;
  std::vector<BlockId> purge_candidates() override;
  std::vector<BlockId> prefetch_candidates(std::uint64_t free_bytes,
                                           std::uint64_t capacity) override;
  bool prefetch_may_evict(std::uint64_t free_bytes,
                          std::uint64_t capacity) const override;
  bool prefetch_swap_improves(const BlockId& block) const override;
  bool should_promote(const BlockId& block, std::uint64_t free_bytes) override;
  void on_prefetch_insert(bool active) override;
  bool admit_prefetch(const BlockId& block) override;

  const MrdManager& manager() const { return *manager_; }

 private:
  /// manager_->distance(rdd), memoized against the manager's
  /// distance_version(): eviction scans ask for the same few RDD distances
  /// once per resident block, thousands of times between table changes.
  double cached_distance(RddId rdd) const;

  /// Max cached_distance over all residents, memoized until either the
  /// distance table or the resident *set* changes (recency order is
  /// irrelevant to a max). The prefetch path asks this once per candidate
  /// block; uncached it was a full resident scan each time.
  double furthest_resident_distance() const;

  std::shared_ptr<MrdManager> manager_;
  NodeId node_;
  NodeId num_nodes_;
  MrdPolicyOptions options_;
  const ExecutionPlan* plan_ = nullptr;
  ResidentSet residents_;
  /// Sizes of resident blocks — needed to value inactive residents as
  /// reclaimable space in the prefetch-threshold test.
  FlatMap64<std::uint64_t> block_bytes_;
  /// True while a completed prefetch is being inserted: even in the
  /// prefetch-only ablation, prefetch-induced evictions pick the
  /// largest-distance victim (§4.3).
  bool prefetch_insert_active_ = false;
  /// Per-RDD (distance_version stamp, distance) memo; stamp 0 = unset.
  mutable std::vector<std::pair<std::uint64_t, double>> dist_memo_;
  /// Bumped whenever the resident set gains or loses a block.
  std::uint64_t residents_rev_ = 0;
  mutable std::uint64_t furthest_version_stamp_ = 0;
  mutable std::uint64_t furthest_residents_stamp_ = 0;
  mutable double furthest_memo_ = -1.0;
};

}  // namespace mrd
