#include "core/profile_store.h"

namespace mrd {

std::optional<StoredProfile> ProfileStore::lookup(
    const std::string& app_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = profiles_.find(app_name);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

void ProfileStore::record(const std::string& app_name,
                          ReferenceProfileMap profile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(app_name);
  if (it == profiles_.end()) {
    StoredProfile stored;
    stored.references = std::move(profile);
    stored.runs = 1;
    profiles_.emplace(app_name, std::move(stored));
    return;
  }
  StoredProfile& stored = it->second;
  if (!profiles_equal(stored.references, profile)) {
    stored.references = std::move(profile);
    ++stored.discrepancies;
  }
  ++stored.runs;
}

bool ProfileStore::profiles_equal(const ReferenceProfileMap& a,
                                  const ReferenceProfileMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [rdd, pa] : a) {
    const auto it = b.find(rdd);
    if (it == b.end()) return false;
    const RddReferenceProfile& pb = it->second;
    if (pa.creation.stage != pb.creation.stage ||
        pa.creation.job != pb.creation.job ||
        pa.references.size() != pb.references.size()) {
      return false;
    }
    for (std::size_t i = 0; i < pa.references.size(); ++i) {
      if (pa.references[i].stage != pb.references[i].stage ||
          pa.references[i].job != pb.references[i].job) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mrd
