#include "core/ref_distance_table.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mrd {

namespace {
constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Distance of a (non-stale) reference from the current position.
inline double ref_distance(const StageId ref_stage, const JobId ref_job,
                           StageId current_stage, JobId current_job,
                           DistanceMetric metric) {
  if (metric == DistanceMetric::kStage) {
    return static_cast<double>(ref_stage - current_stage);
  }
  // A reference later in this very job reads as distance 0 under the job
  // metric (§4.1: within one job the metric is "either infinite or zero").
  return ref_job >= current_job
             ? static_cast<double>(ref_job - current_job)
             : 0.0;
}
}  // namespace

RefDistanceTable::RefQueue& RefDistanceTable::queue_for(RddId rdd) {
  if (rdd >= refs_.size()) refs_.resize(rdd + 1);
  RefQueue& q = refs_[rdd];
  if (!q.tracked) {
    q.tracked = true;
    ++num_tracked_;
  }
  return q;
}

void RefDistanceTable::bucket_rdd(StageId stage, RddId rdd) {
  // A reference announced for an already-swept stage would never be visited
  // again; park it at the cursor so the next sweep retires it.
  const StageId slot = std::max(stage, consume_cursor_);
  if (slot >= stage_buckets_.size()) stage_buckets_.resize(slot + 1);
  stage_buckets_[slot].push_back(rdd);
}

void RefDistanceTable::add_reference(RddId rdd, StageId stage, JobId job) {
  RefQueue& q = queue_for(rdd);
  const Ref ref{stage, job};
  const auto live_begin = q.refs.begin() + q.head;
  const auto pos = std::lower_bound(live_begin, q.refs.end(), ref);
  if (pos != q.refs.end() && *pos == ref) return;  // duplicate announcement
  const bool was_empty = q.empty();
  q.refs.insert(pos, ref);
  ++live_entries_;
  if (was_empty) log_activity(rdd, /*active=*/true);
  bucket_rdd(stage, rdd);
}

void RefDistanceTable::consume_up_to(StageId stage) {
  for (StageId s = consume_cursor_; s <= stage && s < stage_buckets_.size();
       ++s) {
    for (RddId rdd : stage_buckets_[s]) {
      pop_front_while(rdd, refs_[rdd],
                      [&](const Ref& r) { return r.stage <= stage; });
    }
  }
  consume_cursor_ = std::max(consume_cursor_, stage + 1);
}

void RefDistanceTable::consume_rdd_up_to(RddId rdd, StageId stage) {
  if (rdd >= refs_.size()) return;
  pop_front_while(rdd, refs_[rdd],
                  [&](const Ref& r) { return r.stage <= stage; });
}

void RefDistanceTable::consume_stale_before(StageId stage) {
  for (StageId s = consume_cursor_;
       s < stage && s < stage_buckets_.size(); ++s) {
    for (RddId rdd : stage_buckets_[s]) {
      pop_front_while(rdd, refs_[rdd],
                      [&](const Ref& r) { return r.stage < stage; });
    }
  }
  consume_cursor_ = std::max(consume_cursor_, stage);
}

std::optional<StageId> RefDistanceTable::next_reference_stage(RddId rdd) const {
  if (rdd >= refs_.size() || refs_[rdd].empty()) return std::nullopt;
  return refs_[rdd].front().stage;
}

std::optional<JobId> RefDistanceTable::next_reference_job(RddId rdd) const {
  if (rdd >= refs_.size() || refs_[rdd].empty()) return std::nullopt;
  return refs_[rdd].front().job;
}

double RefDistanceTable::distance(RddId rdd, StageId current_stage,
                                  JobId current_job,
                                  DistanceMetric metric) const {
  if (rdd >= refs_.size() || !refs_[rdd].tracked) return kInfiniteDistance;
  const RefQueue& q = refs_[rdd];
  // References are sorted, so the first one at or after the current stage is
  // the nearest servable reference. Anything before it is stale — an entry
  // whose execution position already passed (normally removed by
  // consume_stale_before at stage start) — and must not make a dead RDD
  // look maximally hot under either metric.
  for (std::uint32_t i = q.head; i < q.refs.size(); ++i) {
    const Ref& ref = q.refs[i];
    if (ref.stage < current_stage) continue;
    return ref_distance(ref.stage, ref.job, current_stage, current_job,
                        metric);
  }
  return kInfiniteDistance;
}

bool RefDistanceTable::is_inactive(RddId rdd) const {
  // Unknown == never referenced == nothing left to wait for: inactive, in
  // agreement with distance() reporting infinity for the same RDD.
  if (rdd >= refs_.size() || !refs_[rdd].tracked) return true;
  return refs_[rdd].empty();
}

void RefDistanceTable::by_ascending_distance(StageId current_stage,
                                             JobId current_job,
                                             DistanceMetric metric,
                                             std::vector<RddId>* out) const {
  // `scored_scratch_` keeps its capacity across calls: the enumeration runs
  // once per stage on the steady-state path and must not allocate there.
  // Callers already serialize access (the MrdManager memo mutex).
  std::vector<std::pair<double, RddId>>& scored = scored_scratch_;
  scored.clear();
  for (RddId rdd = 0; rdd < refs_.size(); ++rdd) {
    const RefQueue& q = refs_[rdd];
    if (q.empty()) continue;
    // Reuse the front scan directly instead of re-resolving the RDD through
    // distance(): the queue is already at hand.
    double d = kInfiniteDistance;
    for (std::uint32_t i = q.head; i < q.refs.size(); ++i) {
      const Ref& ref = q.refs[i];
      if (ref.stage < current_stage) continue;
      d = ref_distance(ref.stage, ref.job, current_stage, current_job,
                       metric);
      break;
    }
    // All-stale queues read as infinite: effectively inactive, so they are
    // no more a prefetch candidate than an empty queue.
    if (d == kInfiniteDistance) continue;
    scored.emplace_back(d, rdd);
  }
  std::sort(scored.begin(), scored.end());
  out->clear();
  out->reserve(scored.size());
  for (const auto& [d, rdd] : scored) {
    (void)d;
    out->push_back(rdd);
  }
}

void RefDistanceTable::inactive_rdds(std::vector<RddId>* out) const {
  out->clear();
  for (RddId rdd = 0; rdd < refs_.size(); ++rdd) {
    if (refs_[rdd].tracked && refs_[rdd].empty()) out->push_back(rdd);
  }
}

void RefDistanceTable::clear() {
  // Capacity-preserving: the per-RDD reference arrays and per-stage buckets
  // keep their storage, so a pooled table reloaded with the same profile
  // performs no allocations. An untracked queue is observationally
  // identical to an absent one (infinite distance, inactive, never
  // enumerated), so emptying in place matches a fresh table exactly.
  for (RefQueue& q : refs_) {
    q.refs.clear();
    q.head = 0;
    q.tracked = false;
  }
  for (std::vector<RddId>& bucket : stage_buckets_) bucket.clear();
  activity_log_.clear();
  consume_cursor_ = 0;
  live_entries_ = 0;
  num_tracked_ = 0;
}

}  // namespace mrd
