#include "core/ref_distance_table.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mrd {

namespace {
constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();
}

void RefDistanceTable::add_reference(RddId rdd, StageId stage, JobId job) {
  auto& q = refs_[rdd];
  const Ref ref{stage, job};
  const auto pos = std::lower_bound(q.begin(), q.end(), ref);
  if (pos != q.end() && *pos == ref) return;  // duplicate announcement
  q.insert(pos, ref);
}

void RefDistanceTable::consume_up_to(StageId stage) {
  for (auto& [rdd, q] : refs_) {
    (void)rdd;
    while (!q.empty() && q.front().stage <= stage) q.pop_front();
  }
}

void RefDistanceTable::consume_rdd_up_to(RddId rdd, StageId stage) {
  const auto it = refs_.find(rdd);
  if (it == refs_.end()) return;
  auto& q = it->second;
  while (!q.empty() && q.front().stage <= stage) q.pop_front();
}

void RefDistanceTable::consume_stale_before(StageId stage) {
  for (auto& [rdd, q] : refs_) {
    (void)rdd;
    while (!q.empty() && q.front().stage < stage) q.pop_front();
  }
}

std::optional<StageId> RefDistanceTable::next_reference_stage(RddId rdd) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().stage;
}

std::optional<JobId> RefDistanceTable::next_reference_job(RddId rdd) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().job;
}

double RefDistanceTable::distance(RddId rdd, StageId current_stage,
                                  JobId current_job,
                                  DistanceMetric metric) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end()) return kInfiniteDistance;
  // References are sorted, so the first one at or after the current stage is
  // the nearest servable reference. Anything before it is stale — an entry
  // whose execution position already passed (normally removed by
  // consume_stale_before at stage start) — and must not make a dead RDD
  // look maximally hot under either metric.
  for (const Ref& ref : it->second) {
    if (ref.stage < current_stage) continue;
    if (metric == DistanceMetric::kStage) {
      return static_cast<double>(ref.stage - current_stage);
    }
    // A reference later in this very job reads as distance 0 under the job
    // metric (§4.1: within one job the metric is "either infinite or zero").
    return ref.job >= current_job
               ? static_cast<double>(ref.job - current_job)
               : 0.0;
  }
  return kInfiniteDistance;
}

bool RefDistanceTable::is_inactive(RddId rdd) const {
  const auto it = refs_.find(rdd);
  return it != refs_.end() && it->second.empty();
}

std::vector<RddId> RefDistanceTable::by_ascending_distance(
    StageId current_stage, JobId current_job, DistanceMetric metric) const {
  std::vector<std::pair<double, RddId>> scored;
  for (const auto& [rdd, q] : refs_) {
    if (q.empty()) continue;
    const double d = distance(rdd, current_stage, current_job, metric);
    // All-stale queues read as infinite: effectively inactive, so they are
    // no more a prefetch candidate than an empty queue.
    if (d == kInfiniteDistance) continue;
    scored.emplace_back(d, rdd);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<RddId> out;
  out.reserve(scored.size());
  for (const auto& [d, rdd] : scored) {
    (void)d;
    out.push_back(rdd);
  }
  return out;
}

std::vector<RddId> RefDistanceTable::inactive_rdds() const {
  std::vector<RddId> out;
  for (const auto& [rdd, q] : refs_) {
    if (q.empty()) out.push_back(rdd);
  }
  return out;
}

std::size_t RefDistanceTable::num_entries() const {
  std::size_t n = 0;
  for (const auto& [rdd, q] : refs_) {
    (void)rdd;
    n += q.size();
  }
  return n;
}

void RefDistanceTable::clear() { refs_.clear(); }

}  // namespace mrd
