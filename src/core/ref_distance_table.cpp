#include "core/ref_distance_table.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mrd {

namespace {
constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();
}

void RefDistanceTable::add_reference(RddId rdd, StageId stage, JobId job) {
  auto& q = refs_[rdd];
  const Ref ref{stage, job};
  const auto pos = std::lower_bound(q.begin(), q.end(), ref);
  if (pos != q.end() && *pos == ref) return;  // duplicate announcement
  q.insert(pos, ref);
}

void RefDistanceTable::consume_up_to(StageId stage) {
  for (auto& [rdd, q] : refs_) {
    (void)rdd;
    while (!q.empty() && q.front().stage <= stage) q.pop_front();
  }
}

void RefDistanceTable::consume_rdd_up_to(RddId rdd, StageId stage) {
  const auto it = refs_.find(rdd);
  if (it == refs_.end()) return;
  auto& q = it->second;
  while (!q.empty() && q.front().stage <= stage) q.pop_front();
}

std::optional<StageId> RefDistanceTable::next_reference_stage(RddId rdd) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().stage;
}

std::optional<JobId> RefDistanceTable::next_reference_job(RddId rdd) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().job;
}

double RefDistanceTable::distance(RddId rdd, StageId current_stage,
                                  JobId current_job,
                                  DistanceMetric metric) const {
  const auto it = refs_.find(rdd);
  if (it == refs_.end() || it->second.empty()) return kInfiniteDistance;
  const Ref& next = it->second.front();
  if (metric == DistanceMetric::kStage) {
    return next.stage >= current_stage
               ? static_cast<double>(next.stage - current_stage)
               : 0.0;
  }
  return next.job >= current_job
             ? static_cast<double>(next.job - current_job)
             : 0.0;
}

bool RefDistanceTable::is_inactive(RddId rdd) const {
  const auto it = refs_.find(rdd);
  return it != refs_.end() && it->second.empty();
}

std::vector<RddId> RefDistanceTable::by_ascending_distance(
    StageId current_stage, JobId current_job, DistanceMetric metric) const {
  std::vector<std::pair<double, RddId>> scored;
  for (const auto& [rdd, q] : refs_) {
    if (q.empty()) continue;
    scored.emplace_back(distance(rdd, current_stage, current_job, metric),
                        rdd);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<RddId> out;
  out.reserve(scored.size());
  for (const auto& [d, rdd] : scored) {
    (void)d;
    out.push_back(rdd);
  }
  return out;
}

std::vector<RddId> RefDistanceTable::inactive_rdds() const {
  std::vector<RddId> out;
  for (const auto& [rdd, q] : refs_) {
    if (q.empty()) out.push_back(rdd);
  }
  return out;
}

std::size_t RefDistanceTable::num_entries() const {
  std::size_t n = 0;
  for (const auto& [rdd, q] : refs_) {
    (void)rdd;
    n += q.size();
  }
  return n;
}

void RefDistanceTable::clear() { refs_.clear(); }

}  // namespace mrd
