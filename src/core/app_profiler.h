// AppProfiler (paper §4.2): parses DAGs received from the DAGScheduler into
// reference-distance profiles for the MRDManager.
//
// Two operating modes (§4.1):
//  * ad-hoc / first run — parseDAG is called once per job submission with
//    that job's DAG fragment; references in future jobs are invisible until
//    those jobs arrive;
//  * recurring — the stored whole-application profile (from the
//    ProfileStore, or the current plan if this is the profiling run) is
//    handed to the MRDManager up front.
//
// The profiler also accumulates the application profile across the run and
// records it into the ProfileStore at completion, so the next run of the
// same application is recognized as recurring.
#pragma once

#include <string>

#include "core/profile_store.h"
#include "dag/execution_plan.h"
#include "dag/reference_profile.h"

namespace mrd {

class AppProfiler {
 public:
  /// `store` may be nullptr (no recurring-application persistence).
  explicit AppProfiler(ProfileStore* store = nullptr) : store_(store) {}

  /// parseDAG for one submitted job: the references visible in that job's
  /// fragment. Also folds them into the accumulating application profile.
  ReferenceProfileMap parse_job(const ExecutionPlan& plan, JobId job);

  /// Whole-application profile for a recurring run: the stored profile if
  /// one exists, otherwise parsed from the plan directly.
  ReferenceProfileMap application_profile(const ExecutionPlan& plan);

  /// True if the store recognizes this application from a previous run.
  bool is_recurring(const ExecutionPlan& plan) const;

  /// Run finished: persist the accumulated profile (discrepancy-checked by
  /// the store).
  void on_application_end(const ExecutionPlan& plan);

  /// Pooled-context rewind: drops the accumulated profile so the next run
  /// re-observes from scratch. The ProfileStore pointer (recurring-mode
  /// persistence) is configuration, not run state, and is kept.
  void reset_for_reuse() { accumulated_.clear(); }

 private:
  ProfileStore* store_;
  ReferenceProfileMap accumulated_;
};

}  // namespace mrd
