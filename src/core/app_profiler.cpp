#include "core/app_profiler.h"

namespace mrd {

ReferenceProfileMap AppProfiler::parse_job(const ExecutionPlan& plan,
                                           JobId job) {
  ReferenceProfileMap fragment = build_job_reference_profile(plan, job);
  // Fold into the accumulated application profile (creation wins first-seen;
  // references append in job order, which is execution order).
  for (const auto& [rdd, p] : fragment) {
    auto [it, inserted] = accumulated_.try_emplace(rdd, p);
    if (!inserted) {
      auto& acc = it->second;
      if (acc.creation.stage == kInvalidStage &&
          p.creation.stage != kInvalidStage) {
        acc.creation = p.creation;
      }
      acc.references.insert(acc.references.end(), p.references.begin(),
                            p.references.end());
    }
  }
  return fragment;
}

ReferenceProfileMap AppProfiler::application_profile(
    const ExecutionPlan& plan) {
  if (store_ != nullptr) {
    if (std::optional<StoredProfile> stored =
            store_->lookup(plan.app().name())) {
      return std::move(stored->references);
    }
  }
  return build_reference_profile(plan);
}

bool AppProfiler::is_recurring(const ExecutionPlan& plan) const {
  return store_ != nullptr && store_->has_profile(plan.app().name());
}

void AppProfiler::on_application_end(const ExecutionPlan& plan) {
  if (store_ == nullptr) return;
  // Prefer the accumulated (observed) profile; fall back to a full parse if
  // the run used recurring mode and never called parse_job.
  if (accumulated_.empty()) {
    store_->record(plan.app().name(), build_reference_profile(plan));
  } else {
    store_->record(plan.app().name(), accumulated_);
  }
}

}  // namespace mrd
