// Central place where policy names map to per-node policy factories.
//
// Names (as printed by benches): "lru", "fifo", "lrc", "memtune", "belady",
// "mrd", "mrd-evict" (eviction-only ablation), "mrd-prefetch" (prefetch-only
// ablation), "mrd-job" (job-distance metric, Fig 8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_policy.h"
#include "core/cache_monitor.h"
#include "core/mrd_manager.h"
#include "core/profile_store.h"

namespace mrd {

struct PolicyConfig {
  std::string name = "lru";
  /// MRD distance metric (Fig 8). Overridden to kJob by the "mrd-job" name.
  DistanceMetric metric = DistanceMetric::kStage;
  /// MRD forced-prefetch threshold as a fraction of cache capacity (§4.3).
  double prefetch_threshold = 0.25;
  /// MemTune runnable-stage window.
  std::size_t memtune_window = 2;
  /// Recurring-application profile store for MRD; nullptr = none.
  ProfileStore* profile_store = nullptr;
};

/// A configured policy for one run: the per-node factory plus, for MRD
/// variants, the shared manager (for stats inspection).
struct PolicySetup {
  PolicyFactory factory;
  std::shared_ptr<MrdManager> manager;  // null for non-MRD policies
};

/// Throws CheckFailure for unknown names.
PolicySetup make_policy(const PolicyConfig& config, NodeId num_nodes);

std::vector<std::string> known_policies();

}  // namespace mrd
