#include "core/cache_monitor.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace mrd {

CacheMonitor::CacheMonitor(std::shared_ptr<MrdManager> manager, NodeId node,
                           NodeId num_nodes, const MrdPolicyOptions& options)
    : manager_(std::move(manager)),
      node_(node),
      num_nodes_(num_nodes),
      options_(options) {
  MRD_CHECK(manager_ != nullptr);
  MRD_CHECK(num_nodes_ > 0);
}

double CacheMonitor::cached_distance(RddId rdd) const {
  const std::uint64_t version = manager_->distance_version();
  if (rdd >= dist_memo_.size()) dist_memo_.resize(rdd + 1, {0, 0.0});
  auto& [stamp, distance] = dist_memo_[rdd];
  if (stamp != version) {
    stamp = version;
    distance = manager_->distance(rdd);
  }
  return distance;
}

CacheMonitor::RddResidency& CacheMonitor::residency(RddId rdd) {
  if (rdd >= rdd_residency_.size()) rdd_residency_.resize(rdd + 1);
  return rdd_residency_[rdd];
}

void CacheMonitor::sync_activity() const {
  const RefDistanceTable& table = manager_->table();
  const std::size_t size = table.activity_log_size();
  if (size < activity_log_pos_) {
    // The table was rebuilt from scratch (clear + reload): restart the
    // replay from the all-inactive initial state, with everything currently
    // resident counting as reclaimable.
    activity_log_pos_ = 0;
    rdd_active_.assign(rdd_active_.size(), false);
    reclaimable_bytes_ = 0;
    for (const RddResidency& r : rdd_residency_) reclaimable_bytes_ += r.bytes;
  }
  for (; activity_log_pos_ < size; ++activity_log_pos_) {
    const auto [rdd, active] = table.activity_entry(activity_log_pos_);
    if (rdd >= rdd_active_.size()) rdd_active_.resize(rdd + 1, false);
    if (rdd_active_[rdd] == active) continue;
    rdd_active_[rdd] = active;
    // sync_activity() runs before every residency mutation, so the RDD's
    // byte tally has not moved since this flip was appended.
    const std::uint64_t bytes =
        rdd < rdd_residency_.size() ? rdd_residency_[rdd].bytes : 0;
    if (active) {
      reclaimable_bytes_ -= bytes;
    } else {
      reclaimable_bytes_ += bytes;
    }
  }
}

std::uint64_t CacheMonitor::reclaimable_resident_bytes() const {
  sync_activity();
  return reclaimable_bytes_;
}

double CacheMonitor::furthest_resident_distance() const {
  const std::uint64_t version = manager_->distance_version();
  if (furthest_version_stamp_ != version || furthest_dirty_) {
    double furthest = -1.0;
    for (RddId rdd = 0; rdd < rdd_residency_.size(); ++rdd) {
      if (rdd_residency_[rdd].count == 0) continue;
      furthest = std::max(furthest, cached_distance(rdd));
    }
    furthest_memo_ = furthest;
    furthest_version_stamp_ = version;
    furthest_dirty_ = false;
  }
  return furthest_memo_;
}

std::string_view CacheMonitor::name() const {
  if (options_.mrd_eviction && options_.mrd_prefetch) return "MRD";
  if (options_.mrd_eviction) return "MRD-evict";
  if (options_.mrd_prefetch) return "MRD-prefetch";
  return "MRD-disabled";  // degenerate configuration: plain LRU behaviour
}

void CacheMonitor::on_application_start(const ExecutionPlan& plan) {
  plan_ = &plan;
  manager_->on_application_start(plan);
}

void CacheMonitor::on_job_start(const ExecutionPlan& plan, JobId job) {
  plan_ = &plan;
  manager_->on_job_start(plan, job);
}

void CacheMonitor::on_stage_start(const ExecutionPlan& plan, JobId job,
                                  StageId stage) {
  plan_ = &plan;
  manager_->on_stage_start(plan, job, stage);
}

void CacheMonitor::on_stage_end(const ExecutionPlan& plan, JobId job,
                                StageId stage) {
  manager_->on_stage_end(plan, job, stage);
}

void CacheMonitor::on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                                 StageId stage) {
  (void)plan;
  manager_->on_rdd_probed(rdd, stage);
}

void CacheMonitor::tally_cached_block(const BlockId& block,
                                      std::uint64_t bytes) {
  if (!options_.mrd_eviction) residents_.insert(block);
  RddResidency& r = residency(block.rdd);
  const std::size_t word = block.partition >> 6;
  if (word >= r.bits.size()) r.bits.resize(word + 1, 0);
  const std::uint64_t mask = std::uint64_t{1} << (block.partition & 63);
  if ((r.bits[word] & mask) != 0) {
    // Re-cache of an already-resident block: only the size can differ.
    const std::uint64_t old_bytes = resident_block_bytes(r, block);
    if (bytes != old_bytes) set_block_bytes(r, block, bytes);
    r.bytes += bytes - old_bytes;
    if (!rdd_is_active(block.rdd)) reclaimable_bytes_ += bytes - old_bytes;
  } else {
    const bool was_empty = r.count == 0;
    if (was_empty) {
      // A (re)filling RDD restarts uniform: its previous blocks all left
      // (erasing their overflow entries, if any).
      r.uniform_bytes = bytes;
      r.mixed = false;
    } else if (r.mixed) {
      block_bytes_[pack_block_id(block)] = bytes;
    } else if (bytes != r.uniform_bytes) {
      spill_to_mixed(r, block.rdd);
      block_bytes_[pack_block_id(block)] = bytes;
    }
    ++resident_blocks_;
    r.bits[word] |= mask;
    if (was_empty || block.partition > r.max_partition) {
      r.max_partition = block.partition;
    }
    ++r.count;
    if (owns_block(block)) ++r.local_count;
    r.bytes += bytes;
    if (!rdd_is_active(block.rdd)) reclaimable_bytes_ += bytes;
    // An RDD gaining its first block re-enters the victim order; RDDs that
    // already had residents keep their key, so only the 0 -> 1 transition
    // can move the argmax — and only upward, which updates the memo in
    // place. A stale distance epoch makes the comparison meaningless; drop
    // the memo and let the next refresh rescan.
    if (victim_valid_) {
      if (victim_stamp_ != manager_->distance_version()) {
        victim_valid_ = false;
      } else if (was_empty) {
        const std::pair<double, RddId> key{cached_distance(block.rdd),
                                           block.rdd};
        if (key > victim_) victim_ = key;
      }
    }
  }
  // A fresh resident can only raise the furthest-resident max.
  if (furthest_version_stamp_ == manager_->distance_version() &&
      !furthest_dirty_) {
    furthest_memo_ = std::max(furthest_memo_, cached_distance(block.rdd));
  }
}

void CacheMonitor::set_block_bytes(RddResidency& r, const BlockId& block,
                                   std::uint64_t bytes) {
  if (!r.mixed) spill_to_mixed(r, block.rdd);
  // spill_to_mixed entered this (resident) block at uniform_bytes too;
  // overwrite with its new size.
  block_bytes_[pack_block_id(block)] = bytes;
}

void CacheMonitor::spill_to_mixed(RddResidency& r, RddId rdd) {
  for (std::size_t w = 0; w < r.bits.size(); ++w) {
    std::uint64_t bits = r.bits[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      block_bytes_[pack_block_id(BlockId{
          rdd, static_cast<PartitionIndex>((w << 6) + bit)})] =
          r.uniform_bytes;
    }
  }
  r.mixed = true;
}

void CacheMonitor::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  sync_activity();
  tally_cached_block(block, bytes);
  ++residents_rev_;
}

void CacheMonitor::on_blocks_cached(const BlockId* blocks, std::size_t count,
                                    std::uint64_t bytes_each) {
  if (count == 0) return;
  // The activity journal only grows through stage events, which cannot
  // interleave with a store admission run — one replay covers the batch.
  // Likewise one resident-revision bump: the revision is only ever
  // *compared for equality* (prefetch cursor validity), so collapsing a
  // run of bumps into one preserves every invalidation.
  sync_activity();
  for (std::size_t i = 0; i < count; ++i) {
    tally_cached_block(blocks[i], bytes_each);
  }
  ++residents_rev_;
}

void CacheMonitor::on_block_accessed(const BlockId& block) {
  if (!options_.mrd_eviction) residents_.touch(block);
}

void CacheMonitor::on_block_evicted(const BlockId& block) {
  sync_activity();
  if (!options_.mrd_eviction) residents_.erase(block);
  ++residents_rev_;
  if (block.rdd >= rdd_residency_.size()) return;
  RddResidency& r = rdd_residency_[block.rdd];
  const std::size_t word = block.partition >> 6;
  const std::uint64_t mask = word < r.bits.size()
                                 ? std::uint64_t{1} << (block.partition & 63)
                                 : 0;
  if (mask == 0 || (r.bits[word] & mask) == 0) return;  // was not tracked
  std::uint64_t bytes = r.uniform_bytes;
  if (r.mixed) {
    auto* b = block_bytes_.find(pack_block_id(block));
    bytes = *b;
    block_bytes_.erase_found(b);
  }
  --resident_blocks_;
  r.bits[word] &= ~mask;
  --r.count;
  if (r.count == 0 && victim_valid_ && block.rdd == victim_.second) {
    victim_valid_ = false;  // the victim RDD drained: next use rescans
  }
  if (owns_block(block)) --r.local_count;
  r.bytes -= bytes;
  if (!rdd_is_active(block.rdd)) reclaimable_bytes_ -= bytes;
  if (r.count > 0 && block.partition == r.max_partition) {
    // Repair the max by scanning the bitmap downward from the cleared bit.
    for (std::size_t w = word + 1; w-- > 0;) {
      if (r.bits[w] == 0) continue;
      r.max_partition = static_cast<PartitionIndex>(
          (w << 6) + 63 - std::countl_zero(r.bits[w]));
      break;
    }
  }
  // Losing the last block of the max-distance RDD invalidates the memo.
  if (r.count == 0 && furthest_version_stamp_ == manager_->distance_version() &&
      !furthest_dirty_ && cached_distance(block.rdd) >= furthest_memo_) {
    furthest_dirty_ = true;
  }
}

std::optional<BlockId> CacheMonitor::choose_victim() {
  if (!options_.mrd_eviction && !prefetch_insert_active_) {
    // Ablation: Spark's default LRU victim (constant score → LRU order).
    return residents_.worst([](const BlockId&) { return 0.0; });
  }
  // Largest distance evicted first (+inf = inactive). Ties break by a
  // *stable* block order rather than recency: for equal-distance blocks
  // (e.g. all partitions of one hot RDD under a cache smaller than it) a
  // stable order keeps a fixed subset resident, where LRU tie-breaking
  // would cycle and hit nothing. Blocks of one RDD share a distance, so the
  // max over blocks of (distance, rdd, partition) decomposes into the max
  // over *RDD tallies* of (distance, rdd), then that RDD's max resident
  // partition — and the (distance, rdd) argmax is memoized in victim_, so
  // repeated victim choices between rescans are O(1).
  if (!refresh_victim()) return std::nullopt;
  return BlockId{victim_.second, rdd_residency_[victim_.second].max_partition};
}

bool CacheMonitor::refresh_victim() {
  if (victim_valid_ && victim_stamp_ == manager_->distance_version()) {
    return true;
  }
  victim_valid_ = false;
  bool found = false;
  std::pair<double, RddId> best{0.0, 0};
  for (RddId rdd = 0; rdd < rdd_residency_.size(); ++rdd) {
    if (rdd_residency_[rdd].count == 0) continue;
    const std::pair<double, RddId> key{cached_distance(rdd), rdd};
    if (!found || key > best) {
      found = true;
      best = key;
    }
  }
  if (!found) return false;
  victim_ = best;
  victim_stamp_ = manager_->distance_version();
  victim_valid_ = true;
  return true;
}

void CacheMonitor::choose_victims(std::uint64_t bytes_needed,
                                  const EvictionSink& sink) {
  if (!options_.mrd_eviction && !prefetch_insert_active_) {
    // LRU ablation: recency order has no per-event decomposition; the
    // default per-victim adapter already matches it.
    CachePolicy::choose_victims(bytes_needed, sink);
    return;
  }
  // Stream victims off the persistent memo. Every iteration re-reads
  // victim_, so the drain reacts to whatever the sink's side effects did:
  // an admission that re-armed a larger key replaced the memo (the victim
  // the serial per-eviction argmax would pick next), a drained victim RDD
  // invalidated it and the refresh rescans. The (evict, insert, access)
  // stream is therefore identical to looping choose_victim per eviction.
  while (bytes_needed > 0) {
    if (!refresh_victim()) return;  // nothing resident; store falls back
    bytes_needed = sink(
        BlockId{victim_.second, rdd_residency_[victim_.second].max_partition});
  }
}

void CacheMonitor::purge_candidates(std::vector<BlockId>* out) {
  // The all-out purge is driven by the MRD_Table and runs in every MRD
  // variant: it is what frees memory below the prefetch threshold, so even
  // the prefetch-only ablation keeps it. Purged blocks are independent
  // removals, so enumeration order is free; walking the per-RDD residency
  // bitmaps costs O(blocks purged), not a scan of the resident set. The
  // caller's pooled `out` keeps its capacity, so the per-stage purge query
  // is allocation-free once warmed.
  out->clear();
  const std::vector<RddId>& purge = manager_->purge_rdds();
  if (purge.empty() || resident_blocks_ == 0) return;
  for (RddId rdd : purge) {
    if (rdd >= rdd_residency_.size()) continue;
    const RddResidency& r = rdd_residency_[rdd];
    if (r.count == 0) continue;
    out->reserve(out->size() + r.count);
    for (std::size_t w = 0; w < r.bits.size(); ++w) {
      std::uint64_t bits = r.bits[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        out->push_back(BlockId{
            rdd, static_cast<PartitionIndex>((w << 6) + bit)});
      }
    }
  }
}

void CacheMonitor::prefetch_candidates(const PrefetchBudget& budget,
                                       const PrefetchSink& sink) {
  if (!options_.mrd_prefetch || plan_ == nullptr || budget.queue_slots == 0) {
    return;
  }
  const std::vector<RddId>& order = manager_->prefetch_order();
  const std::uint64_t order_version = manager_->prefetch_order_version();
  // First locally-owned partition of the RDD at order position i (the
  // enumeration start under the configured placement); 0 past the end.
  const auto start_of = [&](std::size_t i) -> PartitionIndex {
    return i < order.size() ? first_local(order[i]) : 0;
  };
  std::size_t start_idx = 0;
  PartitionIndex start_part = start_of(0);
  if (cursor_valid_ && cursor_order_version_ == order_version &&
      cursor_residents_rev_ == residents_rev_) {
    start_idx = cursor_idx_;
    start_part = cursor_part_;
  }
  // The frontier tracks the next enumeration position while every position
  // handled so far in this pass was a stable skip (resident block, or
  // kSkipped from the sink). The first issue, volatile skip or stop freezes
  // it: those candidates must be re-offered next pass.
  bool frontier_open = true;
  std::size_t frontier_idx = start_idx;
  PartitionIndex frontier_part = start_part;
  const auto freeze = [&](std::size_t idx, PartitionIndex part) {
    if (frontier_open) {
      frontier_idx = idx;
      frontier_part = part;
      frontier_open = false;
    }
  };
  std::size_t issued = 0;
  bool stopped = false;
  for (std::size_t idx = start_idx; idx < order.size() && !stopped; ++idx) {
    const RddId rdd = order[idx];
    const RddInfo& info = plan_->app().rdd(rdd);
    PartitionIndex part = idx == start_idx ? start_part : first_local(rdd);
    const RddResidency* r =
        rdd < rdd_residency_.size() ? &rdd_residency_[rdd] : nullptr;
    if (r != nullptr &&
        r->local_count == local_partition_count(rdd, info.num_partitions)) {
      // Every local partition is resident: the whole RDD skips in O(1).
    } else if (budget.rdd_on_disk != nullptr && !budget.rdd_on_disk(rdd)) {
      // No disk copy of anything in this RDD: every offer would come back
      // kSkipped. A stable whole-RDD skip (disk copies only appear through
      // spills, which ride along with evictions and bump residents_rev_).
    } else {
      for (; part < info.num_partitions; part += num_nodes_) {
        if (r != nullptr && r->test(part)) continue;  // resident: stable skip
        switch (sink(BlockId{rdd, part})) {
          case PrefetchOffer::kStop:
            freeze(idx, part);
            stopped = true;
            break;
          case PrefetchOffer::kIssued:
            freeze(idx, part);
            if (++issued >= budget.queue_slots) stopped = true;
            break;
          case PrefetchOffer::kSkippedVolatile:
            freeze(idx, part);
            break;
          case PrefetchOffer::kSkipped:
            break;
        }
        if (stopped) break;
      }
    }
    if (frontier_open) {
      frontier_idx = idx + 1;
      frontier_part = start_of(idx + 1);
    }
  }
  cursor_valid_ = true;
  cursor_order_version_ = order_version;
  cursor_residents_rev_ = residents_rev_;
  cursor_idx_ = frontier_idx;
  cursor_part_ = frontier_part;
}

bool CacheMonitor::prefetch_may_evict(std::uint64_t free_bytes,
                                      std::uint64_t capacity) const {
  if (!options_.mrd_prefetch) return false;
  // Resident blocks with infinite distance are reclaimable at zero cost (the
  // eviction phase takes them first), so the threshold test counts them as
  // free: otherwise demand eviction consumes inactive data one block at a
  // time and the prefetcher never sees the memory the purge would have
  // released in bulk. The inactive-resident byte total is maintained
  // incrementally (insert/evict events + activity-log replay), so the test
  // is O(new activity flips), not a resident scan.
  sync_activity();
  const std::uint64_t reclaimable = free_bytes + reclaimable_bytes_;
  return static_cast<double>(reclaimable) >
         options_.prefetch_threshold * static_cast<double>(capacity);
}

bool CacheMonitor::prefetch_swap_improves(const BlockId& block) const {
  if (!options_.mrd_prefetch) return false;
  // Equal distance still qualifies: swapping a frontier block in via idle
  // disk time converts a demand read on the next stage's critical path into
  // a background read — the "overlap I/O with computation" effect. Strictly
  // nearer swaps additionally improve the hit ratio.
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

bool CacheMonitor::should_promote(const BlockId& block,
                                  std::uint64_t free_bytes) {
  if (!options_.mrd_eviction) return true;  // Spark default path
  const std::uint64_t bytes =
      plan_ == nullptr ? 0 : plan_->app().rdd(block.rdd).bytes_per_partition;
  if (bytes <= free_bytes) return true;  // fits without displacing anyone
  // Promote only if this block is at least as near as the furthest resident
  // (the victim the promotion would evict).
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

void CacheMonitor::on_prefetch_insert(bool active) {
  prefetch_insert_active_ = active;
}

bool CacheMonitor::reset_for_reuse() {
  // Capacity-preserving rewind of the per-node state. The distance memo is
  // *kept*: its stamps compare against the manager's monotonically
  // advancing distance_version(), so after MrdManager::reset_for_reuse()
  // every entry already reads as stale — clearing it would only discard the
  // vector's length for the next run to re-grow.
  plan_ = nullptr;
  placement_ = BlockPlacement::kRoundRobin;  // re-applied by the owner
  residents_.clear();
  block_bytes_.clear();
  resident_blocks_ = 0;
  prefetch_insert_active_ = false;
  for (RddResidency& r : rdd_residency_) {
    std::fill(r.bits.begin(), r.bits.end(), 0);
    r.count = 0;
    r.local_count = 0;
    r.bytes = 0;
    r.max_partition = 0;
    r.uniform_bytes = 0;
    r.mixed = false;
  }
  residents_rev_ = 0;
  reclaimable_bytes_ = 0;
  activity_log_pos_ = 0;
  // All-inactive initial state, matching a fresh monitor (entries are only
  // consulted after the replay in sync_activity catches up).
  rdd_active_.assign(rdd_active_.size(), false);
  furthest_version_stamp_ = 0;
  furthest_dirty_ = false;
  furthest_memo_ = -1.0;
  victim_valid_ = false;
  victim_stamp_ = 0;
  victim_ = {};
  cursor_valid_ = false;
  cursor_order_version_ = 0;
  cursor_residents_rev_ = 0;
  cursor_idx_ = 0;
  cursor_part_ = 0;
  return true;
}

bool CacheMonitor::admit_prefetch(const BlockId& block) {
  if (!options_.guarded_prefetch) return true;  // published MRD: aggressive
  // Future-work pre-check: drop the loaded block if every resident is
  // strictly nearer (an equal-distance swap is still admissible — it moves
  // a read off the critical path).
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

}  // namespace mrd
