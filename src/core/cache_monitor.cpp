#include "core/cache_monitor.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mrd {

CacheMonitor::CacheMonitor(std::shared_ptr<MrdManager> manager, NodeId node,
                           NodeId num_nodes, const MrdPolicyOptions& options)
    : manager_(std::move(manager)),
      node_(node),
      num_nodes_(num_nodes),
      options_(options) {
  MRD_CHECK(manager_ != nullptr);
  MRD_CHECK(num_nodes_ > 0);
}

double CacheMonitor::cached_distance(RddId rdd) const {
  const std::uint64_t version = manager_->distance_version();
  if (rdd >= dist_memo_.size()) dist_memo_.resize(rdd + 1, {0, 0.0});
  auto& [stamp, distance] = dist_memo_[rdd];
  if (stamp != version) {
    stamp = version;
    distance = manager_->distance(rdd);
  }
  return distance;
}

double CacheMonitor::furthest_resident_distance() const {
  const std::uint64_t version = manager_->distance_version();
  if (furthest_version_stamp_ != version ||
      furthest_residents_stamp_ != residents_rev_ + 1) {
    double furthest = -1.0;
    residents_.for_each_lru_first([&](const BlockId& b) {
      furthest = std::max(furthest, cached_distance(b.rdd));
    });
    furthest_memo_ = furthest;
    furthest_version_stamp_ = version;
    furthest_residents_stamp_ = residents_rev_ + 1;  // +1: 0 reads as unset
  }
  return furthest_memo_;
}

std::string_view CacheMonitor::name() const {
  if (options_.mrd_eviction && options_.mrd_prefetch) return "MRD";
  if (options_.mrd_eviction) return "MRD-evict";
  if (options_.mrd_prefetch) return "MRD-prefetch";
  return "MRD-disabled";  // degenerate configuration: plain LRU behaviour
}

void CacheMonitor::on_application_start(const ExecutionPlan& plan) {
  plan_ = &plan;
  manager_->on_application_start(plan);
}

void CacheMonitor::on_job_start(const ExecutionPlan& plan, JobId job) {
  plan_ = &plan;
  manager_->on_job_start(plan, job);
}

void CacheMonitor::on_stage_start(const ExecutionPlan& plan, JobId job,
                                  StageId stage) {
  plan_ = &plan;
  manager_->on_stage_start(plan, job, stage);
}

void CacheMonitor::on_stage_end(const ExecutionPlan& plan, JobId job,
                                StageId stage) {
  manager_->on_stage_end(plan, job, stage);
}

void CacheMonitor::on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                                 StageId stage) {
  (void)plan;
  manager_->on_rdd_probed(rdd, stage);
}

void CacheMonitor::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  residents_.insert(block);
  block_bytes_[pack_block_id(block)] = bytes;
  ++residents_rev_;
}

void CacheMonitor::on_block_accessed(const BlockId& block) {
  residents_.touch(block);
}

void CacheMonitor::on_block_evicted(const BlockId& block) {
  residents_.erase(block);
  block_bytes_.erase(pack_block_id(block));
  ++residents_rev_;
}

std::optional<BlockId> CacheMonitor::choose_victim() {
  if (!options_.mrd_eviction && !prefetch_insert_active_) {
    // Ablation: Spark's default LRU victim (constant score → LRU order).
    return residents_.worst([](const BlockId&) { return 0.0; });
  }
  // Largest distance evicted first (+inf = inactive). Ties break by a
  // *stable* block order rather than recency: for equal-distance blocks
  // (e.g. all partitions of one hot RDD under a cache smaller than it) a
  // stable order keeps a fixed subset resident, where LRU tie-breaking
  // would cycle and hit nothing.
  std::optional<BlockId> best;
  double best_distance = 0.0;
  residents_.for_each_lru_first([&](const BlockId& b) {
    const double d = cached_distance(b.rdd);
    if (!best || d > best_distance ||
        (d == best_distance && b > *best)) {
      best = b;
      best_distance = d;
    }
  });
  return best;
}

std::vector<BlockId> CacheMonitor::purge_candidates() {
  // The all-out purge is driven by the MRD_Table and runs in every MRD
  // variant: it is what frees memory below the prefetch threshold, so even
  // the prefetch-only ablation keeps it.
  const std::vector<RddId> purge = manager_->purge_rdds();
  if (purge.empty()) return {};
  // One pass over the residents with a dense purge-RDD bitmap, instead of one
  // full resident scan per purge RDD. The purge set is unordered work — every
  // candidate is removed independently — so grouping by RDD is not required.
  RddId max_rdd = 0;
  for (RddId rdd : purge) max_rdd = std::max(max_rdd, rdd);
  std::vector<bool> is_purge(max_rdd + 1, false);
  for (RddId rdd : purge) is_purge[rdd] = true;
  std::vector<BlockId> out;
  residents_.for_each_lru_first([&](const BlockId& b) {
    if (b.rdd <= max_rdd && is_purge[b.rdd]) out.push_back(b);
  });
  return out;
}

std::vector<BlockId> CacheMonitor::prefetch_candidates(
    std::uint64_t free_bytes, std::uint64_t capacity) {
  (void)free_bytes;
  (void)capacity;
  if (!options_.mrd_prefetch || plan_ == nullptr) return {};
  std::vector<BlockId> out;
  for (RddId rdd : manager_->prefetch_order()) {
    const RddInfo& info = plan_->app().rdd(rdd);
    for (PartitionIndex p = 0; p < info.num_partitions; ++p) {
      const BlockId block{rdd, p};
      if (!block_on_node(block, node_, num_nodes_)) continue;
      if (residents_.contains(block)) continue;
      out.push_back(block);
    }
  }
  return out;
}

bool CacheMonitor::prefetch_may_evict(std::uint64_t free_bytes,
                                      std::uint64_t capacity) const {
  if (!options_.mrd_prefetch) return false;
  // Resident blocks with infinite distance are reclaimable at zero cost (the
  // eviction phase takes them first), so the threshold test counts them as
  // free: otherwise demand eviction consumes inactive data one block at a
  // time and the prefetcher never sees the memory the purge would have
  // released in bulk.
  std::uint64_t reclaimable = free_bytes;
  residents_.for_each_lru_first([&](const BlockId& b) {
    if (std::isinf(cached_distance(b.rdd))) {
      if (const auto* bytes = block_bytes_.find(pack_block_id(b))) {
        reclaimable += *bytes;
      }
    }
  });
  return static_cast<double>(reclaimable) >
         options_.prefetch_threshold * static_cast<double>(capacity);
}

bool CacheMonitor::prefetch_swap_improves(const BlockId& block) const {
  if (!options_.mrd_prefetch) return false;
  // Equal distance still qualifies: swapping a frontier block in via idle
  // disk time converts a demand read on the next stage's critical path into
  // a background read — the "overlap I/O with computation" effect. Strictly
  // nearer swaps additionally improve the hit ratio.
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

bool CacheMonitor::should_promote(const BlockId& block,
                                  std::uint64_t free_bytes) {
  if (!options_.mrd_eviction) return true;  // Spark default path
  const std::uint64_t bytes =
      plan_ == nullptr ? 0 : plan_->app().rdd(block.rdd).bytes_per_partition;
  if (bytes <= free_bytes) return true;  // fits without displacing anyone
  // Promote only if this block is at least as near as the furthest resident
  // (the victim the promotion would evict).
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

void CacheMonitor::on_prefetch_insert(bool active) {
  prefetch_insert_active_ = active;
}

bool CacheMonitor::admit_prefetch(const BlockId& block) {
  if (!options_.guarded_prefetch) return true;  // published MRD: aggressive
  // Future-work pre-check: drop the loaded block if every resident is
  // strictly nearer (an equal-distance swap is still admissible — it moves
  // a read off the critical path).
  return cached_distance(block.rdd) <= furthest_resident_distance();
}

}  // namespace mrd
