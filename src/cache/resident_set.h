// Shared bookkeeping for score-based policies (LRC, MemTune, Belady, MRD):
// tracks the node's resident blocks in recency order and selects the
// worst-scored block, breaking score ties toward the least recently used.
#pragma once

#include <optional>

#include "dag/ids.h"
#include "util/block_list.h"
#include "util/flat_hash.h"

namespace mrd {

class ResidentSet {
 public:
  void insert(const BlockId& block) { touch(block); }

  void erase(const BlockId& block) {
    const std::uint64_t key = pack_block_id(block);
    if (const auto* idx = index_.find(key)) {
      order_.erase(*idx);
      index_.erase(key);
    }
  }

  /// Moves `block` to the most-recently-used position (inserting if absent).
  void touch(const BlockId& block) {
    const std::uint64_t key = pack_block_id(block);
    if (const auto* idx = index_.find(key)) {
      order_.move_to_front(*idx);
      return;
    }
    index_.insert(key, order_.push_front(key));
  }

  /// Empties the set, retaining both containers' capacity (pooled reuse).
  void clear() {
    order_.clear();
    index_.clear();
  }

  bool contains(const BlockId& block) const {
    return index_.contains(pack_block_id(block));
  }
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return index_.size(); }

  /// Resident blocks from least- to most-recently used.
  template <typename Fn>
  void for_each_lru_first(Fn&& fn) const {
    for (BlockList::Index i = order_.back(); i != BlockList::kNil;
         i = order_.prev(i)) {
      fn(unpack_block_id(order_.key(i)));
    }
  }

  /// Returns the resident block with the *maximum* score; among equal scores
  /// the least recently used wins (it is visited first). `score` maps a
  /// BlockId to an ordered value (double).
  template <typename ScoreFn>
  std::optional<BlockId> worst(ScoreFn&& score) const {
    std::optional<BlockId> best;
    double best_score = 0.0;
    for (BlockList::Index i = order_.back(); i != BlockList::kNil;
         i = order_.prev(i)) {
      const BlockId block = unpack_block_id(order_.key(i));
      const double s = score(block);
      if (!best || s > best_score) {
        best = block;
        best_score = s;
      }
    }
    return best;
  }

 private:
  BlockList order_;  // front = most recent
  FlatMap64<BlockList::Index> index_;
};

}  // namespace mrd
