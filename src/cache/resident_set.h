// Shared bookkeeping for score-based policies (LRC, MemTune, Belady, MRD):
// tracks the node's resident blocks in recency order and selects the
// worst-scored block, breaking score ties toward the least recently used.
#pragma once

#include <list>
#include <optional>

#include "dag/ids.h"
#include "util/flat_hash.h"

namespace mrd {

class ResidentSet {
 public:
  void insert(const BlockId& block) { touch(block); }

  void erase(const BlockId& block) {
    const std::uint64_t key = pack_block_id(block);
    if (const auto* it = index_.find(key)) {
      order_.erase(*it);
      index_.erase(key);
    }
  }

  /// Moves `block` to the most-recently-used position (inserting if absent).
  void touch(const BlockId& block) {
    const std::uint64_t key = pack_block_id(block);
    if (auto* it = index_.find(key)) {
      // Relink in place — no allocation, iterator stays valid.
      order_.splice(order_.begin(), order_, *it);
      *it = order_.begin();
      return;
    }
    order_.push_front(block);
    index_.insert(key, order_.begin());
  }

  bool contains(const BlockId& block) const {
    return index_.contains(pack_block_id(block));
  }
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return index_.size(); }

  /// Resident blocks from least- to most-recently used.
  template <typename Fn>
  void for_each_lru_first(Fn&& fn) const {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) fn(*it);
  }

  /// Returns the resident block with the *maximum* score; among equal scores
  /// the least recently used wins (it is visited first). `score` maps a
  /// BlockId to an ordered value (double).
  template <typename ScoreFn>
  std::optional<BlockId> worst(ScoreFn&& score) const {
    std::optional<BlockId> best;
    double best_score = 0.0;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const double s = score(*it);
      if (!best || s > best_score) {
        best = *it;
        best_score = s;
      }
    }
    return best;
  }

 private:
  std::list<BlockId> order_;  // front = most recent
  FlatMap64<std::list<BlockId>::iterator> index_;
};

}  // namespace mrd
