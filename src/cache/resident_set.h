// Shared bookkeeping for score-based policies (LRC, MemTune, Belady, MRD):
// tracks the node's resident blocks in recency order and selects the
// worst-scored block, breaking score ties toward the least recently used.
#pragma once

#include <list>
#include <optional>
#include <unordered_map>

#include "dag/ids.h"

namespace mrd {

class ResidentSet {
 public:
  void insert(const BlockId& block) { touch(block); }

  void erase(const BlockId& block) {
    auto it = index_.find(block);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  /// Moves `block` to the most-recently-used position (inserting if absent).
  void touch(const BlockId& block) {
    erase(block);
    order_.push_front(block);
    index_.emplace(block, order_.begin());
  }

  bool contains(const BlockId& block) const { return index_.count(block) > 0; }
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }

  /// Resident blocks from least- to most-recently used.
  template <typename Fn>
  void for_each_lru_first(Fn&& fn) const {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) fn(*it);
  }

  /// Returns the resident block with the *maximum* score; among equal scores
  /// the least recently used wins (it is visited first). `score` maps a
  /// BlockId to an ordered value (double).
  template <typename ScoreFn>
  std::optional<BlockId> worst(ScoreFn&& score) const {
    std::optional<BlockId> best;
    double best_score = 0.0;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const double s = score(*it);
      if (!best || s > best_score) {
        best = *it;
        best_score = s;
      }
    }
    return best;
  }

 private:
  std::list<BlockId> order_;  // front = most recent
  std::unordered_map<BlockId, std::list<BlockId>::iterator> index_;
};

}  // namespace mrd
