// First-In First-Out — an additional DAG-oblivious baseline used by tests and
// ablation benches (not part of the paper's comparison set).
#pragma once

#include "cache/cache_policy.h"
#include "util/block_list.h"
#include "util/flat_hash.h"

namespace mrd {

class FifoPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "FIFO"; }

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& /*block*/) override {}
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;

  bool reset_for_reuse() override {
    order_.clear();
    index_.clear();
    return true;
  }

 private:
  BlockList order_;  // front = oldest
  FlatMap64<BlockList::Index> index_;
};

}  // namespace mrd
