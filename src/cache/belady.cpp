#include "cache/belady.h"

#include <algorithm>
#include <limits>

namespace mrd {

void BeladyPolicy::on_application_start(const ExecutionPlan& plan) {
  build_timeline(plan);
}

void BeladyPolicy::on_job_start(const ExecutionPlan& plan, JobId job) {
  (void)job;
  // Oracle semantics even when the runner is in ad-hoc mode: peek at the
  // whole plan the first time we hear about it.
  if (!timeline_built_) build_timeline(plan);
}

void BeladyPolicy::on_stage_start(const ExecutionPlan& plan, JobId job,
                                  StageId stage) {
  (void)plan;
  const std::size_t* it = order_.find(order_key(job, stage));
  if (it != nullptr) cursor_ = *it;
}

void BeladyPolicy::on_stage_end(const ExecutionPlan& plan, JobId job,
                                StageId stage) {
  (void)plan;
  const std::size_t* it = order_.find(order_key(job, stage));
  if (it != nullptr) cursor_ = *it + 1;
}

void BeladyPolicy::on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                                 StageId stage) {
  (void)plan;
  (void)stage;
  // Advance the RDD's cursor past events at or before the current position.
  if (rdd >= events_.size()) return;
  const std::vector<std::size_t>& v = events_[rdd];
  std::size_t& idx = consumed_[rdd];
  while (idx < v.size() && v[idx] <= cursor_) ++idx;
}

bool BeladyPolicy::should_promote(const BlockId& block,
                                  std::uint64_t free_bytes) {
  (void)free_bytes;
  // Promote only when the block's next use is no later than the furthest
  // resident's (otherwise promotion would evict someone more useful).
  std::size_t furthest = 0;
  bool any = false;
  residents_.for_each_lru_first([&](const BlockId& b) {
    furthest = std::max(furthest, next_reference(b.rdd));
    any = true;
  });
  return !any || next_reference(block.rdd) <= furthest;
}

void BeladyPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  residents_.insert(block);
}

void BeladyPolicy::on_block_accessed(const BlockId& block) {
  residents_.touch(block);
}

void BeladyPolicy::on_block_evicted(const BlockId& block) {
  residents_.erase(block);
}

std::optional<BlockId> BeladyPolicy::choose_victim() {
  // Furthest next reference evicted first; ties break by stable block order
  // (see CacheMonitor::choose_victim — stable tie-breaking avoids the LRU
  // cycle pathology on uniform-distance working sets).
  std::optional<BlockId> best;
  std::size_t best_next = 0;
  residents_.for_each_lru_first([&](const BlockId& b) {
    const std::size_t next = next_reference(b.rdd);
    if (!best || next > best_next || (next == best_next && b > *best)) {
      best = b;
      best_next = next;
    }
  });
  return best;
}

std::size_t BeladyPolicy::next_reference(RddId rdd) const {
  if (rdd >= events_.size()) return std::numeric_limits<std::size_t>::max();
  const std::vector<std::size_t>& v = events_[rdd];
  // Start past consumed probes, then skip any events strictly before the
  // current position (references consumed implicitly, e.g. via recompute).
  std::size_t from = consumed_[rdd];
  while (from < v.size() && v[from] < cursor_) ++from;
  return from < v.size() ? v[from] : std::numeric_limits<std::size_t>::max();
}

void BeladyPolicy::build_timeline(const ExecutionPlan& plan) {
  timeline_built_ = true;
  const std::size_t num_rdds = plan.app().num_rdds();
  if (events_.size() < num_rdds) events_.resize(num_rdds);
  if (consumed_.size() < num_rdds) consumed_.resize(num_rdds, 0);
  std::size_t index = 0;
  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      order_[order_key(rec.job, rec.stage)] = index;
      for (RddId r : rec.probes) events_[r].push_back(index);
      ++index;
    }
  }
}

}  // namespace mrd
