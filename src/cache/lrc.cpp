#include "cache/lrc.h"

#include "dag/reference_profile.h"

namespace mrd {

void LrcPolicy::on_job_start(const ExecutionPlan& plan, JobId job) {
  const ReferenceProfileMap profile = build_job_reference_profile(plan, job);
  for (const auto& [rdd, p] : profile) {
    total_refs_[rdd] += p.references.size();
  }
}

void LrcPolicy::on_stage_end(const ExecutionPlan& plan, JobId job,
                             StageId stage) {
  const StageExecution* rec = find_execution(plan, job, stage);
  if (rec == nullptr) return;
  for (RddId rdd : rec->probes) {
    ++consumed_refs_[rdd];
  }
}

void LrcPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  residents_.insert(block);
}

void LrcPolicy::on_block_accessed(const BlockId& block) {
  residents_.touch(block);
}

void LrcPolicy::on_block_evicted(const BlockId& block) {
  residents_.erase(block);
}

std::optional<BlockId> LrcPolicy::choose_victim() {
  // Lowest remaining reference count goes first; worst() picks the maximum
  // score, so score = -count.
  return residents_.worst([this](const BlockId& b) {
    return -static_cast<double>(remaining_references(b.rdd));
  });
}

std::uint64_t LrcPolicy::remaining_references(RddId rdd) const {
  const auto total_it = total_refs_.find(rdd);
  const std::uint64_t total =
      total_it == total_refs_.end() ? 0 : total_it->second;
  const auto used_it = consumed_refs_.find(rdd);
  const std::uint64_t used =
      used_it == consumed_refs_.end() ? 0 : used_it->second;
  return total > used ? total - used : 0;
}

}  // namespace mrd
