#include "cache/lrc.h"

namespace mrd {

void LrcPolicy::on_job_start(const ExecutionPlan& plan, JobId job) {
  // Count this job's probes directly off the plan. Materializing a
  // ReferenceProfileMap here (a std::map rebuilt per node per job
  // broadcast) was the allocation hot spot of LRC's steady-state sweep;
  // the probe lists of executed stages are the same reference events.
  for (const StageExecution& rec : plan.job(job).stages) {
    if (!rec.executed) continue;
    for (RddId r : rec.probes) ++total_refs_[r];
  }
}

void LrcPolicy::on_stage_end(const ExecutionPlan& plan, JobId job,
                             StageId stage) {
  const StageExecution* rec = find_execution(plan, job, stage);
  if (rec == nullptr) return;
  for (RddId rdd : rec->probes) {
    ++consumed_refs_[rdd];
  }
}

void LrcPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  residents_.insert(block);
}

void LrcPolicy::on_block_accessed(const BlockId& block) {
  residents_.touch(block);
}

void LrcPolicy::on_block_evicted(const BlockId& block) {
  residents_.erase(block);
}

std::optional<BlockId> LrcPolicy::choose_victim() {
  // Lowest remaining reference count goes first; worst() picks the maximum
  // score, so score = -count.
  return residents_.worst([this](const BlockId& b) {
    return -static_cast<double>(remaining_references(b.rdd));
  });
}

std::uint64_t LrcPolicy::remaining_references(RddId rdd) const {
  const std::uint64_t* total_p = total_refs_.find(rdd);
  const std::uint64_t total = total_p == nullptr ? 0 : *total_p;
  const std::uint64_t* used_p = consumed_refs_.find(rdd);
  const std::uint64_t used = used_p == nullptr ? 0 : *used_p;
  return total > used ? total - used : 0;
}

}  // namespace mrd
