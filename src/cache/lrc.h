// Least Reference Count (Yu et al., INFOCOM 2017) — the paper's strongest
// published comparator. LRC parses each submitted job DAG, counts the number
// of *future* references to each data block, decrements the count as
// references are consumed, and always evicts the block with the lowest
// remaining count (count 0 = inactive data, evicted first).
//
// Faithfulness notes:
//  * LRC as published operates on per-job DAGs (it has no recurring-profile
//    store), so this implementation accumulates counts at job submission and
//    deliberately ignores on_application_start.
//  * In our model every block of an RDD is referenced by the same stages, so
//    reference counts are tracked per RDD and shared by its blocks; ties are
//    broken toward the least recently used block, which is also what LRC's
//    reference implementation does within an equal-count group.
#pragma once

#include "cache/cache_policy.h"
#include "cache/resident_set.h"
#include "util/flat_hash.h"

namespace mrd {

class LrcPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "LRC"; }

  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override;

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;

  bool reset_for_reuse() override {
    total_refs_.clear();
    consumed_refs_.clear();
    residents_.clear();
    return true;
  }

  /// Remaining known future references of `rdd` (clamped at zero).
  std::uint64_t remaining_references(RddId rdd) const;

 private:
  // Flat tables (capacity-preserving clear): a pooled run re-counts into
  // the warm slots instead of re-allocating unordered_map nodes per RDD.
  FlatMap64<std::uint64_t> total_refs_;
  FlatMap64<std::uint64_t> consumed_refs_;
  ResidentSet residents_;
};

}  // namespace mrd
