#include "cache/memtune.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace mrd {

MemTunePolicy::MemTunePolicy(NodeId node, NodeId num_nodes, std::size_t window)
    : node_(node), num_nodes_(num_nodes), window_(window) {
  MRD_CHECK(window_ >= 1);
}

void MemTunePolicy::on_job_start(const ExecutionPlan& plan, JobId job) {
  (void)job;
  plan_ = &plan;
}

void MemTunePolicy::on_stage_start(const ExecutionPlan& plan, JobId job,
                                   StageId stage) {
  plan_ = &plan;
  needed_.clear();
  if (job >= plan.jobs().size()) return;

  // Collect the executed stage sequence of the current job and locate the
  // current stage within it; the needed list covers `window_` executions
  // from there.
  const JobInfo& info = plan.job(job);
  std::size_t pos = info.stages.size();
  std::vector<const StageExecution*>& executed = executed_scratch_;
  executed.clear();
  for (const StageExecution& rec : info.stages) {
    if (!rec.executed) continue;
    if (rec.stage == stage) pos = executed.size();
    executed.push_back(&rec);
  }
  if (pos == info.stages.size()) return;  // stage not found (skipped)

  for (std::size_t i = pos; i < executed.size() && i < pos + window_; ++i) {
    for (RddId r : executed[i]->probes) needed_.insert(r);
    // RDDs being materialized by the running stage are also live data for
    // its tasks.
    if (i == pos) {
      for (RddId r : executed[i]->computes) {
        if (plan.app().rdd(r).persisted) needed_.insert(r);
      }
    }
  }
}

void MemTunePolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  residents_.insert(block);
}

void MemTunePolicy::on_block_accessed(const BlockId& block) {
  residents_.touch(block);
}

void MemTunePolicy::on_block_evicted(const BlockId& block) {
  residents_.erase(block);
}

std::optional<BlockId> MemTunePolicy::choose_victim() {
  // Blocks outside the needed lists are evicted first (score 1), LRU within
  // each class.
  return residents_.worst(
      [this](const BlockId& b) { return is_needed(b.rdd) ? 0.0 : 1.0; });
}

void MemTunePolicy::prefetch_candidates(const PrefetchBudget& budget,
                                        const PrefetchSink& sink) {
  if (plan_ == nullptr || budget.queue_slots == 0) return;
  // Unordered (list) semantics: RDD-id order for determinism, no distance
  // ranking — MemTune has none.
  std::vector<RddId>& sorted = sorted_scratch_;
  sorted.clear();
  needed_.for_each(
      [&sorted](std::uint64_t key) { sorted.push_back(static_cast<RddId>(key)); });
  std::sort(sorted.begin(), sorted.end());
  std::size_t issued = 0;
  for (RddId rdd : sorted) {
    const RddInfo& info = plan_->app().rdd(rdd);
    // Enumerate only this node's partitions under the configured placement:
    // the stride visits them in the same ascending order the full scan did.
    const PartitionIndex first =
        first_local_partition(rdd, node_, num_nodes_, placement_);
    for (PartitionIndex p = first; p < info.num_partitions; p += num_nodes_) {
      const BlockId block{rdd, p};
      if (residents_.contains(block)) continue;
      switch (sink(block)) {
        case PrefetchOffer::kStop:
          return;
        case PrefetchOffer::kIssued:
          if (++issued >= budget.queue_slots) return;
          break;
        case PrefetchOffer::kSkipped:
        case PrefetchOffer::kSkippedVolatile:
          break;  // MemTune keeps no cursor; skip kinds are equivalent
      }
    }
  }
}

}  // namespace mrd
