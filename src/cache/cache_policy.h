// The cache-management policy interface.
//
// One policy instance runs per worker node (mirroring the paper's per-node
// CacheMonitor); it observes the blocks cached/accessed/evicted on that node
// plus cluster-wide DAG events, and answers three questions:
//
//   * choose_victim()       — who goes when the store is under pressure;
//   * purge_candidates()    — who can be dropped proactively (MRD's
//                             infinite-distance purge);
//   * prefetch_candidates() — who should be pulled into memory ahead of
//                             use, streamed best-first into the issuer's
//                             sink under an explicit budget.
//
// DAG visibility comes in two modes (paper §4.1): recurring applications
// deliver the whole plan up front via on_application_start; ad-hoc
// applications deliver one job DAG at a time via on_job_start. Policies that
// ignore the DAG (LRU, FIFO) simply don't override those hooks.
//
// Reference consumption happens at *stage end* (on_stage_end): while a stage
// runs, the blocks it is reading are the current reference and must not look
// exhausted to the policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dag/execution_plan.h"
#include "dag/ids.h"
#include "dag/placement.h"
#include "util/function_ref.h"

namespace mrd {

/// The issuer's answer to one offered prefetch candidate. The two skip
/// verdicts differ in *durability*, which is what lets a policy keep a
/// resume cursor over its candidate stream: a kSkipped cause can only
/// change through events the policy observes (block evictions/insertions),
/// while a kSkippedVolatile cause lives in issuer-private state (the
/// prefetch queue) and can clear without any policy-visible event — such
/// candidates must be re-offered on the next pass.
enum class PrefetchOffer {
  kIssued,           // a prefetch order was queued for the block
  kSkipped,          // stable skip: no disk copy to prefetch from
  kSkippedVolatile,  // transient skip: collided with an in-flight prefetch
  kStop,             // budget spent or candidates inadmissible: stop
};

/// The budget one prefetch_candidates() pass generates against. The
/// contract: generation must cost time proportional to the candidates
/// actually offered, and must stop as soon as the budget is spent — either
/// `queue_slots` offers were answered kIssued, or the sink answered kStop
/// (the issuer's memory budget ran out). Materializing every possible
/// candidate up front violates the contract.
struct PrefetchBudget {
  /// Free bytes of the node's memory store (before queued prefetches land).
  std::uint64_t free_bytes = 0;
  /// Total capacity of the node's memory store; with free_bytes this is the
  /// input to the policy's forced-eviction threshold (prefetch_may_evict).
  std::uint64_t capacity = 0;
  /// Prefetch orders the issuer can still queue. 0 = nothing to do.
  std::size_t queue_slots = 0;
  /// Optional O(1) pre-filter: does the issuer hold at least one disk copy
  /// of this RDD's blocks? When set, a policy may elide offering any block
  /// of an all-false RDD — every such offer would come back kSkipped ("no
  /// disk copy"). The answer may only flip false→true through events the
  /// policy observes (spills ride along with evictions), which is what
  /// makes the elision safe to cache in a resume cursor. nullptr = unknown;
  /// offer everything. Non-owning: the bound callable must outlive the
  /// budget (bind a named local, not a temporary).
  FunctionRef<bool(RddId)> rdd_on_disk;
};

/// Receives prefetch candidates best-first; returns what became of each.
/// Non-owning (util/function_ref.h): sinks are consumed within the call
/// they are passed to, and the issuer's capture-heavy lambdas must not cost
/// a heap allocation per stage on the steady-state path.
using PrefetchSink = FunctionRef<PrefetchOffer(const BlockId&)>;

/// Receives eviction victims streamed by choose_victims(), best victim
/// first. The *store* owns the eviction itself (with its non-resident
/// fallback rules) and may admit pending inserts between victims; the
/// return value is the bytes still needed after that — 0 means the
/// pressure is resolved and generation must stop. The returned need is
/// authoritative as a stop signal but only a hint in magnitude: admissions
/// between victims can raise it above the previous value. Non-owning, like
/// PrefetchSink.
using EvictionSink = FunctionRef<std::uint64_t(const BlockId&)>;

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  virtual std::string_view name() const = 0;

  /// Announces the cluster's block→node placement mode, called once by the
  /// owning BlockManager before any event. Policies that enumerate or test
  /// partition ownership (owner = (partition + salt(rdd)) % num_nodes; see
  /// dag/placement.h) must honor it; placement-oblivious policies ignore it.
  virtual void configure_placement(BlockPlacement placement) {
    (void)placement;
  }

  /// Rewinds the policy to its just-constructed state *in place*, retaining
  /// container capacity, so a pooled run context can replay a fresh run
  /// without reconstructing the policy (and re-paying its allocations).
  /// Returns false when the policy does not support in-place reset — the
  /// owner must then destroy and reconstruct it. After a successful reset
  /// the policy must be observationally identical to a new instance built
  /// with the same constructor arguments (configure_placement is re-applied
  /// by the owner).
  virtual bool reset_for_reuse() { return false; }

  // ---- DAG visibility ----------------------------------------------------

  /// Recurring mode only: the full application plan, before any execution.
  virtual void on_application_start(const ExecutionPlan& plan) { (void)plan; }

  /// The job DAG fragment, at job submission time. Called in both modes (in
  /// recurring mode the information is redundant but marks progress).
  virtual void on_job_start(const ExecutionPlan& plan, JobId job) {
    (void)plan;
    (void)job;
  }

  /// A stage execution begins / completes. Stage IDs only increase over the
  /// run.
  virtual void on_stage_start(const ExecutionPlan& plan, JobId job,
                              StageId stage) {
    (void)plan;
    (void)job;
    (void)stage;
  }
  virtual void on_stage_end(const ExecutionPlan& plan, JobId job,
                            StageId stage) {
    (void)plan;
    (void)job;
    (void)stage;
  }

  /// The running stage has finished reading all of `rdd`'s blocks: that
  /// reference is consumed *now*, not at stage end. Without this, every RDD
  /// the stage touches looks equally urgent (distance 0) for the rest of the
  /// stage and mid-stage evictions cannot rank them.
  virtual void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                             StageId stage) {
    (void)plan;
    (void)rdd;
    (void)stage;
  }

  // ---- Per-node block lifecycle -------------------------------------------

  virtual void on_block_cached(const BlockId& block, std::uint64_t bytes) = 0;
  virtual void on_block_accessed(const BlockId& block) = 0;
  virtual void on_block_evicted(const BlockId& block) = 0;

  /// Batched form of on_block_cached for a contiguous run of same-size
  /// admissions (one persisted-RDD slice, one prefetch drain). Must be
  /// observationally identical to calling on_block_cached per block in
  /// order — the default does exactly that; stateful policies may override
  /// to amortize per-batch work (journal syncs, revision bumps).
  virtual void on_blocks_cached(const BlockId* blocks, std::size_t count,
                                std::uint64_t bytes_each) {
    for (std::size_t i = 0; i < count; ++i) {
      on_block_cached(blocks[i], bytes_each);
    }
  }

  // ---- Decisions -----------------------------------------------------------

  /// Next eviction victim among this node's resident blocks. nullopt only if
  /// the policy believes nothing is evictable (the store then falls back to
  /// evicting its own oldest block so progress is never blocked).
  virtual std::optional<BlockId> choose_victim() = 0;

  /// Streaming bulk form of choose_victim for one pressure event: nominate
  /// victims best-first into `sink` until it reports the need resolved
  /// (returns 0) or the policy runs out of nominations (return normally —
  /// the store then applies its own fallback and may re-enter). The sink
  /// may admit pending inserts between nominations, so the policy's
  /// resident set can *grow* mid-stream; nominations must keep reflecting
  /// the policy's current state, exactly as a fresh choose_victim() call
  /// would after each eviction. The default adapter does literally that;
  /// policies with a decomposable victim order can override to amortize the
  /// per-victim scan across the whole event.
  virtual void choose_victims(std::uint64_t bytes_needed,
                              const EvictionSink& sink) {
    while (bytes_needed > 0) {
      const std::optional<BlockId> victim = choose_victim();
      if (!victim) return;
      bytes_needed = sink(*victim);
    }
  }

  /// Blocks to drop proactively, if any. Queried at stage boundaries.
  /// Fills `out` (cleared first) with blocks droppable proactively; the
  /// out-parameter form lets the caller pool the buffer across stages, so
  /// the per-stage purge enumeration is allocation-free once warmed.
  virtual void purge_candidates(std::vector<BlockId>* out) { out->clear(); }

  /// Streams blocks to pull into memory, best candidate first, into `sink`.
  /// Queried at stage boundaries by the node's BlockManager
  /// (refresh_prefetch_orders), which owns the fit/force/queue decisions
  /// and reports them back through the sink's PrefetchOffer verdicts.
  ///
  /// Budget contract (see PrefetchBudget): `budget.free_bytes` and
  /// `budget.capacity` are real inputs — they parameterize the policy's
  /// forced-eviction threshold and let it bound how much work it offers —
  /// and `budget.queue_slots` caps the kIssued answers a pass can collect.
  /// Generation must stop at a kStop verdict or a filled budget instead of
  /// enumerating the remaining candidate universe; the default
  /// implementation streams nothing.
  virtual void prefetch_candidates(const PrefetchBudget& budget,
                                   const PrefetchSink& sink) {
    (void)budget;
    (void)sink;
  }

  /// Whether a prefetch may evict resident blocks to make room (Algorithm 1,
  /// line 26: MRD forces the prefetch when free memory exceeds a threshold).
  /// Policies that only prefetch into genuinely free space return false.
  virtual bool prefetch_may_evict(std::uint64_t free_bytes,
                                  std::uint64_t capacity) const {
    (void)free_bytes;
    (void)capacity;
    return false;
  }

  /// Should a block just served from the node's disk copy be promoted back
  /// into the memory store (possibly evicting residents)? Spark's default
  /// path always re-caches — which is exactly how LRU thrashes on cyclic
  /// working sets — so the default is true; DAG-aware policies can decline
  /// when the block ranks below every resident.
  virtual bool should_promote(const BlockId& block, std::uint64_t free_bytes) {
    (void)block;
    (void)free_bytes;
    return true;
  }

  /// Per-candidate forced-prefetch test: true when inserting `block` (and
  /// evicting the policy's current worst resident) strictly improves the
  /// cache — MRD's CacheMonitor answers "is this block nearer than the
  /// furthest resident?". Complements the coarse threshold test above.
  virtual bool prefetch_swap_improves(const BlockId& block) const {
    (void)block;
    return false;
  }

  /// Called by the BlockManager around the memory-store insert of a
  /// *completed prefetch*, so that a policy can pick prefetch-induced
  /// eviction victims differently from demand-pressure victims (the paper's
  /// prefetch evicts the largest-reference-distance block even in the
  /// prefetch-only ablation).
  virtual void on_prefetch_insert(bool active) { (void)active; }

  /// Final admission check for a completed *forced* prefetch (the paper's
  /// §4.4 future-work "pre-check" — off by default in MRD). Returning false
  /// drops the loaded block instead of inserting it.
  virtual bool admit_prefetch(const BlockId& block) {
    (void)block;
    return true;
  }
};

/// Creates one policy instance for one node. `node` and `num_nodes` let
/// policies reason about the partition→node mapping (partition p lives on
/// node p % num_nodes).
using PolicyFactory =
    std::function<std::unique_ptr<CachePolicy>(NodeId node, NodeId num_nodes)>;

/// Returns true if `block`'s partition is placed on `node` under
/// `placement` (round-robin by default).
bool block_on_node(const BlockId& block, NodeId node, NodeId num_nodes,
                   BlockPlacement placement = BlockPlacement::kRoundRobin);

/// Finds the execution record of `stage` within `job`; nullptr if the stage
/// does not appear (or was skipped) in that job.
const StageExecution* find_execution(const ExecutionPlan& plan, JobId job,
                                     StageId stage);

}  // namespace mrd
