#include "cache/cache_policy.h"

namespace mrd {

bool block_on_node(const BlockId& block, NodeId node, NodeId num_nodes,
                   BlockPlacement placement) {
  return num_nodes > 0 &&
         placement_owner(block, num_nodes, placement) == node;
}

const StageExecution* find_execution(const ExecutionPlan& plan, JobId job,
                                     StageId stage) {
  if (job >= plan.jobs().size()) return nullptr;
  for (const StageExecution& rec : plan.job(job).stages) {
    if (rec.stage == stage && rec.executed) return &rec;
  }
  return nullptr;
}

}  // namespace mrd
