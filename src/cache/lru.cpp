#include "cache/lru.h"

#include "util/check.h"

namespace mrd {

void LruPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  touch(block);
}

void LruPolicy::on_block_accessed(const BlockId& block) { touch(block); }

void LruPolicy::on_block_evicted(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  if (const auto* idx = index_.find(key)) {
    order_.erase(*idx);
    index_.erase(key);
  }
}

std::optional<BlockId> LruPolicy::choose_victim() {
  if (order_.empty()) return std::nullopt;
  return unpack_block_id(order_.key(order_.back()));
}

void LruPolicy::touch(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  if (const auto* idx = index_.find(key)) {
    order_.move_to_front(*idx);
    return;
  }
  index_.insert(key, order_.push_front(key));
}

}  // namespace mrd
