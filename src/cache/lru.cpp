#include "cache/lru.h"

#include "util/check.h"

namespace mrd {

void LruPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  touch(block);
}

void LruPolicy::on_block_accessed(const BlockId& block) { touch(block); }

void LruPolicy::on_block_evicted(const BlockId& block) {
  auto it = index_.find(block);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<BlockId> LruPolicy::choose_victim() {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

void LruPolicy::touch(const BlockId& block) {
  auto it = index_.find(block);
  if (it != index_.end()) {
    order_.erase(it->second);
    index_.erase(it);
  }
  order_.push_front(block);
  index_.emplace(block, order_.begin());
}

}  // namespace mrd
