#include "cache/lru.h"

#include "util/check.h"

namespace mrd {

void LruPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  touch(block);
}

void LruPolicy::on_block_accessed(const BlockId& block) { touch(block); }

void LruPolicy::on_block_evicted(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  if (const auto* it = index_.find(key)) {
    order_.erase(*it);
    index_.erase(key);
  }
}

std::optional<BlockId> LruPolicy::choose_victim() {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

void LruPolicy::touch(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  if (auto* it = index_.find(key)) {
    // Relink in place — no allocation, iterator stays valid.
    order_.splice(order_.begin(), order_, *it);
    *it = order_.begin();
    return;
  }
  order_.push_front(block);
  index_.insert(key, order_.begin());
}

}  // namespace mrd
