// Belady's MIN oracle (1966) — evicts the block whose next reference lies
// furthest in the future, using the *planned* reference stream.
//
// The paper cites MIN as the unreachable optimum that MRD approximates
// ("we thus only approximate Belady's MIN"). We implement it as a bound for
// tests and for the ablation bench: no online policy should beat MIN's hit
// ratio on the planned stream, and MRD should land between LRU and MIN.
//
// The oracle sees the static plan's probe sequence; runtime lineage
// recomputation can add probes MIN did not foresee, so it is an oracle with
// respect to the plan, not the realized trace — good enough for a bound,
// and documented in DESIGN.md.
#pragma once

#include <algorithm>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/resident_set.h"
#include "util/flat_hash.h"

namespace mrd {

class BeladyPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "Belady-MIN"; }

  void on_application_start(const ExecutionPlan& plan) override;
  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override;
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override;
  void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                     StageId stage) override;

  bool should_promote(const BlockId& block, std::uint64_t free_bytes) override;
  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;

  bool reset_for_reuse() override {
    // Capacity-preserving: the per-RDD event arrays keep their storage, so
    // a pooled run rebuilds the timeline without allocator traffic. Stale
    // empty entries past a smaller plan's RDD range read exactly like a
    // fresh table (no events -> SIZE_MAX next reference).
    for (std::vector<std::size_t>& v : events_) v.clear();
    std::fill(consumed_.begin(), consumed_.end(), 0);
    order_.clear();
    cursor_ = 0;
    timeline_built_ = false;
    residents_.clear();
    return true;
  }

  /// Execution-order index of `rdd`'s next planned probe at/after the
  /// current position; returns SIZE_MAX when none remains.
  std::size_t next_reference(RddId rdd) const;

 private:
  void build_timeline(const ExecutionPlan& plan);

  static std::uint64_t order_key(JobId job, StageId stage) {
    return (static_cast<std::uint64_t>(job) << 32) | stage;
  }

  /// Probe positions per RDD (index == RddId), ascending execution-order
  /// index. Dense vectors instead of node-based maps: RDD IDs are small and
  /// dense, and the rebuild-per-run timeline must not allocate once pooled.
  std::vector<std::vector<std::size_t>> events_;
  /// Per-RDD consumption cursor into events_ (advanced as probes complete).
  std::vector<std::size_t> consumed_;
  /// (job, stage) packed -> execution-order index.
  FlatMap64<std::size_t> order_;
  std::size_t cursor_ = 0;
  bool timeline_built_ = false;
  ResidentSet residents_;
};

}  // namespace mrd
