// Belady's MIN oracle (1966) — evicts the block whose next reference lies
// furthest in the future, using the *planned* reference stream.
//
// The paper cites MIN as the unreachable optimum that MRD approximates
// ("we thus only approximate Belady's MIN"). We implement it as a bound for
// tests and for the ablation bench: no online policy should beat MIN's hit
// ratio on the planned stream, and MRD should land between LRU and MIN.
//
// The oracle sees the static plan's probe sequence; runtime lineage
// recomputation can add probes MIN did not foresee, so it is an oracle with
// respect to the plan, not the realized trace — good enough for a bound,
// and documented in DESIGN.md.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/resident_set.h"

namespace mrd {

class BeladyPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "Belady-MIN"; }

  void on_application_start(const ExecutionPlan& plan) override;
  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override;
  void on_stage_end(const ExecutionPlan& plan, JobId job,
                    StageId stage) override;
  void on_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                     StageId stage) override;

  bool should_promote(const BlockId& block, std::uint64_t free_bytes) override;
  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;

  /// Execution-order index of `rdd`'s next planned probe at/after the
  /// current position; returns SIZE_MAX when none remains.
  std::size_t next_reference(RddId rdd) const;

 private:
  void build_timeline(const ExecutionPlan& plan);

  /// Probe positions per RDD, ascending execution-order index.
  std::unordered_map<RddId, std::vector<std::size_t>> events_;
  /// Per-RDD consumption cursor into events_ (advanced as probes complete).
  std::unordered_map<RddId, std::size_t> consumed_;
  /// (job, stage) -> execution-order index.
  std::map<std::pair<JobId, StageId>, std::size_t> order_;
  std::size_t cursor_ = 0;
  bool timeline_built_ = false;
  ResidentSet residents_;
};

}  // namespace mrd
