// MemTune-like eviction/prefetch (Xu et al., IPDPS 2016), restricted — as the
// MRD paper does — to its cache-management component.
//
// MemTune uses DAG dependency information, but only for *runnable tasks*: it
// keeps the RDDs needed by the currently running and next runnable stage in
// unordered lists, evicting blocks outside those lists first (LRU among
// equals) and prefetching blocks inside them when memory is free. It has no
// notion of how far in the future a reference lies — the coarseness MRD's
// motivation section calls out. MemTune's other half (dynamically resizing
// the execution/storage memory fractions) is orthogonal to the eviction
// comparison and is modelled by the harness simply via the cache-capacity
// knob.
#pragma once

#include <vector>

#include "cache/cache_policy.h"
#include "cache/resident_set.h"
#include "util/flat_hash.h"

namespace mrd {

class MemTunePolicy : public CachePolicy {
 public:
  /// `window` = how many upcoming stage executions (including the current
  /// one) contribute to the "needed" list. MemTune's runnable-task horizon
  /// corresponds to 2: the running stage and the next runnable one.
  MemTunePolicy(NodeId node, NodeId num_nodes, std::size_t window = 2);

  std::string_view name() const override { return "MemTune"; }

  void configure_placement(BlockPlacement placement) override {
    placement_ = placement;
  }

  void on_job_start(const ExecutionPlan& plan, JobId job) override;
  void on_stage_start(const ExecutionPlan& plan, JobId job,
                      StageId stage) override;

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;
  void prefetch_candidates(const PrefetchBudget& budget,
                           const PrefetchSink& sink) override;

  bool reset_for_reuse() override {
    plan_ = nullptr;
    needed_.clear();
    residents_.clear();
    placement_ = BlockPlacement::kRoundRobin;  // re-applied by the owner
    return true;
  }

  bool is_needed(RddId rdd) const { return needed_.contains(rdd); }

 private:
  NodeId node_;
  NodeId num_nodes_;
  BlockPlacement placement_ = BlockPlacement::kRoundRobin;
  std::size_t window_;
  const ExecutionPlan* plan_ = nullptr;  // set at job start; plan outlives run
  /// Flat set (capacity-preserving clear): rebuilt per stage on every node,
  /// so unordered_set node churn dominated MemTune's steady-state allocs.
  FlatSet64 needed_;
  /// Reused per-call scratch (on_stage_start's executed-stage walk and
  /// prefetch_candidates' sorted enumeration) — capacity recycles per run.
  std::vector<const StageExecution*> executed_scratch_;
  std::vector<RddId> sorted_scratch_;
  ResidentSet residents_;
};

}  // namespace mrd
