#include "cache/fifo.h"

namespace mrd {

void FifoPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  const std::uint64_t key = pack_block_id(block);
  if (index_.contains(key)) return;  // re-cache keeps original position
  index_.insert(key, order_.push_back(key));
}

void FifoPolicy::on_block_evicted(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  if (const auto* idx = index_.find(key)) {
    order_.erase(*idx);
    index_.erase(key);
  }
}

std::optional<BlockId> FifoPolicy::choose_victim() {
  if (order_.empty()) return std::nullopt;
  return unpack_block_id(order_.key(order_.front()));
}

}  // namespace mrd
