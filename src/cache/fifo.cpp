#include "cache/fifo.h"

namespace mrd {

void FifoPolicy::on_block_cached(const BlockId& block, std::uint64_t bytes) {
  (void)bytes;
  if (index_.count(block)) return;  // re-cache keeps original position
  order_.push_back(block);
  index_.emplace(block, std::prev(order_.end()));
}

void FifoPolicy::on_block_evicted(const BlockId& block) {
  auto it = index_.find(block);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<BlockId> FifoPolicy::choose_victim() {
  if (order_.empty()) return std::nullopt;
  return order_.front();
}

}  // namespace mrd
