// Least Recently Used — Spark's default MemoryStore policy and the paper's
// primary baseline. DAG-oblivious: evicts the resident block idle longest.
#pragma once

#include "cache/cache_policy.h"
#include "util/block_list.h"
#include "util/flat_hash.h"

namespace mrd {

class LruPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "LRU"; }

  void on_block_cached(const BlockId& block, std::uint64_t bytes) override;
  void on_block_accessed(const BlockId& block) override;
  void on_block_evicted(const BlockId& block) override;
  std::optional<BlockId> choose_victim() override;

  bool reset_for_reuse() override {
    order_.clear();
    index_.clear();
    return true;
  }

  std::size_t resident_count() const { return index_.size(); }

 private:
  void touch(const BlockId& block);

  // Front = most recently used, back = LRU victim.
  BlockList order_;
  FlatMap64<BlockList::Index> index_;
};

}  // namespace mrd
