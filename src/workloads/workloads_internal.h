// Shared helpers for the workload generator translation units.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "api/pregel.h"
#include "api/spark_context.h"
#include "workloads/workloads.h"

namespace mrd {
namespace workloads {

inline std::uint64_t scaled_bytes(std::uint64_t base, double scale) {
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(base) * (scale <= 0.0 ? 1.0 : scale));
  return scaled == 0 ? 1 : scaled;
}

inline std::string tag(const char* base, std::uint32_t i) {
  return std::string(base) + "#" + std::to_string(i);
}

/// Uniform-block sizing: Spark partitions within an application are roughly
/// uniform; data volume differences show up as partition *counts*. Returns
/// TransformOpts pinning (partitions, bytes_per_partition) for a dataset of
/// `total_bytes` at block size `block_bytes`.
inline TransformOpts uniform_blocks(std::uint64_t total_bytes,
                                    std::uint64_t block_bytes) {
  TransformOpts opts;
  const std::uint64_t parts =
      std::max<std::uint64_t>(1, (total_bytes + block_bytes - 1) / block_bytes);
  opts.partitions = static_cast<std::uint32_t>(parts);
  opts.bytes_per_partition = block_bytes;
  return opts;
}

// sparkbench_ml.cpp
std::shared_ptr<const Application> make_kmeans(const WorkloadParams& p);
std::shared_ptr<const Application> make_kmeans_named(const char* app_name,
                                                     const WorkloadParams& p);
std::shared_ptr<const Application> make_linear_regression(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_logistic_regression(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_svm(const WorkloadParams& p);
std::shared_ptr<const Application> make_decision_tree(const WorkloadParams& p);
std::shared_ptr<const Application> make_matrix_factorization(
    const WorkloadParams& p);

// sparkbench_graph.cpp
std::shared_ptr<const Application> make_page_rank(const WorkloadParams& p);
std::shared_ptr<const Application> make_triangle_count(const WorkloadParams& p);
std::shared_ptr<const Application> make_shortest_paths(const WorkloadParams& p);
std::shared_ptr<const Application> make_label_propagation(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_svdpp(const WorkloadParams& p);
std::shared_ptr<const Application> make_connected_components(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_strongly_connected_components(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_pregel_operation(
    const WorkloadParams& p);

// hibench.cpp
std::shared_ptr<const Application> make_hibench_sort(const WorkloadParams& p);
std::shared_ptr<const Application> make_hibench_wordcount(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_hibench_terasort(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_hibench_pagerank(
    const WorkloadParams& p);
std::shared_ptr<const Application> make_hibench_bayes(const WorkloadParams& p);
std::shared_ptr<const Application> make_hibench_kmeans(const WorkloadParams& p);

}  // namespace workloads
}  // namespace mrd
