#include "workloads/workloads.h"

#include "workloads/workloads_internal.h"

namespace mrd {

const std::vector<WorkloadSpec>& sparkbench_workloads() {
  using namespace workloads;
  static const std::vector<WorkloadSpec> kSpecs = {
      {"km", "K-Means (KM)", "Machine Learning", "Mixed", 15, make_kmeans},
      {"linr", "Linear Regression (LinR)", "Other Workloads", "CPU intensive",
       5, make_linear_regression},
      {"logr", "Logistic Regression (LogR)", "Machine Learning",
       "CPU intensive", 6, make_logistic_regression},
      {"svm", "SVM", "Machine Learning", "CPU intensive", 8, make_svm},
      {"dt", "Decision Tree (DT)", "Other Workloads", "CPU intensive", 0,
       make_decision_tree},
      {"mf", "Matrix Factorization (MF)", "Machine Learning", "Mixed", 6,
       make_matrix_factorization},
      {"pr", "Page Rank (PR)", "Web Search", "I/O intensive", 5,
       make_page_rank},
      {"tc", "Triangle Count (TC)", "Graph Computation", "Mixed", 0,
       make_triangle_count},
      {"sp", "Shortest Paths (SP)", "Other Workloads", "Mixed", 1,
       make_shortest_paths},
      {"lp", "Label Propagation (LP)", "Other Workloads", "I/O intensive", 21,
       make_label_propagation},
      {"svdpp", "SVD++", "Graph Computation", "I/O intensive", 12, make_svdpp},
      {"cc", "Connected Components (CC)", "Other Workloads", "I/O intensive",
       4, make_connected_components},
      {"scc", "Strongly Connected Components (SCC)", "Other Workloads",
       "I/O intensive", 11, make_strongly_connected_components},
      {"po", "Pregel Operation (PO)", "Other Workloads", "I/O intensive", 15,
       make_pregel_operation},
  };
  return kSpecs;
}

const std::vector<WorkloadSpec>& hibench_workloads() {
  using namespace workloads;
  static const std::vector<WorkloadSpec> kSpecs = {
      {"hb-sort", "HiBench Sort", "Micro Benchmark", "I/O intensive", 0,
       make_hibench_sort},
      {"hb-wordcount", "HiBench WordCount", "Micro Benchmark", "CPU intensive",
       0, make_hibench_wordcount},
      {"hb-terasort", "HiBench TeraSort", "Micro Benchmark", "I/O intensive",
       0, make_hibench_terasort},
      {"hb-pagerank", "HiBench PageRank", "Web Search", "I/O intensive", 3,
       make_hibench_pagerank},
      {"hb-bayes", "HiBench Bayes", "Machine Learning", "Mixed", 0,
       make_hibench_bayes},
      {"hb-kmeans", "HiBench K-Means", "Machine Learning", "Mixed", 19,
       make_hibench_kmeans},
  };
  return kSpecs;
}

const WorkloadSpec* find_workload(std::string_view key) {
  for (const WorkloadSpec& spec : sparkbench_workloads()) {
    if (spec.key == key) return &spec;
  }
  for (const WorkloadSpec& spec : hibench_workloads()) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

std::uint64_t persisted_bytes(const Application& app) {
  std::uint64_t total = 0;
  for (const RddInfo& rdd : app.rdds()) {
    if (rdd.persisted) total += rdd.total_bytes();
  }
  return total;
}

}  // namespace mrd
