// SparkBench graph workloads: PageRank, TriangleCount, ShortestPaths,
// LabelPropagation, SVD++, ConnectedComponents, StronglyConnectedComponents,
// PregelOperation.
//
// All but TriangleCount are GraphX Pregel programs; the shared pregel()
// operator produces their signature DAGs (per-superstep jobs, fast-growing
// lineage, cached vertex/message generations that go inactive a few
// supersteps later). LP and SCC add long-range lineage joins — that is what
// gives them the paper's ~30-stage average / ~90-stage maximum reference
// distances. All are I/O-heavy (cheap vertex programs, big messages).
#include "workloads/workloads_internal.h"

namespace mrd {
namespace workloads {

namespace {

constexpr std::uint64_t kMB = 1024ull * 1024ull;

struct GraphShape {
  const char* name;
  std::uint64_t input_mb;       // paper's Table 3 input / 8
  double vertex_factor;         // vertex-set bytes as a multiple of input
  double edge_factor;           // edge-set bytes as a multiple of input
  double compute_ms_per_mb;     // CPU intensity
  PregelConfig pregel;
};

std::shared_ptr<const Application> make_graph(const GraphShape& shape,
                                              const WorkloadParams& p) {
  const std::uint64_t block = 1 * kMB;
  const auto input_bytes = scaled_bytes(shape.input_mb * kMB, p.scale);
  const std::uint32_t src_parts =
      p.partitions ? p.partitions
                   : static_cast<std::uint32_t>(
                         std::max<std::uint64_t>(1, input_bytes / block));

  SparkContext sc(shape.name);
  sc.set_compute_ms_per_mb(shape.compute_ms_per_mb);

  auto raw = sc.text_file("hdfs-edgelist", src_parts, input_bytes / src_parts);
  const auto edge_total = static_cast<std::uint64_t>(
      shape.edge_factor * static_cast<double>(input_bytes));
  auto edges = raw.map("edges", uniform_blocks(edge_total, block)).cache();
  const auto vertex_total = static_cast<std::uint64_t>(
      shape.vertex_factor * static_cast<double>(input_bytes));
  auto vertices =
      edges.map("vertices", uniform_blocks(vertex_total, block)).cache();
  vertices.count("materializeGraph");

  PregelConfig cfg = shape.pregel;
  cfg.block_bytes = block;
  if (p.iterations > 0) cfg.supersteps = p.iterations;
  pregel(sc, vertices, edges, cfg);
  return std::move(sc).build_shared();
}

}  // namespace

// 7 jobs / ~21 active stages; vertices+links referenced every superstep.
std::shared_ptr<const Application> make_page_rank(const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "Page Rank (PR)";
  shape.input_mb = 116;
  shape.vertex_factor = 0.6;
  shape.edge_factor = 2.5;
  shape.compute_ms_per_mb = 0.8;  // I/O intensive
  shape.pregel.supersteps = 5;
  shape.pregel.message_size_factor = 0.6;
  shape.pregel.vprog_cost_factor = 0.6;
  return make_graph(shape, p);
}

// 3 jobs / ~7 active stages; single superstep of frontier expansion.
std::shared_ptr<const Application> make_shortest_paths(
    const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "Shortest Paths (SP)";
  shape.input_mb = 364;
  shape.vertex_factor = 0.5;
  shape.edge_factor = 1.5;
  shape.compute_ms_per_mb = 2.5;  // mixed
  shape.pregel.supersteps = 1;
  shape.pregel.message_size_factor = 0.5;
  return make_graph(shape, p);
}

// 23 jobs / ~87 active stages; long-range lineage joins every 3 supersteps
// give LP the suite's largest reference distances.
std::shared_ptr<const Application> make_label_propagation(
    const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "Label Propagation (LP)";
  shape.input_mb = 40;  // paper input is tiny (1.3 MB); messages dominate
  shape.vertex_factor = 3.0;
  shape.edge_factor = 6.0;
  shape.compute_ms_per_mb = 0.7;  // I/O intensive
  shape.pregel.supersteps = 21;
  shape.pregel.message_size_factor = 0.8;
  shape.pregel.long_range_join_every = 3;
  shape.pregel.graph_ref_every = 7;
  return make_graph(shape, p);
}

// 14 jobs / ~27 active stages; heavy two-way messages.
std::shared_ptr<const Application> make_svdpp(const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "SVD++";
  shape.input_mb = 80;
  shape.vertex_factor = 1.2;
  shape.edge_factor = 3.0;
  shape.compute_ms_per_mb = 1.0;  // I/O intensive
  shape.pregel.supersteps = 12;
  shape.pregel.message_size_factor = 0.9;
  shape.pregel.vprog_cost_factor = 1.5;
  shape.pregel.long_range_join_every = 4;
  return make_graph(shape, p);
}

// 6 jobs / ~19 active stages.
std::shared_ptr<const Application> make_connected_components(
    const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "Connected Components (CC)";
  shape.input_mb = 300;
  shape.vertex_factor = 0.4;
  shape.edge_factor = 1.2;
  shape.compute_ms_per_mb = 0.9;  // I/O intensive
  shape.pregel.supersteps = 4;
  shape.pregel.message_size_factor = 0.6;
  return make_graph(shape, p);
}

// 17 jobs / ~65 active stages; the generic Pregel benchmark.
std::shared_ptr<const Application> make_pregel_operation(
    const WorkloadParams& p) {
  GraphShape shape;
  shape.name = "Pregel Operation (PO)";
  shape.input_mb = 176;
  shape.vertex_factor = 0.8;
  shape.edge_factor = 2.0;
  shape.compute_ms_per_mb = 0.8;  // I/O intensive
  shape.pregel.supersteps = 15;
  shape.pregel.message_size_factor = 0.7;
  shape.pregel.long_range_join_every = 5;
  shape.pregel.graph_ref_every = 8;
  return make_graph(shape, p);
}

// 26 jobs / ~93 active stages: SCC runs two reachability phases (forward
// and backward) over the same graph, with long-range joins — the paper's
// longest distances and its biggest MRD win.
std::shared_ptr<const Application> make_strongly_connected_components(
    const WorkloadParams& p) {
  const std::uint64_t block = 1 * kMB;
  const auto input_bytes = scaled_bytes(36 * kMB, p.scale);
  const std::uint32_t parts = p.partitions ? p.partitions : 12;
  const std::uint32_t supersteps = p.iterations ? p.iterations : 11;

  SparkContext sc("Strongly Connected Components (SCC)");
  sc.set_compute_ms_per_mb(0.7);

  auto raw = sc.text_file("hdfs-edgelist", parts, input_bytes / parts);
  auto edges =
      raw.map("edges", uniform_blocks(8 * input_bytes, block)).cache();
  auto vertices =
      edges.map("vertices", uniform_blocks(4 * input_bytes, block)).cache();
  vertices.count("materializeGraph");

  PregelConfig fwd;
  fwd.block_bytes = block;
  fwd.supersteps = supersteps;
  fwd.message_size_factor = 0.8;
  fwd.long_range_join_every = 3;
  fwd.graph_ref_every = 5;
  Dataset forward = pregel(sc, vertices, edges, fwd);

  // Backward phase over reversed edges, seeded with the forward labels.
  auto reversed =
      edges.map("reversedEdges", uniform_blocks(8 * input_bytes, block))
          .cache();
  PregelConfig bwd;
  bwd.block_bytes = block;
  bwd.supersteps = supersteps;
  bwd.message_size_factor = 0.8;
  bwd.long_range_join_every = 3;
  bwd.graph_ref_every = 5;
  Dataset backward = pregel(sc, forward, reversed, bwd);

  // Intersect forward and backward reachability against the original graph:
  // a reference gap spanning the entire application (the paper's 24-job /
  // 90-stage maxima for SCC).
  backward.zip_partitions(vertices, "intersectComponents").count("labelSCC");
  return std::move(sc).build_shared();
}

// 2 jobs / ~11 active stages; no iteration — low distances, low refs/RDD.
std::shared_ptr<const Application> make_triangle_count(
    const WorkloadParams& p) {
  const std::uint64_t block = 1 * kMB;
  const std::uint32_t parts = p.partitions ? p.partitions : 32;
  const auto input_bytes = scaled_bytes(32 * kMB, p.scale);

  SparkContext sc("Triangle Count (TC)");
  sc.set_compute_ms_per_mb(2.5);  // mixed

  auto raw = sc.text_file("hdfs-edgelist", parts, input_bytes / parts);
  auto edges = raw.map("canonicalEdges", uniform_blocks(3 * input_bytes, block))
                   .distinct("dedup", uniform_blocks(3 * input_bytes, block))
                   .cache();
  auto adjacency =
      edges.group_by_key("adjacency", uniform_blocks(2 * input_bytes, block))
          .cache();
  adjacency.count("materializeAdjacency");

  TransformOpts triad_opts;
  triad_opts.size_factor = 4.0;  // neighbour-set pairs blow up
  auto triads = adjacency.join(edges, "triads", triad_opts);
  auto intersect = triads.flat_map("neighbourIntersect");
  TransformOpts count_opts;
  count_opts.size_factor = 0.01;
  count_opts.partitions = 16;
  auto counts = intersect.reduce_by_key("triangleCounts", count_opts);
  counts.collect("countTriangles");
  return std::move(sc).build_shared();
}

}  // namespace workloads
}  // namespace mrd
