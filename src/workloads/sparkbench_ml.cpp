// SparkBench machine-learning & regression workloads: K-Means, Linear
// Regression, Logistic Regression, SVM, Decision Tree, Matrix Factorization.
//
// Each generator mirrors the MLlib driver program's DAG shape: a cached,
// parsed input referenced once per optimization iteration, per-iteration
// aggregation shuffles, and (for SVM/MF) cached preprocessing whose shuffle
// map stages are skipped in later jobs. Input bytes are the paper's Table 3
// sizes divided by 32.
#include "workloads/workloads_internal.h"

namespace mrd {
namespace workloads {

namespace {
constexpr std::uint64_t kMB = 1024ull * 1024ull;
}

// ---------------------------------------------------------------------------
// K-Means (KM) — 17 jobs (count + takeSample + 15 Lloyd iterations), mixed
// CPU/IO. `points` and `norms` are referenced every iteration; the cached
// initial model only at the periodic cost re-evaluations, giving KM its mix
// of short and medium reference distances.
// ---------------------------------------------------------------------------
std::shared_ptr<const Application> make_kmeans_named(const char* app_name,
                                                     const WorkloadParams& p) {
  const std::uint32_t iters = p.iterations ? p.iterations : 15;
  const std::uint32_t parts = p.partitions ? p.partitions : 250;
  const auto input_bytes = scaled_bytes(688 * kMB, p.scale);

  SparkContext sc(app_name);
  sc.set_compute_ms_per_mb(3.0);

  const std::uint64_t block = input_bytes / parts;
  auto raw = sc.text_file("hdfs-points", parts, input_bytes / parts);
  auto points = raw.map("parsedPoints").cache();
  auto norms =
      points.map_values("norms", uniform_blocks(input_bytes / 4, block))
          .cache();
  points.count("materialize");

  auto sample = points.sample(0.05, "sample");
  auto init_model =
      sample.map("initModel", uniform_blocks(input_bytes / 20, block)).cache();
  init_model.collect("takeSample");

  for (std::uint32_t i = 0; i < iters; ++i) {
    auto assign = points.zip_partitions(norms, tag("assign", i));
    TransformOpts contrib_opts;
    contrib_opts.size_factor = 0.02;
    auto contribs = assign.map_partitions(tag("contribs", i), contrib_opts);
    TransformOpts sum_opts;
    sum_opts.partitions = 10;
    auto sums = contribs.reduce_by_key(tag("centerSums", i), sum_opts);
    sums.collect(tag("collectCenters", i));
  }
  // Final training-cost evaluation compares against the initial model — an
  // RDD cached at the start and untouched since (Table 1's 16-job maximum
  // distance for KM comes from exactly this shape).
  auto cost = points.zip_partitions(init_model, "finalCost");
  TransformOpts cost_opts;
  cost_opts.size_factor = 0.01;
  cost.map_partitions("costTerms", cost_opts).collect("computeCost");
  return std::move(sc).build_shared();
}

std::shared_ptr<const Application> make_kmeans(const WorkloadParams& p) {
  return make_kmeans_named("K-Means (KM)", p);
}

// ---------------------------------------------------------------------------
// Generalized linear model driver shared by LinR / LogR: cached parsed data,
// one gradient-aggregate job per iteration. CPU intensive (heavy per-MB
// gradient math), small aggregation shuffles — short reference distances.
// ---------------------------------------------------------------------------
std::shared_ptr<const Application> make_glm(const char* app_name,
                                            std::uint64_t input_mb,
                                            std::uint32_t default_iters,
                                            double gradient_cost,
                                            const WorkloadParams& p) {
  const std::uint32_t iters = p.iterations ? p.iterations : default_iters;
  const std::uint32_t parts = p.partitions ? p.partitions : 250;
  const auto input_bytes = scaled_bytes(input_mb * kMB, p.scale);

  SparkContext sc(app_name);
  sc.set_compute_ms_per_mb(13.0);  // CPU intensive

  auto data = sc.text_file("hdfs-train", parts, input_bytes / parts)
                  .map("labeledPoints")
                  .cache();
  data.count("materialize");

  for (std::uint32_t i = 0; i < iters; ++i) {
    TransformOpts grad_opts;
    grad_opts.size_factor = 0.01;
    grad_opts.cost_factor = gradient_cost;
    auto grads = data.map_partitions(tag("gradients", i), grad_opts);
    TransformOpts agg_opts;
    agg_opts.partitions = 8;
    auto agg = grads.reduce_by_key(tag("aggregate", i), agg_opts);
    agg.collect(tag("step", i));
  }
  return std::move(sc).build_shared();
}

std::shared_ptr<const Application> make_linear_regression(
    const WorkloadParams& p) {
  return make_glm("Linear Regression (LinR)", 960, 5, 6.0, p);
}

std::shared_ptr<const Application> make_logistic_regression(
    const WorkloadParams& p) {
  return make_glm("Logistic Regression (LogR)", 1388, 6, 8.0, p);
}

// ---------------------------------------------------------------------------
// SVM — like the GLMs but with a cached, shuffled feature-scaling stage
// whose map stage is created in every job's DAG yet skipped after job 0
// (Table 3's active < total stages), plus a larger shuffle per iteration.
// ---------------------------------------------------------------------------
std::shared_ptr<const Application> make_svm(const WorkloadParams& p) {
  const std::uint32_t iters = p.iterations ? p.iterations : 8;
  const std::uint32_t parts = p.partitions ? p.partitions : 250;
  const auto input_bytes = scaled_bytes(476 * kMB, p.scale);

  SparkContext sc("SVM");
  sc.set_compute_ms_per_mb(13.0);

  auto data = sc.text_file("hdfs-train", parts, input_bytes / parts)
                  .map("labeledPoints")
                  .cache();
  // Feature scaling: a shuffle that later jobs list but skip.
  auto features = data.reduce_by_key("scaledFeatures").cache();
  features.count("materializeFeatures");

  for (std::uint32_t i = 0; i < iters; ++i) {
    TransformOpts grad_opts;
    grad_opts.size_factor = 0.15;  // bigger shuffle than plain GLM
    grad_opts.cost_factor = 5.0;
    auto grads = features.map_partitions(tag("hinge", i), grad_opts);
    TransformOpts agg_opts;
    agg_opts.partitions = 16;
    auto agg = grads.reduce_by_key(tag("aggregate", i), agg_opts);
    agg.collect(tag("step", i));
  }
  return std::move(sc).build_shared();
}

// ---------------------------------------------------------------------------
// Decision Tree (DT) — per-depth-level statistics jobs over the cached
// training set plus cached split metadata. CPU intensive; the paper found
// cache policy made ~no difference here and that extra iterations don't
// change the DAG — the level count is a property of the tree, so the
// iterations parameter is deliberately ignored (default_iterations == 0).
// ---------------------------------------------------------------------------
std::shared_ptr<const Application> make_decision_tree(
    const WorkloadParams& p) {
  const std::uint32_t levels = 8;
  const std::uint32_t parts = p.partitions ? p.partitions : 250;
  const auto input_bytes = scaled_bytes(436 * kMB, p.scale);

  SparkContext sc("Decision Tree (DT)");
  sc.set_compute_ms_per_mb(24.0);  // heavily CPU-bound: the paper's no-effect case

  auto data = sc.text_file("hdfs-train", parts, input_bytes / parts)
                  .map("treePoints")
                  .cache();
  const std::uint64_t block = input_bytes / parts;
  auto splits = data.sample(0.2, "splitSample")
                    .reduce_by_key("findSplits",
                                   uniform_blocks(input_bytes / 20, block))
                    .cache();
  splits.collect("materializeSplits");

  for (std::uint32_t level = 0; level < levels; ++level) {
    auto stats = data.map_partitions(tag("nodeStats", level));
    // Every other level re-references the cached split metadata (binning).
    if (level % 2 == 0) {
      stats = stats.zip_partitions(splits, tag("binning", level));
    }
    TransformOpts agg_opts;
    agg_opts.partitions = 16;
    agg_opts.size_factor = 0.03;
    auto agg = stats.reduce_by_key(tag("bestSplits", level), agg_opts);
    agg.collect(tag("chooseSplits", level));
  }
  data.count("trainingError");
  return std::move(sc).build_shared();
}

// ---------------------------------------------------------------------------
// Matrix Factorization (MF / ALS) — cached rating link tables referenced by
// alternating user/item factor jobs; factor generations from iteration i-1
// feed iteration i, then go inactive. Mixed CPU/IO.
// ---------------------------------------------------------------------------
std::shared_ptr<const Application> make_matrix_factorization(
    const WorkloadParams& p) {
  const std::uint32_t iters = p.iterations ? p.iterations : 6;
  const std::uint32_t parts = p.partitions ? p.partitions : 200;
  const auto input_bytes = scaled_bytes(136 * kMB, p.scale);

  SparkContext sc("Matrix Factorization (MF)");
  sc.set_compute_ms_per_mb(4.0);

  const std::uint64_t block = input_bytes / parts;
  auto ratings = sc.text_file("hdfs-ratings", parts, input_bytes / parts)
                     .map("parsedRatings")
                     .cache();
  const auto link_blocks = uniform_blocks(13 * input_bytes / 10, block);
  auto user_links = ratings.group_by_key("userLinks", link_blocks).cache();
  auto item_links =
      ratings.map("swap").group_by_key("itemLinks", link_blocks).cache();

  const auto factor_opts = uniform_blocks(input_bytes / 2, block);
  auto users = user_links.map_values("initUserFactors", factor_opts).cache();
  ratings.count("materialize");

  for (std::uint32_t i = 0; i < iters; ++i) {
    auto items = users.join(item_links, tag("itemUpdate", i))
                     .map_values(tag("itemFactors", i), factor_opts)
                     .cache();
    users = items.join(user_links, tag("userUpdate", i))
                .map_values(tag("userFactors", i), factor_opts)
                .cache();
    users.count(tag("rmse", i));
  }
  users.count("finalFactors");
  return std::move(sc).build_shared();
}

}  // namespace workloads
}  // namespace mrd
