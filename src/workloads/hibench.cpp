// HiBench workloads (Table 1 only): Sort, WordCount, TeraSort, PageRank,
// Bayes, K-Means.
//
// The paper measured near-zero reference distances for most of HiBench —
// single-job pipelines with little or no RDD caching — and dropped the
// suite from the main experiments for that reason. We reproduce the suite
// so Table 1 regenerates in full and so tests can assert the "HiBench
// offers MRD little to exploit" claim.
#include "workloads/workloads_internal.h"

namespace mrd {
namespace workloads {

namespace {
constexpr std::uint64_t kMB = 1024ull * 1024ull;
}

// Single job, nothing cached: every distance is exactly zero.
std::shared_ptr<const Application> make_hibench_sort(const WorkloadParams& p) {
  const std::uint32_t parts = p.partitions ? p.partitions : 120;
  const auto input_bytes = scaled_bytes(400 * kMB, p.scale);

  SparkContext sc("HiBench Sort");
  sc.set_compute_ms_per_mb(1.5);
  auto data = sc.text_file("hdfs-records", parts, input_bytes / parts);
  data.map("kv").sort_by_key("sorted").save();
  return std::move(sc).build_shared();
}

// Single job, nothing cached.
std::shared_ptr<const Application> make_hibench_wordcount(
    const WorkloadParams& p) {
  const std::uint32_t parts = p.partitions ? p.partitions : 120;
  const auto input_bytes = scaled_bytes(400 * kMB, p.scale);

  SparkContext sc("HiBench WordCount");
  sc.set_compute_ms_per_mb(2.0);
  auto data = sc.text_file("hdfs-text", parts, input_bytes / parts);
  TransformOpts count_opts;
  count_opts.size_factor = 0.05;
  data.flat_map("words").reduce_by_key("wordCounts", count_opts).save();
  return std::move(sc).build_shared();
}

// Two jobs: range sampling, then the sort. The cached input is created in
// job 0 and referenced once in job 1 — max job distance 1, tiny averages.
std::shared_ptr<const Application> make_hibench_terasort(
    const WorkloadParams& p) {
  const std::uint32_t parts = p.partitions ? p.partitions : 120;
  const auto input_bytes = scaled_bytes(400 * kMB, p.scale);

  SparkContext sc("HiBench TeraSort");
  sc.set_compute_ms_per_mb(1.5);
  auto data =
      sc.text_file("hdfs-tera", parts, input_bytes / parts).map("kv").cache();
  data.sample(0.01, "rangeSample").collect("sampleRanges");  // job 0
  auto partitioned = data.repartition(parts, "rangePartitioned");
  partitioned.sort_by_key("sorted").save();  // job 1: references `data`
  return std::move(sc).build_shared();
}

// HiBench PageRank runs its iterations inside one lineage with a single
// final action, so all references fall within one job (job distance 0) and
// consecutive stages (stage distances ≈ 1).
std::shared_ptr<const Application> make_hibench_pagerank(
    const WorkloadParams& p) {
  const std::uint32_t iters = p.iterations ? p.iterations : 3;
  const std::uint32_t parts = p.partitions ? p.partitions : 80;
  const auto input_bytes = scaled_bytes(120 * kMB, p.scale);

  SparkContext sc("HiBench PageRank");
  sc.set_compute_ms_per_mb(1.0);
  auto links = sc.text_file("hdfs-links", parts, input_bytes / parts)
                   .map("adjacency")
                   .cache();
  TransformOpts rank_opts;
  rank_opts.size_factor = 0.3;
  Dataset ranks = links.map_values("initRanks", rank_opts);
  for (std::uint32_t i = 0; i < iters; ++i) {
    auto contribs = links.join(ranks, tag("contribs", i));
    ranks = contribs.reduce_by_key(tag("ranks", i), rank_opts);
  }
  ranks.save("saveRanks");  // the only action
  return std::move(sc).build_shared();
}

// Naive Bayes: tokenize/tf-idf jobs over a cached corpus, then model
// aggregation — a few jobs with moderate gaps (paper: ~2 job / ~3 stage).
std::shared_ptr<const Application> make_hibench_bayes(const WorkloadParams& p) {
  const std::uint32_t parts = p.partitions ? p.partitions : 80;
  const auto input_bytes = scaled_bytes(240 * kMB, p.scale);

  SparkContext sc("HiBench Bayes");
  sc.set_compute_ms_per_mb(3.0);
  auto corpus = sc.text_file("hdfs-docs", parts, input_bytes / parts)
                    .map("tokenized")
                    .cache();
  corpus.count("materialize");  // job 0

  TransformOpts tf_opts;
  tf_opts.size_factor = 0.4;
  auto tf = corpus.flat_map("terms").reduce_by_key("termFreq", tf_opts).cache();
  tf.count("materializeTf");  // job 1 (references corpus)

  auto idf = tf.map_values("idf", tf_opts);
  idf.collect("computeIdf");  // job 2 (references tf)

  // Model aggregation re-references the corpus two jobs after job 1.
  auto model = corpus.zip_partitions(tf, "weightedTerms")
                   .reduce_by_key("classModel", tf_opts);
  model.collect("trainModel");  // job 3
  return std::move(sc).build_shared();
}

// HiBench K-Means: the same Lloyd loop as SparkBench's but with more
// iterations (paper Table 1: 19 max job distance ⇒ ~19 iterations).
std::shared_ptr<const Application> make_hibench_kmeans(
    const WorkloadParams& p) {
  WorkloadParams q = p;
  if (q.iterations == 0) q.iterations = 19;
  return make_kmeans_named("HiBench K-Means", q);
}

}  // namespace workloads
}  // namespace mrd
