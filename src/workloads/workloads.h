// The benchmark workload generators: the 14 SparkBench and 6 HiBench
// applications of the paper's Tables 1 and 3, built from scratch on the
// Dataset API.
//
// Substitution note (see DESIGN.md): we cannot run SparkBench's actual Scala
// code or GB-scale inputs, so each generator reproduces the workload's DAG
// *structure* — job/stage topology, which RDDs are cached, where they are
// re-referenced — scaled down in bytes (~1/32 of the paper's inputs) with
// the compute/IO balance of the paper's "Job Type" column. The structural
// statistics land in the paper's order of magnitude and preserve its
// orderings (LP/SCC have far larger reference distances than TC/SP; HiBench
// distances are ≈0), which is what drives policy behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dag/application.h"

namespace mrd {

struct WorkloadParams {
  /// Input-size multiplier (1.0 = this repo's default scaled size).
  double scale = 1.0;
  /// Iteration override; 0 = the workload's default. Fig 10 triples this.
  std::uint32_t iterations = 0;
  /// Partitions-per-RDD override; 0 = default.
  std::uint32_t partitions = 0;
};

using WorkloadFactory =
    std::function<std::shared_ptr<const Application>(const WorkloadParams&)>;

struct WorkloadSpec {
  std::string key;       // short id used on the command line ("km", "scc"...)
  std::string name;      // paper name, e.g. "K-Means (KM)"
  std::string category;  // Table 3 Category column
  std::string job_type;  // Table 3 Job Type column
  std::uint32_t default_iterations = 0;  // 0 = not iterable (Fig 10 skips)
  WorkloadFactory make;
};

/// The 14 SparkBench workloads, in Table 3 order.
const std::vector<WorkloadSpec>& sparkbench_workloads();

/// The 6 HiBench workloads of Table 1.
const std::vector<WorkloadSpec>& hibench_workloads();

/// Lookup across both suites; nullptr if unknown.
const WorkloadSpec* find_workload(std::string_view key);

/// Sum of persisted RDD bytes — the cache "working set" reference scale the
/// harness sizes cluster caches against.
std::uint64_t persisted_bytes(const Application& app);

}  // namespace mrd
