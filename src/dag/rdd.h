// Static description of one RDD in an application's lineage graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/ids.h"
#include "dag/transform.h"

namespace mrd {

/// One RDD: its lineage (parents + transformation) plus the cost model inputs
/// the simulator needs (size and compute cost per partition).
///
/// `parents` are ordered; for kJoin/kCogroup/kUnion/kZipPartitions the order
/// matters to the workload generators but not to the scheduler.
struct RddInfo {
  RddId id = kInvalidRdd;
  std::string name;
  TransformKind kind = TransformKind::kSource;
  std::vector<RddId> parents;

  std::uint32_t num_partitions = 0;
  /// Serialized size of one partition, bytes. Drives cache occupancy, spill
  /// and shuffle volume.
  std::uint64_t bytes_per_partition = 0;
  /// CPU time to produce one partition from ready inputs, milliseconds.
  double compute_ms_per_partition = 0.0;

  /// True if the user program called persist()/cache() on this RDD. Only
  /// persisted RDDs participate in cache management (Spark stores only those
  /// in the BlockManager).
  bool persisted = false;

  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(num_partitions) * bytes_per_partition;
  }
};

}  // namespace mrd
