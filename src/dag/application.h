// A complete user program: the RDD lineage graph plus the ordered list of
// actions, each of which triggers one job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/ids.h"
#include "dag/rdd.h"

namespace mrd {

/// An action (count/collect/saveAsFile/...) on a target RDD. Each action
/// submission becomes one job, in program order.
struct ActionInfo {
  RddId target = kInvalidRdd;
  std::string name;
};

/// Immutable description of an application. Built via DagBuilder; validated
/// on construction (see Application::Validate).
class Application {
 public:
  Application(std::string name, std::vector<RddInfo> rdds,
              std::vector<ActionInfo> actions);

  const std::string& name() const { return name_; }
  const std::vector<RddInfo>& rdds() const { return rdds_; }
  const std::vector<ActionInfo>& actions() const { return actions_; }

  const RddInfo& rdd(RddId id) const;
  std::size_t num_rdds() const { return rdds_.size(); }
  std::size_t num_actions() const { return actions_.size(); }

  /// Sum of source RDD bytes — the paper's "Data Input Size" column.
  std::uint64_t input_bytes() const;

  /// Number of persisted RDDs.
  std::size_t num_persisted() const;

 private:
  /// Throws CheckFailure if the graph is malformed: parent IDs must be lower
  /// than the child's (topological construction order), partition counts must
  /// be positive, sources have no parents, non-sources have parents, and
  /// action targets must exist.
  void validate() const;

  std::string name_;
  std::vector<RddInfo> rdds_;      // index == RddId
  std::vector<ActionInfo> actions_;
};

}  // namespace mrd
