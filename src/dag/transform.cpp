#include "dag/transform.h"

namespace mrd {

bool is_wide(TransformKind kind) {
  switch (kind) {
    case TransformKind::kGroupByKey:
    case TransformKind::kReduceByKey:
    case TransformKind::kAggregateByKey:
    case TransformKind::kSortByKey:
    case TransformKind::kJoin:
    case TransformKind::kCogroup:
    case TransformKind::kDistinct:
    case TransformKind::kRepartition:
    case TransformKind::kPartitionBy:
      return true;
    default:
      return false;
  }
}

bool is_source(TransformKind kind) {
  return kind == TransformKind::kSource || kind == TransformKind::kParallelize;
}

bool map_side_combine(TransformKind kind) {
  switch (kind) {
    case TransformKind::kReduceByKey:
    case TransformKind::kAggregateByKey:
    case TransformKind::kDistinct:
      return true;
    default:
      return false;
  }
}

std::string_view transform_name(TransformKind kind) {
  switch (kind) {
    case TransformKind::kSource:
      return "source";
    case TransformKind::kParallelize:
      return "parallelize";
    case TransformKind::kMap:
      return "map";
    case TransformKind::kFilter:
      return "filter";
    case TransformKind::kFlatMap:
      return "flatMap";
    case TransformKind::kMapPartitions:
      return "mapPartitions";
    case TransformKind::kMapValues:
      return "mapValues";
    case TransformKind::kSample:
      return "sample";
    case TransformKind::kUnion:
      return "union";
    case TransformKind::kZipPartitions:
      return "zipPartitions";
    case TransformKind::kGroupByKey:
      return "groupByKey";
    case TransformKind::kReduceByKey:
      return "reduceByKey";
    case TransformKind::kAggregateByKey:
      return "aggregateByKey";
    case TransformKind::kSortByKey:
      return "sortByKey";
    case TransformKind::kJoin:
      return "join";
    case TransformKind::kCogroup:
      return "cogroup";
    case TransformKind::kDistinct:
      return "distinct";
    case TransformKind::kRepartition:
      return "repartition";
    case TransformKind::kPartitionBy:
      return "partitionBy";
  }
  return "unknown";
}

}  // namespace mrd
