// Transformation kinds and dependency classification.
//
// Spark distinguishes narrow dependencies (each parent partition feeds at most
// one child partition; pipelined inside a stage) from wide/shuffle
// dependencies (child partitions depend on all parent partitions; force a
// stage boundary). We follow Spark's classification; co-partitioned joins are
// not modelled — joins are always wide here, which matches the SparkBench
// workloads the paper runs.
#pragma once

#include <string_view>

namespace mrd {

enum class TransformKind {
  // Sources
  kSource,          // textFile / HDFS read
  kParallelize,     // in-memory collection
  // Narrow transformations
  kMap,
  kFilter,
  kFlatMap,
  kMapPartitions,
  kMapValues,
  kSample,
  kUnion,
  kZipPartitions,
  // Wide transformations (shuffle producers)
  kGroupByKey,
  kReduceByKey,
  kAggregateByKey,
  kSortByKey,
  kJoin,
  kCogroup,
  kDistinct,
  kRepartition,
  kPartitionBy,
};

/// True for transformations whose parent dependencies are shuffle
/// dependencies (stage boundaries).
bool is_wide(TransformKind kind);

/// True for kSource / kParallelize (no parents; data comes from storage).
bool is_source(TransformKind kind);

/// True for wide transformations with map-side combining (reduceByKey,
/// aggregateByKey, distinct): their shuffle volume is bounded by the
/// *output* size, which is why SparkBench aggregation shuffles are orders of
/// magnitude smaller than stage inputs (paper Table 3).
bool map_side_combine(TransformKind kind);

std::string_view transform_name(TransformKind kind);

}  // namespace mrd
