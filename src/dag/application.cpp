#include "dag/application.h"

#include "util/check.h"

namespace mrd {

Application::Application(std::string name, std::vector<RddInfo> rdds,
                         std::vector<ActionInfo> actions)
    : name_(std::move(name)),
      rdds_(std::move(rdds)),
      actions_(std::move(actions)) {
  validate();
}

const RddInfo& Application::rdd(RddId id) const {
  MRD_CHECK_MSG(id < rdds_.size(), "RDD id " << id << " out of range");
  return rdds_[id];
}

std::uint64_t Application::input_bytes() const {
  std::uint64_t total = 0;
  for (const RddInfo& r : rdds_) {
    if (is_source(r.kind)) total += r.total_bytes();
  }
  return total;
}

std::size_t Application::num_persisted() const {
  std::size_t n = 0;
  for (const RddInfo& r : rdds_) {
    if (r.persisted) ++n;
  }
  return n;
}

void Application::validate() const {
  MRD_CHECK_MSG(!rdds_.empty(), "application " << name_ << " has no RDDs");
  MRD_CHECK_MSG(!actions_.empty(),
                "application " << name_ << " has no actions");
  for (std::size_t i = 0; i < rdds_.size(); ++i) {
    const RddInfo& r = rdds_[i];
    MRD_CHECK_MSG(r.id == i, "RDD at index " << i << " has id " << r.id);
    MRD_CHECK_MSG(r.num_partitions > 0,
                  "RDD " << r.name << " has zero partitions");
    if (is_source(r.kind)) {
      MRD_CHECK_MSG(r.parents.empty(),
                    "source RDD " << r.name << " has parents");
    } else {
      MRD_CHECK_MSG(!r.parents.empty(),
                    "non-source RDD " << r.name << " has no parents");
    }
    for (RddId p : r.parents) {
      MRD_CHECK_MSG(p < r.id, "RDD " << r.name << " has parent " << p
                                     << " >= own id " << r.id
                                     << " (graph must be built in topo order)");
    }
  }
  for (const ActionInfo& a : actions_) {
    MRD_CHECK_MSG(a.target < rdds_.size(),
                  "action " << a.name << " targets unknown RDD " << a.target);
  }
}

}  // namespace mrd
