// Reference profiles: for each persisted RDD, the ordered list of stages (and
// jobs) at which its blocks are read from the cache. This is exactly the
// information the paper's AppProfiler extracts by parsing the DAG — the input
// to MRD's reference-distance table, to LRC's reference counts, and to the
// Belady-MIN oracle.
#pragma once

#include <map>
#include <vector>

#include "dag/execution_plan.h"
#include "dag/ids.h"

namespace mrd {

/// One cache-read event of a persisted RDD, in plan order.
struct ReferenceEvent {
  StageId stage = kInvalidStage;
  JobId job = kInvalidJob;
};

struct RddReferenceProfile {
  RddId rdd = kInvalidRdd;
  /// Stage/job at which the RDD is first computed (and cached).
  ReferenceEvent creation;
  /// Subsequent cache reads, in execution order.
  std::vector<ReferenceEvent> references;
};

/// Profiles for every persisted RDD that is computed at least once in the
/// plan. Keyed by RddId.
using ReferenceProfileMap = std::map<RddId, RddReferenceProfile>;

/// Builds profiles from the whole plan (the "recurring application" view —
/// the AppProfiler has seen the full DAG).
ReferenceProfileMap build_reference_profile(const ExecutionPlan& plan);

/// Builds profiles restricted to one job's stage executions (the "ad-hoc"
/// view — only the submitted job's DAG fragment is known). Creation events
/// from earlier jobs are not visible; an RDD first referenced in this job
/// gets its first in-job event as `creation` if it is computed here, else
/// only `references`.
ReferenceProfileMap build_job_reference_profile(const ExecutionPlan& plan,
                                                JobId job);

}  // namespace mrd
