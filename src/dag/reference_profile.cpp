#include "dag/reference_profile.h"

#include "util/check.h"

namespace mrd {

namespace {

void accumulate_job(const ExecutionPlan& plan, const JobInfo& job,
                    ReferenceProfileMap* out) {
  for (const StageExecution& rec : job.stages) {
    if (!rec.executed) continue;
    // Creations: persisted RDDs computed by this execution.
    for (RddId r : rec.computes) {
      if (!plan.app().rdd(r).persisted) continue;
      auto [it, inserted] = out->try_emplace(r);
      if (inserted) {
        it->second.rdd = r;
        it->second.creation = ReferenceEvent{rec.stage, rec.job};
      }
      // Re-computation after eviction is a runtime event, not a plan event;
      // statically each persisted RDD is created once.
    }
    // References: cache probes.
    for (RddId r : rec.probes) {
      auto [it, inserted] = out->try_emplace(r);
      if (inserted) {
        // Probed without a visible creation (ad-hoc view of a later job, or
        // a stage reading an RDD cached by an earlier job).
        it->second.rdd = r;
        it->second.creation = ReferenceEvent{kInvalidStage, kInvalidJob};
      }
      it->second.references.push_back(ReferenceEvent{rec.stage, rec.job});
    }
  }
}

}  // namespace

ReferenceProfileMap build_reference_profile(const ExecutionPlan& plan) {
  ReferenceProfileMap out;
  for (const JobInfo& job : plan.jobs()) {
    accumulate_job(plan, job, &out);
  }
  return out;
}

ReferenceProfileMap build_job_reference_profile(const ExecutionPlan& plan,
                                                JobId job) {
  MRD_CHECK(job < plan.jobs().size());
  ReferenceProfileMap out;
  accumulate_job(plan, plan.job(job), &out);
  return out;
}

}  // namespace mrd
