// Fluent builder for Application lineage graphs.
//
// The workload generators and the higher-level Dataset API both funnel into
// this builder. Sizing defaults: a transformation inherits its parents'
// partition count (max over parents; sum for union) and scales its
// bytes-per-partition from the parents via `size_factor`; compute cost
// defaults to `compute_ms_per_mb` × partition size, scaled by `cost_factor`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dag/application.h"
#include "dag/ids.h"
#include "dag/transform.h"

namespace mrd {

/// Optional overrides for one transformation; anything unset is derived from
/// the parents (see class comment).
struct TransformOpts {
  std::optional<std::uint32_t> partitions;
  std::optional<std::uint64_t> bytes_per_partition;
  std::optional<double> compute_ms;
  /// Child bytes/partition = size_factor × (mean parent bytes/partition),
  /// unless bytes_per_partition is set.
  double size_factor = 1.0;
  /// Child compute = cost_factor × compute_ms_per_mb × MB-per-partition,
  /// unless compute_ms is set.
  double cost_factor = 1.0;
};

class DagBuilder {
 public:
  explicit DagBuilder(std::string app_name);

  /// Baseline CPU cost per MB of produced partition data (default 2.0 ms/MB).
  void set_compute_ms_per_mb(double ms_per_mb);
  double compute_ms_per_mb() const { return compute_ms_per_mb_; }

  /// Adds a source RDD read from simulated HDFS.
  RddId source(std::string name, std::uint32_t partitions,
               std::uint64_t bytes_per_partition);

  /// Adds any transformation. Parents must already exist.
  RddId apply(TransformKind kind, std::string name,
              std::vector<RddId> parents, const TransformOpts& opts = {});

  // Convenience wrappers for common single-parent transformations.
  RddId map(RddId parent, std::string name, const TransformOpts& opts = {});
  RddId filter(RddId parent, std::string name,
               const TransformOpts& opts = {});
  RddId flat_map(RddId parent, std::string name,
                 const TransformOpts& opts = {});
  RddId map_partitions(RddId parent, std::string name,
                       const TransformOpts& opts = {});
  RddId reduce_by_key(RddId parent, std::string name,
                      const TransformOpts& opts = {});
  RddId group_by_key(RddId parent, std::string name,
                     const TransformOpts& opts = {});
  RddId sort_by_key(RddId parent, std::string name,
                    const TransformOpts& opts = {});
  RddId distinct(RddId parent, std::string name,
                 const TransformOpts& opts = {});
  RddId join(RddId left, RddId right, std::string name,
             const TransformOpts& opts = {});
  RddId cogroup(RddId left, RddId right, std::string name,
                const TransformOpts& opts = {});
  RddId union_of(std::vector<RddId> parents, std::string name,
                 const TransformOpts& opts = {});
  RddId zip_partitions(RddId left, RddId right, std::string name,
                       const TransformOpts& opts = {});

  /// Marks an RDD persisted (cache()-ed by the user program).
  void persist(RddId id);
  void unpersist(RddId id);
  bool is_persisted(RddId id) const;

  /// Records an action on `target`; becomes one job at plan time.
  void action(RddId target, std::string name);

  const RddInfo& rdd(RddId id) const;
  std::size_t num_rdds() const { return rdds_.size(); }
  std::size_t num_actions() const { return actions_.size(); }

  /// Finalizes into a validated Application. The builder may not be used
  /// afterwards.
  Application build() &&;

 private:
  RddId add(RddInfo info);

  std::string name_;
  double compute_ms_per_mb_ = 2.0;
  std::vector<RddInfo> rdds_;
  std::vector<ActionInfo> actions_;
  bool built_ = false;
};

}  // namespace mrd
