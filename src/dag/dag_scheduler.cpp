#include "dag/dag_scheduler.h"

#include <algorithm>
#include <utility>
#include <map>
#include <set>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace mrd {

namespace {

/// Mutable scheduler state threaded through plan construction.
class Planner {
 public:
  explicit Planner(std::shared_ptr<const Application> app)
      : app_(std::move(app)) {}

  ExecutionPlan run() {
    for (std::size_t i = 0; i < app_->actions().size(); ++i) {
      submit_job(static_cast<JobId>(i), app_->actions()[i]);
    }
    return ExecutionPlan(app_, std::move(stages_), std::move(jobs_),
                         std::move(shuffles_));
  }

 private:
  // ---- Stage/shuffle creation (cache-oblivious, as in Spark) ----

  /// Creates a fresh stage materializing `terminal`, creating any missing
  /// parent shuffle-map stages first (so parents get lower IDs).
  StageId create_stage(JobId job, RddId terminal, bool is_result) {
    StageInfo info;
    info.first_job = job;
    info.terminal = terminal;
    info.is_result = is_result;
    info.num_tasks = app_->rdd(terminal).num_partitions;
    collect_pipeline(terminal, &info.pipeline);

    // Wide edges out of the pipeline become shuffle reads; their map stages
    // are created (or reused) before this stage's ID is allocated.
    std::set<StageId> parent_set;
    for (RddId r : info.pipeline) {
      const RddInfo& rdd = app_->rdd(r);
      if (!is_wide(rdd.kind)) continue;
      for (RddId p : rdd.parents) {
        const ShuffleId s = get_or_create_shuffle(job, r, p);
        info.shuffle_reads.push_back(s);
        parent_set.insert(shuffles_[s].map_stage);
      }
    }
    info.parents.assign(parent_set.begin(), parent_set.end());

    info.id = static_cast<StageId>(stages_.size());
    stages_.push_back(std::move(info));
    return stages_.back().id;
  }

  /// Narrow-reachable set from `terminal`, ascending RddId (parents before
  /// children, terminal last).
  void collect_pipeline(RddId terminal, std::vector<RddId>* out) const {
    std::set<RddId> visited;
    std::vector<RddId> stack{terminal};
    while (!stack.empty()) {
      const RddId r = stack.back();
      stack.pop_back();
      if (!visited.insert(r).second) continue;
      const RddInfo& rdd = app_->rdd(r);
      if (is_wide(rdd.kind) || is_source(rdd.kind)) continue;
      for (RddId p : rdd.parents) stack.push_back(p);
    }
    out->assign(visited.begin(), visited.end());
  }

  ShuffleId get_or_create_shuffle(JobId job, RddId child, RddId parent) {
    const auto key = std::make_pair(child, parent);
    if (auto it = shuffle_by_edge_.find(key); it != shuffle_by_edge_.end()) {
      return it->second;
    }
    // Map stage must exist before the shuffle record points at it.
    const StageId map_stage = create_stage(job, parent, /*is_result=*/false);
    ShuffleInfo info;
    info.id = static_cast<ShuffleId>(shuffles_.size());
    info.map_rdd = parent;
    info.reduce_rdd = child;
    info.map_stage = map_stage;
    // Combining shuffles (reduceByKey etc.) move only the aggregated output;
    // repartitioning shuffles (join/groupByKey/sort) move the parent data.
    info.bytes = map_side_combine(app_->rdd(child).kind)
                     ? std::min(app_->rdd(parent).total_bytes(),
                                app_->rdd(child).total_bytes())
                     : app_->rdd(parent).total_bytes();
    stages_[map_stage].shuffle_write = info.id;
    shuffles_.push_back(info);
    shuffle_by_edge_.emplace(key, info.id);
    return info.id;
  }

  // ---- Job submission (cache-aware skipping) ----

  void submit_job(JobId job_id, const ActionInfo& action) {
    JobInfo job;
    job.id = job_id;
    job.target = action.target;
    job.action = action.name;
    job.result_stage = create_stage(job_id, action.target, /*is_result=*/true);

    // Full static stage set of the job (what the Spark UI lists, including
    // skipped stages).
    std::set<StageId> all;
    std::vector<StageId> stack{job.result_stage};
    while (!stack.empty()) {
      const StageId s = stack.back();
      stack.pop_back();
      if (!all.insert(s).second) continue;
      for (StageId p : stages_[s].parents) stack.push_back(p);
    }

    // Recursive submission: execute missing parents first, then the stage.
    std::map<StageId, StageExecution> records;
    std::vector<StageId> exec_order;
    submit_stage(job_id, job.result_stage, &records, &exec_order);

    // Assemble appearances: executed stages in execution order is a
    // topological order; skipped stages are interleaved by ascending ID
    // (parents were created before children, so this is also topological).
    for (StageId s : all) {  // std::set iterates ascending
      if (auto it = records.find(s); it != records.end()) continue;
      StageExecution skipped;
      skipped.stage = s;
      skipped.job = job_id;
      skipped.executed = false;
      records.emplace(s, std::move(skipped));
    }
    for (const auto& [sid, rec] : records) {
      (void)sid;
      job.stages.push_back(rec);
    }
    jobs_.push_back(std::move(job));
  }

  /// Executes `stage` for `job`, recursively executing missing parents first.
  void submit_stage(JobId job, StageId stage,
                    std::map<StageId, StageExecution>* records,
                    std::vector<StageId>* exec_order) {
    if (records->count(stage)) return;  // already executed this job

    // Discovery walk: find which shuffles this execution would consume given
    // the *current* cache state, and run missing producers first.
    StageExecution probe_rec = walk_stage(job, stage);
    for (ShuffleId s : probe_rec.shuffle_reads) {
      if (computed_shuffles_.count(s)) continue;
      submit_stage(job, shuffles_[s].map_stage, records, exec_order);
    }

    // Final walk: parents may have cached persisted RDDs that now cut this
    // stage's pipeline (shared lineage between sibling stages).
    StageExecution rec = walk_stage(job, stage);
    rec.executed = true;

    for (RddId r : rec.computes) {
      if (app_->rdd(r).persisted) computed_persisted_.insert(r);
    }
    if (stages_[stage].shuffle_write) {
      computed_shuffles_.insert(*stages_[stage].shuffle_write);
    }
    exec_order->push_back(stage);
    records->emplace(stage, std::move(rec));
  }

  /// Cache-aware pipeline walk: splits the stage's static pipeline into
  /// computed RDDs and cache probes given the current computed_persisted_
  /// state.
  StageExecution walk_stage(JobId job, StageId stage_id) const {
    const StageInfo& stage = stages_[stage_id];
    StageExecution rec;
    rec.stage = stage_id;
    rec.job = job;

    const RddId terminal = stage.terminal;
    std::set<RddId> computes;
    std::set<RddId> probes;

    if (app_->rdd(terminal).persisted && computed_persisted_.count(terminal)) {
      // The whole stage output is (nominally) cached: tasks only read it.
      probes.insert(terminal);
    } else {
      std::vector<RddId> stack{terminal};
      std::set<RddId> visited;
      while (!stack.empty()) {
        const RddId r = stack.back();
        stack.pop_back();
        if (!visited.insert(r).second) continue;
        const RddInfo& rdd = app_->rdd(r);
        if (r != terminal && rdd.persisted && computed_persisted_.count(r)) {
          probes.insert(r);  // cut: read from cache
          continue;
        }
        computes.insert(r);
        if (is_wide(rdd.kind) || is_source(rdd.kind)) continue;
        for (RddId p : rdd.parents) stack.push_back(p);
      }
    }

    rec.computes.assign(computes.begin(), computes.end());
    rec.probes.assign(probes.begin(), probes.end());
    for (RddId r : rec.computes) {
      const RddInfo& rdd = app_->rdd(r);
      if (is_source(rdd.kind)) {
        rec.source_reads.push_back(r);
      } else if (is_wide(rdd.kind)) {
        for (RddId p : rdd.parents) {
          auto it = shuffle_by_edge_.find(std::make_pair(r, p));
          MRD_CHECK_MSG(it != shuffle_by_edge_.end(),
                        "shuffle for edge " << p << "->" << r
                                            << " missing at walk time");
          rec.shuffle_reads.push_back(it->second);
        }
      }
    }
    return rec;
  }

  std::shared_ptr<const Application> app_;
  std::vector<StageInfo> stages_;
  std::vector<JobInfo> jobs_;
  std::vector<ShuffleInfo> shuffles_;
  std::map<std::pair<RddId, RddId>, ShuffleId> shuffle_by_edge_;
  std::set<ShuffleId> computed_shuffles_;
  std::set<RddId> computed_persisted_;
};

}  // namespace

ExecutionPlan DagScheduler::plan(std::shared_ptr<const Application> app) {
  MRD_CHECK(app != nullptr);
  return Planner(std::move(app)).run();
}

}  // namespace mrd
