#include "dag/execution_plan.h"

#include <set>

namespace mrd {

std::size_t ExecutionPlan::stage_appearances() const {
  std::size_t n = 0;
  for (const JobInfo& job : jobs_) n += job.stages.size();
  return n;
}

std::size_t ExecutionPlan::active_stages() const {
  std::set<StageId> active;
  for (const JobInfo& job : jobs_) {
    for (const StageExecution& rec : job.stages) {
      if (rec.executed) active.insert(rec.stage);
    }
  }
  return active.size();
}

std::uint64_t ExecutionPlan::shuffle_bytes() const {
  std::uint64_t total = 0;
  for (const JobInfo& job : jobs_) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      if (stages_[rec.stage].shuffle_write) {
        total += shuffles_[*stages_[rec.stage].shuffle_write].bytes;
      }
    }
  }
  return total;
}

std::uint64_t ExecutionPlan::total_stage_input_bytes() const {
  std::uint64_t total = 0;
  for (const JobInfo& job : jobs_) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      for (RddId r : rec.probes) total += app_->rdd(r).total_bytes();
      for (RddId r : rec.source_reads) total += app_->rdd(r).total_bytes();
      for (ShuffleId s : rec.shuffle_reads) total += shuffles_[s].bytes;
    }
  }
  return total;
}

}  // namespace mrd
