// Block placement: which node owns a block's primary (cache) copy.
//
// The default is Spark-like round-robin over partitions — owner(rdd, p) =
// p % num_nodes — which matches the paper's 25-node testbed. It has a
// pathological shape at scale: the RDD id never enters the mapping, so at
// 1000 nodes a 100-partition RDD occupies nodes 0..99 and leaves the other
// 900 permanently idle, and *every* RDD's partition k piles onto node
// k % num_nodes. kRddMixed keeps the per-RDD stride-N layout (partition
// enumeration per node stays an arithmetic progression, which every
// incremental tally and prefetch frontier relies on) but rotates each RDD
// by a per-RDD hash salt, spreading small RDDs across the whole cluster.
//
// All helpers reduce exactly to the round-robin formulas when the mode is
// kRoundRobin — the 25-node figure pipelines are byte-identical by
// construction.
#pragma once

#include <cstdint>

#include "dag/ids.h"

namespace mrd {

enum class BlockPlacement : std::uint8_t {
  kRoundRobin,  // owner = partition % num_nodes (Spark-like default)
  kRddMixed,    // owner = (partition + salt(rdd)) % num_nodes
};

/// Per-RDD rotation of the round-robin mapping; 0 under kRoundRobin.
inline std::uint32_t placement_salt(RddId rdd, NodeId num_nodes,
                                    BlockPlacement placement) {
  if (placement == BlockPlacement::kRoundRobin || num_nodes <= 1) return 0;
  // splitmix64 finalizer — decorrelates consecutive RDD ids.
  std::uint64_t x = static_cast<std::uint64_t>(rdd) + 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % num_nodes);
}

/// Owner node of `block` under `placement`.
inline NodeId placement_owner(const BlockId& block, NodeId num_nodes,
                              BlockPlacement placement) {
  return (block.partition + placement_salt(block.rdd, num_nodes, placement)) %
         num_nodes;
}

/// Smallest partition index of `rdd` owned by `node`; the node's local
/// partitions are first, first + num_nodes, first + 2*num_nodes, ...
inline PartitionIndex first_local_partition(RddId rdd, NodeId node,
                                            NodeId num_nodes,
                                            BlockPlacement placement) {
  const std::uint32_t salt = placement_salt(rdd, num_nodes, placement);
  return node >= salt ? node - salt : node + num_nodes - salt;
}

/// Number of partitions of an RDD with `num_partitions` partitions owned by
/// the node whose first local partition is `first`.
inline std::uint32_t local_partition_count_from(PartitionIndex first,
                                                PartitionIndex num_partitions,
                                                NodeId num_nodes) {
  return num_partitions > first
             ? (num_partitions - 1 - first) / num_nodes + 1
             : 0;
}

}  // namespace mrd
