#include "dag/dag_builder.h"

#include <algorithm>

#include "util/check.h"

namespace mrd {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

DagBuilder::DagBuilder(std::string app_name) : name_(std::move(app_name)) {}

void DagBuilder::set_compute_ms_per_mb(double ms_per_mb) {
  MRD_CHECK(ms_per_mb >= 0.0);
  compute_ms_per_mb_ = ms_per_mb;
}

RddId DagBuilder::source(std::string name, std::uint32_t partitions,
                         std::uint64_t bytes_per_partition) {
  MRD_CHECK(partitions > 0);
  RddInfo info;
  info.name = std::move(name);
  info.kind = TransformKind::kSource;
  info.num_partitions = partitions;
  info.bytes_per_partition = bytes_per_partition;
  // Source "compute" is deserialization; the HDFS read itself is charged by
  // the simulator as disk I/O.
  info.compute_ms_per_partition =
      0.5 * compute_ms_per_mb_ *
      (static_cast<double>(bytes_per_partition) / kBytesPerMb);
  return add(std::move(info));
}

RddId DagBuilder::apply(TransformKind kind, std::string name,
                        std::vector<RddId> parents,
                        const TransformOpts& opts) {
  MRD_CHECK_MSG(!is_source(kind), "use source() for source RDDs");
  MRD_CHECK_MSG(!parents.empty(), "transformation " << name << " needs parents");
  for (RddId p : parents) {
    MRD_CHECK_MSG(p < rdds_.size(), "unknown parent RDD " << p);
  }

  RddInfo info;
  info.name = std::move(name);
  info.kind = kind;
  info.parents = std::move(parents);

  if (opts.partitions) {
    info.num_partitions = *opts.partitions;
  } else if (kind == TransformKind::kUnion) {
    std::uint32_t total = 0;
    for (RddId p : info.parents) total += rdds_[p].num_partitions;
    info.num_partitions = total;
  } else {
    std::uint32_t best = 0;
    for (RddId p : info.parents) {
      best = std::max(best, rdds_[p].num_partitions);
    }
    info.num_partitions = best;
  }
  MRD_CHECK(info.num_partitions > 0);

  if (opts.bytes_per_partition) {
    info.bytes_per_partition = *opts.bytes_per_partition;
  } else {
    // Mean of parent partition sizes, scaled. For union the per-partition
    // size stays parent-like (partition count already grew).
    double sum = 0.0;
    for (RddId p : info.parents) {
      sum += static_cast<double>(rdds_[p].bytes_per_partition);
    }
    const double mean = sum / static_cast<double>(info.parents.size());
    info.bytes_per_partition =
        static_cast<std::uint64_t>(opts.size_factor * mean);
  }

  if (opts.compute_ms) {
    info.compute_ms_per_partition = *opts.compute_ms;
  } else {
    info.compute_ms_per_partition =
        opts.cost_factor * compute_ms_per_mb_ *
        (static_cast<double>(info.bytes_per_partition) / kBytesPerMb);
  }
  return add(std::move(info));
}

RddId DagBuilder::map(RddId parent, std::string name,
                      const TransformOpts& opts) {
  return apply(TransformKind::kMap, std::move(name), {parent}, opts);
}
RddId DagBuilder::filter(RddId parent, std::string name,
                         const TransformOpts& opts) {
  return apply(TransformKind::kFilter, std::move(name), {parent}, opts);
}
RddId DagBuilder::flat_map(RddId parent, std::string name,
                           const TransformOpts& opts) {
  return apply(TransformKind::kFlatMap, std::move(name), {parent}, opts);
}
RddId DagBuilder::map_partitions(RddId parent, std::string name,
                                 const TransformOpts& opts) {
  return apply(TransformKind::kMapPartitions, std::move(name), {parent}, opts);
}
RddId DagBuilder::reduce_by_key(RddId parent, std::string name,
                                const TransformOpts& opts) {
  return apply(TransformKind::kReduceByKey, std::move(name), {parent}, opts);
}
RddId DagBuilder::group_by_key(RddId parent, std::string name,
                               const TransformOpts& opts) {
  return apply(TransformKind::kGroupByKey, std::move(name), {parent}, opts);
}
RddId DagBuilder::sort_by_key(RddId parent, std::string name,
                              const TransformOpts& opts) {
  return apply(TransformKind::kSortByKey, std::move(name), {parent}, opts);
}
RddId DagBuilder::distinct(RddId parent, std::string name,
                           const TransformOpts& opts) {
  return apply(TransformKind::kDistinct, std::move(name), {parent}, opts);
}
RddId DagBuilder::join(RddId left, RddId right, std::string name,
                       const TransformOpts& opts) {
  return apply(TransformKind::kJoin, std::move(name), {left, right}, opts);
}
RddId DagBuilder::cogroup(RddId left, RddId right, std::string name,
                          const TransformOpts& opts) {
  return apply(TransformKind::kCogroup, std::move(name), {left, right}, opts);
}
RddId DagBuilder::union_of(std::vector<RddId> parents, std::string name,
                           const TransformOpts& opts) {
  return apply(TransformKind::kUnion, std::move(name), std::move(parents),
               opts);
}
RddId DagBuilder::zip_partitions(RddId left, RddId right, std::string name,
                                 const TransformOpts& opts) {
  return apply(TransformKind::kZipPartitions, std::move(name), {left, right},
               opts);
}

void DagBuilder::persist(RddId id) {
  MRD_CHECK(id < rdds_.size());
  rdds_[id].persisted = true;
}

void DagBuilder::unpersist(RddId id) {
  MRD_CHECK(id < rdds_.size());
  rdds_[id].persisted = false;
}

bool DagBuilder::is_persisted(RddId id) const {
  MRD_CHECK(id < rdds_.size());
  return rdds_[id].persisted;
}

void DagBuilder::action(RddId target, std::string name) {
  MRD_CHECK(target < rdds_.size());
  actions_.push_back(ActionInfo{target, std::move(name)});
}

const RddInfo& DagBuilder::rdd(RddId id) const {
  MRD_CHECK(id < rdds_.size());
  return rdds_[id];
}

Application DagBuilder::build() && {
  MRD_CHECK_MSG(!built_, "DagBuilder::build called twice");
  built_ = true;
  return Application(std::move(name_), std::move(rdds_), std::move(actions_));
}

RddId DagBuilder::add(RddInfo info) {
  MRD_CHECK_MSG(!built_, "DagBuilder used after build()");
  info.id = static_cast<RddId>(rdds_.size());
  rdds_.push_back(std::move(info));
  return rdds_.back().id;
}

}  // namespace mrd
