#include "dag/dag_analysis.h"

#include <algorithm>

#include "util/check.h"

namespace mrd {

namespace {

/// Invokes fn(prev_event, next_event) for every consecutive event pair of
/// every profiled RDD (creation included when visible).
template <typename Fn>
void for_each_gap(const ReferenceProfileMap& profiles, Fn&& fn) {
  for (const auto& [rdd, profile] : profiles) {
    (void)rdd;
    ReferenceEvent prev = profile.creation;
    for (const ReferenceEvent& next : profile.references) {
      if (prev.stage != kInvalidStage) fn(prev, next);
      prev = next;
    }
  }
}

}  // namespace

ReferenceDistanceStats reference_distance_stats(const ExecutionPlan& plan) {
  const ReferenceProfileMap profiles = build_reference_profile(plan);
  ReferenceDistanceStats stats;
  double stage_sum = 0.0;
  double job_sum = 0.0;
  for_each_gap(profiles, [&](const ReferenceEvent& a, const ReferenceEvent& b) {
    MRD_CHECK_MSG(b.stage >= a.stage,
                  "references out of order: stage " << b.stage << " after "
                                                    << a.stage);
    const std::uint32_t sd = b.stage - a.stage;
    const std::uint32_t jd = b.job - a.job;
    stage_sum += sd;
    job_sum += jd;
    stats.max_stage_distance = std::max(stats.max_stage_distance, sd);
    stats.max_job_distance = std::max(stats.max_job_distance, jd);
    ++stats.num_gaps;
  });
  if (stats.num_gaps > 0) {
    stats.avg_stage_distance = stage_sum / static_cast<double>(stats.num_gaps);
    stats.avg_job_distance = job_sum / static_cast<double>(stats.num_gaps);
  }
  return stats;
}

WorkloadCharacteristics workload_characteristics(const ExecutionPlan& plan) {
  WorkloadCharacteristics c;
  c.input_bytes = plan.app().input_bytes();
  c.total_stage_input_bytes = plan.total_stage_input_bytes();
  c.shuffle_bytes = plan.shuffle_bytes();
  c.jobs = plan.jobs().size();
  c.stages = plan.stage_appearances();
  c.active_stages = plan.active_stages();
  c.rdds = plan.app().num_rdds();
  c.persisted_rdds = plan.app().num_persisted();

  for (const JobInfo& job : plan.jobs()) {
    for (const StageExecution& rec : job.stages) {
      if (!rec.executed) continue;
      c.total_references += rec.probes.size();
    }
  }
  if (c.persisted_rdds > 0) {
    c.refs_per_rdd = static_cast<double>(c.total_references) /
                     static_cast<double>(c.persisted_rdds);
  }
  if (c.active_stages > 0) {
    c.refs_per_stage = static_cast<double>(c.total_references) /
                       static_cast<double>(c.active_stages);
  }
  return c;
}

std::uint64_t peak_live_persisted_bytes(const ExecutionPlan& plan) {
  const ReferenceProfileMap profiles = build_reference_profile(plan);
  // Interval [creation, last reference] per RDD, then a sweep over stage IDs.
  struct Interval {
    StageId begin;
    StageId end;
    std::uint64_t bytes;
  };
  std::vector<Interval> intervals;
  StageId max_stage = 0;
  for (const auto& [rdd, p] : profiles) {
    Interval iv;
    iv.begin = p.creation.stage != kInvalidStage
                   ? p.creation.stage
                   : (p.references.empty() ? 0 : p.references.front().stage);
    iv.end = p.references.empty() ? iv.begin : p.references.back().stage;
    iv.bytes = plan.app().rdd(rdd).total_bytes();
    max_stage = std::max(max_stage, iv.end);
    intervals.push_back(iv);
  }
  if (intervals.empty()) return 0;

  std::vector<std::int64_t> delta(static_cast<std::size_t>(max_stage) + 2, 0);
  for (const Interval& iv : intervals) {
    delta[iv.begin] += static_cast<std::int64_t>(iv.bytes);
    delta[iv.end + 1] -= static_cast<std::int64_t>(iv.bytes);
  }
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (std::int64_t d : delta) {
    live += d;
    peak = std::max(peak, live);
  }
  return static_cast<std::uint64_t>(peak);
}

std::vector<std::uint32_t> stage_distance_gaps(const ExecutionPlan& plan) {
  const ReferenceProfileMap profiles = build_reference_profile(plan);
  std::vector<std::uint32_t> gaps;
  for_each_gap(profiles, [&](const ReferenceEvent& a, const ReferenceEvent& b) {
    gaps.push_back(b.stage - a.stage);
  });
  return gaps;
}

}  // namespace mrd
