// Stage decomposition, faithful to Spark's DAGScheduler:
//
//  * each action submits one job;
//  * walking back from the job's target RDD, narrow dependencies are
//    pipelined into a stage, wide dependencies cut stage boundaries;
//  * shuffle-map stages are keyed by shuffle and *reused* across jobs
//    (shuffleIdToMapStage), result stages are always fresh;
//  * stage IDs are globally sequential in creation order, parents created
//    before children;
//  * at submission, a stage is skipped when its shuffle output already
//    exists, or when every path from it to the result crosses a persisted
//    RDD that has already been computed (getMissingParentStages' cache cut).
//
// The skip logic assumes persisted RDDs stay cached between the execution
// that produced them and later references ("nominal" skipping). The runtime
// simulator re-validates each probe against the actual cache and charges
// lineage recomputation on a miss, so an optimistic skip never loses work —
// it just converts it into recompute cost, exactly as Spark does when a
// cached partition was evicted.
#pragma once

#include <memory>

#include "dag/application.h"
#include "dag/execution_plan.h"

namespace mrd {

class DagScheduler {
 public:
  /// Builds the full plan for `app`. Deterministic.
  static ExecutionPlan plan(std::shared_ptr<const Application> app);
};

}  // namespace mrd
