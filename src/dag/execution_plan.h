// The static execution plan produced by the DagScheduler: jobs, stages,
// shuffles, and — crucially for cache simulation — the per-stage list of
// persisted-RDD probes. The cluster simulator replays this plan; the MRD
// AppProfiler parses it (job by job, or whole for recurring applications).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dag/application.h"
#include "dag/ids.h"

namespace mrd {

/// One shuffle dependency: a wide edge parent→child in the lineage graph.
struct ShuffleInfo {
  ShuffleId id = 0;
  RddId map_rdd = kInvalidRdd;     // parent (map side)
  RddId reduce_rdd = kInvalidRdd;  // child (reduce side)
  StageId map_stage = kInvalidStage;
  /// Bytes written by the map side == bytes read by the reduce side. We use
  /// the map RDD's total size, matching how SparkBench's shuffle volumes are
  /// reported.
  std::uint64_t bytes = 0;
};

/// A stage object. Created once; shuffle-map stages are shared across jobs
/// (Spark's shuffleIdToMapStage behaviour), result stages are per-job.
struct StageInfo {
  StageId id = kInvalidStage;
  JobId first_job = kInvalidJob;  // job whose submission created this stage
  RddId terminal = kInvalidRdd;   // RDD the stage materializes
  bool is_result = false;
  /// All RDDs reachable from `terminal` through narrow dependencies (the
  /// pipelined set), in topological order, terminal last. What actually gets
  /// computed at a given execution is a subset (see StageExecution).
  std::vector<RddId> pipeline;
  /// Shuffles whose reduce side lies in `pipeline` (stage inputs).
  std::vector<ShuffleId> shuffle_reads;
  /// For map stages: the shuffle this stage writes.
  std::optional<ShuffleId> shuffle_write;
  /// Direct parent stages (producers of shuffle_reads), deduplicated.
  std::vector<StageId> parents;
  std::uint32_t num_tasks = 0;  // == partitions of terminal
};

/// One appearance of a stage in one job's DAG, in submission (topological)
/// order. `executed == false` means the stage is listed in the job but
/// skipped — either its shuffle output already exists, or a cached persisted
/// RDD cuts it off from the result (Spark's getMissingParentStages).
struct StageExecution {
  StageId stage = kInvalidStage;
  JobId job = kInvalidJob;
  bool executed = false;
  /// RDDs the stage computes at this execution, topo order, terminal last.
  /// Cut at persisted RDDs that were computed earlier (those appear in
  /// `probes` instead). Empty when skipped.
  std::vector<RddId> computes;
  /// Persisted RDDs whose blocks this execution reads from the cache — the
  /// block-reference events that cache policies see.
  std::vector<RddId> probes;
  /// Shuffles consumed by `computes` (reduce-side reads).
  std::vector<ShuffleId> shuffle_reads;
  /// Source RDDs inside `computes` — each costs an HDFS read.
  std::vector<RddId> source_reads;
};

struct JobInfo {
  JobId id = kInvalidJob;
  RddId target = kInvalidRdd;
  std::string action;
  /// All stage appearances in this job, topological order (parents first,
  /// result stage last). Includes skipped appearances.
  std::vector<StageExecution> stages;
  StageId result_stage = kInvalidStage;
};

class ExecutionPlan {
 public:
  ExecutionPlan(std::shared_ptr<const Application> app,
                std::vector<StageInfo> stages, std::vector<JobInfo> jobs,
                std::vector<ShuffleInfo> shuffles)
      : app_(std::move(app)),
        stages_(std::move(stages)),
        jobs_(std::move(jobs)),
        shuffles_(std::move(shuffles)) {}

  const Application& app() const { return *app_; }
  std::shared_ptr<const Application> app_ptr() const { return app_; }
  const std::vector<StageInfo>& stages() const { return stages_; }
  const std::vector<JobInfo>& jobs() const { return jobs_; }
  const std::vector<ShuffleInfo>& shuffles() const { return shuffles_; }

  const StageInfo& stage(StageId id) const { return stages_.at(id); }
  const JobInfo& job(JobId id) const { return jobs_.at(id); }
  const ShuffleInfo& shuffle(ShuffleId id) const { return shuffles_.at(id); }

  /// Unique stage objects created.
  std::size_t total_stages() const { return stages_.size(); }

  /// Per-job stage appearances summed over all jobs (what the Spark UI — and
  /// the paper's Table 3 "Stages" column — counts: lineage growth makes this
  /// balloon for iterative GraphX workloads, e.g. LP's 858 vs 87 active).
  std::size_t stage_appearances() const;

  /// Stages that execute at least once ("Active Stages" column).
  std::size_t active_stages() const;

  /// Total bytes shuffled across all executed map stages (R == W).
  std::uint64_t shuffle_bytes() const;

  /// Sum over executed stage appearances of the bytes they take as input
  /// (cached probes + shuffle reads + source reads) — the paper's "Total
  /// Stage Inputs" column.
  std::uint64_t total_stage_input_bytes() const;

 private:
  std::shared_ptr<const Application> app_;
  std::vector<StageInfo> stages_;   // index == StageId
  std::vector<JobInfo> jobs_;       // index == JobId
  std::vector<ShuffleInfo> shuffles_;  // index == ShuffleId
};

}  // namespace mrd
