// Workload characterization over execution plans — produces the paper's
// Table 1 (reference-distance statistics) and Table 3 (workload
// characteristics) columns.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/execution_plan.h"
#include "dag/reference_profile.h"

namespace mrd {

/// Table 1 row. A "gap" is the distance between consecutive events
/// (creation→first reference, reference→next reference) of one persisted
/// RDD; distances are measured in stage IDs and job IDs respectively.
struct ReferenceDistanceStats {
  double avg_job_distance = 0.0;
  std::uint32_t max_job_distance = 0;
  double avg_stage_distance = 0.0;
  std::uint32_t max_stage_distance = 0;
  std::size_t num_gaps = 0;
};

ReferenceDistanceStats reference_distance_stats(const ExecutionPlan& plan);

/// Table 3 row (structural columns).
struct WorkloadCharacteristics {
  std::uint64_t input_bytes = 0;
  std::uint64_t total_stage_input_bytes = 0;
  std::uint64_t shuffle_bytes = 0;  // R == W in our model
  std::size_t jobs = 0;
  std::size_t stages = 0;         // unique stages created
  std::size_t active_stages = 0;  // stages executed at least once
  std::size_t rdds = 0;
  std::size_t persisted_rdds = 0;
  std::size_t total_references = 0;   // cache probes across the plan
  double refs_per_rdd = 0.0;    // total_references / persisted_rdds
  double refs_per_stage = 0.0;  // total_references / active_stages
};

WorkloadCharacteristics workload_characteristics(const ExecutionPlan& plan);

/// All gap distances (stage metric) in plan order — used by tests and by the
/// motivation example.
std::vector<std::uint32_t> stage_distance_gaps(const ExecutionPlan& plan);

/// Peak simultaneous footprint of *live* persisted data: an RDD is live from
/// its creation stage to its last reference stage. This is the working-set
/// scale the harness sizes caches against — total persisted bytes would
/// overcount long-dead generations in iterative workloads.
std::uint64_t peak_live_persisted_bytes(const ExecutionPlan& plan);

}  // namespace mrd
