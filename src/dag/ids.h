// Strongly-named identifier types for the DAG and cluster substrates.
//
// All IDs are dense indices assigned in creation order. Stage IDs in
// particular are *globally sequential across jobs* in submission order — the
// same convention Spark's DAGScheduler uses — because MRD's per-stage
// distance arithmetic (Definition 1 of the paper) subtracts stage IDs
// directly.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace mrd {

using RddId = std::uint32_t;
using JobId = std::uint32_t;
using StageId = std::uint32_t;
using ShuffleId = std::uint32_t;
using NodeId = std::uint32_t;
using PartitionIndex = std::uint32_t;

inline constexpr RddId kInvalidRdd = std::numeric_limits<RddId>::max();
inline constexpr StageId kInvalidStage = std::numeric_limits<StageId>::max();
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Identifies one cached partition of a persisted RDD — the unit of cache
/// management, mirroring Spark's RDDBlockId ("rdd_<rddId>_<partition>").
struct BlockId {
  RddId rdd = kInvalidRdd;
  PartitionIndex partition = 0;

  friend bool operator==(const BlockId&, const BlockId&) = default;
  friend auto operator<=>(const BlockId&, const BlockId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const BlockId& b) {
  return os << "rdd_" << b.rdd << "_" << b.partition;
}

inline std::string to_string(const BlockId& b) {
  return "rdd_" + std::to_string(b.rdd) + "_" + std::to_string(b.partition);
}

}  // namespace mrd

template <>
struct std::hash<mrd::BlockId> {
  std::size_t operator()(const mrd::BlockId& b) const noexcept {
    // rdd and partition each fit comfortably in 32 bits; pack then mix.
    std::uint64_t v =
        (static_cast<std::uint64_t>(b.rdd) << 32) | b.partition;
    v ^= v >> 33;
    v *= 0xFF51AFD7ED558CCDULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};
