// Per-node MemoryStore: bounded block storage whose eviction order is
// delegated to a CachePolicy (the component Spark's MemoryStore plus
// BlockManager eviction logic correspond to).
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "cache/cache_policy.h"
#include "dag/ids.h"
#include "util/flat_hash.h"

namespace mrd {

/// Outcome of an insert attempt.
struct InsertResult {
  bool stored = false;
  /// Blocks evicted to make room (with their sizes), in eviction order.
  std::vector<std::pair<BlockId, std::uint64_t>> evicted;
};

class MemoryStore {
 public:
  /// `policy` must outlive the store.
  MemoryStore(std::uint64_t capacity_bytes, CachePolicy* policy);

  /// Inserts `block`. Evicts policy-chosen victims until it fits; a block
  /// larger than the whole capacity is rejected (stored == false). If the
  /// policy runs out of victims (or keeps nominating non-residents), the
  /// store falls back to evicting its own insertion-ordered blocks so
  /// progress is guaranteed. The policy always observes the insert via
  /// on_block_cached — a resident block it has never seen could neither be
  /// nominated for eviction nor ranked for prefetch decisions.
  InsertResult insert(const BlockId& block, std::uint64_t bytes);

  /// Removes `block` (purge or external eviction). Notifies the policy.
  /// Returns false if not resident.
  bool remove(const BlockId& block);

  bool contains(const BlockId& block) const {
    return blocks_.contains(pack_block_id(block));
  }

  /// Records a read of a resident block with the policy. Returns false if
  /// the block is not resident (caller counts a miss).
  bool access(const BlockId& block);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::size_t num_blocks() const { return blocks_.size(); }

  std::uint64_t block_bytes(const BlockId& block) const;

  /// Resident blocks sorted by id (testing/inspection).
  std::vector<BlockId> resident_blocks() const;

  CachePolicy& policy() { return *policy_; }

 private:
  /// Per-resident bookkeeping: size plus position in the insertion-order
  /// fallback list.
  struct Resident {
    std::uint64_t bytes = 0;
    std::list<BlockId>::iterator order_it{};
  };

  /// Evicts one block chosen by the policy (with fallback). Returns false
  /// only when the store is empty.
  bool evict_one(std::vector<std::pair<BlockId, std::uint64_t>>* evicted);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  CachePolicy* policy_;
  /// block -> Resident. Flat open-addressing table: the probe/insert/evict
  /// hot path hits this once per operation.
  FlatMap64<Resident> blocks_;
  /// Insertion order for the progress-guarantee fallback. List + in-entry
  /// iterator so per-eviction unlinking is O(1); a flat vector made
  /// large-cache sweeps quadratic in resident blocks.
  std::list<BlockId> insertion_order_;
};

}  // namespace mrd
