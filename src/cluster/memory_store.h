// Per-node MemoryStore: bounded block storage whose eviction order is
// delegated to a CachePolicy (the component Spark's MemoryStore plus
// BlockManager eviction logic correspond to).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_policy.h"
#include "dag/ids.h"
#include "util/block_list.h"
#include "util/flat_hash.h"

namespace mrd {

/// Outcome of an insert attempt.
struct InsertResult {
  bool stored = false;
  /// Blocks evicted to make room (with their sizes), in eviction order.
  std::vector<std::pair<BlockId, std::uint64_t>> evicted;
};

/// Outcome of a batch insert. stored + refreshed + rejected == batch size.
struct BatchInsertResult {
  /// Blocks newly admitted to the store.
  std::size_t stored = 0;
  /// Blocks already resident (the policy saw an access/refresh instead).
  std::size_t refreshed = 0;
  /// Blocks larger than the whole capacity (never admitted).
  std::size_t rejected = 0;
  /// Blocks evicted to make room (with their sizes), in eviction order.
  std::vector<std::pair<BlockId, std::uint64_t>> evicted;
};

class MemoryStore {
 public:
  /// `policy` must outlive the store.
  MemoryStore(std::uint64_t capacity_bytes, CachePolicy* policy);

  /// Pooled rewind: drops every resident in place — without per-block policy
  /// notification; the caller resets the policy separately — retaining the
  /// hash table and insertion-list storage, and rebinds the capacity and
  /// policy for the next run (sweeps vary the capacity between reuses).
  void reset(std::uint64_t capacity_bytes, CachePolicy* policy);

  /// Inserts `block`. Evicts policy-chosen victims until it fits; a block
  /// larger than the whole capacity is rejected (stored == false). If the
  /// policy runs out of victims (or keeps nominating non-residents), the
  /// store falls back to evicting its own insertion-ordered blocks so
  /// progress is guaranteed. The policy always observes the insert via
  /// on_block_cached — a resident block it has never seen could neither be
  /// nominated for eviction nor ranked for prefetch decisions.
  InsertResult insert(const BlockId& block, std::uint64_t bytes);

  /// Allocation-free form of insert(): evicted blocks append to the
  /// caller's (reusable) buffer instead of a fresh InsertResult vector.
  /// Returns whether the block was stored (or refreshed in place).
  bool insert_into(const BlockId& block, std::uint64_t bytes,
                   std::vector<std::pair<BlockId, std::uint64_t>>* evicted);

  /// Inserts `count` same-size blocks in order, with one capacity
  /// reservation per pressure event instead of per-block re-checks:
  /// admissions run while blocks fit, and when pressure hits, victims are
  /// pulled through the policy's streaming bulk API
  /// (CachePolicy::choose_victims) with further admissions interleaved as
  /// soon as space opens. The (evict, insert, access) decision stream —
  /// i.e. the exact sequence of policy events and their interleaving — is
  /// identical to calling insert() per block in order; only the policy
  /// *notification* granularity changes (one on_blocks_cached per
  /// contiguous run of fresh admissions). See DESIGN.md for the
  /// equivalence argument.
  void insert_batch(const BlockId* blocks, std::size_t count,
                    std::uint64_t bytes_each, BatchInsertResult* result);

  /// Removes `block` (purge or external eviction). Notifies the policy.
  /// Returns false if not resident.
  bool remove(const BlockId& block);

  bool contains(const BlockId& block) const {
    return blocks_.contains(pack_block_id(block));
  }

  /// Records a read of a resident block with the policy. Returns false if
  /// the block is not resident (caller counts a miss).
  bool access(const BlockId& block);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::size_t num_blocks() const { return blocks_.size(); }

  std::uint64_t block_bytes(const BlockId& block) const;

  /// Resident blocks sorted by id (testing/inspection).
  std::vector<BlockId> resident_blocks() const;

  CachePolicy& policy() { return *policy_; }

 private:
  /// Per-resident bookkeeping: size plus position in the insertion-order
  /// fallback list.
  struct Resident {
    std::uint64_t bytes = 0;
    BlockList::Index order_idx = BlockList::kNil;
  };

  using EvictedList = std::vector<std::pair<BlockId, std::uint64_t>>;

  /// Evicts a policy-nominated victim; a non-resident nomination falls back
  /// to the oldest insertion (warned — the policy sees every insert, so
  /// this is a policy bug the store must survive).
  void evict_nominated(const BlockId& victim, EvictedList* evicted);

  /// Evicts the oldest insertion still resident. Returns false only when
  /// the store is empty.
  bool fallback_evict(EvictedList* evicted);

  /// Frees space until `bytes` more fit, streaming victims from the
  /// policy's bulk API and falling back to insertion order whenever the
  /// policy gives up with pressure left. Postcondition (for bytes <=
  /// capacity_): used_ + bytes <= capacity_.
  void evict_for(std::uint64_t bytes, EvictedList* evicted);

  /// Unlinks a known-resident record (`rec` = its blocks_ entry, so the
  /// erase reuses the find's probe) and notifies the policy.
  void evict_resident(const BlockId& victim, Resident* rec,
                      EvictedList* evicted);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  CachePolicy* policy_;
  /// block -> Resident. Flat open-addressing table: the probe/insert/evict
  /// hot path hits this once per operation.
  FlatMap64<Resident> blocks_;
  /// Insertion order for the progress-guarantee fallback. Arena-backed list
  /// with in-entry node index: per-eviction unlinking is O(1) *and*
  /// allocation-free (a std::list paid one malloc/free per block lifecycle
  /// on the cache-write hot path; a flat vector made large-cache sweeps
  /// quadratic in resident blocks).
  BlockList insertion_order_;
};

}  // namespace mrd
