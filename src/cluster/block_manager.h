// Per-node BlockManager: the component that Spark's BlockManager +
// MemoryStore + DiskStore triple corresponds to. It owns the node's cache
// policy instance, its bounded MemoryStore, the set of on-disk block copies
// (spills), and the node's prefetch queue.
//
// I/O cost is *accounted*, not performed: operations return byte counts that
// the ApplicationRunner converts to time against the cluster's bandwidths.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cache/cache_policy.h"
#include "cluster/cluster_config.h"
#include "cluster/memory_store.h"
#include "dag/ids.h"
#include "util/block_bitmap.h"
#include "util/flat_hash.h"
#include "util/ring_deque.h"

namespace mrd {

/// Byte-level costs of one BlockManager operation.
struct IoCharge {
  std::uint64_t disk_read_bytes = 0;
  std::uint64_t disk_write_bytes = 0;
};

/// Bits of a node's activity byte. The BlockManagerMaster owns one byte per
/// node; the node's BlockManager keeps it current so the runner and master
/// can skip nodes that provably have nothing to do in a phase without even
/// dereferencing them (which would trigger broadcast replay).
enum NodeActivity : std::uint8_t {
  /// The node performed at least one real operation (any stats_ change).
  kNodeTouched = 1,
  /// The memory store holds at least one block (exact).
  kNodeHasResidents = 2,
  /// At least one block ever spilled to local disk (sticky — disk copies
  /// are never deleted).
  kNodeHasDisk = 4,
  /// The prefetch queue holds at least one live order (exact).
  kNodeHasQueue = 8,
};

enum class ProbeOutcome {
  kHit,      // resident in memory
  kDiskHit,  // not in memory, disk copy read (and promoted back to memory)
  kCold,     // nowhere local: lineage recomputation required
};

struct NodeCacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  /// Per-RDD probe/hit counts — lets benches and tests see *which* data a
  /// policy serves from memory (e.g. a hot input thrashing under LRU).
  /// Indexed by RddId (IDs are dense), grown on demand; RDDs never probed
  /// hold {0, 0}.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> per_rdd;  // probes, hits
  std::uint64_t disk_hits = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t blocks_cached = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spills = 0;
  std::uint64_t purged = 0;
  std::uint64_t uncacheable = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetches_completed = 0;
  std::uint64_t prefetches_useful = 0;
  std::uint64_t prefetches_wasted = 0;
  std::uint64_t prefetches_dropped = 0;  // completed load but no room
};

class BlockManager {
 public:
  BlockManager(NodeId node, const ClusterConfig& config,
               std::unique_ptr<CachePolicy> policy);

  NodeId node() const { return node_; }

  /// Pooled rewind: clears every piece of per-run state in place, retaining
  /// its storage (store hash table, disk bitmaps, prefetch ring, stat
  /// vectors). `replacement`, when non-null, substitutes a freshly
  /// constructed policy (the old one reported it cannot reset in place);
  /// when null the existing policy must already have been reset by the
  /// caller. Placement is re-applied either way, and the store re-reads the
  /// (possibly updated) cluster config's capacity.
  void reset_for_reuse(std::unique_ptr<CachePolicy> replacement);

  /// Points this node's activity byte into the master's per-node array
  /// (defaults to a private byte so standalone BlockManagers need no
  /// master). The byte is node-private for writes: distinct nodes never
  /// share one, so node-parallel phases race on nothing.
  void bind_activity_flag(std::uint8_t* flag) { activity_ = flag; }

  CachePolicy& policy() { return *policy_; }
  /// Pooled buffer for the master's per-stage purge enumeration. Node-local
  /// (purge fan-out runs disjoint node ranges on different workers), so each
  /// worker fills its own node's scratch race-free, and the capacity
  /// recycles across stages.
  std::vector<BlockId>& purge_scratch() { return purge_scratch_; }
  const MemoryStore& store() const { return store_; }
  const NodeCacheStats& stats() const { return stats_; }

  // ---- Demand path ----

  /// Looks up `block` for a reading task. kDiskHit re-inserts the block into
  /// memory (Spark promotes MEMORY_AND_DISK reads back to the memory store),
  /// which may spill victims — all charged to `charge`.
  ProbeOutcome probe(const BlockId& block, std::uint64_t bytes,
                     IoCharge* charge);

  /// Caches a newly computed block (first materialization or post-recompute
  /// re-cache). Evictions it causes may spill to disk (charged).
  void cache_block(const BlockId& block, std::uint64_t bytes,
                   IoCharge* charge);

  /// Batch form of cache_block for `count` same-size blocks (one persisted
  /// RDD's slice of this node): a single MemoryStore::insert_batch
  /// reservation instead of per-block re-checks, with the identical
  /// decision stream (see insert_batch). Evictions spill as in cache_block.
  void cache_blocks(const BlockId* blocks, std::size_t count,
                    std::uint64_t bytes_each, IoCharge* charge);

  /// Drops the memory copy (MRD purge). The disk copy, if any, remains.
  void purge_block(const BlockId& block);

  bool in_memory(const BlockId& block) const { return store_.contains(block); }
  bool has_disk_copy(const BlockId& block) const {
    return on_disk_.contains(block);
  }

  // ---- Prefetch path ----

  /// Refreshes this node's prefetch orders against the policy's current
  /// candidate ranking (Algorithm 1 lines 24–29): flushes stale unstarted
  /// orders, then streams policy candidates through the budget sink —
  /// issuing into free (projected) space, forcing evictions while the
  /// policy's threshold allows, and stopping at the first inadmissible
  /// candidate or a full queue. Costs time proportional to the candidates
  /// actually examined, not to the candidate universe.
  void refresh_prefetch_orders(const ExecutionPlan& plan,
                               std::size_t max_queue);

  /// Queues a prefetch of an on-disk block. `forced` records whether, at
  /// completion, the insert may evict residents (Algorithm 1 line 26).
  /// Returns false (and does nothing) if the block is resident, already
  /// queued, or has no disk copy.
  bool issue_prefetch(const BlockId& block, std::uint64_t bytes, bool forced);

  /// Serves the prefetch queue with `available_ms` of idle disk time.
  /// Completed blocks are inserted into memory (forced inserts may evict and
  /// spill — charged). Returns the disk-read milliseconds actually used.
  double serve_prefetch(double available_ms, IoCharge* charge);

  /// True if the block sits in the prefetch queue, not yet loaded. A demand
  /// probe for such a block cancels the queue entry (the demand read
  /// supersedes it).
  bool prefetch_pending(const BlockId& block) const;

  /// Drops queued prefetches whose disk read has not started yet (the head
  /// entry keeps its partial progress). Called before each re-issuance so
  /// stale orders from earlier stages don't pin the queue; the fresh orders
  /// reflect current reference distances.
  void flush_unstarted_prefetches();

  /// Live (uncancelled) queue entries. The deque itself may also hold
  /// cancelled tombstones awaiting their pop in serve_prefetch.
  std::size_t prefetch_queue_length() const { return live_queued_; }

  /// Bytes committed to queued (unserved) prefetches — used to project
  /// remaining free space when issuing further prefetch orders.
  std::uint64_t queued_prefetch_bytes() const { return queued_bytes_; }

 private:
  /// Insert + spill accounting shared by cache_block / disk promotion /
  /// prefetch completion.
  bool insert_with_spill(const BlockId& block, std::uint64_t bytes,
                         IoCharge* charge);
  /// Spill/eviction accounting shared by the single and batch insert paths.
  void account_evictions(
      const std::vector<std::pair<BlockId, std::uint64_t>>& evicted,
      IoCharge* charge);
  void cancel_pending_prefetch(const BlockId& block);

  /// Conditional writes: an already-correct flag costs a load, not a store
  /// (the byte may sit on a cache line shared with neighbouring nodes'
  /// bytes; unconditional stores would ping-pong that line).
  void touch() {
    if ((*activity_ & kNodeTouched) == 0) *activity_ |= kNodeTouched;
  }
  void mark_disk() {
    if ((*activity_ & kNodeHasDisk) == 0) *activity_ |= kNodeHasDisk;
  }
  void update_residency_flag() {
    const std::uint8_t want = store_.num_blocks() > 0 ? kNodeHasResidents : 0;
    if ((*activity_ & kNodeHasResidents) != want) {
      *activity_ ^= kNodeHasResidents;
    }
  }
  void update_queue_flag() {
    const std::uint8_t want = live_queued_ > 0 ? kNodeHasQueue : 0;
    if ((*activity_ & kNodeHasQueue) != want) *activity_ ^= kNodeHasQueue;
  }

  struct PendingPrefetch {
    BlockId block;
    std::uint64_t bytes;
    double remaining_ms;  // load time still owed
    bool forced;
    /// Superseded by a demand read: all queue bookkeeping (index, byte and
    /// length counters) was undone at cancellation; serve_prefetch pops
    /// the husk at zero time cost.
    bool cancelled = false;
  };

  NodeId node_;
  const ClusterConfig& config_;
  std::unique_ptr<CachePolicy> policy_;
  MemoryStore store_;
  /// Fallback target for activity_ when unbound (see bind_activity_flag).
  std::uint8_t local_activity_ = 0;
  std::uint8_t* activity_ = &local_activity_;
  /// On-disk block copies. The set only ever grows (one bit per spilled
  /// block), and it is probed on the demand, eviction and prefetch-issue hot
  /// paths — per-RDD bitmaps keep those probes at two array indexings where
  /// a hash set would take a miss per call. Its per-RDD counts double as the
  /// O(1) "anything of this RDD on disk?" pre-filter for
  /// refresh_prefetch_orders.
  BlockBitmap on_disk_;
  /// Ring-buffer deque: push/pop at the ends never allocate once the ring
  /// has grown to the high-water queue depth (std::deque allocated and
  /// freed chunk nodes as the queue breathed), and clear() retains the
  /// buffer for pooled reuse.
  RingDeque<PendingPrefetch> prefetch_queue_;
  /// Packed block id -> the entry's logical ring position (monotonic across
  /// the queue's lifetime, so a stale index entry can never alias a reused
  /// slot). Doubles as the old membership set; makes cancel_pending_prefetch
  /// O(1) instead of a queue scan per demand probe of a queued block.
  FlatMap64<std::uint64_t> prefetch_index_;
  /// Uncancelled entries in prefetch_queue_.
  std::size_t live_queued_ = 0;
  std::uint64_t queued_bytes_ = 0;
  /// Reused batch buffer for serve_prefetch's fitting-run drains.
  std::vector<BlockId> prefetch_run_;
  /// Reused eviction buffer for insert_with_spill (the demand-path inserts
  /// run once per probe miss; a fresh InsertResult vector each time put the
  /// allocator on the probe profile).
  std::vector<std::pair<BlockId, std::uint64_t>> scratch_evicted_;
  /// Reused result for the batch insert paths, same rationale.
  BatchInsertResult batch_scratch_;
  /// Reused buffer for the master's purge enumeration (see purge_scratch()).
  std::vector<BlockId> purge_scratch_;
  /// Prefetched blocks not yet accessed (to classify useful vs. wasted).
  FlatSet64 prefetched_unused_;
  NodeCacheStats stats_;
};

}  // namespace mrd
