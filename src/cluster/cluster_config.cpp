#include "cluster/cluster_config.h"

namespace mrd {

ClusterConfig main_cluster() {
  ClusterConfig c;
  c.name = "main";
  c.num_nodes = 25;
  c.cpu_slots_per_node = 4;
  c.cache_bytes_per_node = 512ull << 20;
  c.disk_mb_per_s = 150.0;
  c.network_mb_per_s = 62.5;  // 500 Mbps
  return c;
}

ClusterConfig lrc_cluster() {
  ClusterConfig c;
  c.name = "lrc";
  c.num_nodes = 20;
  c.cpu_slots_per_node = 2;
  c.cache_bytes_per_node = 512ull << 20;
  c.disk_mb_per_s = 120.0;
  c.network_mb_per_s = 56.25;  // 450 Mbps
  return c;
}

ClusterConfig memtune_cluster() {
  ClusterConfig c;
  c.name = "memtune";
  c.num_nodes = 6;
  c.cpu_slots_per_node = 8;
  c.cache_bytes_per_node = 512ull << 20;
  c.disk_mb_per_s = 180.0;
  c.network_mb_per_s = 125.0;  // 1 Gbps
  return c;
}

}  // namespace mrd
