// BlockManagerMaster: the driver-side directory of per-node BlockManagers.
// Broadcasts DAG events to every node's policy (the paper's
// BlockManagerMasterEndpoint → BlockManagerSlaveEndpoint path) and carries
// out cluster-wide purge orders.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache_policy.h"
#include "cluster/block_manager.h"
#include "cluster/cluster_config.h"

namespace mrd {

class BlockManagerMaster {
 public:
  BlockManagerMaster(const ClusterConfig& config, const PolicyFactory& factory);

  NodeId num_nodes() const { return static_cast<NodeId>(nodes_.size()); }
  BlockManager& node(NodeId id);
  const BlockManager& node(NodeId id) const;

  /// Owner node of a block under round-robin partition placement.
  NodeId owner(const BlockId& block) const {
    return block.partition % num_nodes();
  }

  const ClusterConfig& config() const { return config_; }

  // ---- Event broadcast to every node's policy ----
  void broadcast_application_start(const ExecutionPlan& plan);
  void broadcast_job_start(const ExecutionPlan& plan, JobId job);
  void broadcast_stage_start(const ExecutionPlan& plan, JobId job,
                             StageId stage);
  void broadcast_stage_end(const ExecutionPlan& plan, JobId job,
                           StageId stage);
  void broadcast_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                            StageId stage);

  /// Executes the all-out purge (Algorithm 1 lines 13–17): asks every node's
  /// policy for purge candidates and drops their memory copies. Returns the
  /// number of blocks purged.
  std::size_t execute_purge();

  /// Purge restricted to nodes in [begin, end) — the unit the runner fans
  /// out across its node workers (each node's purge is independent).
  std::size_t execute_purge(NodeId begin, NodeId end);

  /// Sums per-node cache statistics.
  NodeCacheStats aggregate_stats() const;

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<BlockManager>> nodes_;
};

}  // namespace mrd
