// BlockManagerMaster: the driver-side directory of per-node BlockManagers.
// Broadcasts DAG events to every node's policy (the paper's
// BlockManagerMasterEndpoint → BlockManagerSlaveEndpoint path) and carries
// out cluster-wide purge orders.
//
// Broadcasts are *journaled*, not fanned out: each broadcast_* call is O(1) —
// it appends one event to a shared journal and delivers it eagerly to node 0
// only (the primary delivery, which applies the event to the shared
// MrdManager at a serialized point; see MrdManager's idempotency guards).
// Every other node replays its journal suffix lazily the next time it is
// dereferenced through node(). A node that never acts during a stage —
// the common case at 1000 nodes — therefore costs nothing per event, which
// is what keeps the per-stage driver work O(active nodes) instead of
// O(cluster).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_policy.h"
#include "cluster/block_manager.h"
#include "cluster/cluster_config.h"

namespace mrd {

class BlockManagerMaster {
 public:
  BlockManagerMaster(const ClusterConfig& config, const PolicyFactory& factory);

  /// Pooled rewind for a run against `config` (which must keep the node
  /// count — everything else, e.g. the cache capacity a sweep varies, may
  /// change). Truncates the broadcast journal in place, rewinds every
  /// node's replay position, zeroes the activity bytes and resets each node:
  /// policies reset in place when they support it, and are reconstructed
  /// through `factory` otherwise. Shared policy state (the MrdManager) is
  /// NOT reset here — the owner resets it once, not once per node.
  void reset_for_reuse(const ClusterConfig& config, const PolicyFactory& factory);

  NodeId num_nodes() const { return static_cast<NodeId>(nodes_.size()); }

  /// Dereferences a node, first replaying any broadcast events it has not
  /// observed yet. This is the sync choke point: every code path that talks
  /// to a node goes through here, so each node's policy observes the exact
  /// event sequence an eager broadcast would have delivered, in order.
  /// Replay of distinct nodes is safe concurrently (per-node positions are
  /// independent; shared-manager duplicates are read-only no-ops).
  BlockManager& node(NodeId id) {
    MRD_CHECK(id < nodes_.size());
    if (event_pos_[id] != events_.size()) replay_events(id, events_.size());
    return *nodes_[id];
  }
  const BlockManager& node(NodeId id) const {
    MRD_CHECK(id < nodes_.size());
    if (event_pos_[id] != events_.size()) replay_events(id, events_.size());
    return *nodes_[id];
  }

  /// Horizon-bounded dereference for the event scheduler: replays the node's
  /// journal suffix only up to position `horizon` (clamped to the journal
  /// size), so an instruction whose logical time predates later journal
  /// entries never lets its node observe the future. A node already past the
  /// horizon (e.g. node 0 after a primary delivery at a serialized broadcast
  /// point) is returned as-is — per-node positions only move forward.
  BlockManager& node_at(NodeId id, std::size_t horizon) {
    MRD_CHECK(id < nodes_.size());
    const std::size_t limit = std::min(horizon, events_.size());
    if (event_pos_[id] < limit) replay_events(id, limit);
    return *nodes_[id];
  }

  /// Forces every node to observe all broadcast events now. Tests and
  /// whole-cluster inspections use this; the hot paths never do.
  void sync_all_nodes() {
    for (NodeId n = 0; n < num_nodes(); ++n) node(n);
  }

  /// Owner node of a block under the configured placement (round-robin by
  /// default; see dag/placement.h).
  NodeId owner(const BlockId& block) const {
    return placement_owner(block, num_nodes(), config_.placement);
  }

  const ClusterConfig& config() const { return config_; }

  /// This node's activity byte (NodeActivity bits). The runner's per-stage
  /// loops consult it to skip nodes that provably have nothing to do.
  std::uint8_t node_activity(NodeId id) const {
    MRD_CHECK(id < nodes_.size());
    return activity_[id];
  }

  // ---- Event broadcast to every node's policy (journaled, O(1) each) ----
  void broadcast_application_start(const ExecutionPlan& plan);
  void broadcast_job_start(const ExecutionPlan& plan, JobId job);
  void broadcast_stage_start(const ExecutionPlan& plan, JobId job,
                             StageId stage);
  void broadcast_stage_end(const ExecutionPlan& plan, JobId job,
                           StageId stage);
  void broadcast_rdd_probed(const ExecutionPlan& plan, RddId rdd,
                            StageId stage);

  // ---- Deferred journal appends (event-scheduler mode) -------------------
  // Append an event *without* the primary delivery to node 0: every node —
  // node 0 included — observes it lazily through node_at() horizons. Only
  // legal when no policy hides shared cross-node state behind the events
  // (i.e. non-MRD policies), since nothing mutates at the append point.
  void enqueue_application_start(const ExecutionPlan& plan);
  void enqueue_job_start(const ExecutionPlan& plan, JobId job);
  void enqueue_stage_start(const ExecutionPlan& plan, JobId job,
                           StageId stage);
  void enqueue_stage_end(const ExecutionPlan& plan, JobId job, StageId stage);
  void enqueue_rdd_probed(const ExecutionPlan& plan, RddId rdd, StageId stage);

  /// Number of events journaled so far — the horizon space of node_at().
  std::size_t journal_size() const { return events_.size(); }

  /// Executes the all-out purge (Algorithm 1 lines 13–17): asks every node's
  /// policy for purge candidates and drops their memory copies. Returns the
  /// number of blocks purged.
  std::size_t execute_purge();

  /// Purge restricted to nodes in [begin, end) — the unit the runner fans
  /// out across its node workers (each node's purge is independent). Nodes
  /// without resident blocks are skipped without replay: an empty cache has
  /// no purge candidates under any policy.
  std::size_t execute_purge(NodeId begin, NodeId end);

  /// Single-node purge at a journal horizon (event-scheduler mode): the
  /// node observes events only up to `horizon` before its purge candidates
  /// are collected. Identical skip rule as execute_purge.
  std::size_t execute_purge_at(NodeId n, std::size_t horizon);

  /// Sums per-node cache statistics. Nodes that never performed any real
  /// operation (activity byte still 0) hold all-zero stats and are skipped.
  NodeCacheStats aggregate_stats() const;

 private:
  struct DagEvent {
    enum class Kind : std::uint8_t {
      kAppStart,
      kJobStart,
      kStageStart,
      kStageEnd,
      kRddProbed,
    };
    Kind kind;
    const ExecutionPlan* plan;  // plans outlive the run
    JobId job = 0;
    StageId stage = 0;
    RddId rdd = 0;
  };

  /// Appends an event and applies it eagerly to node 0 (primary delivery).
  void journal(const DagEvent& event);
  void replay_events(NodeId id, std::size_t limit) const;
  static void deliver(CachePolicy& policy, const DagEvent& event);

  ClusterConfig config_;
  std::vector<std::unique_ptr<BlockManager>> nodes_;
  /// Append-only broadcast journal; grows only at serialized broadcast
  /// points, never during a node-parallel phase.
  std::vector<DagEvent> events_;
  /// Per-node replay position into events_. Mutable (with the shallow
  /// constness of nodes_'s unique_ptrs) so const node() can sync too —
  /// laziness is an implementation detail, not an observable state.
  mutable std::vector<std::size_t> event_pos_;
  /// One activity byte per node (NodeActivity bits), written by the nodes
  /// themselves. Distinct bytes per node: concurrent node workers never
  /// write the same byte, and writes are conditional so an already-set flag
  /// costs a load, not a store.
  std::vector<std::uint8_t> activity_;
};

}  // namespace mrd
