#include "cluster/block_manager_master.h"

#include "util/check.h"

namespace mrd {

BlockManagerMaster::BlockManagerMaster(const ClusterConfig& config,
                                       const PolicyFactory& factory)
    : config_(config) {
  MRD_CHECK(config_.num_nodes > 0);
  nodes_.reserve(config_.num_nodes);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<BlockManager>(
        n, config_, factory(n, config_.num_nodes)));
  }
}

BlockManager& BlockManagerMaster::node(NodeId id) {
  MRD_CHECK(id < nodes_.size());
  return *nodes_[id];
}

const BlockManager& BlockManagerMaster::node(NodeId id) const {
  MRD_CHECK(id < nodes_.size());
  return *nodes_[id];
}

void BlockManagerMaster::broadcast_application_start(
    const ExecutionPlan& plan) {
  for (auto& node : nodes_) node->policy().on_application_start(plan);
}

void BlockManagerMaster::broadcast_job_start(const ExecutionPlan& plan,
                                             JobId job) {
  for (auto& node : nodes_) node->policy().on_job_start(plan, job);
}

void BlockManagerMaster::broadcast_stage_start(const ExecutionPlan& plan,
                                               JobId job, StageId stage) {
  for (auto& node : nodes_) node->policy().on_stage_start(plan, job, stage);
}

void BlockManagerMaster::broadcast_stage_end(const ExecutionPlan& plan,
                                             JobId job, StageId stage) {
  for (auto& node : nodes_) node->policy().on_stage_end(plan, job, stage);
}

void BlockManagerMaster::broadcast_rdd_probed(const ExecutionPlan& plan,
                                              RddId rdd, StageId stage) {
  for (auto& node : nodes_) node->policy().on_rdd_probed(plan, rdd, stage);
}

std::size_t BlockManagerMaster::execute_purge() {
  return execute_purge(0, num_nodes());
}

std::size_t BlockManagerMaster::execute_purge(NodeId begin, NodeId end) {
  MRD_CHECK(begin <= end && end <= num_nodes());
  std::size_t purged = 0;
  for (NodeId n = begin; n < end; ++n) {
    BlockManager& node = *nodes_[n];
    for (const BlockId& block : node.policy().purge_candidates()) {
      if (node.in_memory(block)) {
        node.purge_block(block);
        ++purged;
      }
    }
  }
  return purged;
}

NodeCacheStats BlockManagerMaster::aggregate_stats() const {
  NodeCacheStats total;
  for (const auto& node : nodes_) {
    const NodeCacheStats& s = node->stats();
    total.probes += s.probes;
    total.hits += s.hits;
    if (s.per_rdd.size() > total.per_rdd.size()) {
      total.per_rdd.resize(s.per_rdd.size());
    }
    for (std::size_t rdd = 0; rdd < s.per_rdd.size(); ++rdd) {
      total.per_rdd[rdd].first += s.per_rdd[rdd].first;
      total.per_rdd[rdd].second += s.per_rdd[rdd].second;
    }
    total.disk_hits += s.disk_hits;
    total.cold_misses += s.cold_misses;
    total.blocks_cached += s.blocks_cached;
    total.evictions += s.evictions;
    total.spills += s.spills;
    total.purged += s.purged;
    total.uncacheable += s.uncacheable;
    total.prefetches_issued += s.prefetches_issued;
    total.prefetches_completed += s.prefetches_completed;
    total.prefetches_useful += s.prefetches_useful;
    total.prefetches_wasted += s.prefetches_wasted;
    total.prefetches_dropped += s.prefetches_dropped;
  }
  return total;
}

}  // namespace mrd
