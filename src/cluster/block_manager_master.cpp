#include "cluster/block_manager_master.h"

#include <algorithm>

#include "util/check.h"

namespace mrd {

BlockManagerMaster::BlockManagerMaster(const ClusterConfig& config,
                                       const PolicyFactory& factory)
    : config_(config) {
  MRD_CHECK(config_.num_nodes > 0);
  nodes_.reserve(config_.num_nodes);
  event_pos_.assign(config_.num_nodes, 0);
  activity_.assign(config_.num_nodes, 0);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<BlockManager>(
        n, config_, factory(n, config_.num_nodes)));
    nodes_.back()->bind_activity_flag(&activity_[n]);
  }
}

void BlockManagerMaster::reset_for_reuse(const ClusterConfig& config,
                                         const PolicyFactory& factory) {
  MRD_CHECK(config.num_nodes == num_nodes());
  // The nodes hold references to config_; rewrite it in place first so their
  // resets read the new capacity/placement.
  config_ = config;
  events_.clear();  // truncate-in-place: the journal buffer is retained
  std::fill(event_pos_.begin(), event_pos_.end(), 0);
  std::fill(activity_.begin(), activity_.end(), 0);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    std::unique_ptr<CachePolicy> replacement;
    if (!nodes_[n]->policy().reset_for_reuse()) {
      replacement = factory(n, config_.num_nodes);
    }
    nodes_[n]->reset_for_reuse(std::move(replacement));
  }
}

void BlockManagerMaster::deliver(CachePolicy& policy, const DagEvent& event) {
  switch (event.kind) {
    case DagEvent::Kind::kAppStart:
      policy.on_application_start(*event.plan);
      break;
    case DagEvent::Kind::kJobStart:
      policy.on_job_start(*event.plan, event.job);
      break;
    case DagEvent::Kind::kStageStart:
      policy.on_stage_start(*event.plan, event.job, event.stage);
      break;
    case DagEvent::Kind::kStageEnd:
      policy.on_stage_end(*event.plan, event.job, event.stage);
      break;
    case DagEvent::Kind::kRddProbed:
      policy.on_rdd_probed(*event.plan, event.rdd, event.stage);
      break;
  }
}

void BlockManagerMaster::journal(const DagEvent& event) {
  events_.push_back(event);
  // Primary delivery: node 0 observes every event at the serialized
  // broadcast point itself, so any shared state behind the policies (the
  // MrdManager) mutates here and nowhere else; replayed duplicates on other
  // nodes hit its idempotency guards as pure reads.
  deliver(nodes_[0]->policy(), event);
  event_pos_[0] = events_.size();
}

void BlockManagerMaster::replay_events(NodeId id, std::size_t limit) const {
  std::size_t& pos = event_pos_[id];
  CachePolicy& policy = nodes_[id]->policy();
  for (; pos < limit; ++pos) deliver(policy, events_[pos]);
}

void BlockManagerMaster::broadcast_application_start(
    const ExecutionPlan& plan) {
  journal({DagEvent::Kind::kAppStart, &plan});
}

void BlockManagerMaster::broadcast_job_start(const ExecutionPlan& plan,
                                             JobId job) {
  journal({DagEvent::Kind::kJobStart, &plan, job});
}

void BlockManagerMaster::broadcast_stage_start(const ExecutionPlan& plan,
                                               JobId job, StageId stage) {
  journal({DagEvent::Kind::kStageStart, &plan, job, stage});
}

void BlockManagerMaster::broadcast_stage_end(const ExecutionPlan& plan,
                                             JobId job, StageId stage) {
  journal({DagEvent::Kind::kStageEnd, &plan, job, stage});
}

void BlockManagerMaster::broadcast_rdd_probed(const ExecutionPlan& plan,
                                              RddId rdd, StageId stage) {
  journal({DagEvent::Kind::kRddProbed, &plan, 0, stage, rdd});
}

void BlockManagerMaster::enqueue_application_start(const ExecutionPlan& plan) {
  events_.push_back({DagEvent::Kind::kAppStart, &plan});
}

void BlockManagerMaster::enqueue_job_start(const ExecutionPlan& plan,
                                           JobId job) {
  events_.push_back({DagEvent::Kind::kJobStart, &plan, job});
}

void BlockManagerMaster::enqueue_stage_start(const ExecutionPlan& plan,
                                             JobId job, StageId stage) {
  events_.push_back({DagEvent::Kind::kStageStart, &plan, job, stage});
}

void BlockManagerMaster::enqueue_stage_end(const ExecutionPlan& plan,
                                           JobId job, StageId stage) {
  events_.push_back({DagEvent::Kind::kStageEnd, &plan, job, stage});
}

void BlockManagerMaster::enqueue_rdd_probed(const ExecutionPlan& plan,
                                            RddId rdd, StageId stage) {
  events_.push_back({DagEvent::Kind::kRddProbed, &plan, 0, stage, rdd});
}

std::size_t BlockManagerMaster::execute_purge() {
  return execute_purge(0, num_nodes());
}

std::size_t BlockManagerMaster::execute_purge(NodeId begin, NodeId end) {
  MRD_CHECK(begin <= end && end <= num_nodes());
  std::size_t purged = 0;
  for (NodeId n = begin; n < end; ++n) {
    // No resident blocks → no purge candidates (every policy derives them
    // from its resident set) → nothing purge_block could drop. Skipping
    // before node() also skips the event replay for idle nodes.
    if ((activity_[n] & kNodeHasResidents) == 0) continue;
    BlockManager& bm = node(n);
    // Fill the node's pooled scratch; purge_block only mutates residency
    // (never the policy's candidate buffer), so iterating it is safe.
    std::vector<BlockId>& candidates = bm.purge_scratch();
    bm.policy().purge_candidates(&candidates);
    for (const BlockId& block : candidates) {
      if (bm.in_memory(block)) {
        bm.purge_block(block);
        ++purged;
      }
    }
  }
  return purged;
}

std::size_t BlockManagerMaster::execute_purge_at(NodeId n,
                                                 std::size_t horizon) {
  MRD_CHECK(n < num_nodes());
  if ((activity_[n] & kNodeHasResidents) == 0) return 0;
  std::size_t purged = 0;
  BlockManager& bm = node_at(n, horizon);
  std::vector<BlockId>& candidates = bm.purge_scratch();
  bm.policy().purge_candidates(&candidates);
  for (const BlockId& block : candidates) {
    if (bm.in_memory(block)) {
      bm.purge_block(block);
      ++purged;
    }
  }
  return purged;
}

NodeCacheStats BlockManagerMaster::aggregate_stats() const {
  NodeCacheStats total;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    // A node whose activity byte never left 0 performed no operation at
    // all: its stats are identically zero and contribute nothing.
    if (activity_[n] == 0) continue;
    const NodeCacheStats& s = nodes_[n]->stats();
    total.probes += s.probes;
    total.hits += s.hits;
    if (s.per_rdd.size() > total.per_rdd.size()) {
      total.per_rdd.resize(s.per_rdd.size());
    }
    for (std::size_t rdd = 0; rdd < s.per_rdd.size(); ++rdd) {
      total.per_rdd[rdd].first += s.per_rdd[rdd].first;
      total.per_rdd[rdd].second += s.per_rdd[rdd].second;
    }
    total.disk_hits += s.disk_hits;
    total.cold_misses += s.cold_misses;
    total.blocks_cached += s.blocks_cached;
    total.evictions += s.evictions;
    total.spills += s.spills;
    total.purged += s.purged;
    total.uncacheable += s.uncacheable;
    total.prefetches_issued += s.prefetches_issued;
    total.prefetches_completed += s.prefetches_completed;
    total.prefetches_useful += s.prefetches_useful;
    total.prefetches_wasted += s.prefetches_wasted;
    total.prefetches_dropped += s.prefetches_dropped;
  }
  return total;
}

}  // namespace mrd
