#include "cluster/block_manager.h"

#include <algorithm>

#include "util/check.h"

namespace mrd {

BlockManager::BlockManager(NodeId node, const ClusterConfig& config,
                           std::unique_ptr<CachePolicy> policy)
    : node_(node),
      config_(config),
      policy_(std::move(policy)),
      store_(config.cache_bytes_per_node, policy_.get()) {
  MRD_CHECK(policy_ != nullptr);
  policy_->configure_placement(config.placement);
}

ProbeOutcome BlockManager::probe(const BlockId& block, std::uint64_t bytes,
                                 IoCharge* charge) {
  touch();
  ++stats_.probes;
  if (block.rdd >= stats_.per_rdd.size()) {
    stats_.per_rdd.resize(block.rdd + 1);
  }
  auto& rdd_counts = stats_.per_rdd[block.rdd];
  ++rdd_counts.first;
  if (store_.access(block)) {
    ++stats_.hits;
    ++rdd_counts.second;
    if (prefetched_unused_.erase(pack_block_id(block))) {
      ++stats_.prefetches_useful;
    }
    return ProbeOutcome::kHit;
  }
  // A queued-but-unserved prefetch is superseded by this demand read.
  cancel_pending_prefetch(block);

  if (on_disk_.contains(block)) {
    ++stats_.disk_hits;
    charge->disk_read_bytes += bytes;
    // Promotion back into memory is a policy decision: Spark's default path
    // always re-caches (evicting LRU victims), while a DAG-aware policy can
    // leave a far-referenced block on disk instead of displacing residents.
    if (policy_->should_promote(block, store_.free_bytes())) {
      insert_with_spill(block, bytes, charge);
      update_residency_flag();
    }
    return ProbeOutcome::kDiskHit;
  }
  ++stats_.cold_misses;
  return ProbeOutcome::kCold;
}

void BlockManager::cache_block(const BlockId& block, std::uint64_t bytes,
                               IoCharge* charge) {
  touch();
  insert_with_spill(block, bytes, charge);
  update_residency_flag();
}

void BlockManager::cache_blocks(const BlockId* blocks, std::size_t count,
                                std::uint64_t bytes_each, IoCharge* charge) {
  touch();
  BatchInsertResult& result = batch_scratch_;
  result.stored = result.refreshed = result.rejected = 0;
  result.evicted.clear();
  store_.insert_batch(blocks, count, bytes_each, &result);
  account_evictions(result.evicted, charge);
  // A refreshed resident counts as cached, exactly as the per-block path's
  // stored==true re-insert did.
  stats_.blocks_cached += result.stored + result.refreshed;
  stats_.uncacheable += result.rejected;
  update_residency_flag();
}

void BlockManager::purge_block(const BlockId& block) {
  touch();
  if (prefetched_unused_.erase(pack_block_id(block))) {
    ++stats_.prefetches_wasted;
  }
  if (store_.remove(block)) {
    ++stats_.purged;
    update_residency_flag();
  }
}

void BlockManager::refresh_prefetch_orders(const ExecutionPlan& plan,
                                           std::size_t max_queue) {
  flush_unstarted_prefetches();
  if (live_queued_ >= max_queue) return;
  const std::uint64_t capacity = store_.capacity();
  const std::uint64_t free_bytes = store_.free_bytes();
  // Free space net of already-queued prefetches.
  std::uint64_t projected_free =
      free_bytes > queued_bytes_ ? free_bytes - queued_bytes_ : 0;
  const bool may_force = policy_->prefetch_may_evict(free_bytes, capacity);

  PrefetchBudget budget;
  budget.free_bytes = free_bytes;
  budget.capacity = capacity;
  budget.queue_slots = max_queue - live_queued_;
  // Named local: the budget's FunctionRef is non-owning, so the callable
  // must outlive the prefetch_candidates call below.
  const auto rdd_on_disk = [this](RddId rdd) {
    return on_disk_.rdd_count(rdd) > 0;
  };
  budget.rdd_on_disk = rdd_on_disk;
  policy_->prefetch_candidates(
      budget, [&](const BlockId& block) -> PrefetchOffer {
        if (live_queued_ >= max_queue) return PrefetchOffer::kStop;
        if (!on_disk_.contains(block)) {
          return PrefetchOffer::kSkipped;  // nothing to read it from
        }
        const std::uint64_t bytes =
            plan.app().rdd(block.rdd).bytes_per_partition;
        if (bytes <= projected_free) {
          if (!issue_prefetch(block, bytes, /*forced=*/false)) {
            return PrefetchOffer::kSkippedVolatile;  // already queued
          }
          projected_free -= bytes;
          return PrefetchOffer::kIssued;
        }
        if (may_force || policy_->prefetch_swap_improves(block)) {
          return issue_prefetch(block, bytes, /*forced=*/true)
                     ? PrefetchOffer::kIssued
                     : PrefetchOffer::kSkippedVolatile;  // already queued
        }
        // Nearest candidates first: once one doesn't fit, stop.
        return PrefetchOffer::kStop;
      });
}

bool BlockManager::issue_prefetch(const BlockId& block, std::uint64_t bytes,
                                  bool forced) {
  if (store_.contains(block)) return false;
  if (prefetch_index_.contains(pack_block_id(block))) return false;
  if (!on_disk_.contains(block)) return false;
  const double load_ms = static_cast<double>(bytes) * config_.disk_ms_per_byte();
  const std::uint64_t pos =
      prefetch_queue_.push_back(PendingPrefetch{block, bytes, load_ms, forced});
  prefetch_index_.insert(pack_block_id(block), pos);
  ++live_queued_;
  queued_bytes_ += bytes;
  ++stats_.prefetches_issued;
  touch();
  update_queue_flag();
  return true;
}

double BlockManager::serve_prefetch(double available_ms, IoCharge* charge) {
  double used_ms = 0.0;
  // Completed loads that fit the projected free space accumulate into one
  // contiguous same-size run and land through a single insert_batch. A
  // fitting, non-resident insert triggers no policy decision, so deferring
  // it is invisible to the decision stream; anything else (resident
  // refresh, size change, eviction pressure) flushes the run first and
  // takes the per-block path at exactly the store state the serial loop
  // would have seen.
  prefetch_run_.clear();
  std::uint64_t run_bytes_each = 0;
  std::uint64_t run_bytes_total = 0;
  const auto flush_run = [&] {
    if (prefetch_run_.empty()) return;
    policy_->on_prefetch_insert(true);
    BatchInsertResult& result = batch_scratch_;
    result.stored = result.refreshed = result.rejected = 0;
    result.evicted.clear();
    store_.insert_batch(prefetch_run_.data(), prefetch_run_.size(),
                        run_bytes_each, &result);
    policy_->on_prefetch_insert(false);
    // Every block of the run fit the projected free space and was not
    // resident when it was queued here — nothing can have evicted/refreshed.
    MRD_CHECK(result.stored == prefetch_run_.size());
    account_evictions(result.evicted, charge);
    stats_.blocks_cached += result.stored;
    stats_.prefetches_completed += result.stored;
    for (const BlockId& b : prefetch_run_) {
      prefetched_unused_.insert(pack_block_id(b));
    }
    prefetch_run_.clear();
    run_bytes_total = 0;
  };
  while (!prefetch_queue_.empty()) {
    PendingPrefetch& head = prefetch_queue_.front();
    if (head.cancelled) {  // bookkeeping already undone at cancellation
      prefetch_queue_.pop_front();
      continue;
    }
    if (available_ms <= 0.0) break;
    const double spend = std::min(available_ms, head.remaining_ms);
    head.remaining_ms -= spend;
    available_ms -= spend;
    used_ms += spend;
    if (head.remaining_ms > 1e-9) break;  // partially loaded; resume later

    // Load complete.
    charge->disk_read_bytes += head.bytes;
    const BlockId block = head.block;
    const std::uint64_t bytes = head.bytes;
    const bool forced = head.forced;
    prefetch_queue_.pop_front();
    prefetch_index_.erase(pack_block_id(block));
    --live_queued_;
    queued_bytes_ -= bytes;

    const bool resident = store_.contains(block);
    if (!prefetch_run_.empty() &&
        (resident || bytes != run_bytes_each ||
         run_bytes_total + bytes > store_.free_bytes())) {
      flush_run();
    }
    // Post-flush the projection equals the store's real free space.
    const bool fits = run_bytes_total + bytes <= store_.free_bytes();
    if (fits && !resident) {
      if (prefetch_run_.empty()) run_bytes_each = bytes;
      prefetch_run_.push_back(block);
      run_bytes_total += bytes;
      continue;
    }
    if ((fits || forced) && (fits || policy_->admit_prefetch(block))) {
      policy_->on_prefetch_insert(true);
      const bool stored = insert_with_spill(block, bytes, charge);
      policy_->on_prefetch_insert(false);
      if (stored) {
        ++stats_.prefetches_completed;
        prefetched_unused_.insert(pack_block_id(block));
      } else {
        ++stats_.prefetches_dropped;
      }
    } else {
      ++stats_.prefetches_dropped;
    }
  }
  flush_run();
  update_queue_flag();
  update_residency_flag();
  return used_ms;
}

bool BlockManager::prefetch_pending(const BlockId& block) const {
  return prefetch_index_.contains(pack_block_id(block));
}

void BlockManager::flush_unstarted_prefetches() {
  while (!prefetch_queue_.empty()) {
    const PendingPrefetch& tail = prefetch_queue_.back();
    if (tail.cancelled) {  // bookkeeping already undone at cancellation
      prefetch_queue_.pop_back();
      continue;
    }
    const double full_ms =
        static_cast<double>(tail.bytes) * config_.disk_ms_per_byte();
    const bool started = tail.remaining_ms < full_ms - 1e-9;
    if (started) break;  // only the head can be partially served; keep it
    prefetch_index_.erase(pack_block_id(tail.block));
    queued_bytes_ -= tail.bytes;
    --live_queued_;
    prefetch_queue_.pop_back();
  }
  update_queue_flag();
}

void BlockManager::account_evictions(
    const std::vector<std::pair<BlockId, std::uint64_t>>& evicted,
    IoCharge* charge) {
  for (const auto& [victim, victim_bytes] : evicted) {
    ++stats_.evictions;
    if (prefetched_unused_.erase(pack_block_id(victim))) {
      ++stats_.prefetches_wasted;
    }
    if (config_.spill_on_evict && on_disk_.insert(victim)) {
      ++stats_.spills;
      charge->disk_write_bytes += victim_bytes;
      mark_disk();
    }
  }
}

bool BlockManager::insert_with_spill(const BlockId& block, std::uint64_t bytes,
                                     IoCharge* charge) {
  scratch_evicted_.clear();
  const bool stored = store_.insert_into(block, bytes, &scratch_evicted_);
  account_evictions(scratch_evicted_, charge);
  if (!stored) {
    ++stats_.uncacheable;
    return false;
  }
  ++stats_.blocks_cached;
  return true;
}

void BlockManager::cancel_pending_prefetch(const BlockId& block) {
  std::uint64_t* entry = prefetch_index_.find(pack_block_id(block));
  if (entry == nullptr) return;
  PendingPrefetch& pending = prefetch_queue_.at(*entry);
  pending.cancelled = true;
  queued_bytes_ -= pending.bytes;
  --live_queued_;
  prefetch_index_.erase_found(entry);
  update_queue_flag();
}

void BlockManager::reset_for_reuse(std::unique_ptr<CachePolicy> replacement) {
  if (replacement != nullptr) policy_ = std::move(replacement);
  // config_ references the master's config object, which the master rewrites
  // before resetting its nodes — re-read capacity and placement from it.
  store_.reset(config_.cache_bytes_per_node, policy_.get());
  policy_->configure_placement(config_.placement);
  local_activity_ = 0;
  *activity_ = 0;
  on_disk_.clear();
  prefetch_queue_.clear();
  prefetch_index_.clear();
  live_queued_ = 0;
  queued_bytes_ = 0;
  prefetch_run_.clear();
  scratch_evicted_.clear();
  batch_scratch_.stored = batch_scratch_.refreshed = batch_scratch_.rejected =
      0;
  batch_scratch_.evicted.clear();
  prefetched_unused_.clear();
  // Zero the stats without surrendering the per-RDD vector's buffer.
  auto per_rdd = std::move(stats_.per_rdd);
  per_rdd.clear();
  stats_ = NodeCacheStats{};
  stats_.per_rdd = std::move(per_rdd);
}

}  // namespace mrd
