#include "cluster/block_manager.h"

#include <algorithm>

#include "util/check.h"

namespace mrd {

BlockManager::BlockManager(NodeId node, const ClusterConfig& config,
                           std::unique_ptr<CachePolicy> policy)
    : node_(node),
      config_(config),
      policy_(std::move(policy)),
      store_(config.cache_bytes_per_node, policy_.get()) {
  MRD_CHECK(policy_ != nullptr);
}

ProbeOutcome BlockManager::probe(const BlockId& block, std::uint64_t bytes,
                                 IoCharge* charge) {
  ++stats_.probes;
  if (block.rdd >= stats_.per_rdd.size()) {
    stats_.per_rdd.resize(block.rdd + 1);
  }
  auto& rdd_counts = stats_.per_rdd[block.rdd];
  ++rdd_counts.first;
  if (store_.access(block)) {
    ++stats_.hits;
    ++rdd_counts.second;
    if (prefetched_unused_.erase(pack_block_id(block))) {
      ++stats_.prefetches_useful;
    }
    return ProbeOutcome::kHit;
  }
  // A queued-but-unserved prefetch is superseded by this demand read.
  cancel_pending_prefetch(block);

  if (on_disk_.contains(pack_block_id(block))) {
    ++stats_.disk_hits;
    charge->disk_read_bytes += bytes;
    // Promotion back into memory is a policy decision: Spark's default path
    // always re-caches (evicting LRU victims), while a DAG-aware policy can
    // leave a far-referenced block on disk instead of displacing residents.
    if (policy_->should_promote(block, store_.free_bytes())) {
      insert_with_spill(block, bytes, charge);
    }
    return ProbeOutcome::kDiskHit;
  }
  ++stats_.cold_misses;
  return ProbeOutcome::kCold;
}

void BlockManager::cache_block(const BlockId& block, std::uint64_t bytes,
                               IoCharge* charge) {
  insert_with_spill(block, bytes, charge);
}

void BlockManager::purge_block(const BlockId& block) {
  if (prefetched_unused_.erase(pack_block_id(block))) {
    ++stats_.prefetches_wasted;
  }
  if (store_.remove(block)) ++stats_.purged;
}

void BlockManager::refresh_prefetch_orders(const ExecutionPlan& plan,
                                           std::size_t max_queue) {
  flush_unstarted_prefetches();
  if (prefetch_queue_.size() >= max_queue) return;
  const std::uint64_t capacity = store_.capacity();
  const std::uint64_t free_bytes = store_.free_bytes();
  // Free space net of already-queued prefetches.
  std::uint64_t projected_free =
      free_bytes > queued_bytes_ ? free_bytes - queued_bytes_ : 0;
  const bool may_force = policy_->prefetch_may_evict(free_bytes, capacity);

  PrefetchBudget budget;
  budget.free_bytes = free_bytes;
  budget.capacity = capacity;
  budget.queue_slots = max_queue - prefetch_queue_.size();
  budget.rdd_on_disk = [this](RddId rdd) {
    return rdd < disk_blocks_per_rdd_.size() && disk_blocks_per_rdd_[rdd] > 0;
  };
  policy_->prefetch_candidates(
      budget, [&](const BlockId& block) -> PrefetchOffer {
        if (prefetch_queue_.size() >= max_queue) return PrefetchOffer::kStop;
        if (!on_disk_.contains(pack_block_id(block))) {
          return PrefetchOffer::kSkipped;  // nothing to read it from
        }
        const std::uint64_t bytes =
            plan.app().rdd(block.rdd).bytes_per_partition;
        if (bytes <= projected_free) {
          if (!issue_prefetch(block, bytes, /*forced=*/false)) {
            return PrefetchOffer::kSkippedVolatile;  // already queued
          }
          projected_free -= bytes;
          return PrefetchOffer::kIssued;
        }
        if (may_force || policy_->prefetch_swap_improves(block)) {
          return issue_prefetch(block, bytes, /*forced=*/true)
                     ? PrefetchOffer::kIssued
                     : PrefetchOffer::kSkippedVolatile;  // already queued
        }
        // Nearest candidates first: once one doesn't fit, stop.
        return PrefetchOffer::kStop;
      });
}

bool BlockManager::issue_prefetch(const BlockId& block, std::uint64_t bytes,
                                  bool forced) {
  if (store_.contains(block)) return false;
  if (prefetch_queued_.contains(pack_block_id(block))) return false;
  if (!on_disk_.contains(pack_block_id(block))) return false;
  const double load_ms = static_cast<double>(bytes) * config_.disk_ms_per_byte();
  prefetch_queue_.push_back(PendingPrefetch{block, bytes, load_ms, forced});
  prefetch_queued_.insert(pack_block_id(block));
  queued_bytes_ += bytes;
  ++stats_.prefetches_issued;
  return true;
}

double BlockManager::serve_prefetch(double available_ms, IoCharge* charge) {
  double used_ms = 0.0;
  while (!prefetch_queue_.empty() && available_ms > 0.0) {
    PendingPrefetch& head = prefetch_queue_.front();
    const double spend = std::min(available_ms, head.remaining_ms);
    head.remaining_ms -= spend;
    available_ms -= spend;
    used_ms += spend;
    if (head.remaining_ms > 1e-9) break;  // partially loaded; resume later

    // Load complete.
    charge->disk_read_bytes += head.bytes;
    const BlockId block = head.block;
    const std::uint64_t bytes = head.bytes;
    const bool forced = head.forced;
    prefetch_queue_.pop_front();
    prefetch_queued_.erase(pack_block_id(block));
    queued_bytes_ -= bytes;

    const bool fits = bytes <= store_.free_bytes();
    if ((fits || forced) && (fits || policy_->admit_prefetch(block))) {
      policy_->on_prefetch_insert(true);
      const bool stored = insert_with_spill(block, bytes, charge);
      policy_->on_prefetch_insert(false);
      if (stored) {
        ++stats_.prefetches_completed;
        prefetched_unused_.insert(pack_block_id(block));
      } else {
        ++stats_.prefetches_dropped;
      }
    } else {
      ++stats_.prefetches_dropped;
    }
  }
  return used_ms;
}

bool BlockManager::prefetch_pending(const BlockId& block) const {
  return prefetch_queued_.contains(pack_block_id(block));
}

void BlockManager::flush_unstarted_prefetches() {
  while (!prefetch_queue_.empty()) {
    const PendingPrefetch& tail = prefetch_queue_.back();
    const double full_ms =
        static_cast<double>(tail.bytes) * config_.disk_ms_per_byte();
    const bool started = tail.remaining_ms < full_ms - 1e-9;
    if (started) break;  // only the head can be partially served; keep it
    prefetch_queued_.erase(pack_block_id(tail.block));
    queued_bytes_ -= tail.bytes;
    prefetch_queue_.pop_back();
  }
}

bool BlockManager::insert_with_spill(const BlockId& block, std::uint64_t bytes,
                                     IoCharge* charge) {
  const InsertResult result = store_.insert(block, bytes);
  for (const auto& [victim, victim_bytes] : result.evicted) {
    ++stats_.evictions;
    if (prefetched_unused_.erase(pack_block_id(victim))) {
      ++stats_.prefetches_wasted;
    }
    if (config_.spill_on_evict && on_disk_.insert(pack_block_id(victim))) {
      ++stats_.spills;
      charge->disk_write_bytes += victim_bytes;
      if (victim.rdd >= disk_blocks_per_rdd_.size()) {
        disk_blocks_per_rdd_.resize(victim.rdd + 1, 0);
      }
      ++disk_blocks_per_rdd_[victim.rdd];
    }
  }
  if (!result.stored) {
    ++stats_.uncacheable;
    return false;
  }
  ++stats_.blocks_cached;
  return true;
}

void BlockManager::cancel_pending_prefetch(const BlockId& block) {
  if (!prefetch_queued_.erase(pack_block_id(block))) return;
  const auto it =
      std::find_if(prefetch_queue_.begin(), prefetch_queue_.end(),
                   [&](const PendingPrefetch& p) { return p.block == block; });
  MRD_CHECK(it != prefetch_queue_.end());
  queued_bytes_ -= it->bytes;
  prefetch_queue_.erase(it);
}

}  // namespace mrd
