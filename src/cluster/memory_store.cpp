#include "cluster/memory_store.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mrd {

MemoryStore::MemoryStore(std::uint64_t capacity_bytes, CachePolicy* policy)
    : capacity_(capacity_bytes), policy_(policy) {
  MRD_CHECK(policy_ != nullptr);
}

InsertResult MemoryStore::insert(const BlockId& block, std::uint64_t bytes) {
  InsertResult result;
  if (bytes > capacity_) return result;  // can never fit
  if (auto it = blocks_.find(block); it != blocks_.end()) {
    // Re-insert of a resident block: treat as an access/refresh.
    MRD_CHECK_MSG(it->second == bytes, "block " << block
                                                << " re-inserted with size "
                                                << bytes << " != "
                                                << it->second);
    policy_->on_block_accessed(block);
    result.stored = true;
    return result;
  }
  while (used_ + bytes > capacity_) {
    if (!evict_one(&result.evicted)) {
      // Store empty yet still no room — bytes > capacity, handled above.
      return result;
    }
  }
  blocks_.emplace(block, bytes);
  order_index_.emplace(block,
                       insertion_order_.insert(insertion_order_.end(), block));
  used_ += bytes;
  result.stored = true;
  policy_->on_block_cached(block, bytes);
  return result;
}

bool MemoryStore::remove(const BlockId& block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  used_ -= it->second;
  blocks_.erase(it);
  unlink_insertion_order(block);
  policy_->on_block_evicted(block);
  return true;
}

bool MemoryStore::access(const BlockId& block) {
  if (!blocks_.count(block)) return false;
  policy_->on_block_accessed(block);
  return true;
}

std::uint64_t MemoryStore::block_bytes(const BlockId& block) const {
  const auto it = blocks_.find(block);
  return it == blocks_.end() ? 0 : it->second;
}

std::vector<BlockId> MemoryStore::resident_blocks() const {
  std::vector<BlockId> out;
  out.reserve(blocks_.size());
  for (const auto& [block, bytes] : blocks_) {
    (void)bytes;
    out.push_back(block);
  }
  return out;
}

bool MemoryStore::evict_one(
    std::vector<std::pair<BlockId, std::uint64_t>>* evicted) {
  if (blocks_.empty()) return false;

  BlockId victim;
  const auto choice = policy_->choose_victim();
  if (choice && blocks_.count(*choice)) {
    victim = *choice;
  } else {
    // Fallback: oldest insertion still resident. The policy sees every
    // insert, so a non-resident nomination (or none at all, with blocks
    // resident) is a policy bug; the store must still make progress.
    MRD_CHECK(!insertion_order_.empty());
    victim = insertion_order_.front();
    if (choice) {
      MRD_LOG_WARN << "policy nominated non-resident victim "
                   << to_string(*choice) << "; falling back to FIFO";
    } else {
      MRD_LOG_WARN << "policy offered no victim with " << blocks_.size()
                   << " blocks resident; falling back to FIFO";
    }
  }
  const auto it = blocks_.find(victim);
  MRD_CHECK(it != blocks_.end());
  const std::uint64_t victim_bytes = it->second;
  used_ -= victim_bytes;
  blocks_.erase(it);
  unlink_insertion_order(victim);
  policy_->on_block_evicted(victim);
  evicted->emplace_back(victim, victim_bytes);
  return true;
}

void MemoryStore::unlink_insertion_order(const BlockId& block) {
  const auto it = order_index_.find(block);
  MRD_CHECK(it != order_index_.end());
  insertion_order_.erase(it->second);
  order_index_.erase(it);
}

}  // namespace mrd
