#include "cluster/memory_store.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mrd {

namespace {

/// Eviction-sink context packaged behind one pointer so the sink lambdas
/// capture 8 bytes and ride std::function's small-buffer optimization —
/// a wider capture list heap-allocates per pressure event, which is the
/// demand-insert hot path.
struct EvictContext {
  MemoryStore* store;
  std::uint64_t bytes;
  std::vector<std::pair<BlockId, std::uint64_t>>* evicted;
};

}  // namespace

MemoryStore::MemoryStore(std::uint64_t capacity_bytes, CachePolicy* policy)
    : capacity_(capacity_bytes), policy_(policy) {
  MRD_CHECK(policy_ != nullptr);
}

void MemoryStore::reset(std::uint64_t capacity_bytes, CachePolicy* policy) {
  MRD_CHECK(policy != nullptr);
  capacity_ = capacity_bytes;
  used_ = 0;
  policy_ = policy;
  blocks_.clear();
  insertion_order_.clear();
}

InsertResult MemoryStore::insert(const BlockId& block, std::uint64_t bytes) {
  InsertResult result;
  result.stored = insert_into(block, bytes, &result.evicted);
  return result;
}

bool MemoryStore::insert_into(
    const BlockId& block, std::uint64_t bytes,
    std::vector<std::pair<BlockId, std::uint64_t>>* evicted) {
  if (bytes > capacity_) return false;  // can never fit
  const std::uint64_t key = pack_block_id(block);
  if (used_ + bytes <= capacity_) {
    // No pressure: residency test and insertion share one probe walk.
    const auto [rec, inserted] = blocks_.find_or_insert(key);
    if (!inserted) {
      // Re-insert of a resident block: treat as an access/refresh.
      MRD_CHECK_MSG(rec->bytes == bytes, "block " << block
                                                  << " re-inserted with size "
                                                  << bytes << " != "
                                                  << rec->bytes);
      policy_->on_block_accessed(block);
      return true;
    }
    *rec = Resident{bytes, insertion_order_.push_back(key)};
  } else {
    // The residency probe comes before eviction: a resident block refreshes
    // even with the store full.
    if (const Resident* rec = blocks_.find(key)) {
      MRD_CHECK_MSG(rec->bytes == bytes, "block " << block
                                                  << " re-inserted with size "
                                                  << bytes << " != "
                                                  << rec->bytes);
      policy_->on_block_accessed(block);
      return true;
    }
    evict_for(bytes, evicted);
    blocks_.insert(key, Resident{bytes, insertion_order_.push_back(key)});
  }
  used_ += bytes;
  policy_->on_block_cached(block, bytes);
  return true;
}

void MemoryStore::insert_batch(const BlockId* blocks, std::size_t count,
                               std::uint64_t bytes_each,
                               BatchInsertResult* result) {
  if (count == 0) return;
  if (bytes_each > capacity_) {  // no block of this batch can ever fit
    result->rejected += count;
    return;
  }
  std::size_t next = 0;
  // blocks[known_fresh] proved non-resident by a probe that broke on the
  // fit check: still valid when admit_fitting re-enters after evictions
  // (an eviction cannot make a block resident, and no admission moved
  // `next` since the probe), so the re-entry skips the re-probe.
  std::size_t known_fresh = count;

  // Admits blocks[next..] while they fit (residents refresh in place),
  // flushing each contiguous run of fresh admissions to the policy as one
  // on_blocks_cached — but always *before* the next policy event (an
  // access, or any eviction decision), so the policy observes every block
  // in the serial order. Leaves `next` at the first block needing room.
  const auto admit_fitting = [&] {
    const BlockId* run_begin = nullptr;
    std::size_t run_len = 0;
    const auto flush_run = [&] {
      if (run_len == 0) return;
      policy_->on_blocks_cached(run_begin, run_len, bytes_each);
      run_len = 0;
    };
    while (next < count) {
      const BlockId& block = blocks[next];
      const std::uint64_t key = pack_block_id(block);
      if (used_ + bytes_each <= capacity_) {
        // No pressure: residency test and insertion share one probe walk.
        const auto [rec, inserted] = blocks_.find_or_insert(key);
        if (!inserted) {
          MRD_CHECK_MSG(rec->bytes == bytes_each,
                        "block " << block << " re-inserted with size "
                                 << bytes_each << " != " << rec->bytes);
          flush_run();
          policy_->on_block_accessed(block);
          ++result->refreshed;
          ++next;
          continue;
        }
        *rec = Resident{bytes_each, insertion_order_.push_back(key)};
        used_ += bytes_each;
        ++result->stored;
        if (run_len == 0) run_begin = &blocks[next];
        ++run_len;
        ++next;
        continue;
      }
      // Store full. As in the serial path a resident block still refreshes;
      // the first fresh block stalls the run on eviction pressure.
      if (next != known_fresh) {
        if (const Resident* rec = blocks_.find(key)) {
          MRD_CHECK_MSG(rec->bytes == bytes_each,
                        "block " << block << " re-inserted with size "
                                 << bytes_each << " != " << rec->bytes);
          flush_run();
          policy_->on_block_accessed(block);
          ++result->refreshed;
          ++next;
          continue;
        }
      }
      known_fresh = next;
      break;
    }
    flush_run();
  };

  struct BatchContext {
    MemoryStore* store;
    std::uint64_t bytes_each;
    BatchInsertResult* result;
    const std::size_t* next;
    std::size_t count;
    const void* admit;
    void (*admit_call)(const void*);
  };
  const auto admit_thunk = [](const void* fn) {
    (*static_cast<const decltype(admit_fitting)*>(fn))();
  };
  BatchContext ctx{this,  bytes_each, result,
                   &next, count,      &admit_fitting,
                   admit_thunk};
  const auto need = [](const BatchContext& c) -> std::uint64_t {
    if (*c.next == c.count) return 0;
    return c.store->used_ + c.bytes_each > c.store->capacity_
               ? c.store->used_ + c.bytes_each - c.store->capacity_
               : 0;
  };

  admit_fitting();
  while (next < count) {
    // One pressure event: stream victims from the policy, admitting every
    // pending block that fits between victims. The sink's "remaining need"
    // answer is what keeps the serial interleaving — the policy stops the
    // moment the next pending block fits, exactly where the per-block loop
    // would have stopped evicting.
    policy_->choose_victims(
        need(ctx), [&ctx](const BlockId& victim) -> std::uint64_t {
          ctx.store->evict_nominated(victim, &ctx.result->evicted);
          ctx.admit_call(ctx.admit);
          if (*ctx.next == ctx.count) return 0;
          return ctx.store->used_ + ctx.bytes_each > ctx.store->capacity_
                     ? ctx.store->used_ + ctx.bytes_each - ctx.store->capacity_
                     : 0;
        });
    if (next == count) break;
    // Policy gave up with pressure left (blocks are still resident — the
    // pending block fits an empty store). Fall back one eviction, then
    // re-enter the policy: stateful policies may nominate again after
    // observing the fallback eviction, as the serial loop allowed.
    MRD_LOG_WARN << "policy offered no victim with " << blocks_.size()
                 << " blocks resident; falling back to FIFO";
    if (!fallback_evict(&result->evicted)) break;  // unreachable: not empty
    admit_fitting();
  }
}

bool MemoryStore::remove(const BlockId& block) {
  Resident* rec = blocks_.find(pack_block_id(block));
  if (rec == nullptr) return false;
  used_ -= rec->bytes;
  insertion_order_.erase(rec->order_idx);
  blocks_.erase_found(rec);
  policy_->on_block_evicted(block);
  return true;
}

bool MemoryStore::access(const BlockId& block) {
  if (!blocks_.contains(pack_block_id(block))) return false;
  policy_->on_block_accessed(block);
  return true;
}

std::uint64_t MemoryStore::block_bytes(const BlockId& block) const {
  const Resident* rec = blocks_.find(pack_block_id(block));
  return rec == nullptr ? 0 : rec->bytes;
}

std::vector<BlockId> MemoryStore::resident_blocks() const {
  std::vector<BlockId> out;
  out.reserve(blocks_.size());
  blocks_.for_each([&](std::uint64_t key, const Resident&) {
    out.push_back(unpack_block_id(key));
  });
  std::sort(out.begin(), out.end());
  return out;
}

void MemoryStore::evict_resident(const BlockId& victim, Resident* rec,
                                 EvictedList* evicted) {
  const std::uint64_t victim_bytes = rec->bytes;
  used_ -= victim_bytes;
  insertion_order_.erase(rec->order_idx);
  blocks_.erase_found(rec);
  policy_->on_block_evicted(victim);
  evicted->emplace_back(victim, victim_bytes);
}

void MemoryStore::evict_nominated(const BlockId& victim, EvictedList* evicted) {
  if (Resident* rec = blocks_.find(pack_block_id(victim))) {
    evict_resident(victim, rec, evicted);
    return;
  }
  // The policy sees every insert, so a non-resident nomination is a policy
  // bug; the store must still make progress.
  MRD_LOG_WARN << "policy nominated non-resident victim " << to_string(victim)
               << "; falling back to FIFO";
  fallback_evict(evicted);
}

bool MemoryStore::fallback_evict(EvictedList* evicted) {
  if (insertion_order_.empty()) return false;
  const BlockId victim =
      unpack_block_id(insertion_order_.key(insertion_order_.front()));
  evict_resident(victim, blocks_.find(pack_block_id(victim)), evicted);
  return true;
}

void MemoryStore::evict_for(std::uint64_t bytes, EvictedList* evicted) {
  EvictContext ctx{this, bytes, evicted};
  while (used_ + bytes > capacity_) {
    const std::uint64_t needed = used_ + bytes - capacity_;
    policy_->choose_victims(
        needed, [&ctx](const BlockId& victim) -> std::uint64_t {
          ctx.store->evict_nominated(victim, ctx.evicted);
          return ctx.store->used_ + ctx.bytes > ctx.store->capacity_
                     ? ctx.store->used_ + ctx.bytes - ctx.store->capacity_
                     : 0;
        });
    if (used_ + bytes <= capacity_) return;
    // Policy gave up with pressure left: fall back one eviction, then ask
    // again — stateful policies may nominate after seeing the eviction.
    MRD_LOG_WARN << "policy offered no victim with " << blocks_.size()
                 << " blocks resident; falling back to FIFO";
    if (!fallback_evict(evicted)) return;  // empty store: bytes <= capacity
  }
}

}  // namespace mrd
