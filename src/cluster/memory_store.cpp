#include "cluster/memory_store.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mrd {

MemoryStore::MemoryStore(std::uint64_t capacity_bytes, CachePolicy* policy)
    : capacity_(capacity_bytes), policy_(policy) {
  MRD_CHECK(policy_ != nullptr);
}

InsertResult MemoryStore::insert(const BlockId& block, std::uint64_t bytes) {
  InsertResult result;
  if (bytes > capacity_) return result;  // can never fit
  const std::uint64_t key = pack_block_id(block);
  if (const Resident* rec = blocks_.find(key)) {
    // Re-insert of a resident block: treat as an access/refresh.
    MRD_CHECK_MSG(rec->bytes == bytes, "block " << block
                                                << " re-inserted with size "
                                                << bytes << " != "
                                                << rec->bytes);
    policy_->on_block_accessed(block);
    result.stored = true;
    return result;
  }
  while (used_ + bytes > capacity_) {
    if (!evict_one(&result.evicted)) {
      // Store empty yet still no room — bytes > capacity, handled above.
      return result;
    }
  }
  const auto order_it = insertion_order_.insert(insertion_order_.end(), block);
  blocks_.insert(key, Resident{bytes, order_it});
  used_ += bytes;
  result.stored = true;
  policy_->on_block_cached(block, bytes);
  return result;
}

bool MemoryStore::remove(const BlockId& block) {
  const std::uint64_t key = pack_block_id(block);
  const Resident* rec = blocks_.find(key);
  if (rec == nullptr) return false;
  used_ -= rec->bytes;
  insertion_order_.erase(rec->order_it);
  blocks_.erase(key);
  policy_->on_block_evicted(block);
  return true;
}

bool MemoryStore::access(const BlockId& block) {
  if (!blocks_.contains(pack_block_id(block))) return false;
  policy_->on_block_accessed(block);
  return true;
}

std::uint64_t MemoryStore::block_bytes(const BlockId& block) const {
  const Resident* rec = blocks_.find(pack_block_id(block));
  return rec == nullptr ? 0 : rec->bytes;
}

std::vector<BlockId> MemoryStore::resident_blocks() const {
  std::vector<BlockId> out;
  out.reserve(blocks_.size());
  blocks_.for_each([&](std::uint64_t key, const Resident&) {
    out.push_back(unpack_block_id(key));
  });
  std::sort(out.begin(), out.end());
  return out;
}

bool MemoryStore::evict_one(
    std::vector<std::pair<BlockId, std::uint64_t>>* evicted) {
  if (blocks_.empty()) return false;

  BlockId victim;
  const auto choice = policy_->choose_victim();
  if (choice && blocks_.contains(pack_block_id(*choice))) {
    victim = *choice;
  } else {
    // Fallback: oldest insertion still resident. The policy sees every
    // insert, so a non-resident nomination (or none at all, with blocks
    // resident) is a policy bug; the store must still make progress.
    MRD_CHECK(!insertion_order_.empty());
    victim = insertion_order_.front();
    if (choice) {
      MRD_LOG_WARN << "policy nominated non-resident victim "
                   << to_string(*choice) << "; falling back to FIFO";
    } else {
      MRD_LOG_WARN << "policy offered no victim with " << blocks_.size()
                   << " blocks resident; falling back to FIFO";
    }
  }
  const std::uint64_t key = pack_block_id(victim);
  const Resident* rec = blocks_.find(key);
  MRD_CHECK(rec != nullptr);
  const std::uint64_t victim_bytes = rec->bytes;
  used_ -= victim_bytes;
  insertion_order_.erase(rec->order_it);
  blocks_.erase(key);
  policy_->on_block_evicted(victim);
  evicted->emplace_back(victim, victim_bytes);
  return true;
}

}  // namespace mrd
