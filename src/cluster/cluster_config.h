// Cluster descriptions, including presets mirroring the paper's Table 4.
//
// Bandwidths and per-node cache sizes are simulation parameters, not claims
// about the original testbed; the presets keep the *relative* shape of the
// three environments (node count, network speed ratios, RAM class) so the
// Fig 5/6 comparisons run in comparable settings.
#pragma once

#include <cstdint>
#include <string>

#include "dag/placement.h"

namespace mrd {

struct ClusterConfig {
  std::string name = "main";
  std::uint32_t num_nodes = 25;
  std::uint32_t cpu_slots_per_node = 4;  // vCPUs (executor task slots)

  /// Block → owner-node mapping. The round-robin default reproduces the
  /// paper testbed byte-for-byte; the scale tier switches to kRddMixed so
  /// small RDDs don't strand most of a large cluster (see dag/placement.h).
  BlockPlacement placement = BlockPlacement::kRoundRobin;

  /// Storage-memory per node available for RDD caching (the knob the paper
  /// turns via spark.memory.fraction / spark.executor.memory).
  std::uint64_t cache_bytes_per_node = 512ull << 20;

  double disk_mb_per_s = 150.0;     // sequential local-disk bandwidth
  double network_mb_per_s = 62.5;   // per-node NIC (500 Mbps)

  /// Fixed scheduling overheads.
  double stage_overhead_ms = 10.0;
  double job_overhead_ms = 40.0;

  /// Evicted memory blocks spill to local disk (MEMORY_AND_DISK); if false,
  /// eviction drops the block and a later miss recomputes from lineage
  /// (MEMORY_ONLY).
  bool spill_on_evict = true;

  double disk_ms_per_byte() const {
    return 1.0 / (disk_mb_per_s * 1024.0 * 1024.0 / 1000.0);
  }
  double network_ms_per_byte() const {
    return 1.0 / (network_mb_per_s * 1024.0 * 1024.0 / 1000.0);
  }
  std::uint64_t total_cache_bytes() const {
    return static_cast<std::uint64_t>(num_nodes) * cache_bytes_per_node;
  }
};

/// Table 4 "Main cluster": 25 VMs, 4 vCPU, 8 GB, 500 Mbps.
ClusterConfig main_cluster();

/// Table 4 "LRC cluster" (Amazon EC2 m4.large-like): 20 VMs, 2 vCPU, 8 GB,
/// 450 Mbps.
ClusterConfig lrc_cluster();

/// Table 4 "MemTune cluster" (System G-like): 6 VMs, 8 vCPU, 8 GB, 1 Gbps.
ClusterConfig memtune_cluster();

}  // namespace mrd
