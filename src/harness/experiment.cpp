#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <utility>

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "exec/run_context.h"
#include "util/alloc_stats.h"
#include "util/check.h"

namespace mrd {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Per-worker-thread ring of pooled RunContexts. A sweep interleaves a
/// handful of (workload, policy) keys per thread; a few slots let each
/// key's fraction points land on "their" context — a key match, reset in
/// place, zero structural construction. When the ring is full the
/// least-recently-used context is rekeyed in place: even that recycles its
/// arena slabs and container buffers instead of going to the allocator.
constexpr std::size_t kContextPoolSize = 6;

/// Kill switch (env MRD_NO_CONTEXT_POOL): every run builds a fresh context.
/// The identity tests diff pooled vs fresh CSV bytes through this.
bool context_pool_disabled() {
  static const bool disabled = std::getenv("MRD_NO_CONTEXT_POOL") != nullptr;
  return disabled;
}

RunContext& pooled_context(const ExecutionPlan& plan, const RunConfig& config) {
  thread_local std::deque<std::unique_ptr<RunContext>> pool;  // front = LRU
  for (auto it = pool.begin(); it != pool.end(); ++it) {
    if ((*it)->matches(plan, config)) {
      if (&*it != &pool.back()) {
        auto ctx = std::move(*it);
        pool.erase(it);
        pool.push_back(std::move(ctx));
      }
      return *pool.back();
    }
  }
  if (pool.size() < kContextPoolSize) {
    pool.push_back(std::make_unique<RunContext>());
  } else {
    auto ctx = std::move(pool.front());
    pool.pop_front();
    pool.push_back(std::move(ctx));  // prepare() rekeys it in place
  }
  return *pool.back();
}

/// Non-owning shared_ptr for the synchronous wrappers, which block until
/// every queued run finished and therefore outlive their jobs.
std::shared_ptr<const WorkloadRun> borrow(const WorkloadRun& run) {
  return std::shared_ptr<const WorkloadRun>(&run,
                                            [](const WorkloadRun*) {});
}

/// Structural identity of a sweep point — the same inputs that make a
/// pooled RunContext a key match. Points with equal keys are routed to the
/// same executor worker so they land on the thread whose context ring (and
/// arena slabs) last served them.
std::uint64_t affinity_key(const SweepJob& job) {
  std::uint64_t h = std::hash<const void*>{}(job.run.get());
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(job.policy.name));
  std::uint64_t fraction_bits = 0;
  static_assert(sizeof(fraction_bits) == sizeof(job.fraction), "");
  std::memcpy(&fraction_bits, &job.fraction, sizeof(fraction_bits));
  mix(fraction_bits);
  mix(static_cast<std::uint64_t>(job.visibility));
  mix(static_cast<std::uint64_t>(job.cluster.num_nodes));
  return h;
}

}  // namespace

namespace detail {

/// One pooled sweep point: the executor task, the staged job, and the
/// completion state tickets wait on. Slots live in their runner's `slots_`
/// deque and are reused — job staging included — once they are done and no
/// ticket references them, so steady-state dispatch performs no heap
/// allocation.
struct SweepSlot : Executor::Task {
  SweepRunner* runner = nullptr;
  SweepJob job;
  std::size_t node_jobs = 1;  ///< effective intra-run fan-out
  ExecMode exec_mode = ExecMode::kAuto;
  std::uint64_t key = 0;
  std::chrono::steady_clock::time_point queued_at;
  /// Self-reference set at dispatch; execute_slot() adopts it so the slot
  /// outlives runner teardown even if every ticket was dropped early.
  std::shared_ptr<SweepSlot> self;

  RunMetrics metrics;
  std::exception_ptr error;
  std::atomic<bool> done{false};
  std::mutex mu;
  std::condition_variable cv;

  void run(unsigned /*worker*/) noexcept override {
    runner->execute_slot(this);
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// SweepTicket

SweepTicket::SweepTicket() = default;
SweepTicket::~SweepTicket() = default;
SweepTicket::SweepTicket(const SweepTicket& other) = default;
SweepTicket::SweepTicket(SweepTicket&& other) noexcept = default;
SweepTicket& SweepTicket::operator=(const SweepTicket& other) = default;
SweepTicket& SweepTicket::operator=(SweepTicket&& other) noexcept = default;

SweepTicket::SweepTicket(std::shared_ptr<detail::SweepSlot> slot)
    : slot_(std::move(slot)) {}

void SweepTicket::wait() const {
  MRD_CHECK(slot_ != nullptr);
  detail::SweepSlot* slot = slot_.get();
  if (slot->done.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(slot->mu);
  slot->cv.wait(lk, [slot] {
    return slot->done.load(std::memory_order_acquire);
  });
}

const RunMetrics& SweepTicket::get() const {
  wait();
  if (slot_->error) std::rethrow_exception(slot_->error);
  return slot_->metrics;
}

WorkloadRun plan_workload(const WorkloadSpec& spec,
                          const WorkloadParams& params) {
  WorkloadRun run{nullptr,
                  ExecutionPlan(nullptr, {}, {}, {}),
                  spec.name,
                  spec.key};
  run.app = spec.make(params);
  MRD_CHECK(run.app != nullptr);
  run.plan = DagScheduler::plan(run.app);
  return run;
}

std::shared_ptr<const WorkloadRun> plan_workload_shared(
    const WorkloadSpec& spec, const WorkloadParams& params) {
  return std::make_shared<const WorkloadRun>(plan_workload(spec, params));
}

const std::vector<double>& default_cache_fractions() {
  static const std::vector<double> kFractions = {0.30, 0.50, 0.75, 1.00};
  return kFractions;
}

std::uint64_t cache_bytes_per_node_for(const WorkloadRun& run,
                                       const ClusterConfig& cluster,
                                       double fraction) {
  MRD_CHECK(fraction > 0.0);
  const std::uint64_t working_set = peak_live_persisted_bytes(run.plan);
  std::uint64_t per_node = static_cast<std::uint64_t>(
      fraction * static_cast<double>(working_set) / cluster.num_nodes);
  // Floor: at least the largest single block must fit, or nothing caches.
  std::uint64_t largest_block = 0;
  for (const RddInfo& rdd : run.app->rdds()) {
    if (rdd.persisted) {
      largest_block = std::max(largest_block, rdd.bytes_per_partition);
    }
  }
  return std::max(per_node, largest_block * 2);
}

RunMetrics run_with_policy(const WorkloadRun& run, ClusterConfig cluster,
                           double cache_fraction, const PolicyConfig& policy,
                           DagVisibility visibility, std::size_t node_jobs,
                           NodeParallelStats* parallel_stats,
                           ExecMode exec_mode) {
  cluster.cache_bytes_per_node =
      cache_bytes_per_node_for(run, cluster, cache_fraction);
  RunConfig config;
  config.cluster = cluster;
  config.policy = policy;
  config.visibility = visibility;
  config.node_jobs = node_jobs;
  config.parallel_stats = parallel_stats;
  config.exec_mode = exec_mode;
  return run_plan(run.plan, config);
}

// ---------------------------------------------------------------------------
// Parallel sweep
// ---------------------------------------------------------------------------

std::vector<RunMetrics> run_sweep_parallel(const std::vector<SweepJob>& jobs,
                                           std::size_t threads,
                                           SweepStats* stats) {
  SweepRunner runner(threads);
  std::vector<SweepTicket> tickets;
  tickets.reserve(jobs.size());
  for (const SweepJob& job : jobs) tickets.push_back(runner.submit(job));
  std::vector<RunMetrics> results;
  results.reserve(jobs.size());
  for (auto& ticket : tickets) results.push_back(ticket.get());
  if (stats != nullptr) *stats = runner.stats();
  return results;
}

SweepRunner::SweepRunner(std::size_t threads, std::size_t node_jobs,
                         ExecMode exec_mode)
    : threads_(std::max<std::size_t>(1, threads)),
      node_jobs_(std::max<std::size_t>(1, node_jobs)),
      exec_mode_(exec_mode),
      use_executor_(threads > 1 && Executor::enabled()),
      start_(Clock::now()) {
  if (use_executor_) {
    exec_base_ = Executor::instance().stats();
  } else if (threads_ > 1) {
    // Kill-switch fallback (MRD_NO_PERSISTENT_POOL=1): private per-runner
    // workers, the pre-executor provisioning model.
    fallback_workers_.reserve(threads_);
    for (std::size_t i = 0; i < threads_; ++i) {
      fallback_workers_.emplace_back([this] { fallback_loop(); });
    }
  }
}

SweepRunner::~SweepRunner() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return outstanding_ == 0; });
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : fallback_workers_) worker.join();
}

SweepTicket SweepRunner::submit(SweepJob job) {
  MRD_CHECK(job.run != nullptr);
  const std::size_t requested =
      job.node_jobs > 0 ? job.node_jobs : node_jobs_;
  // Both levels queue on the shared executor, so they compose. Only the
  // private-thread fallback forces intra-run fan-out off: without a shared
  // pool, nesting would multiply thread counts. (Either way the metrics
  // are identical.)
  const std::size_t node_jobs =
      (!use_executor_ && threads_ > 1) ? 1 : requested;
  // kAuto on the job inherits the runner's engine choice.
  const ExecMode exec_mode =
      job.exec_mode != ExecMode::kAuto ? job.exec_mode : exec_mode_;

  std::shared_ptr<detail::SweepSlot> slot;
  {
    alloc_stats::ThreadScope dispatch_scope;
    std::lock_guard<std::mutex> lk(mu_);
    slot = acquire_slot_locked();
    detail::SweepSlot* s = slot.get();
    s->runner = this;
    s->job = std::move(job);
    s->node_jobs = node_jobs;
    s->exec_mode = exec_mode;
    s->key = affinity_key(s->job);
    s->error = nullptr;
    s->done.store(false, std::memory_order_relaxed);
    s->queued_at = Clock::now();
    ++outstanding_;
    if (threads_ > 1) {
      if (use_executor_ && inflight_ < threads_) {
        dispatch_locked(slot);
      } else {
        backlog_.push_back(slot);
      }
    }
    dispatch_allocs_ += dispatch_scope.allocs();
  }
  if (threads_ <= 1) {
    slot->self = slot;
    execute_slot(slot.get());
  } else if (!use_executor_) {
    cv_.notify_one();
  }
  return SweepTicket(std::move(slot));
}

std::shared_ptr<detail::SweepSlot> SweepRunner::acquire_slot_locked() {
  // A slot is reusable once its run finished and every ticket for it is
  // gone (slots_ holds the only reference). Tickets can only be copied
  // from live tickets, so a use_count of 1 cannot concurrently grow.
  for (auto& slot : slots_) {
    if (slot.use_count() == 1 &&
        slot->done.load(std::memory_order_acquire)) {
      return slot;
    }
  }
  slots_.push_back(std::make_shared<detail::SweepSlot>());
  return slots_.back();
}

void SweepRunner::dispatch_locked(std::shared_ptr<detail::SweepSlot> slot) {
  ++inflight_;
  detail::SweepSlot* s = slot.get();
  s->self = std::move(slot);
  int hint = -1;
  const auto it = affinity_.find(s->key);
  if (it != affinity_.end()) hint = it->second;
  Executor::instance().submit(s, hint);
}

void SweepRunner::execute_slot(detail::SweepSlot* slot) {
  // Keep the slot alive past the runner bookkeeping below: the submitter
  // may have dropped its ticket without waiting, and the runner (slots_
  // included) may be destroyed the moment outstanding_ hits zero.
  const std::shared_ptr<detail::SweepSlot> keep = std::move(slot->self);
  const Clock::time_point t0 = Clock::now();
  // Node-group accounting is only interesting (and only has a cost: the
  // partitioner build) when this run actually fans out.
  NodeParallelStats run_parallel;
  NodeParallelStats* parallel = slot->node_jobs > 1 ? &run_parallel : nullptr;
  std::uint64_t allocs = 0;
  bool steady = false;
  try {
    RunConfig config;
    config.cluster = slot->job.cluster;
    config.cluster.cache_bytes_per_node = cache_bytes_per_node_for(
        *slot->job.run, slot->job.cluster, slot->job.fraction);
    config.policy = slot->job.policy;
    config.visibility = slot->job.visibility;
    config.node_jobs = slot->node_jobs;
    config.parallel_stats = parallel;
    config.exec_mode = slot->exec_mode;
    if (!context_pool_disabled()) {
      config.context = &pooled_context(slot->job.run->plan, config);
    }
    alloc_stats::ThreadScope alloc_scope;
    slot->metrics = run_plan(slot->job.run->plan, config);
    allocs = alloc_scope.allocs();
    steady = config.context != nullptr && config.context->fully_reused();
  } catch (...) {
    slot->error = std::current_exception();
  }
  const double elapsed = ms_between(t0, Clock::now());
  const double queued = ms_between(slot->queued_at, t0);
  {
    // Last touch of the runner; notifying under the lock keeps the
    // destructor (which waits for outstanding_ == 0 on cv_) from freeing
    // the runner mid-notify.
    std::lock_guard<std::mutex> lock(mu_);
    ++runs_done_;
    aggregate_ms_ += elapsed;
    queue_ms_ += queued;
    run_ms_sumsq_ += elapsed * elapsed;
    if (parallel != nullptr) node_parallel_.merge(run_parallel);
    heap_allocs_ += allocs;
    if (steady) {
      ++steady_runs_;
      steady_allocs_ += allocs;
    }
    const int worker = Executor::current_worker();
    if (worker >= 0) affinity_[slot->key] = worker;
    if (use_executor_) {
      --inflight_;
      if (!stopping_ && !backlog_.empty()) {
        std::shared_ptr<detail::SweepSlot> next =
            std::move(backlog_.front());
        backlog_.pop_front();
        dispatch_locked(std::move(next));
      }
    }
    --outstanding_;
    cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->done.store(true, std::memory_order_release);
  }
  slot->cv.notify_all();
}

void SweepRunner::fallback_loop() {
  for (;;) {
    std::shared_ptr<detail::SweepSlot> slot;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !backlog_.empty(); });
      if (backlog_.empty()) return;  // stopping_
      slot = std::move(backlog_.front());
      backlog_.pop_front();
    }
    detail::SweepSlot* s = slot.get();
    s->self = std::move(slot);
    execute_slot(s);
  }
}

PendingBest SweepRunner::submit_best(std::shared_ptr<const WorkloadRun> run,
                                     const ClusterConfig& cluster,
                                     const std::vector<double>& fractions,
                                     const PolicyConfig& baseline,
                                     const PolicyConfig& candidate,
                                     DagVisibility visibility) {
  MRD_CHECK(!fractions.empty());
  PendingBest pending;
  pending.fractions_ = fractions;
  pending.baseline_.reserve(fractions.size());
  pending.candidate_.reserve(fractions.size());
  for (double f : fractions) {
    pending.baseline_.push_back(
        submit(SweepJob{run, cluster, f, baseline, visibility}));
    pending.candidate_.push_back(
        submit(SweepJob{run, cluster, f, candidate, visibility}));
  }
  return pending;
}

SweepStats SweepRunner::stats() const {
  SweepStats stats;
  stats.threads = threads_;
  stats.wall_ms = ms_between(start_, Clock::now());
  if (use_executor_) {
    const ExecutorStats now = Executor::instance().stats();
    stats.exec_tasks = now.executed - exec_base_.executed;
    stats.exec_steals = now.steals - exec_base_.steals;
    stats.exec_failed_steals = now.failed_steals - exec_base_.failed_steals;
    stats.exec_max_deque_depth = now.max_deque_depth;
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats.runs = runs_done_;
  stats.aggregate_ms = aggregate_ms_;
  stats.queue_ms = queue_ms_;
  stats.run_ms_sumsq = run_ms_sumsq_;
  stats.node_parallel = node_parallel_;
  stats.alloc_stats_available = alloc_stats::available();
  stats.heap_allocs = heap_allocs_;
  stats.steady_runs = steady_runs_;
  stats.steady_allocs = steady_allocs_;
  stats.dispatch_allocs = dispatch_allocs_;
  return stats;
}

BestComparison PendingBest::get() {
  BestComparison best;
  bool first = true;
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    RunMetrics base = baseline_[i].get();
    RunMetrics cand = candidate_[i].get();
    const double ratio =
        base.jct_ms == 0.0 ? 1.0 : cand.jct_ms / base.jct_ms;
    if (first || ratio < best.jct_ratio()) {
      best.fraction = fractions_[i];
      best.baseline = std::move(base);
      best.candidate = std::move(cand);
      first = false;
    }
  }
  return best;
}

std::vector<SweepPoint> sweep_cache(const WorkloadRun& run,
                                    const ClusterConfig& cluster,
                                    const std::vector<double>& fractions,
                                    const PolicyConfig& policy,
                                    DagVisibility visibility,
                                    SweepRunner* runner) {
  SweepRunner serial(1);
  if (runner == nullptr) runner = &serial;
  const std::shared_ptr<const WorkloadRun> shared = borrow(run);
  std::vector<SweepTicket> tickets;
  tickets.reserve(fractions.size());
  for (double f : fractions) {
    tickets.push_back(
        runner->submit(SweepJob{shared, cluster, f, policy, visibility}));
  }
  std::vector<SweepPoint> points;
  points.reserve(fractions.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    points.push_back(SweepPoint{fractions[i], tickets[i].get()});
  }
  return points;
}

BestComparison best_improvement(const WorkloadRun& run,
                                const ClusterConfig& cluster,
                                const std::vector<double>& fractions,
                                const PolicyConfig& baseline,
                                const PolicyConfig& candidate,
                                DagVisibility visibility,
                                SweepRunner* runner) {
  MRD_CHECK(!fractions.empty());
  SweepRunner serial(1);
  if (runner == nullptr) runner = &serial;
  return runner
      ->submit_best(borrow(run), cluster, fractions, baseline, candidate,
                    visibility)
      .get();
}

}  // namespace mrd
