#include "harness/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <utility>

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "exec/run_context.h"
#include "util/alloc_stats.h"
#include "util/check.h"

namespace mrd {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Per-worker-thread ring of pooled RunContexts. A sweep interleaves a
/// handful of (workload, policy) keys per thread; a few slots let each
/// key's fraction points land on "their" context — a key match, reset in
/// place, zero structural construction. When the ring is full the
/// least-recently-used context is rekeyed in place: even that recycles its
/// arena slabs and container buffers instead of going to the allocator.
constexpr std::size_t kContextPoolSize = 6;

/// Kill switch (env MRD_NO_CONTEXT_POOL): every run builds a fresh context.
/// The identity tests diff pooled vs fresh CSV bytes through this.
bool context_pool_disabled() {
  static const bool disabled = std::getenv("MRD_NO_CONTEXT_POOL") != nullptr;
  return disabled;
}

RunContext& pooled_context(const ExecutionPlan& plan, const RunConfig& config) {
  thread_local std::deque<std::unique_ptr<RunContext>> pool;  // front = LRU
  for (auto it = pool.begin(); it != pool.end(); ++it) {
    if ((*it)->matches(plan, config)) {
      if (&*it != &pool.back()) {
        auto ctx = std::move(*it);
        pool.erase(it);
        pool.push_back(std::move(ctx));
      }
      return *pool.back();
    }
  }
  if (pool.size() < kContextPoolSize) {
    pool.push_back(std::make_unique<RunContext>());
  } else {
    auto ctx = std::move(pool.front());
    pool.pop_front();
    pool.push_back(std::move(ctx));  // prepare() rekeys it in place
  }
  return *pool.back();
}

/// Non-owning shared_ptr for the synchronous wrappers, which block until
/// every queued run finished and therefore outlive their jobs.
std::shared_ptr<const WorkloadRun> borrow(const WorkloadRun& run) {
  return std::shared_ptr<const WorkloadRun>(&run,
                                            [](const WorkloadRun*) {});
}

}  // namespace

WorkloadRun plan_workload(const WorkloadSpec& spec,
                          const WorkloadParams& params) {
  WorkloadRun run{nullptr,
                  ExecutionPlan(nullptr, {}, {}, {}),
                  spec.name,
                  spec.key};
  run.app = spec.make(params);
  MRD_CHECK(run.app != nullptr);
  run.plan = DagScheduler::plan(run.app);
  return run;
}

std::shared_ptr<const WorkloadRun> plan_workload_shared(
    const WorkloadSpec& spec, const WorkloadParams& params) {
  return std::make_shared<const WorkloadRun>(plan_workload(spec, params));
}

const std::vector<double>& default_cache_fractions() {
  static const std::vector<double> kFractions = {0.30, 0.50, 0.75, 1.00};
  return kFractions;
}

std::uint64_t cache_bytes_per_node_for(const WorkloadRun& run,
                                       const ClusterConfig& cluster,
                                       double fraction) {
  MRD_CHECK(fraction > 0.0);
  const std::uint64_t working_set = peak_live_persisted_bytes(run.plan);
  std::uint64_t per_node = static_cast<std::uint64_t>(
      fraction * static_cast<double>(working_set) / cluster.num_nodes);
  // Floor: at least the largest single block must fit, or nothing caches.
  std::uint64_t largest_block = 0;
  for (const RddInfo& rdd : run.app->rdds()) {
    if (rdd.persisted) {
      largest_block = std::max(largest_block, rdd.bytes_per_partition);
    }
  }
  return std::max(per_node, largest_block * 2);
}

RunMetrics run_with_policy(const WorkloadRun& run, ClusterConfig cluster,
                           double cache_fraction, const PolicyConfig& policy,
                           DagVisibility visibility, std::size_t node_jobs,
                           NodeParallelStats* parallel_stats,
                           ExecMode exec_mode) {
  cluster.cache_bytes_per_node =
      cache_bytes_per_node_for(run, cluster, cache_fraction);
  RunConfig config;
  config.cluster = cluster;
  config.policy = policy;
  config.visibility = visibility;
  config.node_jobs = node_jobs;
  config.parallel_stats = parallel_stats;
  config.exec_mode = exec_mode;
  return run_plan(run.plan, config);
}

// ---------------------------------------------------------------------------
// Parallel sweep
// ---------------------------------------------------------------------------

std::vector<RunMetrics> run_sweep_parallel(const std::vector<SweepJob>& jobs,
                                           std::size_t threads,
                                           SweepStats* stats) {
  SweepRunner runner(threads);
  std::vector<std::shared_future<RunMetrics>> futures;
  futures.reserve(jobs.size());
  for (const SweepJob& job : jobs) futures.push_back(runner.submit(job));
  std::vector<RunMetrics> results;
  results.reserve(jobs.size());
  for (auto& future : futures) results.push_back(future.get());
  if (stats != nullptr) *stats = runner.stats();
  return results;
}

SweepRunner::SweepRunner(std::size_t threads, std::size_t node_jobs,
                         ExecMode exec_mode)
    : threads_(std::max<std::size_t>(1, threads)),
      node_jobs_(std::max<std::size_t>(1, node_jobs)),
      exec_mode_(exec_mode),
      pool_(threads_),
      start_(Clock::now()) {}

std::shared_future<RunMetrics> SweepRunner::submit(SweepJob job) {
  MRD_CHECK(job.run != nullptr);
  // Intra-run fan-out only engages on a serial sweep: with multiple sweep
  // threads the independent runs already fill the machine, and nested pools
  // would oversubscribe it. (Either way the metrics are identical.)
  const std::size_t requested =
      job.node_jobs > 0 ? job.node_jobs : node_jobs_;
  const std::size_t node_jobs = threads_ > 1 ? 1 : requested;
  // kAuto on the job inherits the runner's engine choice.
  const ExecMode exec_mode =
      job.exec_mode != ExecMode::kAuto ? job.exec_mode : exec_mode_;
  const Clock::time_point submitted = Clock::now();
  return pool_
      .submit([this, job = std::move(job), node_jobs, exec_mode,
               submitted]() -> RunMetrics {
        const Clock::time_point t0 = Clock::now();
        // Node-group accounting is only interesting (and only has a cost:
        // the partitioner build) when this run actually fans out.
        NodeParallelStats run_parallel;
        NodeParallelStats* parallel =
            node_jobs > 1 ? &run_parallel : nullptr;
        RunConfig config;
        config.cluster = job.cluster;
        config.cluster.cache_bytes_per_node =
            cache_bytes_per_node_for(*job.run, job.cluster, job.fraction);
        config.policy = job.policy;
        config.visibility = job.visibility;
        config.node_jobs = node_jobs;
        config.parallel_stats = parallel;
        config.exec_mode = exec_mode;
        if (!context_pool_disabled()) {
          config.context = &pooled_context(job.run->plan, config);
        }
        alloc_stats::ThreadScope alloc_scope;
        RunMetrics metrics = run_plan(job.run->plan, config);
        const std::uint64_t allocs = alloc_scope.allocs();
        const bool steady =
            config.context != nullptr && config.context->fully_reused();
        const double elapsed = ms_between(t0, Clock::now());
        const double queued = ms_between(submitted, t0);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++runs_done_;
          aggregate_ms_ += elapsed;
          queue_ms_ += queued;
          run_ms_sumsq_ += elapsed * elapsed;
          if (parallel != nullptr) node_parallel_.merge(run_parallel);
          heap_allocs_ += allocs;
          if (steady) {
            ++steady_runs_;
            steady_allocs_ += allocs;
          }
        }
        return metrics;
      })
      .share();
}

PendingBest SweepRunner::submit_best(std::shared_ptr<const WorkloadRun> run,
                                     const ClusterConfig& cluster,
                                     const std::vector<double>& fractions,
                                     const PolicyConfig& baseline,
                                     const PolicyConfig& candidate,
                                     DagVisibility visibility) {
  MRD_CHECK(!fractions.empty());
  PendingBest pending;
  pending.fractions_ = fractions;
  pending.baseline_.reserve(fractions.size());
  pending.candidate_.reserve(fractions.size());
  for (double f : fractions) {
    pending.baseline_.push_back(
        submit(SweepJob{run, cluster, f, baseline, visibility}));
    pending.candidate_.push_back(
        submit(SweepJob{run, cluster, f, candidate, visibility}));
  }
  return pending;
}

SweepStats SweepRunner::stats() const {
  SweepStats stats;
  stats.threads = threads_;
  stats.wall_ms = ms_between(start_, Clock::now());
  std::lock_guard<std::mutex> lock(mu_);
  stats.runs = runs_done_;
  stats.aggregate_ms = aggregate_ms_;
  stats.queue_ms = queue_ms_;
  stats.run_ms_sumsq = run_ms_sumsq_;
  stats.node_parallel = node_parallel_;
  stats.alloc_stats_available = alloc_stats::available();
  stats.heap_allocs = heap_allocs_;
  stats.steady_runs = steady_runs_;
  stats.steady_allocs = steady_allocs_;
  return stats;
}

BestComparison PendingBest::get() {
  BestComparison best;
  bool first = true;
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    RunMetrics base = baseline_[i].get();
    RunMetrics cand = candidate_[i].get();
    const double ratio =
        base.jct_ms == 0.0 ? 1.0 : cand.jct_ms / base.jct_ms;
    if (first || ratio < best.jct_ratio()) {
      best.fraction = fractions_[i];
      best.baseline = std::move(base);
      best.candidate = std::move(cand);
      first = false;
    }
  }
  return best;
}

std::vector<SweepPoint> sweep_cache(const WorkloadRun& run,
                                    const ClusterConfig& cluster,
                                    const std::vector<double>& fractions,
                                    const PolicyConfig& policy,
                                    DagVisibility visibility,
                                    SweepRunner* runner) {
  SweepRunner serial(1);
  if (runner == nullptr) runner = &serial;
  const std::shared_ptr<const WorkloadRun> shared = borrow(run);
  std::vector<std::shared_future<RunMetrics>> futures;
  futures.reserve(fractions.size());
  for (double f : fractions) {
    futures.push_back(
        runner->submit(SweepJob{shared, cluster, f, policy, visibility}));
  }
  std::vector<SweepPoint> points;
  points.reserve(fractions.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    points.push_back(SweepPoint{fractions[i], futures[i].get()});
  }
  return points;
}

BestComparison best_improvement(const WorkloadRun& run,
                                const ClusterConfig& cluster,
                                const std::vector<double>& fractions,
                                const PolicyConfig& baseline,
                                const PolicyConfig& candidate,
                                DagVisibility visibility,
                                SweepRunner* runner) {
  MRD_CHECK(!fractions.empty());
  SweepRunner serial(1);
  if (runner == nullptr) runner = &serial;
  return runner
      ->submit_best(borrow(run), cluster, fractions, baseline, candidate,
                    visibility)
      .get();
}

}  // namespace mrd
