#include "harness/experiment.h"

#include <algorithm>

#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "util/check.h"

namespace mrd {

WorkloadRun plan_workload(const WorkloadSpec& spec,
                          const WorkloadParams& params) {
  WorkloadRun run{nullptr,
                  ExecutionPlan(nullptr, {}, {}, {}),
                  spec.name,
                  spec.key};
  run.app = spec.make(params);
  MRD_CHECK(run.app != nullptr);
  run.plan = DagScheduler::plan(run.app);
  return run;
}

const std::vector<double>& default_cache_fractions() {
  static const std::vector<double> kFractions = {0.30, 0.50, 0.75, 1.00};
  return kFractions;
}

std::uint64_t cache_bytes_per_node_for(const WorkloadRun& run,
                                       const ClusterConfig& cluster,
                                       double fraction) {
  MRD_CHECK(fraction > 0.0);
  const std::uint64_t working_set = peak_live_persisted_bytes(run.plan);
  std::uint64_t per_node = static_cast<std::uint64_t>(
      fraction * static_cast<double>(working_set) / cluster.num_nodes);
  // Floor: at least the largest single block must fit, or nothing caches.
  std::uint64_t largest_block = 0;
  for (const RddInfo& rdd : run.app->rdds()) {
    if (rdd.persisted) {
      largest_block = std::max(largest_block, rdd.bytes_per_partition);
    }
  }
  return std::max(per_node, largest_block * 2);
}

RunMetrics run_with_policy(const WorkloadRun& run, ClusterConfig cluster,
                           double cache_fraction, const PolicyConfig& policy,
                           DagVisibility visibility) {
  cluster.cache_bytes_per_node =
      cache_bytes_per_node_for(run, cluster, cache_fraction);
  RunConfig config;
  config.cluster = cluster;
  config.policy = policy;
  config.visibility = visibility;
  return run_plan(run.plan, config);
}

std::vector<SweepPoint> sweep_cache(const WorkloadRun& run,
                                    const ClusterConfig& cluster,
                                    const std::vector<double>& fractions,
                                    const PolicyConfig& policy,
                                    DagVisibility visibility) {
  std::vector<SweepPoint> points;
  points.reserve(fractions.size());
  for (double f : fractions) {
    points.push_back(
        SweepPoint{f, run_with_policy(run, cluster, f, policy, visibility)});
  }
  return points;
}

BestComparison best_improvement(const WorkloadRun& run,
                                const ClusterConfig& cluster,
                                const std::vector<double>& fractions,
                                const PolicyConfig& baseline,
                                const PolicyConfig& candidate,
                                DagVisibility visibility) {
  MRD_CHECK(!fractions.empty());
  BestComparison best;
  bool first = true;
  for (double f : fractions) {
    RunMetrics base = run_with_policy(run, cluster, f, baseline, visibility);
    RunMetrics cand = run_with_policy(run, cluster, f, candidate, visibility);
    const double ratio =
        base.jct_ms == 0.0 ? 1.0 : cand.jct_ms / base.jct_ms;
    if (first || ratio < best.jct_ratio()) {
      best.fraction = f;
      best.baseline = std::move(base);
      best.candidate = std::move(cand);
      first = false;
    }
  }
  return best;
}

}  // namespace mrd
