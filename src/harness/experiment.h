// Experiment harness: plans workloads once, sizes cluster caches relative to
// each workload's persisted working set, and sweeps policies × cache sizes —
// the methodology of the paper's §5.3 ("executed each workload with several
// cache sizes ... best overall performance gain for each workload-cache
// combination", normalized against LRU at the same cache size).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "dag/execution_plan.h"
#include "exec/application_runner.h"
#include "metrics/run_metrics.h"
#include "workloads/workloads.h"

namespace mrd {

/// A workload planned and ready to execute any number of times.
struct WorkloadRun {
  std::shared_ptr<const Application> app;
  ExecutionPlan plan;
  std::string name;  // paper name
  std::string key;
};

WorkloadRun plan_workload(const WorkloadSpec& spec,
                          const WorkloadParams& params = {});

/// Cache fractions swept by default: total cluster cache as a fraction of
/// the workload's persisted working set.
const std::vector<double>& default_cache_fractions();

/// Per-node cache bytes so that total cluster cache = fraction × the
/// workload's *peak live* persisted working set (floored at two of the
/// largest persisted blocks per node).
std::uint64_t cache_bytes_per_node_for(const WorkloadRun& run,
                                       const ClusterConfig& cluster,
                                       double fraction);

/// Runs `run` under `policy` with the cluster cache sized by `fraction`.
RunMetrics run_with_policy(const WorkloadRun& run, ClusterConfig cluster,
                           double cache_fraction, const PolicyConfig& policy,
                           DagVisibility visibility = DagVisibility::kRecurring);

struct SweepPoint {
  double fraction = 0.0;
  RunMetrics metrics;
};

std::vector<SweepPoint> sweep_cache(const WorkloadRun& run,
                                    const ClusterConfig& cluster,
                                    const std::vector<double>& fractions,
                                    const PolicyConfig& policy,
                                    DagVisibility visibility =
                                        DagVisibility::kRecurring);

/// Fig-4-style selection: runs baseline and candidate at every fraction and
/// returns the pair at the fraction where candidate JCT / baseline JCT is
/// smallest.
struct BestComparison {
  double fraction = 0.0;
  RunMetrics baseline;
  RunMetrics candidate;
  double jct_ratio() const {
    return baseline.jct_ms == 0.0 ? 1.0 : candidate.jct_ms / baseline.jct_ms;
  }
};

BestComparison best_improvement(const WorkloadRun& run,
                                const ClusterConfig& cluster,
                                const std::vector<double>& fractions,
                                const PolicyConfig& baseline,
                                const PolicyConfig& candidate,
                                DagVisibility visibility =
                                    DagVisibility::kRecurring);

}  // namespace mrd
