// Experiment harness: plans workloads once, sizes cluster caches relative to
// each workload's persisted working set, and sweeps policies × cache sizes —
// the methodology of the paper's §5.3 ("executed each workload with several
// cache sizes ... best overall performance gain for each workload-cache
// combination", normalized against LRU at the same cache size).
//
// Every simulation run is independent and deterministic, so the sweep is
// embarrassingly parallel: `run_sweep_parallel` (and the deferred
// `SweepRunner` API the benches use) fans (workload, policy, cache-fraction)
// points out across the persistent work-stealing executor and reassembles
// results in input order. Results are guaranteed byte-identical to a serial
// sweep regardless of the thread count — per-run state (policies, block
// managers, profiler, RNG) is private to the run, and the only cross-run
// state (the ProfileStore) is internally synchronized.
//
// Dispatch is allocation-free in the steady state: each point runs in a
// pooled slot (reused once its ticket is released), and sweep-level
// (`--jobs`) and intra-run (`--node-jobs`) parallelism compose — a point's
// engine helpers queue on the same executor, so the machine is shared
// instead of oversubscribed. Points carry a worker-affinity hint derived
// from their structural key, so a point re-runs on the worker whose
// thread-local context ring (and arena slabs) last served that key.
#pragma once

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_config.h"
#include "dag/execution_plan.h"
#include "exec/application_runner.h"
#include "exec/executor.h"
#include "metrics/run_metrics.h"
#include "workloads/workloads.h"

namespace mrd {

/// A workload planned and ready to execute any number of times.
struct WorkloadRun {
  std::shared_ptr<const Application> app;
  ExecutionPlan plan;
  std::string name;  // paper name
  std::string key;
};

WorkloadRun plan_workload(const WorkloadSpec& spec,
                          const WorkloadParams& params = {});

/// plan_workload, shared: the form the deferred sweep API takes, so that
/// queued runs keep the plan alive however long the pool takes to reach
/// them.
std::shared_ptr<const WorkloadRun> plan_workload_shared(
    const WorkloadSpec& spec, const WorkloadParams& params = {});

/// Cache fractions swept by default: total cluster cache as a fraction of
/// the workload's persisted working set.
const std::vector<double>& default_cache_fractions();

/// Per-node cache bytes so that total cluster cache = fraction × the
/// workload's *peak live* persisted working set (floored at two of the
/// largest persisted blocks per node).
std::uint64_t cache_bytes_per_node_for(const WorkloadRun& run,
                                       const ClusterConfig& cluster,
                                       double fraction);

/// Runs `run` under `policy` with the cluster cache sized by `fraction`.
/// `node_jobs` fans the per-stage per-node work inside this one run across
/// that many workers (see RunConfig::node_jobs; output is identical for any
/// value). `parallel_stats`, when non-null, receives the run's node-group
/// fan-out accounting (RunConfig::parallel_stats).
RunMetrics run_with_policy(const WorkloadRun& run, ClusterConfig cluster,
                           double cache_fraction, const PolicyConfig& policy,
                           DagVisibility visibility = DagVisibility::kRecurring,
                           std::size_t node_jobs = 1,
                           NodeParallelStats* parallel_stats = nullptr,
                           ExecMode exec_mode = ExecMode::kAuto);

// ---------------------------------------------------------------------------
// Parallel sweep
// ---------------------------------------------------------------------------

/// One independent experiment point of a sweep.
struct SweepJob {
  std::shared_ptr<const WorkloadRun> run;
  ClusterConfig cluster;
  double fraction = 0.0;
  PolicyConfig policy;
  DagVisibility visibility = DagVisibility::kRecurring;
  /// Intra-run node workers for this point; 0 = inherit the runner's
  /// default. Composes with sweep-level parallelism: both layers queue on
  /// the shared persistent executor, so `--jobs 4 --node-jobs 4` shares the
  /// machine instead of oversubscribing it. Only when the executor is
  /// disabled (MRD_NO_PERSISTENT_POOL=1) *and* the sweep runs on more than
  /// one private thread is this forced to 1 — without a shared pool the two
  /// layers would multiply thread counts.
  std::size_t node_jobs = 0;
  /// Engine for this point; kAuto inherits the runner's default.
  ExecMode exec_mode = ExecMode::kAuto;
};

/// Wall-clock accounting of a sweep — the source of the benches' speedup
/// line.
struct SweepStats {
  std::size_t runs = 0;
  std::size_t threads = 1;
  double wall_ms = 0.0;       // elapsed time of the whole sweep
  double aggregate_ms = 0.0;  // sum of per-run execution times
  double queue_ms = 0.0;      // sum of per-point submit→start latencies
  double run_ms_sumsq = 0.0;  // sum of squared per-run execution times
  /// Aggregated node-group fan-out accounting over every run that executed
  /// with node_jobs > 1 (NodeParallelStats::merge); engaged stays false when
  /// no run fanned out intra-run.
  NodeParallelStats node_parallel;
  /// Heap-allocation accounting across the sweep's runs (util/alloc_stats.h;
  /// all zeros — and `alloc_stats_available` false — under sanitizers, where
  /// the counting allocator is compiled out).
  bool alloc_stats_available = false;
  std::uint64_t heap_allocs = 0;  // allocations during all runs
  /// Steady-state runs: points that fully reused a pooled RunContext (no
  /// structural construction — the zero-allocation regime the CI gate
  /// asserts on) and the allocations they still performed.
  std::uint64_t steady_runs = 0;
  std::uint64_t steady_allocs = 0;
  /// Submit-side allocations (slot acquisition + job staging). Zero in the
  /// steady state: a released ticket's slot is reused by the next submit,
  /// so the alloc gate covers dispatch as well as the runs themselves.
  std::uint64_t dispatch_allocs = 0;
  /// Executor activity since this runner was constructed (process-wide
  /// deltas — concurrent runners share the pool, so attribute with care).
  /// All zero when the runner executes inline or on private fallback
  /// threads.
  std::uint64_t exec_tasks = 0;
  std::uint64_t exec_steals = 0;
  std::uint64_t exec_failed_steals = 0;
  std::size_t exec_max_deque_depth = 0;
  /// Effective parallel speedup: aggregate simulation time per elapsed
  /// second. 1.0 on a single thread by construction.
  double speedup() const {
    return wall_ms > 0.0 ? aggregate_ms / wall_ms : 1.0;
  }
  /// Mean time a point waited in the pool queue before its run started —
  /// high values mean the sweep is submission-bound, not worker-bound.
  double mean_queue_ms() const {
    return runs > 0 ? queue_ms / static_cast<double>(runs) : 0.0;
  }
  /// Mean heap allocations per steady-state (fully reused) run.
  double mean_steady_allocs() const {
    return steady_runs > 0 ? static_cast<double>(steady_allocs) /
                                 static_cast<double>(steady_runs)
                           : 0.0;
  }
  /// Mean submit-side allocations per point (0 once the slot pool is warm).
  double mean_dispatch_allocs() const {
    return runs > 0 ? static_cast<double>(dispatch_allocs) /
                          static_cast<double>(runs)
                    : 0.0;
  }
  /// Population standard deviation of per-run wall clock: how uneven the
  /// sweep's points are (the tail run gates the whole sweep).
  double run_stddev_ms() const {
    if (runs == 0) return 0.0;
    const double n = static_cast<double>(runs);
    const double mean = aggregate_ms / n;
    const double variance = run_ms_sumsq / n - mean * mean;
    return variance > 0.0 ? std::sqrt(variance) : 0.0;
  }
};

/// Executes every job across `threads` workers (<=1 = inline on the calling
/// thread) and returns results **in input order**, regardless of completion
/// order. Deterministic: output is byte-identical for every thread count.
std::vector<RunMetrics> run_sweep_parallel(const std::vector<SweepJob>& jobs,
                                           std::size_t threads,
                                           SweepStats* stats = nullptr);

struct SweepPoint {
  double fraction = 0.0;
  RunMetrics metrics;
};

namespace detail {
struct SweepSlot;
}  // namespace detail

/// Handle to one queued sweep point. Copyable (shared_future semantics);
/// the underlying pooled slot is recycled by its runner once every ticket
/// for it is gone, so dropping tickets promptly is what keeps dispatch
/// allocation-free. Tickets must not outlive their SweepRunner, and get()
/// must not be called from inside a task running on the same runner.
class SweepTicket {
 public:
  SweepTicket();
  ~SweepTicket();
  SweepTicket(const SweepTicket& other);
  SweepTicket(SweepTicket&& other) noexcept;
  SweepTicket& operator=(const SweepTicket& other);
  SweepTicket& operator=(SweepTicket&& other) noexcept;

  bool valid() const { return slot_ != nullptr; }

  /// Blocks until the point ran; rethrows the run's exception. The
  /// reference stays valid while any ticket for the point is alive.
  const RunMetrics& get() const;

  /// Blocks until the point ran (does not rethrow).
  void wait() const;

 private:
  friend class SweepRunner;
  explicit SweepTicket(std::shared_ptr<detail::SweepSlot> slot);

  std::shared_ptr<detail::SweepSlot> slot_;
};

/// Fig-4-style selection: runs baseline and candidate at every fraction and
/// returns the pair at the fraction where candidate JCT / baseline JCT is
/// smallest.
struct BestComparison {
  double fraction = 0.0;
  RunMetrics baseline;
  RunMetrics candidate;
  double jct_ratio() const {
    return baseline.jct_ms == 0.0 ? 1.0 : candidate.jct_ms / baseline.jct_ms;
  }
};

/// A deferred best-of-fractions comparison: the underlying runs execute on
/// the SweepRunner's workers; get() blocks for them and reduces on the
/// calling thread (so workers never wait on each other).
class PendingBest {
 public:
  BestComparison get();

 private:
  friend class SweepRunner;
  std::vector<double> fractions_;
  std::vector<SweepTicket> baseline_;
  std::vector<SweepTicket> candidate_;
};

/// Deferred sweep executor: benches queue every experiment point up front
/// (`submit` / `submit_best`), then collect in presentation order — the
/// shared executor saturates across workloads, policies and fractions at
/// once. A SweepRunner with 1 thread executes submissions inline and is the
/// serial baseline the parallel results are guaranteed identical to.
///
/// Points run in pooled slots dispatched to the process-wide Executor with
/// a worker-affinity hint (same structural point → same worker → same
/// thread-local RunContext ring); at most `threads` points are in flight at
/// once, the rest wait in a backlog that completing slots drain. When the
/// executor is disabled (MRD_NO_PERSISTENT_POOL=1) the runner falls back to
/// `threads` private worker threads — the one configuration where
/// node_jobs is forced to 1 (no shared pool to compose on).
class SweepRunner {
 public:
  /// `node_jobs` is the default intra-run fan-out for jobs that do not set
  /// their own (SweepJob::node_jobs == 0).
  explicit SweepRunner(std::size_t threads = 1, std::size_t node_jobs = 1,
                       ExecMode exec_mode = ExecMode::kAuto);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  std::size_t threads() const { return threads_; }
  std::size_t node_jobs() const { return node_jobs_; }
  ExecMode exec_mode() const { return exec_mode_; }

  /// Queues one run. The ticket resolves with its metrics (or rethrows the
  /// run's exception on get()).
  SweepTicket submit(SweepJob job);

  /// Queues baseline + candidate at every fraction.
  PendingBest submit_best(std::shared_ptr<const WorkloadRun> run,
                          const ClusterConfig& cluster,
                          const std::vector<double>& fractions,
                          const PolicyConfig& baseline,
                          const PolicyConfig& candidate,
                          DagVisibility visibility =
                              DagVisibility::kRecurring);

  /// Snapshot of runs completed so far; wall_ms is elapsed time since
  /// construction.
  SweepStats stats() const;

 private:
  friend struct detail::SweepSlot;

  std::shared_ptr<detail::SweepSlot> acquire_slot_locked();
  void dispatch_locked(std::shared_ptr<detail::SweepSlot> slot);
  void execute_slot(detail::SweepSlot* slot);
  void fallback_loop();

  std::size_t threads_;
  std::size_t node_jobs_;
  ExecMode exec_mode_;
  bool use_executor_ = false;  ///< threads_ > 1 and Executor::enabled()
  std::chrono::steady_clock::time_point start_;
  ExecutorStats exec_base_;  ///< pool counters at construction (for deltas)

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< backlog (fallback workers) + drain
  /// Every slot this runner ever created; a slot is reusable when it is
  /// done and only this deque still references it (use_count == 1).
  std::deque<std::shared_ptr<detail::SweepSlot>> slots_;
  std::deque<std::shared_ptr<detail::SweepSlot>> backlog_;
  std::size_t inflight_ = 0;     ///< dispatched to the executor, not done
  std::size_t outstanding_ = 0;  ///< submitted, not done (all modes)
  bool stopping_ = false;
  std::vector<std::thread> fallback_workers_;
  /// Structural point key -> executor worker that last ran it (the
  /// affinity hint that routes a point back to its warm context ring).
  std::unordered_map<std::uint64_t, int> affinity_;

  std::size_t runs_done_ = 0;
  double aggregate_ms_ = 0.0;
  double queue_ms_ = 0.0;
  double run_ms_sumsq_ = 0.0;
  NodeParallelStats node_parallel_;
  std::uint64_t heap_allocs_ = 0;
  std::uint64_t steady_runs_ = 0;
  std::uint64_t steady_allocs_ = 0;
  std::uint64_t dispatch_allocs_ = 0;
};

std::vector<SweepPoint> sweep_cache(const WorkloadRun& run,
                                    const ClusterConfig& cluster,
                                    const std::vector<double>& fractions,
                                    const PolicyConfig& policy,
                                    DagVisibility visibility =
                                        DagVisibility::kRecurring,
                                    SweepRunner* runner = nullptr);

BestComparison best_improvement(const WorkloadRun& run,
                                const ClusterConfig& cluster,
                                const std::vector<double>& fractions,
                                const PolicyConfig& baseline,
                                const PolicyConfig& candidate,
                                DagVisibility visibility =
                                    DagVisibility::kRecurring,
                                SweepRunner* runner = nullptr);

}  // namespace mrd
