file(REMOVE_RECURSE
  "CMakeFiles/pregel_and_sim_test.dir/pregel_and_sim_test.cpp.o"
  "CMakeFiles/pregel_and_sim_test.dir/pregel_and_sim_test.cpp.o.d"
  "pregel_and_sim_test"
  "pregel_and_sim_test.pdb"
  "pregel_and_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_and_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
