# Empty dependencies file for pregel_and_sim_test.
# This may be replaced when dependencies are built.
