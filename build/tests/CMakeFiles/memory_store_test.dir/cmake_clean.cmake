file(REMOVE_RECURSE
  "CMakeFiles/memory_store_test.dir/memory_store_test.cpp.o"
  "CMakeFiles/memory_store_test.dir/memory_store_test.cpp.o.d"
  "memory_store_test"
  "memory_store_test.pdb"
  "memory_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
