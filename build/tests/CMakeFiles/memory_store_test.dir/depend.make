# Empty dependencies file for memory_store_test.
# This may be replaced when dependencies are built.
