# Empty compiler generated dependencies file for ref_distance_table_test.
# This may be replaced when dependencies are built.
