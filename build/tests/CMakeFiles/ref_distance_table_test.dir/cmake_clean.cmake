file(REMOVE_RECURSE
  "CMakeFiles/ref_distance_table_test.dir/ref_distance_table_test.cpp.o"
  "CMakeFiles/ref_distance_table_test.dir/ref_distance_table_test.cpp.o.d"
  "ref_distance_table_test"
  "ref_distance_table_test.pdb"
  "ref_distance_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_distance_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
