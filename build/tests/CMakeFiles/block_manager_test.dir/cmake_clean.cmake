file(REMOVE_RECURSE
  "CMakeFiles/block_manager_test.dir/block_manager_test.cpp.o"
  "CMakeFiles/block_manager_test.dir/block_manager_test.cpp.o.d"
  "block_manager_test"
  "block_manager_test.pdb"
  "block_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
