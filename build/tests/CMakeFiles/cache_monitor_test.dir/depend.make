# Empty dependencies file for cache_monitor_test.
# This may be replaced when dependencies are built.
