file(REMOVE_RECURSE
  "CMakeFiles/cache_monitor_test.dir/cache_monitor_test.cpp.o"
  "CMakeFiles/cache_monitor_test.dir/cache_monitor_test.cpp.o.d"
  "cache_monitor_test"
  "cache_monitor_test.pdb"
  "cache_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
