
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/belady_test.cpp" "tests/CMakeFiles/belady_test.dir/belady_test.cpp.o" "gcc" "tests/CMakeFiles/belady_test.dir/belady_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mrd_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mrd_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mrd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mrd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mrd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/mrd_api.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
