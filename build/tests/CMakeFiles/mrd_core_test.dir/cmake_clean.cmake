file(REMOVE_RECURSE
  "CMakeFiles/mrd_core_test.dir/mrd_core_test.cpp.o"
  "CMakeFiles/mrd_core_test.dir/mrd_core_test.cpp.o.d"
  "mrd_core_test"
  "mrd_core_test.pdb"
  "mrd_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
