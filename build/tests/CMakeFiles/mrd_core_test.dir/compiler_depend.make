# Empty compiler generated dependencies file for mrd_core_test.
# This may be replaced when dependencies are built.
