# Empty compiler generated dependencies file for reference_profile_test.
# This may be replaced when dependencies are built.
