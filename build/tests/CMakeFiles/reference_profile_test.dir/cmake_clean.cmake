file(REMOVE_RECURSE
  "CMakeFiles/reference_profile_test.dir/reference_profile_test.cpp.o"
  "CMakeFiles/reference_profile_test.dir/reference_profile_test.cpp.o.d"
  "reference_profile_test"
  "reference_profile_test.pdb"
  "reference_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
