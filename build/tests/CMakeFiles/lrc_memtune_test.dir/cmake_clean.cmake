file(REMOVE_RECURSE
  "CMakeFiles/lrc_memtune_test.dir/lrc_memtune_test.cpp.o"
  "CMakeFiles/lrc_memtune_test.dir/lrc_memtune_test.cpp.o.d"
  "lrc_memtune_test"
  "lrc_memtune_test.pdb"
  "lrc_memtune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrc_memtune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
