# Empty compiler generated dependencies file for lrc_memtune_test.
# This may be replaced when dependencies are built.
