file(REMOVE_RECURSE
  "CMakeFiles/dag_scheduler_test.dir/dag_scheduler_test.cpp.o"
  "CMakeFiles/dag_scheduler_test.dir/dag_scheduler_test.cpp.o.d"
  "dag_scheduler_test"
  "dag_scheduler_test.pdb"
  "dag_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
