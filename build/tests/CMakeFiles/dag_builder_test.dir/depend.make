# Empty dependencies file for dag_builder_test.
# This may be replaced when dependencies are built.
