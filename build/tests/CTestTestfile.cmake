# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/dag_builder_test[1]_include.cmake")
include("/root/repo/build/tests/dag_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/reference_profile_test[1]_include.cmake")
include("/root/repo/build/tests/ref_distance_table_test[1]_include.cmake")
include("/root/repo/build/tests/cache_policy_test[1]_include.cmake")
include("/root/repo/build/tests/lrc_memtune_test[1]_include.cmake")
include("/root/repo/build/tests/belady_test[1]_include.cmake")
include("/root/repo/build/tests/mrd_core_test[1]_include.cmake")
include("/root/repo/build/tests/cache_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/memory_store_test[1]_include.cmake")
include("/root/repo/build/tests/block_manager_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/pregel_and_sim_test[1]_include.cmake")
