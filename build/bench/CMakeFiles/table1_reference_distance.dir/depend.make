# Empty dependencies file for table1_reference_distance.
# This may be replaced when dependencies are built.
