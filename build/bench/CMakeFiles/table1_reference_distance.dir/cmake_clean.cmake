file(REMOVE_RECURSE
  "CMakeFiles/table1_reference_distance.dir/table1_reference_distance.cpp.o"
  "CMakeFiles/table1_reference_distance.dir/table1_reference_distance.cpp.o.d"
  "table1_reference_distance"
  "table1_reference_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_reference_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
