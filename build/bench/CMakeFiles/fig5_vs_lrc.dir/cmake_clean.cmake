file(REMOVE_RECURSE
  "CMakeFiles/fig5_vs_lrc.dir/fig5_vs_lrc.cpp.o"
  "CMakeFiles/fig5_vs_lrc.dir/fig5_vs_lrc.cpp.o.d"
  "fig5_vs_lrc"
  "fig5_vs_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vs_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
