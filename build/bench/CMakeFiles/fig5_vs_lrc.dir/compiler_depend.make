# Empty compiler generated dependencies file for fig5_vs_lrc.
# This may be replaced when dependencies are built.
