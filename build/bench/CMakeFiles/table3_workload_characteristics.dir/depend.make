# Empty dependencies file for table3_workload_characteristics.
# This may be replaced when dependencies are built.
