file(REMOVE_RECURSE
  "CMakeFiles/table3_workload_characteristics.dir/table3_workload_characteristics.cpp.o"
  "CMakeFiles/table3_workload_characteristics.dir/table3_workload_characteristics.cpp.o.d"
  "table3_workload_characteristics"
  "table3_workload_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workload_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
