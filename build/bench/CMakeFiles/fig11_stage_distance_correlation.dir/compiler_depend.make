# Empty compiler generated dependencies file for fig11_stage_distance_correlation.
# This may be replaced when dependencies are built.
