file(REMOVE_RECURSE
  "CMakeFiles/fig11_stage_distance_correlation.dir/fig11_stage_distance_correlation.cpp.o"
  "CMakeFiles/fig11_stage_distance_correlation.dir/fig11_stage_distance_correlation.cpp.o.d"
  "fig11_stage_distance_correlation"
  "fig11_stage_distance_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stage_distance_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
