# Empty compiler generated dependencies file for fig10_iterations.
# This may be replaced when dependencies are built.
