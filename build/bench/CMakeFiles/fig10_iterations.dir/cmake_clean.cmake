file(REMOVE_RECURSE
  "CMakeFiles/fig10_iterations.dir/fig10_iterations.cpp.o"
  "CMakeFiles/fig10_iterations.dir/fig10_iterations.cpp.o.d"
  "fig10_iterations"
  "fig10_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
