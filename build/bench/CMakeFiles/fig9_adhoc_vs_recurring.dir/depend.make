# Empty dependencies file for fig9_adhoc_vs_recurring.
# This may be replaced when dependencies are built.
