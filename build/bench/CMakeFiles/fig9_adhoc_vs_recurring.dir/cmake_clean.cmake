file(REMOVE_RECURSE
  "CMakeFiles/fig9_adhoc_vs_recurring.dir/fig9_adhoc_vs_recurring.cpp.o"
  "CMakeFiles/fig9_adhoc_vs_recurring.dir/fig9_adhoc_vs_recurring.cpp.o.d"
  "fig9_adhoc_vs_recurring"
  "fig9_adhoc_vs_recurring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adhoc_vs_recurring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
