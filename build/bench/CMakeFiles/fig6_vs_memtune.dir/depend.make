# Empty dependencies file for fig6_vs_memtune.
# This may be replaced when dependencies are built.
