file(REMOVE_RECURSE
  "CMakeFiles/fig6_vs_memtune.dir/fig6_vs_memtune.cpp.o"
  "CMakeFiles/fig6_vs_memtune.dir/fig6_vs_memtune.cpp.o.d"
  "fig6_vs_memtune"
  "fig6_vs_memtune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vs_memtune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
