# Empty dependencies file for fig8_stage_vs_job_distance.
# This may be replaced when dependencies are built.
