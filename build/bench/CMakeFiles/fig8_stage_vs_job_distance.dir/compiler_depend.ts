# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_stage_vs_job_distance.
