# Empty dependencies file for fig4_overall_performance.
# This may be replaced when dependencies are built.
