file(REMOVE_RECURSE
  "CMakeFiles/fig12_refs_per_stage_correlation.dir/fig12_refs_per_stage_correlation.cpp.o"
  "CMakeFiles/fig12_refs_per_stage_correlation.dir/fig12_refs_per_stage_correlation.cpp.o.d"
  "fig12_refs_per_stage_correlation"
  "fig12_refs_per_stage_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_refs_per_stage_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
