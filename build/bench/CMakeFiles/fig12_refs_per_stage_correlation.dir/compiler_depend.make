# Empty compiler generated dependencies file for fig12_refs_per_stage_correlation.
# This may be replaced when dependencies are built.
